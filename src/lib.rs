//! # Horus — persistent security for extended-persistence-domain memory
//!
//! A from-scratch Rust reproduction of *"Horus: Persistent Security for
//! Extended Persistence-Domain Memory Systems"* (Han, Tuck, Awad —
//! MICRO 2022): a functional, timed simulator of a secure NVM system
//! with an eADR-style extended persistence domain, the two baseline
//! secure drain schemes, and the Horus cache-hierarchy-vault drain that
//! cuts the EPD hold-up budget ~5x.
//!
//! This facade crate re-exports the workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `horus-core` | the secure EPD system, drain schemes, CHV, recovery, attacks |
//! | [`metadata`] | `horus-metadata` | split counters, Bonsai Merkle Tree, metadata caches, lazy/eager engines |
//! | [`crypto`] | `horus-crypto` | AES-128, AES-CMAC, counter-mode pads |
//! | [`cache`] | `horus-cache` | set-associative caches and the L1/L2/LLC hierarchy |
//! | [`nvm`] | `horus-nvm` | functional PCM model, bank timing, physical address map |
//! | [`sim`] | `horus-sim` | cycles, slot-scheduled resources, event queue, statistics |
//! | [`energy`] | `horus-energy` | drain energy and battery sizing (Tables II–III) |
//! | [`workload`] | `horus-workload` | crash-snapshot generators and access traces |
//! | [`harness`] | `horus-harness` | parallel, cache-aware experiment orchestration |
//! | [`fleet`] | `horus-fleet` | distributed coordinator/worker sweep execution with deterministic merge |
//! | [`mod@bench`] | `horus-bench` | the paper's figures/tables, the crash-point sweep, the bench gate |
//! | [`service`] | `horus-service` | multi-tenant experiment API: admission control, dedup, load generation |
//!
//! # Quickstart
//!
//! ```
//! use horus::core::{DrainScheme, SecureEpdSystem, SystemConfig};
//!
//! // Build a (small, for doctest speed) secure EPD system.
//! let mut sys = SecureEpdSystem::new(SystemConfig::small_test());
//!
//! // Run some persistent application writes.
//! sys.write(0x0000, [0xAA; 64])?;
//! sys.write(0x4040, [0xBB; 64])?;
//!
//! // Power fails: drain the hierarchy through the Horus vault…
//! let drain = sys.crash_and_drain(DrainScheme::HorusSlm);
//! assert!(drain.flushed_blocks >= 2);
//!
//! // …power returns: verify + decrypt the vault and restore.
//! let recovery = sys.recover()?;
//! assert_eq!(recovery.restored_blocks, drain.flushed_blocks);
//! assert_eq!(sys.read(0x0000)?, [0xAA; 64]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! See `DESIGN.md` for the system inventory and per-experiment index,
//! and `EXPERIMENTS.md` for paper-vs-measured results of every table
//! and figure.

#![forbid(unsafe_code)]

pub use horus_bench as bench;
pub use horus_cache as cache;
pub use horus_core as core;
pub use horus_crypto as crypto;
pub use horus_energy as energy;
pub use horus_fleet as fleet;
pub use horus_harness as harness;
pub use horus_metadata as metadata;
pub use horus_nvm as nvm;
pub use horus_obs as obs;
pub use horus_service as service;
pub use horus_sim as sim;
pub use horus_workload as workload;

/// Commonly-used items, one `use` away.
pub mod prelude {
    pub use horus_core::{
        DrainReport, DrainScheme, RecoveryError, RecoveryReport, SecureEpdSystem, SystemConfig,
    };
    pub use horus_energy::{Battery, DrainEnergyModel};
    pub use horus_workload::{fill_hierarchy, FillPattern};
}
