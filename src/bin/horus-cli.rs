//! `horus-cli` — drive the secure-EPD simulator from the command line.
//!
//! ```text
//! horus-cli config
//! horus-cli drain   --scheme horus-slm [--llc-mb 16] [--stride 16384] [--json]
//! horus-cli recover --scheme horus-dlm [--llc-mb 8] [--write-through]
//! horus-cli attack  --kind splice [--scheme horus-slm]
//! horus-cli sweep   --llc 8,16,32 [--jobs N] [--cache-dir DIR] [--no-cache] [--progress] [--json] [--fleet ADDR]
//! horus-cli crash-sweep [--quick] [--points N] [--model torn|stale|garbled] [--jobs N] [--out FILE] [--json]
//! horus-cli serve [--addr 127.0.0.1:9900] [--tenant-config FILE] [--jobs N] [--cache-dir DIR] [--fleet ADDR]
//! horus-cli fleet-coordinator [--addr 127.0.0.1:9470] [--lease-secs S] [--for-plans N] [--resume]
//! horus-cli fleet-worker --connect HOST:PORT [--jobs N] [--name NAME]
//! horus-cli fleet-trace [--connect HOST:PORT] [--out FILE]
//! horus-cli serve-metrics [--addr 127.0.0.1:9464] [--for-seconds S]
//! horus-cli insight [--obs FILE] [--spans FILE] [--logs FILE] [--out FILE] [--top N] [--json]
//! ```
//!
//! `sweep` runs on the `horus-harness` worker pool: points execute in
//! parallel (`--jobs`, default all cores) and results are memoized in
//! the on-disk cache, so re-running a sweep is instant.
//!
//! `crash-sweep` interrupts every scheme's drain at sampled cycles
//! (phase boundaries ±1 plus even coverage), recovers from the exact
//! persistent state left behind, and classifies each point; it exits
//! nonzero if a Horus scheme ever silently returns corrupted data.
//!
//! `sweep` and `crash-sweep` also take the fleet-telemetry flags:
//! `--metrics-addr ADDR` serves live Prometheus text (`GET /metrics`)
//! for the duration of the run, `--dashboard` renders the live TTY
//! panel (degrading to `--progress` JSON lines off-TTY), and
//! `--obs-out FILE` writes the end-of-run obs summary JSON. With none
//! of them given, output is byte-identical to the uninstrumented run.
//! `serve-metrics` stands up the scrape endpoint on its own, exposing
//! this process's host profile — useful for smoke-testing a Prometheus
//! scrape config against the exposition format.

use horus::bench::crash_sweep as bench_crash;
use horus::core::{
    attack, DrainScheme, PersistenceDomain, RecoveryMode, SecureEpdSystem, SystemConfig,
    TornWriteModel,
};
use horus::energy::{Battery, DrainEnergyModel};
use horus::fleet::{run_worker, Coordinator, CoordinatorOptions, FleetBackend, WorkerOptions};
use horus::harness::{Harness, HarnessOptions, JobSpec, ProgressMode, SweepBackend};
use horus::obs::{log, span, MetricsServer, ObsOptions, ObsSession, Registry, SpanBook};
use horus::service::ServiceConfig;
use horus::workload::{fill_hierarchy, parse_trace, FillPattern, TraceOp};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

fn parse_scheme(s: &str) -> Result<DrainScheme, String> {
    match s.to_ascii_lowercase().as_str() {
        "ns" | "non-secure" | "nonsecure" => Ok(DrainScheme::NonSecure),
        "base-lu" | "lazy" => Ok(DrainScheme::BaseLazy),
        "base-eu" | "eager" => Ok(DrainScheme::BaseEager),
        "horus" | "horus-slm" | "slm" => Ok(DrainScheme::HorusSlm),
        "horus-dlm" | "dlm" => Ok(DrainScheme::HorusDlm),
        other => Err(format!(
            "unknown scheme '{other}' (ns, base-lu, base-eu, horus, horus-slm, horus-dlm)"
        )),
    }
}

/// Minimal flag parser: `--key value` pairs plus boolean `--flag`s.
struct Args {
    positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

impl Args {
    fn parse(argv: &[String], booleans: &[&str]) -> Result<Self, String> {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut it = argv.iter().peekable();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                if booleans.contains(&name) {
                    flags.push((name.to_owned(), None));
                } else {
                    let v = it
                        .next()
                        .ok_or_else(|| format!("--{name} requires a value"))?
                        .clone();
                    flags.push((name.to_owned(), Some(v)));
                }
            } else {
                positional.push(a.clone());
            }
        }
        Ok(Self { positional, flags })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }
}

fn build(llc_mb: u64, stride: u64, scheme: DrainScheme) -> SecureEpdSystem {
    let cfg = SystemConfig::with_llc_bytes(llc_mb << 20);
    let mut sys = SecureEpdSystem::for_scheme(cfg.clone(), scheme);
    fill_hierarchy(
        sys.hierarchy_mut(),
        FillPattern::StridedSparse { min_stride: stride },
        cfg.data_bytes,
        cfg.seed,
    );
    sys
}

fn cmd_config() -> Result<(), String> {
    let cfg = SystemConfig::paper_default();
    let summary = horus::core::config::ConfigSummary::of(&cfg);
    println!(
        "{}",
        serde_json::to_string_pretty(&summary).map_err(|e| e.to_string())?
    );
    Ok(())
}

fn cmd_drain(args: &Args) -> Result<(), String> {
    let scheme = parse_scheme(args.get("scheme").unwrap_or("horus-slm"))?;
    let llc_mb: u64 = args
        .get("llc-mb")
        .unwrap_or("8")
        .parse()
        .map_err(|e| format!("--llc-mb: {e}"))?;
    let stride: u64 = args
        .get("stride")
        .unwrap_or("16384")
        .parse()
        .map_err(|e| format!("--stride: {e}"))?;
    let mut sys = build(llc_mb, stride, scheme);
    let report = sys.crash_and_drain(scheme);
    if args.has("json") {
        println!(
            "{}",
            serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?
        );
    } else {
        let energy = DrainEnergyModel::paper_default().drain_energy(&report);
        println!("scheme          {}", report.scheme);
        println!(
            "flushed blocks  {} (+{} metadata)",
            report.flushed_blocks, report.metadata_blocks
        );
        println!(
            "memory          {} reads, {} writes",
            report.reads, report.writes
        );
        println!("MAC ops         {}", report.mac_ops);
        println!(
            "drain time      {:.3} ms ({} cycles)",
            report.seconds * 1e3,
            report.cycles
        );
        println!("energy          {:.3} J", energy.total_j);
        println!(
            "battery         {:.2} cm^3 SuperCap / {:.4} cm^3 Li-thin",
            Battery::super_capacitor().volume_cm3(energy.total_j),
            Battery::lithium_thin_film().volume_cm3(energy.total_j)
        );
    }
    Ok(())
}

fn cmd_recover(args: &Args) -> Result<(), String> {
    let scheme = parse_scheme(args.get("scheme").unwrap_or("horus-slm"))?;
    if !scheme.is_horus() && scheme != DrainScheme::BaseLazy && scheme != DrainScheme::BaseEager {
        return Err("recover needs a secure scheme".into());
    }
    let llc_mb: u64 = args
        .get("llc-mb")
        .unwrap_or("8")
        .parse()
        .map_err(|e| format!("--llc-mb: {e}"))?;
    let mut sys = build(llc_mb, 16384, scheme);
    let drain = sys.crash_and_drain(scheme);
    let mode = if args.has("write-through") {
        RecoveryMode::WriteThrough
    } else {
        RecoveryMode::RefillLlc
    };
    let rec = sys.recover_with(mode).map_err(|e| e.to_string())?;
    if args.has("json") {
        println!(
            "{}",
            serde_json::to_string_pretty(&rec).map_err(|e| e.to_string())?
        );
    } else {
        println!(
            "drained         {} blocks in {:.3} ms",
            drain.flushed_blocks + drain.metadata_blocks,
            drain.seconds * 1e3
        );
        println!(
            "recovered       {} blocks in {:.3} ms ({mode})",
            rec.restored_blocks,
            rec.seconds * 1e3
        );
        println!("reads / MACs    {} / {}", rec.reads, rec.mac_ops);
    }
    Ok(())
}

fn cmd_attack(args: &Args) -> Result<(), String> {
    let scheme = parse_scheme(args.get("scheme").unwrap_or("horus-slm"))?;
    if !scheme.is_horus() {
        return Err("attacks target the Horus vault; pick horus-slm or horus-dlm".into());
    }
    let kind = args.get("kind").unwrap_or("data").to_owned();
    let mut sys = SecureEpdSystem::new(SystemConfig::small_test());
    for i in 0..64u64 {
        sys.write(i * 16448, [i as u8 + 1; 64])
            .map_err(|e| e.to_string())?;
    }
    sys.crash_and_drain(scheme);
    match kind.as_str() {
        "data" => attack::tamper_data(&mut sys, 5),
        "address" => attack::tamper_address(&mut sys, 9),
        "mac" => attack::tamper_mac(&mut sys, 3),
        "splice" => attack::splice_entries(&mut sys, 2, 11),
        "truncate" => {
            let n = sys.episode().expect("episode").blocks;
            attack::truncate_chv(&mut sys, n - 3);
        }
        "replay" => {
            let snap = attack::snapshot_chv(&sys);
            sys.recover().map_err(|e| e.to_string())?;
            for i in 0..64u64 {
                sys.write(i * 16448, [0xEE; 64])
                    .map_err(|e| e.to_string())?;
            }
            sys.crash_and_drain(scheme);
            attack::replay_chv(&mut sys, &snap);
        }
        other => {
            return Err(format!(
                "unknown attack '{other}' (data, address, mac, splice, truncate, replay)"
            ))
        }
    }
    match sys.recover() {
        Err(e) => {
            println!("attack '{kind}' on {scheme}: DETECTED ({e})");
            Ok(())
        }
        Ok(_) => Err(format!("attack '{kind}' went UNDETECTED — this is a bug")),
    }
}

/// Applies the global `--log-level`/`--log-json` flags to the
/// process-wide structured logger before any subcommand runs.
fn apply_log_flags(args: &Args) -> Result<(), String> {
    if let Some(v) = args.get("log-level") {
        let level = log::Level::parse(v)
            .ok_or(format!("--log-level {v}: expected debug|info|warn|error"))?;
        log::set_level(level);
    }
    if args.has("log-json") {
        log::set_json_stderr(true);
    }
    Ok(())
}

/// Starts the telemetry session the `--metrics-addr`/`--dashboard`/
/// `--obs-out`/`--span-out` flags describe, announcing the scrape URL.
/// `None` when no obs flag was given. When telemetry is on but no
/// `--obs-out` path was given, the summary defaults to
/// `obs-summary.json` (gitignored).
fn obs_session(args: &Args) -> Result<Option<ObsSession>, String> {
    let opts = ObsOptions {
        metrics_addr: args.get("metrics-addr").map(str::to_owned),
        dashboard: args.has("dashboard"),
        summary_out: args
            .get("obs-out")
            .map(std::path::PathBuf::from)
            .or_else(|| {
                (args.get("metrics-addr").is_some() || args.has("dashboard"))
                    .then(|| std::path::PathBuf::from("obs-summary.json"))
            }),
        span_out: args.get("span-out").map(std::path::PathBuf::from),
    };
    if !opts.is_active() {
        return Ok(None);
    }
    let session = ObsSession::start(&opts)?;
    if let Some(addr) = session.metrics_addr() {
        eprintln!("metrics: serving Prometheus text on http://{addr}/metrics");
    }
    Ok(Some(session))
}

/// The progress mode for a run: explicit `--progress`, or a `--dashboard`
/// request that could not become a live TTY panel degrading to the
/// JSON-lines stream.
fn progress_mode(args: &Args, obs: Option<&ObsSession>) -> ProgressMode {
    let dashboard_live = obs.is_some_and(ObsSession::dashboard_active);
    if args.has("progress") || (args.has("dashboard") && !dashboard_live) {
        ProgressMode::JsonLines
    } else {
        ProgressMode::Silent
    }
}

/// Drains per-job profiles and writes the summary artifact, if a session
/// is running.
fn finish_obs(obs: Option<ObsSession>, harness: &Harness) -> Result<(), String> {
    if let Some(session) = obs {
        if let Some(path) = session.finish(harness.take_job_profiles())? {
            eprintln!("obs: wrote run summary -> {}", path.display());
        }
    }
    Ok(())
}

fn cmd_sweep(args: &Args) -> Result<(), String> {
    let llcs: Vec<u64> = args
        .get("llc")
        .unwrap_or("8,16")
        .split(',')
        .map(|v| v.trim().parse::<u64>().map_err(|e| format!("--llc: {e}")))
        .collect::<Result<_, _>>()?;
    let jobs = args
        .get("jobs")
        .map(|v| v.parse::<usize>().map_err(|e| format!("--jobs: {e}")))
        .transpose()?;
    let obs = obs_session(args)?;
    let harness = Harness::new(HarnessOptions {
        jobs,
        cache_dir: args.get("cache-dir").map(std::path::PathBuf::from),
        no_cache: args.has("no-cache"),
        progress: progress_mode(args, obs.as_ref()),
        metrics: obs.as_ref().map(ObsSession::registry),
        backend: args
            .get("fleet")
            .map(|addr| Arc::new(FleetBackend::new(addr)) as Arc<dyn SweepBackend>),
        spans: obs.as_ref().and_then(ObsSession::span_book),
    });
    let specs: Vec<JobSpec> = llcs
        .iter()
        .flat_map(|mb| {
            let cfg = SystemConfig::with_llc_bytes(mb << 20);
            DrainScheme::ALL
                .iter()
                .map(move |s| {
                    JobSpec::drain(&cfg, *s, FillPattern::StridedSparse { min_stride: 16384 })
                })
                .collect::<Vec<_>>()
        })
        .collect();
    let report = harness.run(&specs);
    let drains = report.drains().map_err(|e| e.to_string())?;
    let rows: Vec<(u64, String, u64, u64, f64)> = specs
        .iter()
        .zip(&drains)
        .map(|(spec, r)| {
            (
                spec.config.hierarchy.llc_bytes >> 20,
                r.scheme.clone(),
                r.reads + r.writes,
                r.mac_ops,
                r.seconds * 1e3,
            )
        })
        .collect();
    eprintln!(
        "sweep: {} points, {} executed, {} cache hits ({} workers)",
        report.total(),
        report.executed,
        report.cache_hits,
        harness.jobs()
    );
    if args.has("json") {
        println!(
            "{}",
            serde_json::to_string_pretty(&rows).map_err(|e| e.to_string())?
        );
    } else {
        println!(
            "{:>6} {:<11} {:>12} {:>12} {:>10}",
            "LLC", "scheme", "requests", "MACs", "time(ms)"
        );
        for (mb, scheme, reqs, macs, ms) in rows {
            println!("{mb:>4}MB {scheme:<11} {reqs:>12} {macs:>12} {ms:>10.2}");
        }
    }
    finish_obs(obs, &harness)
}

/// `crash-sweep`: the crash-point fault-injection matrix. Returns the
/// process exit code so a Horus silent-corruption classification (or a
/// panicked trial) fails scripts and CI.
fn cmd_crash_sweep(args: &Args) -> Result<ExitCode, String> {
    let mut plan = if args.has("quick") {
        bench_crash::CrashSweepPlan::quick()
    } else {
        bench_crash::CrashSweepPlan::full()
    };
    if let Some(points) = args.get("points") {
        plan.points_per_scheme = points
            .parse::<usize>()
            .map_err(|e| format!("--points: {e}"))?
            .max(2);
    }
    if let Some(model) = args.get("model") {
        plan.model = match model.to_ascii_lowercase().as_str() {
            "torn" => TornWriteModel::Torn,
            "stale" => TornWriteModel::Stale,
            "garbled" => TornWriteModel::Garbled,
            other => {
                return Err(format!(
                    "unknown torn-write model '{other}' (torn, stale, garbled)"
                ))
            }
        };
    }
    let jobs = args
        .get("jobs")
        .map(|v| v.parse::<usize>().map_err(|e| format!("--jobs: {e}")))
        .transpose()?;
    let obs = obs_session(args)?;
    let harness = Harness::new(HarnessOptions {
        jobs,
        no_cache: true, // crash points are cheap and not JobSpec-shaped
        progress: progress_mode(args, obs.as_ref()),
        metrics: obs.as_ref().map(ObsSession::registry),
        ..HarnessOptions::default()
    });
    let matrix = bench_crash::run(&harness, &plan);
    finish_obs(obs, &harness)?;
    if let Some(out) = args.get("out") {
        let json = serde_json::to_string_pretty(&matrix).map_err(|e| e.to_string())?;
        std::fs::write(out, json.as_bytes()).map_err(|e| format!("{out}: {e}"))?;
        eprintln!("crash matrix written to {out}");
    }
    if args.has("json") {
        println!(
            "{}",
            serde_json::to_string_pretty(&matrix).map_err(|e| e.to_string())?
        );
    } else {
        println!("{}", matrix.render());
    }
    if matrix.failures() > 0 {
        eprintln!(
            "error: {} Horus silent corruption(s), {} panicked trial(s)",
            matrix.horus_silent_corruptions(),
            matrix.panics
        );
        return Ok(ExitCode::FAILURE);
    }
    println!(
        "\nHorus: zero silent corruption across {} sampled crash points; baseline",
        matrix.points.len()
    );
    println!("silent-loss rows are their documented vulnerability window.");
    Ok(ExitCode::SUCCESS)
}

/// `serve-metrics`: a standalone Prometheus scrape endpoint exposing
/// this process's host profile (CPU seconds, peak RSS, uptime),
/// refreshed every 250 ms. Serves until killed, or for `--for-seconds S`
/// when given (how the CI smoke job bounds it).
fn cmd_serve_metrics(args: &Args) -> Result<(), String> {
    let addr = args.get("addr").unwrap_or("127.0.0.1:9464");
    let registry = Registry::shared();
    let server = MetricsServer::bind(addr, std::sync::Arc::clone(&registry))
        .map_err(|e| format!("cannot bind metrics address {addr}: {e}"))?;
    eprintln!(
        "serving Prometheus text on http://{}/metrics (Ctrl-C to stop)",
        server.local_addr()
    );
    let deadline = args
        .get("for-seconds")
        .map(|v| v.parse::<f64>().map_err(|e| format!("--for-seconds: {e}")))
        .transpose()?;
    let cpu = registry.float_gauge(
        "horus_host_cpu_seconds",
        "Process CPU seconds (user + system) of this serve-metrics process.",
        &[],
    );
    let rss = registry.gauge(
        "horus_host_peak_rss_bytes",
        "Peak resident set size of this serve-metrics process, bytes.",
        &[],
    );
    let uptime = registry.float_gauge(
        "horus_host_uptime_seconds",
        "Seconds since this serve-metrics process started.",
        &[],
    );
    let started = std::time::Instant::now();
    loop {
        if let Some(c) = horus::obs::profile::process_cpu_seconds() {
            cpu.set(c);
        }
        if let Some(r) = horus::obs::profile::peak_rss_bytes() {
            rss.set(i64::try_from(r).unwrap_or(i64::MAX));
        }
        uptime.set(started.elapsed().as_secs_f64());
        if deadline.is_some_and(|d| started.elapsed().as_secs_f64() >= d) {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(250));
    }
    server.shutdown();
    Ok(())
}

/// `serve`: the multi-tenant experiment API. Mounts the
/// `horus-service` router in front of the obs HTTP server, so one
/// listener answers `/v1/jobs`, `/metrics`, `/healthz`, and `/readyz`.
/// Runs until `POST /v1/shutdown`, then drains the queue, joins the
/// runners, and writes the obs summary.
fn cmd_serve(args: &Args) -> Result<(), String> {
    let addr = args.get("addr").unwrap_or("127.0.0.1:9900");
    // The API rides the obs HTTP server, so a serve session always has
    // a metrics endpoint and always writes a summary artifact.
    let opts = ObsOptions {
        metrics_addr: Some(addr.to_owned()),
        dashboard: false,
        summary_out: Some(
            args.get("obs-out")
                .map_or_else(|| std::path::PathBuf::from("obs-summary.json"), Into::into),
        ),
        span_out: args.get("span-out").map(std::path::PathBuf::from),
    };
    let session = ObsSession::start(&opts)?;
    // Not ready until the runners exist and the router is mounted.
    session.set_ready(false);
    let config = match args.get("tenant-config") {
        Some(path) => ServiceConfig::load(std::path::Path::new(path))
            .map_err(|e| format!("--tenant-config {path}: {e}"))?,
        None => ServiceConfig::default(),
    };
    let jobs = args
        .get("jobs")
        .map(|v| v.parse::<usize>().map_err(|e| format!("--jobs: {e}")))
        .transpose()?;
    let backend = match args.get("fleet") {
        Some(fleet_addr) => {
            let backend = FleetBackend::new(fleet_addr);
            let workers = backend
                .wait_ready(Duration::from_secs(30))
                .map_err(|e| format!("--fleet {fleet_addr}: {e}"))?;
            eprintln!("serve: fleet backend at {fleet_addr} ready ({workers} worker(s))");
            Some(Arc::new(backend) as Arc<dyn SweepBackend>)
        }
        None => None,
    };
    let harness = Arc::new(Harness::new(HarnessOptions {
        jobs,
        cache_dir: args.get("cache-dir").map(std::path::PathBuf::from),
        no_cache: args.has("no-cache"),
        progress: ProgressMode::Silent,
        metrics: Some(session.registry()),
        backend,
        // The service stamps plan-level spans itself; giving the
        // harness the book too would collide on plan ids.
        spans: None,
    }));
    let spans = session.span_book().unwrap_or_else(SpanBook::shared);
    let service = horus::service::ExperimentService::start(
        &config,
        Arc::clone(&harness),
        Some(session.registry()),
        Some(spans),
    );
    session.install_router(Arc::clone(&service) as Arc<dyn horus::obs::Router>);
    session.set_ready(true);
    let listen = session
        .metrics_addr()
        .map_or_else(|| addr.to_owned(), |a| a.to_string());
    eprintln!(
        "serve: experiment API on http://{listen}/v1/jobs ({} runner(s), tenants: {})",
        config.effective_runners(),
        config.tenant_names().join(", ")
    );
    service.wait_until_drained();
    service.join();
    eprintln!("serve: drained; shutting down");
    finish_obs(Some(session), harness.as_ref())
}

/// `fleet-coordinator`: serve a durable job queue plus the authoritative
/// result cache to fleet workers. Runs until killed, or — with
/// `--for-plans N` — drains after merging N submitted plans (how the CI
/// smoke job bounds it), lingering briefly so workers hear `Drained` and
/// exit cleanly.
fn cmd_fleet_coordinator(args: &Args) -> Result<(), String> {
    let obs = obs_session(args)?;
    let lease_secs = args
        .get("lease-secs")
        .map(|v| v.parse::<f64>().map_err(|e| format!("--lease-secs: {e}")))
        .transpose()?
        .unwrap_or(30.0);
    if lease_secs.is_nan() || lease_secs <= 0.0 {
        return Err("--lease-secs must be positive".into());
    }
    // The CLI coordinator always keeps a span book, so `fleet-trace`
    // can interrogate any coordinator it can reach; `--span-out` merely
    // adds the end-of-run artifact (the session's book is reused then,
    // so the obs finish path writes it).
    let spans = obs
        .as_ref()
        .and_then(ObsSession::span_book)
        .unwrap_or_else(SpanBook::shared);
    // Not ready until the queue is actually listening.
    if let Some(session) = &obs {
        session.set_ready(false);
    }
    let stall_multiple = args
        .get("stall-multiple")
        .map(|v| {
            v.parse::<f64>()
                .map_err(|e| format!("--stall-multiple: {e}"))
        })
        .transpose()?
        .unwrap_or(3.0);
    if stall_multiple.is_nan() || stall_multiple < 1.0 {
        return Err("--stall-multiple must be at least 1".into());
    }
    let options = CoordinatorOptions {
        addr: args.get("addr").unwrap_or("127.0.0.1:9470").to_owned(),
        cache_dir: args.get("cache-dir").map(std::path::PathBuf::from),
        no_cache: args.has("no-cache"),
        lease: Duration::from_secs_f64(lease_secs),
        stall_multiple,
        metrics: obs.as_ref().map(ObsSession::registry),
        spans: Some(Arc::clone(&spans)),
        resume: args.has("resume"),
    };
    let coordinator = Coordinator::start(&options)
        .map_err(|e| format!("cannot start coordinator on {}: {e}", options.addr))?;
    if let Some(session) = &obs {
        session.set_ready(true);
    }
    eprintln!(
        "fleet: coordinator listening on {} (lease {:.1}s)",
        coordinator.local_addr(),
        lease_secs
    );
    let for_plans = args
        .get("for-plans")
        .map(|v| v.parse::<usize>().map_err(|e| format!("--for-plans: {e}")))
        .transpose()?;
    match for_plans {
        Some(n) => {
            coordinator.wait_for_plans(n);
            coordinator.begin_drain();
            if let Some(session) = &obs {
                session.set_ready(false);
            }
            eprintln!(
                "fleet: {n} plan(s) merged ({} lease requeues); draining workers",
                coordinator.requeues()
            );
            // Linger so workers polling for leases hear `Drained` and
            // exit zero before the listener goes away.
            std::thread::sleep(Duration::from_secs(2));
        }
        None => loop {
            std::thread::sleep(Duration::from_secs(3600));
        },
    }
    if let Some(session) = obs {
        if let Some(path) = session.finish(coordinator.take_job_profiles())? {
            eprintln!("obs: wrote run summary -> {}", path.display());
        }
    }
    coordinator.shutdown();
    Ok(())
}

/// `fleet-worker`: register with a coordinator, lease job batches, run
/// them on the ordinary local harness pool, and push results back until
/// the coordinator drains.
fn cmd_fleet_worker(args: &Args) -> Result<(), String> {
    let connect = args
        .get("connect")
        .ok_or("fleet-worker needs --connect <host:port>")?;
    let mut options = WorkerOptions::new(connect);
    if let Some(name) = args.get("name") {
        options.name = name.to_owned();
    }
    options.jobs = args
        .get("jobs")
        .map(|v| v.parse::<usize>().map_err(|e| format!("--jobs: {e}")))
        .transpose()?;
    let summary = run_worker(&options)?;
    eprintln!(
        "fleet: worker {} executed {} job(s) over {} batch(es); coordinator drained",
        summary.worker, summary.executed, summary.batches
    );
    Ok(())
}

/// `fleet-trace`: pull every job span the coordinator has stamped and
/// render them as Chrome-trace JSON — to `--out FILE`, or stdout.
/// One worker = one track; each job shows its five lifecycle stages
/// (queued → leased → executing → pushed → committed) on the
/// coordinator's clock.
fn cmd_fleet_trace(args: &Args) -> Result<(), String> {
    let addr = args
        .get("connect")
        .or_else(|| args.get("addr"))
        .unwrap_or("127.0.0.1:9470");
    let spans = FleetBackend::new(addr).fetch_trace()?;
    let json = span::chrome_trace_json(&spans);
    let complete = spans.iter().filter(|s| s.is_complete()).count();
    eprintln!(
        "fleet-trace: {} span(s) from {addr} ({complete} complete)",
        spans.len()
    );
    match args.get("out") {
        Some(out) => {
            std::fs::write(out, json.as_bytes()).map_err(|e| format!("{out}: {e}"))?;
            eprintln!("wrote Chrome trace to {out} — open in Perfetto");
        }
        None => println!("{json}"),
    }
    Ok(())
}

/// `insight`: the offline cross-signal analyzer. Joins a run's obs
/// summary (`--obs`), span timeline (`--spans`), and NDJSON structured
/// logs (`--logs`) by correlation trace id, then writes `insight.json`
/// (`--out`) and prints the human report: per-tenant and per-scheme
/// stage breakdowns, the slowest end-to-end requests, shed/retry
/// accounting reconciled against the governor counters, and an anomaly
/// section (stage-time outliers, orphan spans/logs no other signal
/// knows).
fn cmd_insight(args: &Args) -> Result<(), String> {
    let read_artifact = |flag: &str| -> Result<Option<String>, String> {
        args.get(flag)
            .map(|path| std::fs::read_to_string(path).map_err(|e| format!("--{flag} {path}: {e}")))
            .transpose()
    };
    let inputs = horus::obs::insight::InsightInputs {
        obs_summary: read_artifact("obs")?,
        spans: read_artifact("spans")?,
        logs: read_artifact("logs")?,
    };
    if inputs.obs_summary.is_none() && inputs.spans.is_none() && inputs.logs.is_none() {
        return Err("insight needs at least one of --obs, --spans, --logs".into());
    }
    let top = args
        .get("top")
        .map(|v| v.parse::<usize>().map_err(|e| format!("--top: {e}")))
        .transpose()?
        .unwrap_or(5);
    let insight = horus::obs::insight::analyze(&inputs)?;
    if let Some(out) = args.get("out") {
        std::fs::write(out, insight.to_json(top).as_bytes()).map_err(|e| format!("{out}: {e}"))?;
        eprintln!("insight: wrote {out}");
    }
    if args.has("json") {
        println!("{}", insight.to_json(top));
    } else {
        println!("{}", insight.human_report(top));
    }
    Ok(())
}

fn parse_domain(s: &str) -> Result<PersistenceDomain, String> {
    match s.to_ascii_lowercase().as_str() {
        "epd" | "eadr" => Ok(PersistenceDomain::Epd),
        "adr" => Ok(PersistenceDomain::AdrOnly),
        other => {
            if let Some(lines) = other.strip_prefix("bbb:") {
                let buffer_lines = lines.parse().map_err(|e| format!("bbb buffer size: {e}"))?;
                Ok(PersistenceDomain::Bbb { buffer_lines })
            } else {
                Err(format!("unknown domain '{other}' (epd, adr, bbb:<lines>)"))
            }
        }
    }
}

fn cmd_trace(args: &Args) -> Result<(), String> {
    // Two modes share the verb: `trace --file <path>` replays a
    // workload trace; `trace <scheme>` records one probed drain episode
    // and reports where its cycles went.
    if args.get("file").is_none() {
        return cmd_trace_drain(args);
    }
    let path = args.get("file").ok_or("trace needs --file <path>")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let ops = parse_trace(&text).map_err(|e| e.to_string())?;
    let domain = parse_domain(args.get("domain").unwrap_or("epd"))?;
    let cfg = SystemConfig {
        domain,
        ..SystemConfig::with_llc_bytes(4 << 20)
    };
    let mut sys = SecureEpdSystem::new(cfg);
    let mut reads = 0u64;
    let mut writes = 0u64;
    let mut persists = 0u64;
    for (i, op) in ops.iter().enumerate() {
        let r = match *op {
            TraceOp::Write { addr, value } => {
                writes += 1;
                sys.write(addr, [value; 64])
            }
            TraceOp::Read { addr } => {
                reads += 1;
                sys.read(addr).map(|_| ())
            }
            TraceOp::Persist { addr, value } => {
                persists += 1;
                sys.persist(addr, [value; 64]).map(|_| ())
            }
        };
        r.map_err(|e| format!("op {} ({op:?}): {e}", i + 1))?;
    }
    println!(
        "replayed {} ops ({reads} R / {writes} W / {persists} P) on {domain}",
        ops.len()
    );
    let stats = sys.platform().merged_stats();
    println!(
        "NVM: {} reads, {} writes",
        stats.sum_prefix("mem.read."),
        stats.sum_prefix("mem.write.")
    );
    println!("MAC ops: {}", stats.sum_prefix("macop."));
    if persists > 0 {
        println!(
            "persist latency: {:.0} cycles mean ({} stalls)",
            sys.persist_stats().mean_latency(),
            sys.persist_stats().buffer_stalls
        );
    }
    Ok(())
}

/// `trace <scheme>`: one probed worst-case drain, reported as a
/// per-resource utilization table plus critical-path attribution, with
/// an optional Chrome-trace-event JSON export (`--out`) loadable in
/// Perfetto or `chrome://tracing`.
fn cmd_trace_drain(args: &Args) -> Result<(), String> {
    let scheme_name = args
        .positional
        .get(1)
        .map(String::as_str)
        .or_else(|| args.get("scheme"))
        .unwrap_or("horus-slm");
    let scheme = parse_scheme(scheme_name)?;
    let llc_mb: u64 = args
        .get("llc-mb")
        .unwrap_or("8")
        .parse()
        .map_err(|e| format!("--llc-mb: {e}"))?;
    let stride: u64 = args
        .get("stride")
        .unwrap_or("16384")
        .parse()
        .map_err(|e| format!("--stride: {e}"))?;
    let cfg = horus::core::SystemConfig::with_llc_bytes(llc_mb << 20);
    let spec = JobSpec::drain(
        &cfg,
        scheme,
        FillPattern::StridedSparse { min_stride: stride },
    );
    let (result, trace) = spec.execute_traced();
    let report = &result.drain;
    println!(
        "traced one {} drain: {} events over {} cycles ({:.3} ms)\n",
        report.scheme,
        trace.len(),
        report.cycles,
        report.seconds * 1e3
    );
    if let Some(usage) = &report.utilization {
        println!(
            "{:<14} {:>8} {:>6} {:>10} {:>10} {:>10}",
            "resource", "ops", "util", "wait p50", "wait p99", "wait max"
        );
        for u in usage {
            println!(
                "{:<14} {:>8} {:>5.1}% {:>10} {:>10} {:>10}",
                u.track,
                u.ops,
                u.utilization * 100.0,
                u.queue_p50,
                u.queue_p99,
                u.queue_max
            );
        }
    }
    if let Some(cp) = &report.critical_path {
        println!(
            "\ncritical path: {} steps over {} cycles, bounded by {}",
            cp.steps, cp.total_cycles, cp.bounding_resource
        );
        for share in &cp.shares {
            println!(
                "  {:<12} {:>10} cycles  {:>5.1}%",
                share.resource,
                share.cycles,
                share.fraction * 100.0
            );
        }
    }
    if let Some(out) = args.get("out") {
        let json = horus::sim::chrome_trace_json(&trace);
        std::fs::write(out, json.as_bytes()).map_err(|e| format!("{out}: {e}"))?;
        println!(
            "\nwrote Chrome trace ({} events) to {out} — open in Perfetto",
            trace.len()
        );
    }
    Ok(())
}

const USAGE: &str =
    "usage: horus-cli <config|drain|recover|attack|sweep|crash-sweep|serve|fleet-coordinator|fleet-worker|serve-metrics|insight|trace> [options]
  config                          print the Table I configuration as JSON
  drain   --scheme S [--llc-mb N] [--stride B] [--json]
  recover --scheme S [--llc-mb N] [--write-through] [--json]
  attack  --kind K [--scheme S]   K: data address mac splice truncate replay
  sweep   --llc 8,16,32 [--jobs N] [--cache-dir DIR] [--no-cache] [--progress] [--json]
          [--fleet HOST:PORT]     run the points on a fleet coordinator instead of
          the local pool; output stays byte-identical to the local run
  crash-sweep [--quick] [--points N] [--model torn|stale|garbled] [--jobs N]
          [--out FILE] [--json]   interrupt each drain at sampled cycles, recover,
          classify; exits nonzero on any Horus silent corruption
  serve   [--addr 127.0.0.1:9900] [--tenant-config FILE] [--jobs N] [--cache-dir DIR]
          [--no-cache] [--fleet HOST:PORT]   multi-tenant experiment API daemon:
          POST /v1/jobs with admission control, dedup by content key, /metrics
          on the same listener; POST /v1/shutdown drains and exits
  fleet-coordinator [--addr 127.0.0.1:9470] [--lease-secs S] [--cache-dir DIR]
          [--no-cache] [--for-plans N] [--resume] [--stall-multiple X]   serve the
          fleet job queue and authoritative result cache; merge is plan-ordered and
          exactly-once; jobs leased but unpushed past X leases log a stall warning
  fleet-worker --connect HOST:PORT [--jobs N] [--name NAME]   lease job batches
          and execute them on the local harness pool until the fleet drains
  fleet-trace [--connect HOST:PORT] [--out FILE]   pull the coordinator's per-job
          lifecycle spans as Chrome-trace JSON (Perfetto-loadable)
  serve-metrics [--addr 127.0.0.1:9464] [--for-seconds S]   standalone Prometheus
          scrape endpoint exposing this process's host profile
  insight [--obs FILE] [--spans FILE] [--logs FILE] [--out FILE] [--top N] [--json]
          join a run's obs summary, span timeline, and structured logs by trace id:
          stage breakdowns, slowest requests, shed accounting, anomalies
  trace   <scheme> [--llc-mb N] [--stride B] [--out FILE]   probed drain: utilization,
          critical path, optional Chrome-trace JSON (Perfetto-loadable)
  trace   --file <path> [--domain epd|adr|bbb:<lines>]      workload replay
sweep/crash-sweep/fleet-coordinator telemetry: [--metrics-addr ADDR] [--dashboard]
          [--obs-out FILE] [--span-out FILE]
global logging: [--log-level debug|info|warn|error] [--log-json]
schemes: ns base-lu base-eu horus(-slm) horus-dlm";

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match Args::parse(
        &argv,
        &[
            "json",
            "write-through",
            "no-cache",
            "progress",
            "quick",
            "dashboard",
            "resume",
            "log-json",
        ],
    ) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = apply_log_flags(&args) {
        eprintln!("error: {e}\n{USAGE}");
        return ExitCode::FAILURE;
    }
    let cmd = args
        .positional
        .first()
        .map(String::as_str)
        .unwrap_or("help");
    let result = match cmd {
        "config" => cmd_config(),
        "drain" => cmd_drain(&args),
        "recover" => cmd_recover(&args),
        "attack" => cmd_attack(&args),
        "sweep" => cmd_sweep(&args),
        "crash-sweep" => match cmd_crash_sweep(&args) {
            Ok(code) => return code,
            Err(e) => Err(e),
        },
        "serve" => cmd_serve(&args),
        "fleet-coordinator" => cmd_fleet_coordinator(&args),
        "fleet-worker" => cmd_fleet_worker(&args),
        "fleet-trace" => cmd_fleet_trace(&args),
        "serve-metrics" => cmd_serve_metrics(&args),
        "insight" => cmd_insight(&args),
        "trace" => cmd_trace(&args),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command '{other}'")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}
