#!/bin/sh
# Offline cargo wrapper for containers that cannot reach the registry.
#
# Patches the workspace's external dependencies (serde, serde_json, rand,
# proptest, criterion) to the functional stub crates in `.stubs/` and runs
# cargo with `--offline`. Run it from the repository root — the patch
# paths are resolved relative to the current directory:
#
#     scripts/offline-build.sh build --release --workspace
#     scripts/offline-build.sh test -q --workspace
#
# CI has network access and never uses this wrapper, so it builds against
# the real crates; the stubs mirror their observable behavior closely
# enough for the tier-1 suite (see .stubs/*/src/lib.rs headers for the
# documented divergences — notably the StdRng stream).
exec cargo "$@" --offline \
  --config 'patch.crates-io.serde.path=".stubs/serde"' \
  --config 'patch.crates-io.serde_json.path=".stubs/serde_json"' \
  --config 'patch.crates-io.rand.path=".stubs/rand"' \
  --config 'patch.crates-io.proptest.path=".stubs/proptest"' \
  --config 'patch.crates-io.criterion.path=".stubs/criterion"'
