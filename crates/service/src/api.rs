//! Wire types for the `/v1` experiment API.
//!
//! Everything crosses the wire as JSON. A submission carries either
//! one [`JobSpec`] (`{"spec": {...}}`) or a whole plan
//! (`{"specs": [...]}`); the response carries the service-assigned job
//! id plus the plan's content key, and says whether the submission was
//! deduplicated onto an already-known plan.

use horus_harness::JobSpec;
use serde::{Deserialize, Serialize};

/// The request header that names the submitting tenant.
pub const TENANT_HEADER: &str = "x-horus-tenant";

/// The response header carrying the correlation trace id the service
/// minted (or reused, for deduplicated submissions) at admission.
pub const TRACE_HEADER: &str = "x-horus-trace";

/// Body of `POST /v1/jobs`.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SubmitRequest {
    /// A single spec (shorthand for a one-spec plan).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub spec: Option<JobSpec>,
    /// A whole plan, executed as one unit and memoized per spec.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub specs: Option<Vec<JobSpec>>,
}

impl SubmitRequest {
    /// A whole-plan submission.
    #[must_use]
    pub fn plan(specs: Vec<JobSpec>) -> Self {
        SubmitRequest {
            spec: None,
            specs: Some(specs),
        }
    }

    /// A single-spec submission.
    #[must_use]
    pub fn single(spec: JobSpec) -> Self {
        SubmitRequest {
            spec: Some(spec),
            specs: None,
        }
    }

    /// Flattens both forms into the spec list to execute.
    #[must_use]
    pub fn into_specs(self) -> Vec<JobSpec> {
        let mut specs = self.specs.unwrap_or_default();
        if let Some(spec) = self.spec {
            specs.push(spec);
        }
        specs
    }
}

/// Body of a successful `POST /v1/jobs` (`202 Accepted`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SubmitResponse {
    /// The service-assigned job id, usable with `GET /v1/jobs/{id}`.
    pub job: u64,
    /// The plan's content key (FNV-1a over its specs' content keys).
    pub key: String,
    /// The tenant whose budget paid for the submission.
    pub tenant: String,
    /// True when an identical plan was already queued, executing, or
    /// committed: this id aliases it and no new execution happens.
    pub deduped: bool,
    /// Correlation trace id for this submission — minted at admission,
    /// or the original plan's id when `deduped` (an alias never
    /// executes, so a fresh id would join to nothing). Also returned in
    /// the [`TRACE_HEADER`] response header. Absent from the wire when
    /// the service predates correlation, so old clients and recorded
    /// fixtures keep parsing.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub trace: Option<String>,
}

/// Millisecond stage stamps on the service clock, from the span book.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StageStamps {
    /// Admitted and enqueued.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub queued: Option<f64>,
    /// Picked up by a runner.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub leased: Option<f64>,
    /// Dispatched to the harness pool.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub executing: Option<f64>,
    /// The pool's report arrived.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub pushed: Option<f64>,
    /// Outcomes committed and servable.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub committed: Option<f64>,
}

/// Body of `GET /v1/jobs/{id}` (also of a `202` result probe).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobStatus {
    /// The id that was asked about.
    pub job: u64,
    /// The executing plan's id (differs from `job` for deduplicated
    /// submissions).
    pub canonical: u64,
    /// Submitting tenant.
    pub tenant: String,
    /// Plan content key.
    pub key: String,
    /// `queued`, `executing`, or `committed`.
    pub state: String,
    /// Jobs finished so far.
    pub done: usize,
    /// Jobs in the plan.
    pub total: usize,
    /// Lifecycle stamps, when the service is collecting spans.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub stages: Option<StageStamps>,
}

/// Body of every non-2xx API answer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ErrorBody {
    /// Human-readable reason.
    pub error: String,
}

impl ErrorBody {
    /// Renders the error as its JSON wire form.
    #[must_use]
    pub fn json(message: &str) -> String {
        serde_json::to_string(&ErrorBody {
            error: message.to_string(),
        })
        .unwrap_or_else(|_| format!("{{\"error\":{message:?}}}"))
    }
}

/// The plan-level content key: FNV-1a (the same construction
/// `JobSpec::key` uses) folded over every spec's content key, rendered
/// as 16 hex digits. Identical plans — same specs, same order — agree
/// on it across processes and hosts, which is what cross-tenant dedup
/// keys on.
#[must_use]
pub fn plan_key(specs: &[JobSpec]) -> String {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for spec in specs {
        for byte in spec.key().as_bytes() {
            hash ^= u64::from(*byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        // Separator so plan boundaries matter.
        hash ^= u64::from(b'/');
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{hash:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plans;

    #[test]
    fn submit_request_flattens_both_forms() {
        let plan = plans::full_plan();
        assert_eq!(SubmitRequest::plan(plan.clone()).into_specs(), plan);
        let single = plans::quick_plan(0).remove(0);
        assert_eq!(
            SubmitRequest::single(single.clone()).into_specs(),
            vec![single]
        );
        assert!(SubmitRequest::default().into_specs().is_empty());
    }

    #[test]
    fn plan_key_is_stable_and_order_sensitive() {
        let plan = plans::full_plan();
        assert_eq!(plan_key(&plan), plan_key(&plan));
        let mut reversed = plan.clone();
        reversed.reverse();
        assert_ne!(plan_key(&plan), plan_key(&reversed));
        assert_ne!(plan_key(&plan), plan_key(&plan[..4]));
        assert_eq!(plan_key(&plan).len(), 16);
    }

    #[test]
    fn wire_types_round_trip() {
        let req = SubmitRequest::plan(plans::quick_plan(1));
        let json = serde_json::to_string(&req).expect("serialize");
        let back: SubmitRequest = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back.into_specs(), plans::quick_plan(1));

        let resp = SubmitResponse {
            job: 7,
            key: "abc".to_string(),
            tenant: "team-a".to_string(),
            deduped: true,
            trace: Some("9f8a6c2d01b4e37f".to_string()),
        };
        let json = serde_json::to_string(&resp).expect("ser");
        assert!(json.contains("\"trace\":\"9f8a6c2d01b4e37f\""));
        let back: SubmitResponse = serde_json::from_str(&json).expect("de");
        assert_eq!(back, resp);

        // An untraced response omits the key entirely, and a pre-trace
        // response body still parses (the PR-7 strictly-optional rule).
        let untraced = SubmitResponse {
            trace: None,
            ..resp.clone()
        };
        let json = serde_json::to_string(&untraced).expect("ser");
        assert!(!json.contains("\"trace\""), "{json}");
        let old: SubmitResponse = serde_json::from_str(
            "{\"job\":7,\"key\":\"abc\",\"tenant\":\"team-a\",\"deduped\":true}",
        )
        .expect("pre-trace body parses");
        assert_eq!(old, untraced);
    }
}
