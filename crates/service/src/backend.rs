//! A [`SweepBackend`] that executes plans through a running
//! `horus-cli serve` instance.
//!
//! This closes the loop between the batch tools and the daemon: any
//! harness consumer (the `repro-*` binaries, `horus-cli sweep`) can
//! point `--service HOST:PORT` at a shared service and its plans ride
//! the daemon's admission control, dedup, and result cache — identical
//! submissions from different people execute once. The determinism
//! contract of [`SweepBackend`] holds because the service serializes
//! the same [`horus_harness::JobOutcome`] list a local run produces
//! (modulo the `cached` provenance flag, which the backend clears:
//! whether the daemon executed or remembered is not the caller's
//! business).

use crate::api::{self, SubmitRequest, SubmitResponse, TENANT_HEADER};
use horus_harness::{JobOutcome, JobSpec, SweepBackend};
use horus_obs::http::{http_get, http_post};
use horus_obs::log;
use std::net::{SocketAddr, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Executes sweeps by submitting them to a `horus-service` daemon and
/// polling for the committed result.
#[derive(Debug, Clone)]
pub struct ServiceBackend {
    addr: String,
    tenant: Option<String>,
    timeout: Duration,
}

impl ServiceBackend {
    /// A backend targeting the service at `addr` (`host:port`).
    #[must_use]
    pub fn new(addr: impl Into<String>) -> ServiceBackend {
        ServiceBackend {
            addr: addr.into(),
            tenant: None,
            timeout: Duration::from_secs(600),
        }
    }

    /// Submits under this tenant name (sent as the `X-Horus-Tenant`
    /// header) instead of the service's fallback tenant.
    #[must_use]
    pub fn with_tenant(mut self, tenant: impl Into<String>) -> ServiceBackend {
        self.tenant = Some(tenant.into());
        self
    }

    /// Overrides how long [`SweepBackend::run_specs`] waits for the
    /// plan to commit.
    #[must_use]
    pub fn with_timeout(mut self, timeout: Duration) -> ServiceBackend {
        self.timeout = timeout;
        self
    }

    fn resolve(&self) -> Result<SocketAddr, String> {
        self.addr
            .to_socket_addrs()
            .map_err(|e| format!("cannot resolve {}: {e}", self.addr))?
            .next()
            .ok_or_else(|| format!("{} resolves to no address", self.addr))
    }
}

impl SweepBackend for ServiceBackend {
    fn run_specs(&self, specs: &[JobSpec]) -> Result<Vec<JobOutcome>, String> {
        self.run_specs_traced(specs, None)
    }

    fn run_specs_traced(
        &self,
        specs: &[JobSpec],
        trace: Option<&str>,
    ) -> Result<Vec<JobOutcome>, String> {
        let addr = self.resolve()?;
        let body = serde_json::to_string(&SubmitRequest::plan(specs.to_vec()))
            .map_err(|e| format!("serialize plan: {e}"))?;
        let headers: Vec<(&str, &str)> = self
            .tenant
            .as_deref()
            .map(|t| (TENANT_HEADER, t))
            .into_iter()
            .collect();
        let (status, resp) = http_post(addr, "/v1/jobs", &headers, &body)
            .map_err(|e| format!("submit to {}: {e}", self.addr))?;
        if status.contains("429") {
            return Err(format!("service shed the plan: {resp}"));
        }
        if !status.contains("202") {
            return Err(format!("service answered {status}: {resp}"));
        }
        let accepted: SubmitResponse =
            serde_json::from_str(&resp).map_err(|e| format!("bad submit response: {e}"))?;
        // The service mints (or reuses) its own trace at admission; one
        // log line ties the caller's sweep trace to it so the offline
        // analyzer can join batch-side and service-side signals.
        {
            let job = accepted.job.to_string();
            let mut fields: Vec<(&str, &str)> = vec![("job", &job), ("key", &accepted.key)];
            if let Some(t) = trace.filter(|t| !t.is_empty()) {
                fields.push(("trace_id", t));
            }
            if let Some(service_trace) = accepted.trace.as_deref() {
                fields.push(("service_trace_id", service_trace));
            }
            log::info("service-backend", "plan accepted by service", &fields);
        }

        let deadline = Instant::now() + self.timeout;
        let path = format!("/v1/jobs/{}/result", accepted.job);
        loop {
            let (status, body) =
                http_get(addr, &path).map_err(|e| format!("poll {}: {e}", self.addr))?;
            if status.contains("200") {
                let mut outcomes: Vec<JobOutcome> =
                    serde_json::from_str(&body).map_err(|e| format!("bad result body: {e}"))?;
                if outcomes.len() != specs.len() {
                    return Err(format!(
                        "service returned {} outcome(s) for {} spec(s)",
                        outcomes.len(),
                        specs.len()
                    ));
                }
                for outcome in &mut outcomes {
                    if let JobOutcome::Completed { cached, .. } = outcome {
                        *cached = false;
                    }
                }
                return Ok(outcomes);
            }
            if !status.contains("202") {
                return Err(format!("result poll answered {status}: {body}"));
            }
            if Instant::now() >= deadline {
                return Err(format!(
                    "plan {} not committed within {:?}",
                    api::plan_key(specs),
                    self.timeout
                ));
            }
            std::thread::sleep(Duration::from_millis(50));
        }
    }

    fn describe(&self) -> String {
        match &self.tenant {
            Some(tenant) => format!("service at {} (tenant {tenant})", self.addr),
            None => format!("service at {}", self.addr),
        }
    }
}
