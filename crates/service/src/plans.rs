//! The canonical plan catalog shared by the load generator, the CI
//! soak lane, and the e2e tests.
//!
//! Everything here is a pure function of its index, so every client
//! thread, the server, and the offline verification run all agree on
//! exactly which specs a "quick plan 3" contains — that agreement is
//! what lets the soak lane assert byte-identical results between the
//! service under contention and a single-process run.

use horus_core::{DrainScheme, SystemConfig};
use horus_harness::JobSpec;
use horus_workload::FillPattern;

/// Number of distinct quick plans in the catalog. Indexes wrap, so any
/// client count reuses the same plans — which is the point: reuse is
/// what exercises dedup and the result cache under contention.
pub const QUICK_PLANS: usize = 10;

/// The paper's worst-case fill, the same one the tier-1 sweeps use.
const STRIDED: FillPattern = FillPattern::StridedSparse { min_stride: 16384 };

/// The system configuration every catalog plan runs against.
#[must_use]
pub fn base_config() -> SystemConfig {
    SystemConfig::small_test()
}

/// Quick plan `i` (wrapping): one drain spec, cycling through the five
/// schemes and two fill patterns.
#[must_use]
pub fn quick_plan(i: usize) -> Vec<JobSpec> {
    let cfg = base_config();
    let schemes = DrainScheme::ALL;
    let scheme = schemes[i % schemes.len()];
    let pattern = if (i / schemes.len()) % 2 == 0 {
        STRIDED
    } else {
        FillPattern::UniformRandom { seed: 0xC0FFEE }
    };
    vec![JobSpec::drain(&cfg, scheme, pattern)]
}

/// The full (bulk-class) plan: all five schemes under the worst-case
/// strided fill — the same sweep `horus-cli sweep` runs by default.
#[must_use]
pub fn full_plan() -> Vec<JobSpec> {
    let cfg = base_config();
    DrainScheme::ALL
        .iter()
        .map(|scheme| JobSpec::drain(&cfg, *scheme, STRIDED))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_is_deterministic_and_distinct() {
        for i in 0..QUICK_PLANS {
            assert_eq!(quick_plan(i), quick_plan(i), "plan {i} must be stable");
            assert_eq!(quick_plan(i).len(), 1);
        }
        let keys: std::collections::BTreeSet<String> =
            (0..QUICK_PLANS).map(|i| quick_plan(i)[0].key()).collect();
        assert_eq!(keys.len(), QUICK_PLANS, "quick plans must be distinct");
        assert_eq!(full_plan().len(), DrainScheme::ALL.len());
        assert_eq!(full_plan(), full_plan());
    }
}
