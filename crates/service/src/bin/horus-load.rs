//! `horus-load` — storm a running `horus-cli serve` instance and prove
//! things about what came back.
//!
//! ```text
//! horus-load --addr 127.0.0.1:9900 --clients 12 --requests 8 \
//!     --tenants team-a,team-b --weights 2,1 --quick-pct 80 \
//!     --tenant-config tenants.json --expect-exact-shed \
//!     --verify-local --report load-report.json
//! ```
//!
//! Exits 0 only when every request got a protocol-conformant answer,
//! every admitted plan served a result, and every requested assertion
//! (byte-identical local verification, exact shed accounting) held.

use horus_service::load::{run_load, LoadOptions};
use horus_service::ServiceConfig;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "\
horus-load: concurrent load generator for the horus-service API

USAGE:
    horus-load --addr HOST:PORT [OPTIONS]

OPTIONS:
    --addr HOST:PORT        service to storm (required)
    --clients N             concurrent client threads [default: 4]
    --requests N            submissions per client [default: 4]
    --tenants A,B,...       tenant names to spread clients across
                            [default: anonymous]
    --weights 2,1,...       relative client share per tenant
    --quick-pct N           percent of submissions from the quick-plan
                            catalog, rest full sweeps [default: 100]
    --tenant-config FILE    service tenant config, for exact expected
                            shed counts in the report
    --expect-exact-shed     fail unless each fixed-budget tenant shed
                            exactly submitted - burst
    --verify-local          re-run every distinct plan locally and
                            require byte-identical results
    --verify-jobs N         worker threads for the verification harness
    --verify-cache-dir DIR  result cache for the verification harness
    --wait-secs N           per-plan commit deadline [default: 120]
    --report FILE           write the JSON report here
    -h, --help              print this help
";

fn fail(msg: &str) -> ExitCode {
    eprintln!("horus-load: {msg}");
    eprintln!("{USAGE}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut opts = LoadOptions::default();
    let mut addr: Option<SocketAddr> = None;
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "--addr" => match value("--addr").map(|v| v.parse()) {
                Ok(Ok(a)) => addr = Some(a),
                Ok(Err(e)) => return fail(&format!("bad --addr: {e}")),
                Err(e) => return fail(&e),
            },
            "--clients" => match value("--clients").map(|v| v.parse()) {
                Ok(Ok(n)) => opts.clients = n,
                _ => return fail("bad --clients"),
            },
            "--requests" => match value("--requests").map(|v| v.parse()) {
                Ok(Ok(n)) => opts.requests = n,
                _ => return fail("bad --requests"),
            },
            "--tenants" => match value("--tenants") {
                Ok(v) => {
                    opts.tenants = v.split(',').map(|t| t.trim().to_string()).collect();
                }
                Err(e) => return fail(&e),
            },
            "--weights" => match value("--weights") {
                Ok(v) => {
                    let parsed: Result<Vec<usize>, _> =
                        v.split(',').map(|w| w.trim().parse()).collect();
                    match parsed {
                        Ok(w) => opts.weights = w,
                        Err(e) => return fail(&format!("bad --weights: {e}")),
                    }
                }
                Err(e) => return fail(&e),
            },
            "--quick-pct" => match value("--quick-pct").map(|v| v.parse()) {
                Ok(Ok(n)) if n <= 100 => opts.quick_ratio_pct = n,
                _ => return fail("bad --quick-pct (0-100)"),
            },
            "--tenant-config" => match value("--tenant-config") {
                Ok(path) => match ServiceConfig::load(std::path::Path::new(&path)) {
                    Ok(cfg) => opts.tenant_config = Some(cfg),
                    Err(e) => return fail(&format!("{path}: {e}")),
                },
                Err(e) => return fail(&e),
            },
            "--expect-exact-shed" => opts.expect_exact_shed = true,
            "--verify-local" => opts.verify_local = true,
            "--verify-jobs" => match value("--verify-jobs").map(|v| v.parse()) {
                Ok(Ok(n)) => opts.verify_jobs = Some(n),
                _ => return fail("bad --verify-jobs"),
            },
            "--verify-cache-dir" => match value("--verify-cache-dir") {
                Ok(dir) => opts.verify_cache_dir = Some(PathBuf::from(dir)),
                Err(e) => return fail(&e),
            },
            "--wait-secs" => match value("--wait-secs").map(|v| v.parse()) {
                Ok(Ok(n)) => opts.wait_timeout = Duration::from_secs(n),
                _ => return fail("bad --wait-secs"),
            },
            "--report" => match value("--report") {
                Ok(path) => opts.report_out = Some(PathBuf::from(path)),
                Err(e) => return fail(&e),
            },
            "-h" | "--help" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return fail(&format!("unknown argument {other:?}")),
        }
    }
    let Some(addr) = addr else {
        return fail("--addr is required");
    };
    opts.addr = addr;

    match run_load(&opts) {
        Ok(report) => {
            println!(
                "submitted {} admitted {} shed {} deduped {} distinct {} verified {} \
                 traces {} p50 {:.1}ms p99 {:.1}ms",
                report.submitted,
                report.admitted,
                report.shed,
                report.deduped,
                report.distinct_plans,
                report.verified_plans,
                report.traces.len(),
                report.latency.p50_ms,
                report.latency.p99_ms,
            );
            for failure in &report.failures {
                eprintln!("horus-load: FAIL: {failure}");
            }
            if report.ok {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => fail(&e),
    }
}
