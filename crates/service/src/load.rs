//! The `horus-load` generator: concurrent clients against a running
//! service, with built-in verification.
//!
//! N client threads each issue M submissions from the canonical
//! [`crate::plans`] catalog (mixed quick/full, per-tenant skew by
//! weight), recording per-request latency into an obs time histogram
//! and exact percentiles into the JSON report. After the storm, the
//! generator:
//!
//! 1. polls every distinct plan it got admitted until the service
//!    serves its result,
//! 2. optionally re-runs each plan through a *local* [`Harness`] and
//!    asserts the service's result body is byte-identical
//!    (`--verify-local`), and
//! 3. optionally asserts each tenant's shed count is exactly
//!    `submitted - burst` (`--expect-exact-shed`; valid for
//!    fixed-budget tenants, i.e. `refill_per_sec = 0` and no in-flight
//!    cap — the CI soak configuration).
//!
//! Exit is non-zero on any transport error, verification mismatch, or
//! failed shed assertion, which is what makes the CI soak lane a real
//! gate rather than a smoke test.

use crate::api::{SubmitRequest, SubmitResponse, TENANT_HEADER};
use crate::config::ServiceConfig;
use crate::plans;
use horus_harness::{Harness, HarnessOptions, JobOutcome, JobSpec, ProgressMode};
use horus_obs::http::{http_get, http_post};
use horus_obs::names;
use horus_obs::Registry;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// What a load run should do.
#[derive(Debug, Clone)]
pub struct LoadOptions {
    /// Service address.
    pub addr: SocketAddr,
    /// Concurrent client threads.
    pub clients: usize,
    /// Submissions per client.
    pub requests: usize,
    /// Tenant names to spread clients across (cycled by weight).
    pub tenants: Vec<String>,
    /// Relative client weight per tenant (defaults to all-equal;
    /// must match `tenants` in length when non-empty).
    pub weights: Vec<usize>,
    /// Percent (0–100) of submissions drawn from the quick-plan
    /// catalog; the rest submit the full sweep plan.
    pub quick_ratio_pct: u64,
    /// Re-run every distinct plan locally and compare result bytes.
    pub verify_local: bool,
    /// Worker threads for the verification harness.
    pub verify_jobs: Option<usize>,
    /// Result-cache directory for the verification harness (`None` =
    /// uncached, always re-execute).
    pub verify_cache_dir: Option<PathBuf>,
    /// Tenant config to derive exact expected shed counts from.
    pub tenant_config: Option<ServiceConfig>,
    /// Fail unless each fixed-budget tenant shed exactly
    /// `submitted - burst`.
    pub expect_exact_shed: bool,
    /// Where to write the JSON report.
    pub report_out: Option<PathBuf>,
    /// How long to wait for admitted plans to commit.
    pub wait_timeout: Duration,
}

impl Default for LoadOptions {
    fn default() -> Self {
        LoadOptions {
            addr: SocketAddr::from(([127, 0, 0, 1], 0)),
            clients: 4,
            requests: 4,
            tenants: vec!["anonymous".to_string()],
            weights: Vec::new(),
            quick_ratio_pct: 100,
            verify_local: false,
            verify_jobs: None,
            verify_cache_dir: None,
            tenant_config: None,
            expect_exact_shed: false,
            report_out: None,
            wait_timeout: Duration::from_secs(120),
        }
    }
}

/// Per-tenant tallies in the report.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TenantLoad {
    /// Tenant name.
    pub tenant: String,
    /// Submissions sent under this tenant's header.
    pub submitted: u64,
    /// `202 Accepted` answers.
    pub admitted: u64,
    /// `429 Too Many Requests` answers.
    pub shed: u64,
    /// The exact shed count a fixed budget predicts, when derivable.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub expected_shed: Option<u64>,
}

/// Latency percentiles over every submission round-trip, milliseconds.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Requests measured.
    pub count: usize,
    /// Median.
    pub p50_ms: f64,
    /// 90th percentile.
    pub p90_ms: f64,
    /// 99th percentile.
    pub p99_ms: f64,
    /// Worst observed.
    pub max_ms: f64,
}

/// The JSON artifact a load run writes.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LoadReport {
    /// Total submissions across all clients.
    pub submitted: u64,
    /// Total admitted.
    pub admitted: u64,
    /// Total shed.
    pub shed: u64,
    /// Transport or protocol errors.
    pub errors: u64,
    /// Admitted submissions the service flagged as deduplicated.
    pub deduped: u64,
    /// Distinct plans (content keys) admitted.
    pub distinct_plans: usize,
    /// Distinct plans whose results were fetched and, when enabled,
    /// verified byte-identical locally.
    pub verified_plans: usize,
    /// Distinct correlation trace ids the service returned for
    /// admitted submissions (sorted; aliases share their canonical
    /// plan's trace, so this has one entry per executing plan). Empty
    /// against a pre-correlation service, and omitted from the JSON so
    /// old report consumers keep parsing.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub traces: Vec<String>,
    /// Per-tenant accounting.
    pub per_tenant: Vec<TenantLoad>,
    /// Submission latency percentiles.
    pub latency: LatencySummary,
    /// Everything that went wrong, human-readable.
    pub failures: Vec<String>,
    /// True when the run proved what it was asked to prove.
    pub ok: bool,
}

#[derive(Default)]
struct Tally {
    submitted: u64,
    admitted: u64,
    shed: u64,
    errors: u64,
    deduped: u64,
    latencies_ms: Vec<f64>,
    per_tenant: BTreeMap<String, (u64, u64, u64)>,
    /// key → (job id, specs) for one admitted submission per plan.
    plans: BTreeMap<String, (u64, Vec<JobSpec>)>,
    /// Distinct service-minted trace ids across admitted submissions.
    traces: std::collections::BTreeSet<String>,
    failures: Vec<String>,
}

/// The tenant a given client index submits as, honoring weights.
#[must_use]
pub fn tenant_of_client(tenants: &[String], weights: &[usize], client: usize) -> String {
    if tenants.is_empty() {
        return "anonymous".to_string();
    }
    let ring: Vec<&String> = if weights.len() == tenants.len() {
        tenants
            .iter()
            .zip(weights)
            .flat_map(|(t, w)| std::iter::repeat(t).take((*w).max(1)))
            .collect()
    } else {
        tenants.iter().collect()
    };
    ring[client % ring.len()].clone()
}

/// The plan client `client` submits as its `request`-th submission.
/// Pure, so the report's expected counts and the CI lane's local
/// verification agree with what actually went over the wire.
#[must_use]
pub fn plan_for(
    opts_quick_pct: u64,
    client: usize,
    request: usize,
    requests: usize,
) -> Vec<JobSpec> {
    let global = client * requests + request;
    if ((global * 37 + 11) % 100) < opts_quick_pct as usize {
        plans::quick_plan(global % plans::QUICK_PLANS)
    } else {
        plans::full_plan()
    }
}

/// Drives the whole load run. See the module docs for the phases.
///
/// # Errors
/// Returns a message on unrecoverable setup problems (bad options,
/// unwritable report path). Per-request failures do NOT error — they
/// are tallied into the report and flip `ok` to false.
pub fn run_load(opts: &LoadOptions) -> Result<LoadReport, String> {
    if opts.clients == 0 || opts.requests == 0 {
        return Err("need at least one client and one request".to_string());
    }
    if !opts.weights.is_empty() && opts.weights.len() != opts.tenants.len() {
        return Err(format!(
            "{} weights for {} tenants",
            opts.weights.len(),
            opts.tenants.len()
        ));
    }
    let registry = Registry::shared();
    let latency_hist = registry.time_histogram(
        names::SERVICE_CLIENT_REQUEST_SECONDS,
        "Client-observed submission latency.",
        &[],
    );
    let tally = Arc::new(Mutex::new(Tally::default()));

    // Phase 1: the storm.
    let mut handles = Vec::new();
    for client in 0..opts.clients {
        let tenant = tenant_of_client(&opts.tenants, &opts.weights, client);
        let tally = Arc::clone(&tally);
        let hist = latency_hist.clone();
        let addr = opts.addr;
        let requests = opts.requests;
        let quick_pct = opts.quick_ratio_pct;
        handles.push(std::thread::spawn(move || {
            for request in 0..requests {
                let specs = plan_for(quick_pct, client, request, requests);
                let body = match serde_json::to_string(&SubmitRequest::plan(specs.clone())) {
                    Ok(body) => body,
                    Err(e) => {
                        let mut t = tally.lock().expect("tally poisoned");
                        t.errors += 1;
                        t.failures.push(format!("serialize plan: {e}"));
                        continue;
                    }
                };
                let started = Instant::now();
                let answer =
                    http_post(addr, "/v1/jobs", &[(TENANT_HEADER, tenant.as_str())], &body);
                let elapsed = started.elapsed();
                hist.observe_seconds(elapsed.as_secs_f64());
                let mut t = tally.lock().expect("tally poisoned");
                t.submitted += 1;
                t.latencies_ms.push(elapsed.as_secs_f64() * 1e3);
                let entry = t.per_tenant.entry(tenant.clone()).or_default();
                entry.0 += 1;
                match answer {
                    Ok((status, resp_body)) if status.contains("202") => {
                        entry.1 += 1;
                        t.admitted += 1;
                        match serde_json::from_str::<SubmitResponse>(&resp_body) {
                            Ok(resp) => {
                                if resp.deduped {
                                    t.deduped += 1;
                                }
                                if let Some(trace) = &resp.trace {
                                    t.traces.insert(trace.clone());
                                }
                                t.plans
                                    .entry(resp.key.clone())
                                    .or_insert_with(|| (resp.job, specs));
                            }
                            Err(e) => {
                                t.errors += 1;
                                t.failures.push(format!("bad 202 body: {e}"));
                            }
                        }
                    }
                    Ok((status, _)) if status.contains("429") => {
                        entry.2 += 1;
                        t.shed += 1;
                    }
                    Ok((status, resp_body)) => {
                        t.errors += 1;
                        t.failures
                            .push(format!("unexpected answer {status}: {resp_body}"));
                    }
                    Err(e) => {
                        t.errors += 1;
                        t.failures.push(format!("transport: {e}"));
                    }
                }
            }
        }));
    }
    for handle in handles {
        handle
            .join()
            .map_err(|_| "client thread panicked".to_string())?;
    }

    let mut tally = Arc::try_unwrap(tally)
        .map_err(|_| "tally still shared".to_string())?
        .into_inner()
        .expect("tally poisoned");

    // Phase 2: wait out every distinct plan and fetch its result.
    let mut verified = 0usize;
    let verify_harness = opts.verify_local.then(|| {
        Harness::new(HarnessOptions {
            jobs: opts.verify_jobs,
            cache_dir: opts.verify_cache_dir.clone(),
            no_cache: opts.verify_cache_dir.is_none(),
            progress: ProgressMode::Silent,
            ..HarnessOptions::default()
        })
    });
    let plans_snapshot: Vec<(String, u64, Vec<JobSpec>)> = tally
        .plans
        .iter()
        .map(|(k, (id, specs))| (k.clone(), *id, specs.clone()))
        .collect();
    for (key, id, specs) in plans_snapshot {
        match fetch_result(opts.addr, id, opts.wait_timeout) {
            Ok(service_body) => {
                if let Some(harness) = &verify_harness {
                    let local = harness.run(&specs);
                    let local_body = serde_json::to_string(&local.outcomes)
                        .map_err(|e| format!("serialize local outcomes: {e}"))?;
                    if canonical_outcomes(&local_body) == canonical_outcomes(&service_body) {
                        verified += 1;
                    } else {
                        tally.failures.push(format!(
                            "plan {key}: service result differs from local run \
                             ({} vs {} bytes)",
                            service_body.len(),
                            local_body.len()
                        ));
                    }
                } else {
                    verified += 1;
                }
            }
            Err(e) => {
                tally.failures.push(format!("plan {key} (job {id}): {e}"));
            }
        }
    }

    // Phase 3: exact shed accounting against the tenant config.
    let mut per_tenant = Vec::new();
    for (tenant, (submitted, admitted, shed)) in &tally.per_tenant {
        let expected_shed = opts.tenant_config.as_ref().and_then(|cfg| {
            let policy = cfg.tenant(tenant)?;
            // Exact only for fixed budgets with no in-flight cap.
            (policy.burst > 0 && policy.refill_per_sec == 0.0 && policy.max_in_flight == 0)
                .then(|| submitted.saturating_sub(policy.burst))
        });
        if opts.expect_exact_shed {
            match expected_shed {
                Some(expected) if expected != *shed => {
                    tally.failures.push(format!(
                        "tenant {tenant}: shed {shed}, expected exactly {expected} \
                         (submitted {submitted} against a fixed budget)"
                    ));
                }
                None => {
                    tally.failures.push(format!(
                        "tenant {tenant}: --expect-exact-shed needs a fixed-budget \
                         tenant config entry (burst > 0, refill 0, no in-flight cap)"
                    ));
                }
                _ => {}
            }
        }
        per_tenant.push(TenantLoad {
            tenant: tenant.clone(),
            submitted: *submitted,
            admitted: *admitted,
            shed: *shed,
            expected_shed,
        });
    }

    let report = LoadReport {
        submitted: tally.submitted,
        admitted: tally.admitted,
        shed: tally.shed,
        errors: tally.errors,
        deduped: tally.deduped,
        distinct_plans: tally.plans.len(),
        verified_plans: verified,
        traces: tally.traces.into_iter().collect(),
        per_tenant,
        latency: summarize_latency(&mut tally.latencies_ms),
        ok: tally.errors == 0 && tally.failures.is_empty() && verified == tally.plans.len(),
        failures: tally.failures,
    };
    if let Some(path) = &opts.report_out {
        let json = serde_json::to_string(&report).map_err(|e| format!("serialize report: {e}"))?;
        std::fs::write(path, json).map_err(|e| format!("write {}: {e}", path.display()))?;
    }
    Ok(report)
}

/// Re-serializes an outcomes body with every `cached` provenance flag
/// cleared. The flag says where the bytes came from (fresh execution
/// vs the result cache), not what the experiment measured — simulated
/// time included, a drain outcome is a pure function of its spec — so
/// byte-identity comparisons go through this canonical form.
///
/// # Errors
/// Returns a message when `json` is not an outcomes list.
pub fn canonical_outcomes(json: &str) -> Result<String, String> {
    let mut outcomes: Vec<JobOutcome> =
        serde_json::from_str(json).map_err(|e| format!("parse outcomes: {e}"))?;
    for outcome in &mut outcomes {
        if let JobOutcome::Completed { cached, .. } = outcome {
            *cached = false;
        }
    }
    serde_json::to_string(&outcomes).map_err(|e| format!("serialize outcomes: {e}"))
}

fn fetch_result(addr: SocketAddr, id: u64, timeout: Duration) -> Result<String, String> {
    let deadline = Instant::now() + timeout;
    let path = format!("/v1/jobs/{id}/result");
    loop {
        match http_get(addr, &path) {
            Ok((status, body)) if status.contains("200") => return Ok(body),
            Ok((status, _)) if status.contains("202") => {}
            Ok((status, body)) => return Err(format!("result answered {status}: {body}")),
            Err(e) => return Err(format!("result transport: {e}")),
        }
        if Instant::now() >= deadline {
            return Err(format!("result not committed within {timeout:?}"));
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn summarize_latency(samples: &mut [f64]) -> LatencySummary {
    if samples.is_empty() {
        return LatencySummary::default();
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let pick = |q: f64| {
        let idx = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len()) - 1;
        samples[idx]
    };
    LatencySummary {
        count: samples.len(),
        p50_ms: pick(0.50),
        p90_ms: pick(0.90),
        p99_ms: pick(0.99),
        max_ms: samples[samples.len() - 1],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tenant_assignment_honors_weights() {
        let tenants = vec!["a".to_string(), "b".to_string()];
        let assigned: Vec<String> = (0..6)
            .map(|i| tenant_of_client(&tenants, &[2, 1], i))
            .collect();
        assert_eq!(assigned, ["a", "a", "b", "a", "a", "b"]);
        // No weights: plain round-robin.
        assert_eq!(tenant_of_client(&tenants, &[], 3), "b");
        assert_eq!(tenant_of_client(&[], &[], 7), "anonymous");
    }

    #[test]
    fn plan_mix_is_deterministic() {
        for client in 0..4 {
            for request in 0..4 {
                assert_eq!(
                    plan_for(80, client, request, 4),
                    plan_for(80, client, request, 4)
                );
            }
        }
        // All-quick and all-full extremes.
        assert_eq!(plan_for(100, 0, 0, 1).len(), 1);
        assert_eq!(plan_for(0, 0, 0, 1).len(), plans::full_plan().len());
    }

    #[test]
    fn latency_summary_orders_percentiles() {
        let mut samples: Vec<f64> = (1..=100).map(f64::from).collect();
        let summary = summarize_latency(&mut samples);
        assert_eq!(summary.count, 100);
        assert_eq!(summary.p50_ms, 50.0);
        assert_eq!(summary.p90_ms, 90.0);
        assert_eq!(summary.p99_ms, 99.0);
        assert_eq!(summary.max_ms, 100.0);
        assert_eq!(summarize_latency(&mut []), LatencySummary::default());
    }
}
