//! `horus-service`: a multi-tenant experiment API over the simulation
//! harness.
//!
//! The crate turns the batch-oriented [`horus_harness::Harness`] into a
//! persistent daemon: clients `POST` experiment plans to `/v1/jobs`,
//! poll `/v1/jobs/{id}` for stage-by-stage status, and fetch committed
//! results from `/v1/jobs/{id}/result`. In front of the queue sits an
//! admission [`Governor`] — per-tenant token-bucket budgets and
//! in-flight quotas from a JSON config file — that sheds over-budget
//! traffic with `429` plus a bounded `Retry-After`, while a two-class
//! [`PlanQueue`] keeps interactive quick plans ahead of bulk sweeps
//! without ever starving the latter.
//!
//! Identical plans deduplicate by content key ([`plan_key`]) across
//! tenants: the second submitter gets an alias job id and rides the
//! first execution (and, via the harness's on-disk result cache,
//! identical plans dedupe across service restarts too).
//!
//! The HTTP layer is the std-only server from `horus-obs` — the
//! service mounts itself as a [`horus_obs::Router`] in front of the
//! built-in `/metrics`, `/healthz`, `/readyz`, and `/logs` routes, so
//! one listener serves both the API and its own observability.
//!
//! Module map:
//!
//! | module | what lives there |
//! |---|---|
//! | [`config`] | tenant policy file: parsing + validation |
//! | [`governor`] | token buckets, quotas, shed verdicts |
//! | [`queue`] | two-class priority queue with an anti-starvation valve |
//! | [`api`] | wire types and the plan content key |
//! | [`backend`] | a `SweepBackend` that executes plans through a running daemon |
//! | [`service`] | the daemon: routing, runners, dedup, metrics, spans |
//! | [`plans`] | canonical plan catalog shared with the load generator |
//! | [`load`] | the `horus-load` client storm + verification |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod backend;
pub mod config;
pub mod governor;
pub mod load;
pub mod plans;
pub mod queue;
pub mod service;

pub use api::{
    plan_key, ErrorBody, JobStatus, StageStamps, SubmitRequest, SubmitResponse, TENANT_HEADER,
};
pub use backend::ServiceBackend;
pub use config::{ServiceConfig, TenantPolicy};
pub use governor::{Admission, Governor, TenantSnapshot};
pub use load::{canonical_outcomes, run_load, LatencySummary, LoadOptions, LoadReport, TenantLoad};
pub use queue::{Class, PlanQueue};
pub use service::{ExperimentService, JobState};
