//! The experiment service: admission, queueing, execution, results.
//!
//! [`ExperimentService`] is an [`horus_obs::http::Router`] mounted on the
//! shared metrics listener, so one socket serves `/metrics`,
//! `/healthz`, `/readyz`, `/logs`, *and* the `/v1` API:
//!
//! * `POST /v1/jobs` — submit a plan (or single spec). The governor
//!   classifies the tenant from `X-Horus-Tenant`, charges its token
//!   bucket, and either admits (`202` with a job id) or sheds (`429`
//!   with `Retry-After`). Admitted plans dedup by content key: an
//!   identical plan already known to the service gets an alias id and
//!   never executes twice.
//! * `GET /v1/jobs/{id}` — live status (`queued` → `executing` →
//!   `committed`), progress counts, and span stamps.
//! * `GET /v1/jobs/{id}/result` — the committed outcomes as JSON,
//!   byte-identical to what a local `Harness::run` of the same specs
//!   serializes to (that is the soak lane's headline assertion).
//! * `GET /v1/tenants/{t}` — the governor's live per-tenant accounting.
//! * `POST /v1/shutdown` — stop admitting, drain the queue, let
//!   `horus-cli serve` exit cleanly (so `obs-summary.json` gets
//!   written).
//!
//! Execution rides entirely on the existing sweep machinery: plans run
//! through [`Harness::submit`] (and thus the worker pool, the on-disk
//! result cache, and optionally a fleet backend), so the determinism
//! contract — same specs, same outcomes, any concurrency — is
//! inherited, not re-proven.

use crate::api::{self, JobStatus, StageStamps, SubmitRequest, SubmitResponse, TENANT_HEADER};
use crate::config::ServiceConfig;
use crate::governor::{Admission, Governor};
use crate::queue::{Class, PlanQueue};
use horus_harness::{Harness, JobSpec, Submission};
use horus_obs::http::{HttpRequest, HttpResponse, Router};
use horus_obs::names;
use horus_obs::span::{SpanBook, Stage};
use horus_obs::{Registry, TimeHistogram};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Where a plan is in its service lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Admitted and waiting for a runner.
    Queued,
    /// A runner dispatched it to the harness pool.
    Executing,
    /// Outcomes are committed and servable.
    Committed,
}

impl JobState {
    /// The wire spelling used in [`crate::api::JobStatus::state`].
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Executing => "executing",
            JobState::Committed => "committed",
        }
    }
}

#[derive(Debug)]
struct JobRecord {
    tenant: String,
    key: String,
    total: usize,
    /// Correlation trace id minted at admission (aliases reuse the
    /// canonical plan's id — an alias never executes, so a fresh id
    /// would join to nothing downstream).
    trace: String,
    /// When the plan was admitted, for the queue-age gauges. `None`
    /// for aliases, which never occupy the queue.
    queued_at: Option<Instant>,
    /// `Some(canonical)` for deduplicated submissions; every query
    /// follows the alias.
    alias_of: Option<u64>,
    state: JobState,
    /// Present until a runner takes the plan.
    specs: Option<Vec<JobSpec>>,
    /// Present while (and after) the harness executes the plan.
    submission: Option<Arc<Submission>>,
    /// The committed outcomes, pre-serialized.
    outcomes_json: Option<String>,
}

#[derive(Debug, Default)]
struct ServiceState {
    jobs: BTreeMap<u64, JobRecord>,
    by_key: HashMap<String, u64>,
    queue: PlanQueue,
    next_id: u64,
    executing: usize,
}

/// Pre-registered `horus_service_*` handles (see [`names`]).
struct ServiceMetrics {
    registry: Arc<Registry>,
    admission: TimeHistogram,
}

impl ServiceMetrics {
    const SUBMITTED_HELP: &'static str =
        "Plan submissions received by the service API, before admission control.";
    const ADMITTED_HELP: &'static str = "Submissions the governor admitted.";
    const SHED_HELP: &'static str = "Submissions shed with 429 Too Many Requests.";
    const IN_FLIGHT_HELP: &'static str = "Admitted plans currently queued or executing.";

    fn new(registry: Arc<Registry>, tenants: &[String]) -> ServiceMetrics {
        // Pre-register every family at zero so scrapes and the
        // obs-summary carry them even for tenants that never submit.
        for tenant in tenants {
            let labels = &[("tenant", tenant.as_str())];
            registry.counter(names::SERVICE_SUBMITTED, Self::SUBMITTED_HELP, labels);
            registry.counter(names::SERVICE_ADMITTED, Self::ADMITTED_HELP, labels);
            registry.counter(names::SERVICE_SHED, Self::SHED_HELP, labels);
            registry.gauge(names::SERVICE_IN_FLIGHT, Self::IN_FLIGHT_HELP, labels);
        }
        registry.gauge(
            names::SERVICE_QUEUE_DEPTH,
            "Admitted plans waiting in the service priority queue.",
            &[],
        );
        registry.counter(
            names::SERVICE_PLANS_COMPLETED,
            "Service plans executed to completion.",
            &[],
        );
        let admission = registry.time_histogram(
            names::SERVICE_ADMISSION_SECONDS,
            "Time from request arrival to admission verdict.",
            &[],
        );
        let m = ServiceMetrics {
            registry,
            admission,
        };
        // Freshened on every routed request, so scrapes always see the
        // current backlog shape even between submissions.
        m.queue_age(0.0);
        m.oldest_in_flight(0.0);
        m
    }

    const QUEUE_AGE_HELP: &'static str =
        "Age of the oldest plan still waiting in the service queue (0 when empty).";
    const OLDEST_IN_FLIGHT_HELP: &'static str =
        "Age of the oldest admitted plan not yet committed (0 when idle).";

    fn queue_age(&self, seconds: f64) {
        self.registry
            .float_gauge(names::SERVICE_QUEUE_AGE_SECONDS, Self::QUEUE_AGE_HELP, &[])
            .set(seconds);
    }

    fn oldest_in_flight(&self, seconds: f64) {
        self.registry
            .float_gauge(
                names::SERVICE_OLDEST_IN_FLIGHT_SECONDS,
                Self::OLDEST_IN_FLIGHT_HELP,
                &[],
            )
            .set(seconds);
    }

    fn submitted(&self, tenant: &str) {
        self.registry
            .counter(
                names::SERVICE_SUBMITTED,
                Self::SUBMITTED_HELP,
                &[("tenant", tenant)],
            )
            .inc();
    }

    fn admitted(&self, tenant: &str) {
        self.registry
            .counter(
                names::SERVICE_ADMITTED,
                Self::ADMITTED_HELP,
                &[("tenant", tenant)],
            )
            .inc();
    }

    fn shed(&self, tenant: &str) {
        self.registry
            .counter(names::SERVICE_SHED, Self::SHED_HELP, &[("tenant", tenant)])
            .inc();
    }

    fn in_flight(&self, tenant: &str, value: usize) {
        self.registry
            .gauge(
                names::SERVICE_IN_FLIGHT,
                Self::IN_FLIGHT_HELP,
                &[("tenant", tenant)],
            )
            .set(value as i64);
    }

    fn queue_depth(&self, depth: usize) {
        self.registry
            .gauge(
                names::SERVICE_QUEUE_DEPTH,
                "Admitted plans waiting in the service priority queue.",
                &[],
            )
            .set(depth as i64);
    }

    fn plan_completed(&self) {
        self.registry
            .counter(
                names::SERVICE_PLANS_COMPLETED,
                "Service plans executed to completion.",
                &[],
            )
            .inc();
    }
}

/// The running service: governor + queue + runner threads over a
/// shared [`Harness`]. Construct with [`ExperimentService::start`],
/// mount as a router, and drive it over HTTP.
pub struct ExperimentService {
    harness: Arc<Harness>,
    governor: Mutex<Governor>,
    state: Mutex<ServiceState>,
    /// Wakes runner threads when work (or shutdown) arrives.
    wake: Condvar,
    /// Wakes [`ExperimentService::wait_until_drained`] on commits.
    idle: Condvar,
    clock: Instant,
    metrics: Option<ServiceMetrics>,
    spans: Option<Arc<SpanBook>>,
    quick_threshold: usize,
    draining: AtomicBool,
    runners: Mutex<Vec<JoinHandle<()>>>,
}

impl ExperimentService {
    /// Starts the service: builds the governor from `config`, spawns
    /// the runner threads, and returns the shared handle to mount as a
    /// router (e.g. via `ObsSession::install_router`).
    #[must_use]
    pub fn start(
        config: &ServiceConfig,
        harness: Arc<Harness>,
        registry: Option<Arc<Registry>>,
        spans: Option<Arc<SpanBook>>,
    ) -> Arc<ExperimentService> {
        let metrics = registry.map(|r| ServiceMetrics::new(r, &config.tenant_names()));
        let service = Arc::new(ExperimentService {
            harness,
            governor: Mutex::new(Governor::new(config)),
            state: Mutex::new(ServiceState::default()),
            wake: Condvar::new(),
            idle: Condvar::new(),
            clock: Instant::now(),
            metrics,
            spans,
            quick_threshold: config.effective_quick_threshold(),
            draining: AtomicBool::new(false),
            runners: Mutex::new(Vec::new()),
        });
        let mut handles = Vec::new();
        for idx in 0..config.effective_runners() {
            let svc = Arc::clone(&service);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("horus-service-runner-{idx}"))
                    .spawn(move || svc.runner_loop(idx))
                    .expect("spawn service runner"),
            );
        }
        *service.runners.lock().expect("runners poisoned") = handles;
        service
    }

    /// Seconds on the service's monotonic clock — the time base the
    /// governor's buckets refill on.
    #[must_use]
    pub fn now_secs(&self) -> f64 {
        self.clock.elapsed().as_secs_f64()
    }

    /// True once `POST /v1/shutdown` was received.
    #[must_use]
    pub fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Initiates drain: no more admissions; queued work still runs.
    pub fn begin_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
        // Runners waiting for work must re-check the flag; the waiter
        // in wait_until_drained must re-check the queue.
        let _state = self.state.lock().expect("service state poisoned");
        self.wake.notify_all();
        self.idle.notify_all();
    }

    /// Blocks until drain was requested *and* every admitted plan has
    /// committed — the serve verb's exit condition.
    pub fn wait_until_drained(&self) {
        let mut state = self.state.lock().expect("service state poisoned");
        while !(self.draining() && state.queue.is_empty() && state.executing == 0) {
            state = self.idle.wait(state).expect("service state poisoned");
        }
    }

    /// Joins the runner threads (call after
    /// [`ExperimentService::wait_until_drained`]).
    pub fn join(&self) {
        self.begin_drain();
        let handles = std::mem::take(&mut *self.runners.lock().expect("runners poisoned"));
        for handle in handles {
            let _ = handle.join();
        }
    }

    fn stamp(&self, id: u64, key: &str, stage: Stage, worker: Option<&str>, trace: &str) {
        if let Some(book) = &self.spans {
            book.stamp_traced(id, 0, key, stage, book.now_ms(), worker, Some(trace));
        }
    }

    /// Recomputes the queue-age and oldest-in-flight gauges from the
    /// current job table. Called on every routed request, so a plain
    /// `/metrics` scrape is enough to keep them fresh.
    fn refresh_age_gauges(&self) {
        let Some(m) = &self.metrics else { return };
        let state = self.state.lock().expect("service state poisoned");
        let mut oldest_queued: Option<Instant> = None;
        let mut oldest_open: Option<Instant> = None;
        for record in state.jobs.values() {
            let (Some(at), None) = (record.queued_at, record.alias_of) else {
                continue;
            };
            if record.state == JobState::Queued {
                oldest_queued = Some(oldest_queued.map_or(at, |o| o.min(at)));
            }
            if record.state != JobState::Committed {
                oldest_open = Some(oldest_open.map_or(at, |o| o.min(at)));
            }
        }
        drop(state);
        let age = |at: Option<Instant>| at.map_or(0.0, |at| at.elapsed().as_secs_f64());
        m.queue_age(age(oldest_queued));
        m.oldest_in_flight(age(oldest_open));
    }

    // ---- request handlers -------------------------------------------------

    fn submit(&self, req: &HttpRequest) -> HttpResponse {
        let arrived = Instant::now();
        if self.draining() {
            return HttpResponse::json(
                "503 Service Unavailable",
                api::ErrorBody::json("service is draining"),
            );
        }
        let Some(body) = req.body_str() else {
            return HttpResponse::json(
                "400 Bad Request",
                api::ErrorBody::json("body is not UTF-8"),
            );
        };
        let parsed: SubmitRequest = match serde_json::from_str(body) {
            Ok(parsed) => parsed,
            Err(e) => {
                return HttpResponse::json(
                    "400 Bad Request",
                    api::ErrorBody::json(&format!("malformed submission: {e}")),
                )
            }
        };
        let specs = parsed.into_specs();
        if specs.is_empty() {
            return HttpResponse::json(
                "400 Bad Request",
                api::ErrorBody::json("submission carries no specs"),
            );
        }

        // Admission: classify, charge the bucket, meter the verdict.
        let tenant;
        let verdict;
        let in_flight_now;
        {
            let mut governor = self.governor.lock().expect("governor poisoned");
            tenant = governor.classify(req.header(TENANT_HEADER));
            verdict = governor.admit(&tenant, self.now_secs());
            in_flight_now = governor.snapshot(&tenant).map_or(0, |s| s.in_flight);
        }
        if let Some(m) = &self.metrics {
            m.submitted(&tenant);
            m.admission.observe_seconds(arrived.elapsed().as_secs_f64());
        }
        if let Admission::Shed {
            retry_after_secs, ..
        } = verdict
        {
            if let Some(m) = &self.metrics {
                m.shed(&tenant);
            }
            let retry = retry_after_secs.to_string();
            horus_obs::log::warn(
                "service",
                "submission shed",
                &[("tenant", tenant.as_str()), ("retry_after", retry.as_str())],
            );
            return HttpResponse::json(
                "429 Too Many Requests",
                api::ErrorBody::json(&format!("tenant {tenant} over quota")),
            )
            .with_header("Retry-After", &retry_after_secs.to_string());
        }
        if let Some(m) = &self.metrics {
            m.admitted(&tenant);
            m.in_flight(&tenant, in_flight_now);
        }

        // Enqueue or alias.
        let key = api::plan_key(&specs);
        let total = specs.len();
        let class = if total <= self.quick_threshold {
            Class::Interactive
        } else {
            Class::Bulk
        };
        let (id, deduped, trace) = {
            let mut state = self.state.lock().expect("service state poisoned");
            let id = state.next_id;
            state.next_id += 1;
            match state.by_key.get(&key).copied() {
                Some(canonical) => {
                    // Reuse the canonical plan's trace: the alias never
                    // executes, so a fresh id would appear in no span,
                    // profile, or log — an orphan by construction.
                    let trace = state
                        .jobs
                        .get(&canonical)
                        .map_or_else(horus_obs::span::mint_trace_id, |r| r.trace.clone());
                    state.jobs.insert(
                        id,
                        JobRecord {
                            tenant: tenant.clone(),
                            key: key.clone(),
                            total,
                            trace: trace.clone(),
                            queued_at: None,
                            alias_of: Some(canonical),
                            state: JobState::Queued,
                            specs: None,
                            submission: None,
                            outcomes_json: None,
                        },
                    );
                    (id, true, trace)
                }
                None => {
                    let trace = horus_obs::span::mint_trace_id();
                    state.by_key.insert(key.clone(), id);
                    state.jobs.insert(
                        id,
                        JobRecord {
                            tenant: tenant.clone(),
                            key: key.clone(),
                            total,
                            trace: trace.clone(),
                            queued_at: Some(Instant::now()),
                            alias_of: None,
                            state: JobState::Queued,
                            specs: Some(specs),
                            submission: None,
                            outcomes_json: None,
                        },
                    );
                    state.queue.push(id, class);
                    if let Some(m) = &self.metrics {
                        m.queue_depth(state.queue.len());
                    }
                    (id, false, trace)
                }
            }
        };
        if deduped {
            // An alias never occupies a runner slot: return its
            // in-flight unit immediately (the token stays spent).
            let mut governor = self.governor.lock().expect("governor poisoned");
            governor.release(&tenant);
            if let Some(m) = &self.metrics {
                let now = governor.snapshot(&tenant).map_or(0, |s| s.in_flight);
                m.in_flight(&tenant, now);
            }
        } else {
            self.stamp(id, &key, Stage::Queued, None, &trace);
            self.wake.notify_one();
        }
        let job_str = id.to_string();
        horus_obs::log::info(
            "service",
            "submission admitted",
            &[
                ("job", job_str.as_str()),
                ("tenant", tenant.as_str()),
                ("key", key.as_str()),
                ("deduped", if deduped { "true" } else { "false" }),
                ("trace_id", trace.as_str()),
            ],
        );
        let body = serde_json::to_string(&SubmitResponse {
            job: id,
            key,
            tenant,
            deduped,
            trace: Some(trace.clone()),
        })
        .expect("submit response serializes");
        HttpResponse::json("202 Accepted", body).with_header(api::TRACE_HEADER, &trace)
    }

    /// Resolves `id` through its alias and renders a [`JobStatus`].
    fn status_of(&self, id: u64) -> Option<JobStatus> {
        let state = self.state.lock().expect("service state poisoned");
        let record = state.jobs.get(&id)?;
        let canonical = record.alias_of.unwrap_or(id);
        let target = state.jobs.get(&canonical).unwrap_or(record);
        let done = match target.state {
            JobState::Queued => 0,
            JobState::Executing => target.submission.as_ref().map_or(0, |s| s.done()),
            JobState::Committed => target.total,
        };
        let stages = self.spans.as_ref().and_then(|book| {
            book.get(canonical, 0).map(|span| StageStamps {
                queued: span.stamps[Stage::Queued.index()],
                leased: span.stamps[Stage::Leased.index()],
                executing: span.stamps[Stage::Executing.index()],
                pushed: span.stamps[Stage::Pushed.index()],
                committed: span.stamps[Stage::Committed.index()],
            })
        });
        Some(JobStatus {
            job: id,
            canonical,
            tenant: record.tenant.clone(),
            key: record.key.clone(),
            state: target.state.as_str().to_string(),
            done,
            total: target.total,
            stages,
        })
    }

    fn job_status(&self, id: u64) -> HttpResponse {
        match self.status_of(id) {
            Some(status) => HttpResponse::json(
                "200 OK",
                serde_json::to_string(&status).expect("status serializes"),
            ),
            None => HttpResponse::json(
                "404 Not Found",
                api::ErrorBody::json(&format!("no job {id}")),
            ),
        }
    }

    fn job_result(&self, id: u64) -> HttpResponse {
        {
            let state = self.state.lock().expect("service state poisoned");
            if let Some(record) = state.jobs.get(&id) {
                let canonical = record.alias_of.unwrap_or(id);
                if let Some(json) = state
                    .jobs
                    .get(&canonical)
                    .and_then(|r| r.outcomes_json.clone())
                {
                    return HttpResponse::json("200 OK", json);
                }
            } else {
                return HttpResponse::json(
                    "404 Not Found",
                    api::ErrorBody::json(&format!("no job {id}")),
                );
            }
        }
        // Known but not committed: answer the live status with 202 so
        // pollers can tell "keep waiting" from "wrong id".
        match self.status_of(id) {
            Some(status) => HttpResponse::json(
                "202 Accepted",
                serde_json::to_string(&status).expect("status serializes"),
            ),
            None => HttpResponse::json(
                "404 Not Found",
                api::ErrorBody::json(&format!("no job {id}")),
            ),
        }
    }

    fn tenant_status(&self, name: &str) -> HttpResponse {
        let governor = self.governor.lock().expect("governor poisoned");
        match governor.snapshot(name) {
            Some(snapshot) => HttpResponse::json(
                "200 OK",
                serde_json::to_string(&snapshot).expect("snapshot serializes"),
            ),
            None => HttpResponse::json(
                "404 Not Found",
                api::ErrorBody::json(&format!("no tenant {name:?}")),
            ),
        }
    }

    // ---- execution --------------------------------------------------------

    fn runner_loop(&self, idx: usize) {
        let worker = format!("service-runner-{idx}");
        loop {
            let (id, tenant, key, trace, specs) = {
                let mut state = self.state.lock().expect("service state poisoned");
                loop {
                    if let Some(id) = state.queue.pop() {
                        if let Some(m) = &self.metrics {
                            m.queue_depth(state.queue.len());
                        }
                        state.executing += 1;
                        let record = state.jobs.get_mut(&id).expect("queued job exists");
                        record.state = JobState::Executing;
                        let specs = record.specs.take().expect("queued job keeps its specs");
                        break (
                            id,
                            record.tenant.clone(),
                            record.key.clone(),
                            record.trace.clone(),
                            specs,
                        );
                    }
                    if self.draining() {
                        return;
                    }
                    state = self.wake.wait(state).expect("service state poisoned");
                }
            };
            self.stamp(id, &key, Stage::Leased, Some(&worker), &trace);
            let submission = self.harness.submit_traced(specs, Some(trace.clone()));
            {
                let mut state = self.state.lock().expect("service state poisoned");
                if let Some(record) = state.jobs.get_mut(&id) {
                    record.submission = Some(Arc::clone(&submission));
                }
            }
            self.stamp(id, &key, Stage::Executing, Some(&worker), &trace);
            let report = submission.wait();
            self.stamp(id, &key, Stage::Pushed, Some(&worker), &trace);
            let outcomes_json =
                serde_json::to_string(&report.outcomes).expect("outcomes serialize");
            {
                let mut state = self.state.lock().expect("service state poisoned");
                let record = state.jobs.get_mut(&id).expect("executing job exists");
                record.outcomes_json = Some(outcomes_json);
                record.state = JobState::Committed;
                state.executing -= 1;
            }
            self.stamp(id, &key, Stage::Committed, Some(&worker), &trace);
            {
                let mut governor = self.governor.lock().expect("governor poisoned");
                governor.release(&tenant);
                if let Some(m) = &self.metrics {
                    let now = governor.snapshot(&tenant).map_or(0, |s| s.in_flight);
                    m.in_flight(&tenant, now);
                }
            }
            if let Some(m) = &self.metrics {
                m.plan_completed();
            }
            let (job_str, executed_str, hits_str) = (
                id.to_string(),
                report.executed.to_string(),
                report.cache_hits.to_string(),
            );
            horus_obs::log::info(
                "service",
                "plan committed",
                &[
                    ("job", job_str.as_str()),
                    ("tenant", tenant.as_str()),
                    ("executed", executed_str.as_str()),
                    ("cache_hits", hits_str.as_str()),
                    ("trace_id", trace.as_str()),
                ],
            );
            self.idle.notify_all();
        }
    }
}

impl Router for ExperimentService {
    fn route(&self, req: &HttpRequest) -> Option<HttpResponse> {
        // The router sees every request before the built-in routes do —
        // including `/metrics` scrapes — so refreshing here keeps the
        // backlog-age gauges live without a dedicated ticker thread.
        self.refresh_age_gauges();
        let path = req.path.split('?').next().unwrap_or("");
        match (req.method.as_str(), path) {
            ("POST", "/v1/jobs") => Some(self.submit(req)),
            ("POST", "/v1/shutdown") => {
                self.begin_drain();
                Some(HttpResponse::json("200 OK", "{\"draining\":true}\n"))
            }
            ("GET", _) if path.starts_with("/v1/jobs/") => {
                let rest = &path["/v1/jobs/".len()..];
                let (id_part, want_result) = match rest.strip_suffix("/result") {
                    Some(id_part) => (id_part, true),
                    None => (rest, false),
                };
                match id_part.parse::<u64>() {
                    Ok(id) if want_result => Some(self.job_result(id)),
                    Ok(id) => Some(self.job_status(id)),
                    Err(_) => Some(HttpResponse::json(
                        "400 Bad Request",
                        api::ErrorBody::json("job ids are integers"),
                    )),
                }
            }
            ("GET", _) if path.starts_with("/v1/tenants/") => {
                Some(self.tenant_status(&path["/v1/tenants/".len()..]))
            }
            _ if path.starts_with("/v1/") => Some(HttpResponse::json(
                "404 Not Found",
                api::ErrorBody::json("unknown /v1 endpoint"),
            )),
            _ => None,
        }
    }
}
