//! The two-class service queue: interactive plans ahead of bulk, with
//! an anti-starvation valve.
//!
//! Quick plans (at most `quick_threshold` specs) are what a human at a
//! notebook is waiting on; full sweeps are batch work. Strict priority
//! would let a stream of quick plans starve a queued sweep forever, so
//! after [`BULK_STARVATION_LIMIT`] consecutive interactive pops the
//! next pop takes from the bulk queue regardless. Within a class the
//! order is FIFO. The property tests pin both guarantees.

use std::collections::VecDeque;

/// Consecutive interactive pops allowed while bulk work waits.
pub const BULK_STARVATION_LIMIT: usize = 4;

/// Which queue a plan lands in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Class {
    /// Short plan: served first, up to the starvation limit.
    Interactive,
    /// Long plan: served when interactive is idle or the valve opens.
    Bulk,
}

/// A FIFO-within-class priority queue of plan ids.
#[derive(Debug, Default)]
pub struct PlanQueue {
    interactive: VecDeque<u64>,
    bulk: VecDeque<u64>,
    /// Interactive pops since the last bulk pop (or since empty-bulk).
    since_bulk: usize,
}

impl PlanQueue {
    /// An empty queue.
    #[must_use]
    pub fn new() -> PlanQueue {
        PlanQueue::default()
    }

    /// Enqueues a plan id under its class.
    pub fn push(&mut self, id: u64, class: Class) {
        match class {
            Class::Interactive => self.interactive.push_back(id),
            Class::Bulk => self.bulk.push_back(id),
        }
    }

    /// Dequeues the next plan to run, or `None` when idle.
    pub fn pop(&mut self) -> Option<u64> {
        let take_bulk = !self.bulk.is_empty()
            && (self.interactive.is_empty() || self.since_bulk >= BULK_STARVATION_LIMIT);
        if take_bulk {
            self.since_bulk = 0;
            return self.bulk.pop_front();
        }
        match self.interactive.pop_front() {
            Some(id) => {
                if self.bulk.is_empty() {
                    // Nothing is waiting, so nothing is being starved.
                    self.since_bulk = 0;
                } else {
                    self.since_bulk += 1;
                }
                Some(id)
            }
            None => None,
        }
    }

    /// Plans waiting in both classes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.interactive.len() + self.bulk.len()
    }

    /// True when nothing is queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interactive_jumps_bulk() {
        let mut q = PlanQueue::new();
        q.push(1, Class::Bulk);
        q.push(2, Class::Interactive);
        q.push(3, Class::Interactive);
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_within_each_class() {
        let mut q = PlanQueue::new();
        for id in [10, 11, 12] {
            q.push(id, Class::Interactive);
        }
        for id in [20, 21] {
            q.push(id, Class::Bulk);
        }
        assert_eq!(q.pop(), Some(10));
        assert_eq!(q.pop(), Some(11));
        assert_eq!(q.pop(), Some(12));
        assert_eq!(q.pop(), Some(20));
        assert_eq!(q.pop(), Some(21));
    }

    #[test]
    fn bulk_is_never_starved_past_the_limit() {
        let mut q = PlanQueue::new();
        q.push(99, Class::Bulk);
        for id in 0..20 {
            q.push(id, Class::Interactive);
        }
        let mut popped = Vec::new();
        for _ in 0..=BULK_STARVATION_LIMIT {
            popped.push(q.pop().expect("nonempty"));
        }
        assert!(
            popped.contains(&99),
            "bulk plan still waiting after {} pops: {popped:?}",
            popped.len()
        );
    }
}
