//! Tenant and service configuration, loaded from a JSON file.
//!
//! The file the `--tenant-config` flag points at looks like:
//!
//! ```json
//! {
//!   "fallback": { "name": "anonymous", "burst": 100, "refill_per_sec": 5.0 },
//!   "tenants": [
//!     { "name": "team-a", "burst": 10, "refill_per_sec": 0.0, "max_in_flight": 8 },
//!     { "name": "team-b", "burst": 5 }
//!   ],
//!   "quick_threshold": 8,
//!   "runners": 2
//! }
//! ```
//!
//! Every field is optional; `0` means *unlimited* for `burst` and
//! `max_in_flight` and *no refill* for `refill_per_sec` (a fixed
//! budget — what the CI soak lane uses so its shed counts are exact
//! rather than racing the wall clock). Requests whose `X-Horus-Tenant`
//! header names no configured tenant all share the single fallback
//! tenant's bucket, which keeps the `tenant` metric label bounded by
//! this file.

use serde::{Deserialize, Serialize};
use std::path::Path;

/// Admission limits for one tenant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantPolicy {
    /// Tenant id, matched against the `X-Horus-Tenant` header.
    pub name: String,
    /// Token-bucket capacity: submissions the tenant may burst before
    /// refill matters. `0` = unlimited (admission never sheds on
    /// budget).
    #[serde(default)]
    pub burst: u64,
    /// Tokens regained per second, up to `burst`. `0` = never (the
    /// budget is fixed for the process lifetime).
    #[serde(default)]
    pub refill_per_sec: f64,
    /// Distinct plans the tenant may have queued or executing at once.
    /// `0` = unlimited.
    #[serde(default)]
    pub max_in_flight: usize,
}

impl Default for TenantPolicy {
    fn default() -> Self {
        TenantPolicy {
            name: String::from("anonymous"),
            burst: 0,
            refill_per_sec: 0.0,
            max_in_flight: 0,
        }
    }
}

impl TenantPolicy {
    /// An unlimited policy named `name` — handy in tests.
    #[must_use]
    pub fn unlimited(name: &str) -> Self {
        TenantPolicy {
            name: name.to_string(),
            ..TenantPolicy::default()
        }
    }
}

/// Whole-service configuration: tenant policies plus queue/runner knobs.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ServiceConfig {
    /// Explicitly configured tenants.
    #[serde(default)]
    pub tenants: Vec<TenantPolicy>,
    /// The shared policy for requests with no (or an unknown) tenant
    /// header.
    #[serde(default)]
    pub fallback: TenantPolicy,
    /// Plans with at most this many specs count as interactive and jump
    /// the bulk queue. `0` = use [`ServiceConfig::DEFAULT_QUICK_THRESHOLD`].
    #[serde(default)]
    pub quick_threshold: usize,
    /// Plan-runner threads (each executes one admitted plan at a time
    /// on the shared harness pool). `0` = use
    /// [`ServiceConfig::DEFAULT_RUNNERS`].
    #[serde(default)]
    pub runners: usize,
}

impl ServiceConfig {
    /// Plans at most this long are interactive when `quick_threshold`
    /// is left at `0`.
    pub const DEFAULT_QUICK_THRESHOLD: usize = 8;
    /// Runner threads when `runners` is left at `0`.
    pub const DEFAULT_RUNNERS: usize = 2;

    /// Parses a configuration from its JSON text.
    ///
    /// # Errors
    /// Returns a descriptive message on malformed JSON or duplicate
    /// tenant names.
    pub fn from_json(text: &str) -> Result<ServiceConfig, String> {
        let config: ServiceConfig =
            serde_json::from_str(text).map_err(|e| format!("invalid tenant config: {e}"))?;
        config.validate()?;
        Ok(config)
    }

    /// Reads and parses the configuration file at `path`.
    ///
    /// # Errors
    /// Returns a descriptive message when the file cannot be read or
    /// parsed.
    pub fn load(path: &Path) -> Result<ServiceConfig, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        Self::from_json(&text)
    }

    /// The effective interactive-plan length cutoff.
    #[must_use]
    pub fn effective_quick_threshold(&self) -> usize {
        if self.quick_threshold == 0 {
            Self::DEFAULT_QUICK_THRESHOLD
        } else {
            self.quick_threshold
        }
    }

    /// The effective runner-thread count.
    #[must_use]
    pub fn effective_runners(&self) -> usize {
        if self.runners == 0 {
            Self::DEFAULT_RUNNERS
        } else {
            self.runners
        }
    }

    /// Every tenant name this configuration can ever label a metric
    /// with: the configured tenants plus the fallback.
    #[must_use]
    pub fn tenant_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tenants.iter().map(|t| t.name.clone()).collect();
        names.push(self.fallback.name.clone());
        names
    }

    /// The policy for a tenant name, when explicitly configured.
    #[must_use]
    pub fn tenant(&self, name: &str) -> Option<&TenantPolicy> {
        self.tenants.iter().find(|t| t.name == name)
    }

    fn validate(&self) -> Result<(), String> {
        let mut seen = std::collections::BTreeSet::new();
        for tenant in &self.tenants {
            if tenant.name.is_empty() {
                return Err("tenant with empty name".to_string());
            }
            if !seen.insert(tenant.name.as_str()) {
                return Err(format!("duplicate tenant {:?}", tenant.name));
            }
            if tenant.refill_per_sec < 0.0 || !tenant.refill_per_sec.is_finite() {
                return Err(format!(
                    "tenant {:?}: refill_per_sec must be finite and >= 0",
                    tenant.name
                ));
            }
        }
        if seen.contains(self.fallback.name.as_str()) {
            return Err(format!(
                "fallback name {:?} collides with a configured tenant",
                self.fallback.name
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_documented_shape() {
        let config = ServiceConfig::from_json(
            r#"{
                "fallback": {"name": "anonymous", "burst": 100, "refill_per_sec": 5.0, "max_in_flight": 0},
                "tenants": [
                    {"name": "team-a", "burst": 10, "refill_per_sec": 0.0, "max_in_flight": 8},
                    {"name": "team-b", "burst": 5, "refill_per_sec": 0.0, "max_in_flight": 0}
                ],
                "quick_threshold": 8,
                "runners": 2
            }"#,
        )
        .expect("parse");
        assert_eq!(config.tenants.len(), 2);
        assert_eq!(config.tenant("team-a").expect("team-a").burst, 10);
        assert_eq!(config.fallback.burst, 100);
        assert_eq!(config.effective_quick_threshold(), 8);
        assert_eq!(config.effective_runners(), 2);
        assert_eq!(config.tenant_names(), ["team-a", "team-b", "anonymous"]);
    }

    #[test]
    fn empty_object_is_fully_defaulted() {
        let config = ServiceConfig::from_json("{}").expect("parse");
        assert_eq!(config, ServiceConfig::default());
        assert_eq!(
            config.effective_quick_threshold(),
            ServiceConfig::DEFAULT_QUICK_THRESHOLD
        );
        assert_eq!(config.effective_runners(), ServiceConfig::DEFAULT_RUNNERS);
        assert!(config.tenant("nobody").is_none());
    }

    #[test]
    fn rejects_duplicates_and_bad_refill() {
        let dup = r#"{"tenants": [{"name": "a"}, {"name": "a"}]}"#;
        assert!(ServiceConfig::from_json(dup).is_err());
        let neg = r#"{"tenants": [{"name": "a", "refill_per_sec": -1.0}]}"#;
        assert!(ServiceConfig::from_json(neg).is_err());
        let clash = r#"{"tenants": [{"name": "anonymous"}]}"#;
        assert!(ServiceConfig::from_json(clash).is_err());
    }
}
