//! Admission control: per-tenant token buckets and in-flight quotas.
//!
//! The governor sits in front of the service queue and answers one
//! question per submission: admit or shed. Budgets are classic token
//! buckets — `burst` capacity, `refill_per_sec` regain — and quotas
//! bound how many distinct plans a tenant may have queued or executing
//! at once. Shed verdicts carry a bounded `Retry-After` hint so
//! clients back off instead of hammering.
//!
//! Time is passed in explicitly (seconds on the caller's monotonic
//! clock) rather than read from the wall, which is what makes the
//! refill-monotonicity property tests exact.

use crate::config::{ServiceConfig, TenantPolicy};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Smallest `Retry-After` a shed verdict suggests, in seconds.
pub const MIN_RETRY_AFTER_SECS: u64 = 1;
/// Largest `Retry-After` a shed verdict suggests, in seconds — also
/// the answer when the budget will never refill.
pub const MAX_RETRY_AFTER_SECS: u64 = 60;

/// One admission verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Enqueue it; the tenant's bucket paid one token and its in-flight
    /// count grew by one.
    Admitted,
    /// Shed with `429 Too Many Requests`.
    Shed {
        /// Bounded client backoff hint, in whole seconds.
        retry_after_secs: u64,
        /// True when the in-flight quota (not the token budget) shed it.
        over_quota: bool,
    },
}

/// Live per-tenant accounting, exposed by `GET /v1/tenants/{t}`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantSnapshot {
    /// Tenant name (the fallback tenant aggregates unknown clients).
    pub tenant: String,
    /// Configured bucket capacity (`0` = unlimited).
    pub burst: u64,
    /// Configured refill rate.
    pub refill_per_sec: f64,
    /// Configured in-flight quota (`0` = unlimited).
    pub max_in_flight: usize,
    /// Whole tokens currently available (meaningless when unlimited).
    pub tokens: u64,
    /// Plans currently queued or executing.
    pub in_flight: usize,
    /// Submissions received (admitted + shed).
    pub submitted: u64,
    /// Submissions admitted.
    pub admitted: u64,
    /// Submissions shed.
    pub shed: u64,
}

#[derive(Debug)]
struct TenantState {
    policy: TenantPolicy,
    tokens: f64,
    refilled_at: f64,
    in_flight: usize,
    submitted: u64,
    admitted: u64,
    shed: u64,
}

impl TenantState {
    fn new(policy: TenantPolicy) -> Self {
        TenantState {
            tokens: policy.burst as f64,
            refilled_at: 0.0,
            in_flight: 0,
            submitted: 0,
            admitted: 0,
            shed: 0,
            policy,
        }
    }

    /// Advances the bucket to `now_secs`, never backwards.
    fn refill(&mut self, now_secs: f64) {
        let elapsed = (now_secs - self.refilled_at).max(0.0);
        self.refilled_at = self.refilled_at.max(now_secs);
        if self.policy.burst == 0 {
            return;
        }
        self.tokens =
            (self.tokens + elapsed * self.policy.refill_per_sec).min(self.policy.burst as f64);
    }

    /// Seconds until one whole token exists, clamped to the bounded
    /// backoff window.
    fn secs_until_token(&self) -> u64 {
        if self.policy.refill_per_sec <= 0.0 {
            return MAX_RETRY_AFTER_SECS;
        }
        let deficit = (1.0 - self.tokens).max(0.0);
        let secs = (deficit / self.policy.refill_per_sec).ceil() as u64;
        secs.clamp(MIN_RETRY_AFTER_SECS, MAX_RETRY_AFTER_SECS)
    }
}

/// The admission controller: owns every tenant's bucket and counters.
#[derive(Debug)]
pub struct Governor {
    tenants: BTreeMap<String, TenantState>,
    fallback: String,
}

impl Governor {
    /// Builds the governor from a parsed configuration. Every
    /// configured tenant (and the fallback) gets its state up front, so
    /// snapshots and metrics exist at zero before any traffic.
    #[must_use]
    pub fn new(config: &ServiceConfig) -> Governor {
        let mut tenants = BTreeMap::new();
        for policy in &config.tenants {
            tenants.insert(policy.name.clone(), TenantState::new(policy.clone()));
        }
        tenants.insert(
            config.fallback.name.clone(),
            TenantState::new(config.fallback.clone()),
        );
        Governor {
            tenants,
            fallback: config.fallback.name.clone(),
        }
    }

    /// Maps an `X-Horus-Tenant` header value to the tenant whose bucket
    /// pays for the request: the named tenant when configured, else the
    /// shared fallback (which keeps the metric label set bounded).
    #[must_use]
    pub fn classify(&self, header: Option<&str>) -> String {
        match header {
            Some(name) if self.tenants.contains_key(name) => name.to_string(),
            _ => self.fallback.clone(),
        }
    }

    /// Decides one submission for `tenant` (a name [`Governor::classify`]
    /// returned) at `now_secs` on the caller's monotonic clock.
    pub fn admit(&mut self, tenant: &str, now_secs: f64) -> Admission {
        let state = self
            .tenants
            .get_mut(tenant)
            .unwrap_or_else(|| panic!("unclassified tenant {tenant:?}"));
        state.submitted += 1;
        state.refill(now_secs);
        if state.policy.max_in_flight > 0 && state.in_flight >= state.policy.max_in_flight {
            state.shed += 1;
            return Admission::Shed {
                retry_after_secs: MIN_RETRY_AFTER_SECS,
                over_quota: true,
            };
        }
        if state.policy.burst > 0 {
            if state.tokens < 1.0 {
                let retry_after_secs = state.secs_until_token();
                state.shed += 1;
                return Admission::Shed {
                    retry_after_secs,
                    over_quota: false,
                };
            }
            state.tokens -= 1.0;
        }
        state.in_flight += 1;
        state.admitted += 1;
        Admission::Admitted
    }

    /// Returns one unit of in-flight capacity — called when a plan
    /// commits (or when a submission aliases an already-running plan
    /// and never occupies a runner).
    pub fn release(&mut self, tenant: &str) {
        if let Some(state) = self.tenants.get_mut(tenant) {
            state.in_flight = state.in_flight.saturating_sub(1);
        }
    }

    /// Live accounting for one tenant, `None` when it is not configured
    /// (unknown names share the fallback's state — ask for that
    /// instead).
    #[must_use]
    pub fn snapshot(&self, tenant: &str) -> Option<TenantSnapshot> {
        self.tenants.get(tenant).map(|state| TenantSnapshot {
            tenant: tenant.to_string(),
            burst: state.policy.burst,
            refill_per_sec: state.policy.refill_per_sec,
            max_in_flight: state.policy.max_in_flight,
            tokens: state.tokens.max(0.0) as u64,
            in_flight: state.in_flight,
            submitted: state.submitted,
            admitted: state.admitted,
            shed: state.shed,
        })
    }

    /// Every tenant name the governor tracks, sorted.
    #[must_use]
    pub fn tenant_names(&self) -> Vec<String> {
        self.tenants.keys().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(burst: u64, refill: f64, max_in_flight: usize) -> ServiceConfig {
        ServiceConfig {
            tenants: vec![TenantPolicy {
                name: "t".to_string(),
                burst,
                refill_per_sec: refill,
                max_in_flight,
            }],
            ..ServiceConfig::default()
        }
    }

    #[test]
    fn fixed_budget_sheds_exactly_the_overflow() {
        let mut gov = Governor::new(&config(3, 0.0, 0));
        let verdicts: Vec<_> = (0..10).map(|i| gov.admit("t", i as f64 * 0.1)).collect();
        let admitted = verdicts
            .iter()
            .filter(|v| matches!(v, Admission::Admitted))
            .count();
        assert_eq!(admitted, 3, "burst=3, refill=0: exactly 3 admitted");
        let snap = gov.snapshot("t").expect("snapshot");
        assert_eq!((snap.submitted, snap.admitted, snap.shed), (10, 3, 7));
        // A refill-less shed suggests the maximum bounded backoff.
        assert!(matches!(
            verdicts[3],
            Admission::Shed {
                retry_after_secs: MAX_RETRY_AFTER_SECS,
                over_quota: false
            }
        ));
    }

    #[test]
    fn refill_restores_admission() {
        let mut gov = Governor::new(&config(1, 2.0, 0));
        assert_eq!(gov.admit("t", 0.0), Admission::Admitted);
        assert!(matches!(gov.admit("t", 0.1), Admission::Shed { .. }));
        // 0.5 s at 2 tokens/s is one whole token.
        assert_eq!(gov.admit("t", 0.7), Admission::Admitted);
    }

    #[test]
    fn quota_sheds_until_release() {
        let mut gov = Governor::new(&config(0, 0.0, 2));
        assert_eq!(gov.admit("t", 0.0), Admission::Admitted);
        assert_eq!(gov.admit("t", 0.0), Admission::Admitted);
        assert!(matches!(
            gov.admit("t", 0.0),
            Admission::Shed {
                over_quota: true,
                ..
            }
        ));
        gov.release("t");
        assert_eq!(gov.admit("t", 0.0), Admission::Admitted);
    }

    #[test]
    fn unknown_tenants_share_the_fallback() {
        let cfg = config(1, 0.0, 0);
        let mut gov = Governor::new(&cfg);
        let a = gov.classify(Some("mystery-a"));
        let b = gov.classify(None);
        assert_eq!(a, "anonymous");
        assert_eq!(a, b);
        // Unlimited fallback: everything admits.
        for _ in 0..100 {
            assert_eq!(gov.admit(&a, 0.0), Admission::Admitted);
        }
        assert_eq!(gov.classify(Some("t")), "t");
    }

    #[test]
    fn time_never_runs_backwards() {
        let mut gov = Governor::new(&config(2, 1.0, 0));
        assert_eq!(gov.admit("t", 5.0), Admission::Admitted);
        assert_eq!(gov.admit("t", 5.0), Admission::Admitted);
        // An earlier timestamp must not mint tokens or panic.
        assert!(matches!(gov.admit("t", 1.0), Admission::Shed { .. }));
        assert_eq!(gov.admit("t", 6.5), Admission::Admitted);
    }
}
