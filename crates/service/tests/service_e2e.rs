//! End-to-end tests: the full service stack — obs HTTP server, router,
//! governor, runners, harness pool, on-disk result cache — driven over
//! real sockets.
//!
//! Pins the three behaviors the CI soak lane depends on: concurrent
//! identical submissions execute once (dedup by content key), statuses
//! progress `queued → … → committed` with stage stamps, and a
//! restarted service with the same `--cache-dir` serves identical
//! bytes without re-executing anything.

use horus_harness::{Harness, HarnessOptions, JobOutcome, ProgressMode};
use horus_obs::http::{http_get, http_post};
use horus_obs::{MetricsServer, Registry, Router, SpanBook};
use horus_service::load::canonical_outcomes;
use horus_service::{
    ExperimentService, JobStatus, ServiceConfig, SubmitRequest, SubmitResponse, TenantPolicy,
    TENANT_HEADER,
};
use std::net::SocketAddr;
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir =
            std::env::temp_dir().join(format!("horus-service-e2e-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        TempDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// One running stack: server socket + service handle.
struct Stack {
    server: MetricsServer,
    service: Arc<ExperimentService>,
    harness: Arc<Harness>,
    addr: SocketAddr,
}

fn start_stack(cache_dir: Option<&Path>, runners: usize) -> Stack {
    let registry = Registry::shared();
    let server = MetricsServer::bind("127.0.0.1:0", Arc::clone(&registry)).expect("bind server");
    let harness = Arc::new(Harness::new(HarnessOptions {
        jobs: Some(2),
        cache_dir: cache_dir.map(Path::to_path_buf),
        no_cache: cache_dir.is_none(),
        progress: ProgressMode::Silent,
        metrics: Some(Arc::clone(&registry)),
        backend: None,
        spans: None,
    }));
    let config = ServiceConfig {
        tenants: vec![TenantPolicy {
            name: "team-a".to_string(),
            burst: 1000,
            refill_per_sec: 0.0,
            max_in_flight: 0,
        }],
        runners,
        ..ServiceConfig::default()
    };
    let service = ExperimentService::start(
        &config,
        Arc::clone(&harness),
        Some(registry),
        Some(SpanBook::shared()),
    );
    server.set_router(Arc::clone(&service) as Arc<dyn Router>);
    let addr = server.local_addr();
    Stack {
        server,
        service,
        harness,
        addr,
    }
}

impl Stack {
    fn shutdown(self) -> Arc<Harness> {
        let (status, _) = http_post(self.addr, "/v1/shutdown", &[], "").expect("shutdown");
        assert!(status.contains("200"), "shutdown answered {status}");
        self.service.wait_until_drained();
        self.service.join();
        self.server.shutdown();
        self.harness
    }
}

fn submit(addr: SocketAddr, specs: Vec<horus_harness::JobSpec>) -> SubmitResponse {
    let body = serde_json::to_string(&SubmitRequest::plan(specs)).expect("serialize");
    let (status, resp) =
        http_post(addr, "/v1/jobs", &[(TENANT_HEADER, "team-a")], &body).expect("submit");
    assert!(status.contains("202"), "submit answered {status}: {resp}");
    serde_json::from_str(&resp).expect("submit response parses")
}

fn wait_result(addr: SocketAddr, job: u64) -> String {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (status, body) =
            http_get(addr, &format!("/v1/jobs/{job}/result")).expect("result probe");
        if status.contains("200") {
            return body;
        }
        assert!(
            status.contains("202"),
            "result probe answered {status}: {body}"
        );
        assert!(Instant::now() < deadline, "job {job} never committed");
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn concurrent_identical_submissions_execute_once() {
    let stack = start_stack(None, 2);
    let specs = horus_service::plans::quick_plan(0);

    // Eight clients race the same plan in.
    let mut handles = Vec::new();
    for _ in 0..8 {
        let addr = stack.addr;
        let specs = specs.clone();
        handles.push(std::thread::spawn(move || submit(addr, specs)));
    }
    let responses: Vec<SubmitResponse> = handles
        .into_iter()
        .map(|h| h.join().expect("client"))
        .collect();

    let originals: Vec<&SubmitResponse> = responses.iter().filter(|r| !r.deduped).collect();
    assert_eq!(originals.len(), 1, "exactly one submission executes");
    let canonical = originals[0].job;
    let canonical_trace = originals[0]
        .trace
        .as_deref()
        .expect("admission mints a trace");
    for resp in &responses {
        assert_eq!(resp.key, originals[0].key, "same plan, same content key");
        assert_eq!(resp.tenant, "team-a");
        // Aliases never execute, so a fresh trace would join to
        // nothing: every response shares the canonical plan's id.
        assert_eq!(
            resp.trace.as_deref(),
            Some(canonical_trace),
            "deduped submissions reuse the canonical trace"
        );
    }

    // Every alias serves the canonical result, byte-for-byte.
    let expected = wait_result(stack.addr, canonical);
    for resp in &responses {
        assert_eq!(wait_result(stack.addr, resp.job), expected);
    }

    // The canonical record committed with all five stage stamps.
    let (status, body) = http_get(stack.addr, &format!("/v1/jobs/{canonical}")).expect("status");
    assert!(status.contains("200"));
    let parsed: JobStatus = serde_json::from_str(&body).expect("status parses");
    assert_eq!(parsed.state, "committed");
    assert_eq!(parsed.done, parsed.total);
    let stages = parsed.stages.expect("span stamps present");
    for (name, stamp) in [
        ("queued", stages.queued),
        ("leased", stages.leased),
        ("executing", stages.executing),
        ("pushed", stages.pushed),
        ("committed", stages.committed),
    ] {
        assert!(stamp.is_some(), "stage {name} never stamped");
    }

    // The governor charged one token per submission but only one
    // runner slot; everything released after commit.
    let (status, body) = http_get(stack.addr, "/v1/tenants/team-a").expect("tenant");
    assert!(status.contains("200"));
    let snap: horus_service::TenantSnapshot = serde_json::from_str(&body).expect("snapshot");
    assert_eq!(snap.submitted, 8);
    assert_eq!(snap.admitted, 8);
    assert_eq!(snap.shed, 0);
    assert_eq!(
        snap.in_flight, 0,
        "aliases release immediately, commit releases the rest"
    );

    stack.shutdown();
}

#[test]
fn statuses_progress_and_unknown_ids_404() {
    let stack = start_stack(None, 1);

    // Before anything is submitted: 404s and tenant zeros.
    let (status, _) = http_get(stack.addr, "/v1/jobs/99").expect("status probe");
    assert!(status.contains("404"));
    let (status, _) = http_get(stack.addr, "/v1/jobs/99/result").expect("result probe");
    assert!(status.contains("404"));
    let (status, _) = http_get(stack.addr, "/v1/tenants/nobody").expect("tenant probe");
    assert!(status.contains("404"));
    let (status, _) = http_get(stack.addr, "/v1/jobs/not-a-number").expect("bad id");
    assert!(status.contains("400"));
    let (status, _) = http_get(stack.addr, "/v1/nope").expect("unknown v1");
    assert!(status.contains("404"));

    // A submission answers with the correlation trace in both the body
    // and the `x-horus-trace` response header, matching each other.
    let body = serde_json::to_string(&SubmitRequest::plan(horus_service::plans::quick_plan(1)))
        .expect("serialize");
    let (status, headers, resp_body) = horus_obs::http::http_post_full(
        stack.addr,
        "/v1/jobs",
        &[(TENANT_HEADER, "team-a")],
        &body,
    )
    .expect("submit");
    assert!(status.contains("202"), "submit answered {status}");
    let resp: SubmitResponse = serde_json::from_str(&resp_body).expect("submit response parses");
    let header_trace = headers
        .iter()
        .find(|(name, _)| name == horus_service::api::TRACE_HEADER)
        .map(|(_, value)| value.as_str())
        .expect("x-horus-trace header present");
    assert_eq!(
        resp.trace.as_deref(),
        Some(header_trace),
        "body and header carry the same trace"
    );
    assert_eq!(header_trace.len(), 16, "trace is 16 hex chars");
    assert!(header_trace.chars().all(|c| c.is_ascii_hexdigit()));

    // The submitted plan answers its status immediately (queued or
    // later), then progresses to committed.
    let (status, body) = http_get(stack.addr, &format!("/v1/jobs/{}", resp.job)).expect("status");
    assert!(status.contains("200"));
    let parsed: JobStatus = serde_json::from_str(&body).expect("status parses");
    assert!(
        ["queued", "executing", "committed"].contains(&parsed.state.as_str()),
        "unexpected state {}",
        parsed.state
    );
    wait_result(stack.addr, resp.job);
    let (_, body) = http_get(stack.addr, &format!("/v1/jobs/{}", resp.job)).expect("status");
    let parsed: JobStatus = serde_json::from_str(&body).expect("status parses");
    assert_eq!(parsed.state, "committed");

    // Built-in obs routes still answer on the same listener, and the
    // service metric families are exposed.
    let (status, metrics) = http_get(stack.addr, "/metrics").expect("metrics");
    assert!(status.contains("200"));
    assert!(
        metrics.contains("horus_service_jobs_submitted_total"),
        "service families missing from exposition"
    );
    stack.shutdown();
}

#[test]
fn restart_with_same_cache_dir_serves_without_reexecution() {
    let cache = TempDir::new("restart");
    let plan = horus_service::plans::quick_plan(2);

    // First life: execute and commit.
    let stack = start_stack(Some(cache.path()), 1);
    let first = submit(stack.addr, plan.clone());
    assert!(!first.deduped);
    let first_body = wait_result(stack.addr, first.job);
    stack.shutdown();

    // Second life, same cache directory: the plan is new to the
    // service (no dedup) but every spec hits the result cache.
    let stack = start_stack(Some(cache.path()), 1);
    let second = submit(stack.addr, plan);
    assert!(!second.deduped, "dedup is per-process; the cache is not");
    let second_body = wait_result(stack.addr, second.job);
    assert_eq!(
        canonical_outcomes(&first_body).expect("first parses"),
        canonical_outcomes(&second_body).expect("second parses"),
        "restart must serve identical results"
    );
    let outcomes: Vec<JobOutcome> = serde_json::from_str(&second_body).expect("outcomes");
    assert!(
        outcomes
            .iter()
            .all(|o| matches!(o, JobOutcome::Completed { cached: true, .. })),
        "second life must not re-execute: {second_body}"
    );
    let harness = stack.shutdown();
    drop(harness);
}

#[test]
fn draining_service_sheds_new_submissions() {
    let stack = start_stack(None, 1);
    let resp = submit(stack.addr, horus_service::plans::quick_plan(3));
    wait_result(stack.addr, resp.job);
    let (status, _) = http_post(stack.addr, "/v1/shutdown", &[], "").expect("shutdown");
    assert!(status.contains("200"));
    let body = serde_json::to_string(&SubmitRequest::plan(horus_service::plans::quick_plan(4)))
        .expect("serialize");
    let (status, _) =
        http_post(stack.addr, "/v1/jobs", &[(TENANT_HEADER, "team-a")], &body).expect("post");
    assert!(status.contains("503"), "draining service answered {status}");
    stack.service.wait_until_drained();
    stack.service.join();
    stack.server.shutdown();
}
