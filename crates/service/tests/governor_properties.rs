//! Property tests pinning the admission governor's exactness and the
//! priority queue's fairness.
//!
//! The CI soak lane relies on two of these being *laws*, not
//! tendencies: a fixed budget (refill 0) sheds exactly the overflow
//! regardless of timing, and refill never mints tokens retroactively.
//! The queue property pins the anti-starvation valve: bulk work waits
//! at most [`BULK_STARVATION_LIMIT`] pops while interactive traffic
//! streams past.

use horus_service::queue::BULK_STARVATION_LIMIT;
use horus_service::{Admission, Class, Governor, PlanQueue, ServiceConfig, TenantPolicy};
use proptest::prelude::*;

fn config(burst: u64, refill: f64, max_in_flight: usize) -> ServiceConfig {
    ServiceConfig {
        tenants: vec![TenantPolicy {
            name: "t".to_string(),
            burst,
            refill_per_sec: refill,
            max_in_flight,
        }],
        ..ServiceConfig::default()
    }
}

/// Non-decreasing submission timestamps (seconds), built from
/// millisecond deltas (integer strategies keep the offline proptest
/// stub happy).
fn arb_times() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0u64..500, 1..200).prop_map(|deltas| {
        let mut now = 0.0;
        deltas
            .iter()
            .map(|ms| {
                now += *ms as f64 / 1000.0;
                now
            })
            .collect()
    })
}

/// Refill rates in tenths of a token per second.
fn arb_refill(lo_tenths: u64, hi_tenths: u64) -> impl Strategy<Value = f64> {
    (lo_tenths..hi_tenths).prop_map(|tenths| tenths as f64 / 10.0)
}

proptest! {
    /// With refill 0 the budget is a fixed pool: however the
    /// submissions are spaced, exactly `burst` admit and the rest shed.
    /// This is the law the soak lane's shed assertion stands on.
    #[test]
    fn fixed_budget_sheds_exactly_the_overflow(
        burst in 1u64..50,
        times in arb_times(),
    ) {
        let mut gov = Governor::new(&config(burst, 0.0, 0));
        let admitted = times
            .iter()
            .filter(|now| gov.admit("t", **now) == Admission::Admitted)
            .count() as u64;
        let submitted = times.len() as u64;
        prop_assert_eq!(admitted, submitted.min(burst));
        let snap = gov.snapshot("t").expect("tenant exists");
        prop_assert_eq!(snap.submitted, submitted);
        prop_assert_eq!(snap.admitted, admitted);
        prop_assert_eq!(snap.shed, submitted - admitted);
    }

    /// Refill is bounded by real elapsed time: over any schedule the
    /// admitted count never exceeds the bucket's theoretical maximum
    /// `burst + elapsed * refill` (plus one for fencepost), and
    /// shuffled timestamps (time running backwards) never mint tokens
    /// beyond what the sorted schedule allows.
    #[test]
    fn refill_never_exceeds_elapsed_time(
        burst in 1u64..20,
        refill in arb_refill(1, 200),
        times in arb_times(),
    ) {
        let mut gov = Governor::new(&config(burst, refill, 0));
        let admitted = times
            .iter()
            .filter(|now| gov.admit("t", **now) == Admission::Admitted)
            .count() as f64;
        let elapsed = times.last().copied().unwrap_or(0.0);
        let ceiling = burst as f64 + elapsed * refill + 1.0;
        prop_assert!(
            admitted <= ceiling,
            "admitted {admitted} > ceiling {ceiling} (burst {burst}, refill {refill}, elapsed {elapsed})"
        );
    }

    /// Jittered (non-monotonic) clocks never mint extra tokens: the
    /// bucket credits elapsed time against the running *maximum*
    /// timestamp, so however the schedule is shuffled, the admitted
    /// count stays under the budget the latest timestamp implies.
    #[test]
    fn backwards_time_mints_nothing(
        burst in 1u64..20,
        refill in arb_refill(1, 200),
        mut times in arb_times(),
        swaps in prop::collection::vec((0usize..200, 0usize..200), 0..40),
    ) {
        let span = times.iter().copied().fold(0.0f64, f64::max);
        for (a, b) in swaps {
            let (a, b) = (a % times.len(), b % times.len());
            times.swap(a, b);
        }
        let mut gov = Governor::new(&config(burst, refill, 0));
        let admitted = times
            .iter()
            .filter(|now| gov.admit("t", **now) == Admission::Admitted)
            .count() as f64;
        let ceiling = burst as f64 + span * refill + 1.0;
        prop_assert!(
            admitted <= ceiling,
            "shuffled schedule admitted {admitted} > ceiling {ceiling}"
        );
    }

    /// Every shed verdict carries a Retry-After inside the bounded
    /// window, and quota sheds are flagged as such.
    #[test]
    fn shed_verdicts_are_bounded_and_classified(
        burst in 0u64..10,
        refill in arb_refill(0, 50),
        max_in_flight in 0usize..5,
        times in arb_times(),
    ) {
        let mut gov = Governor::new(&config(burst, refill, max_in_flight));
        for now in &times {
            if let Admission::Shed { retry_after_secs, over_quota } = gov.admit("t", *now) {
                prop_assert!((1..=60).contains(&retry_after_secs));
                if over_quota {
                    prop_assert!(max_in_flight > 0);
                }
            }
        }
    }

    /// Under any arrival order, a bulk plan is never passed over by
    /// more than BULK_STARVATION_LIMIT consecutive interactive pops.
    #[test]
    fn bulk_is_never_starved_past_the_valve(
        arrivals in prop::collection::vec(any::<bool>(), 1..300),
    ) {
        let mut q = PlanQueue::new();
        let mut bulk_queued = 0usize;
        let mut consecutive_interactive = 0usize;
        // Interleave: push each arrival, then pop every other step, then
        // drain — counting consecutive interactive pops while bulk waits.
        let mut check_pop = |q: &mut PlanQueue, bulk_queued: &mut usize,
                             consecutive: &mut usize| -> Result<(), TestCaseError> {
            if let Some(popped) = q.pop() {
                // Bulk ids are odd (see below).
                if popped % 2 == 1 {
                    *bulk_queued -= 1;
                    *consecutive = 0;
                } else if *bulk_queued > 0 {
                    *consecutive += 1;
                    prop_assert!(
                        *consecutive <= BULK_STARVATION_LIMIT,
                        "{consecutive} consecutive interactive pops with bulk waiting"
                    );
                } else {
                    *consecutive = 0;
                }
            }
            Ok(())
        };
        for (step, interactive) in arrivals.iter().enumerate() {
            let id = step as u64;
            if *interactive {
                q.push(id * 2, Class::Interactive);
            } else {
                q.push(id * 2 + 1, Class::Bulk);
                bulk_queued += 1;
            }
            if step % 2 == 0 {
                check_pop(&mut q, &mut bulk_queued, &mut consecutive_interactive)?;
            }
        }
        while !q.is_empty() {
            check_pop(&mut q, &mut bulk_queued, &mut consecutive_interactive)?;
        }
        prop_assert_eq!(bulk_queued, 0, "every bulk plan must eventually pop");
    }
}
