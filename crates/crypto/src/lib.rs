//! Cryptographic primitives for the Horus secure-EPD memory system.
//!
//! This crate implements, from scratch, the primitives a secure memory
//! controller uses (see the Horus paper, §II-B):
//!
//! * [`aes::Aes128`] — the AES-128 block cipher (FIPS-197), used as the
//!   pad-generation engine for counter-mode encryption and as the core of
//!   the MAC.
//! * [`otp`] — counter-mode encryption (CME): a one-time pad is generated
//!   by encrypting `address || counter` and XOR'ed with the plaintext, so
//!   decryption latency can be overlapped with the data fetch.
//! * [`cmac::Cmac`] — AES-CMAC (RFC 4493) message authentication, with the
//!   truncated 64-bit [`Mac64`] form stored in memory by the secure
//!   controller.
//!
//! Everything here is *functional*: the simulated memory really is
//! encrypted and MAC'ed, so integrity-violation tests in the higher layers
//! detect real tampering rather than flags. Timing (AES = 40 cycles,
//! hash = 160 cycles in the paper's Table I) is modelled separately by the
//! simulation engine; this crate is purely about values.
//!
//! # Example
//!
//! ```
//! use horus_crypto::{Aes128, otp::encrypt_block_ctr, cmac::Cmac};
//!
//! let key = Aes128::new(&[0x2b; 16]);
//! let plain = [0xAB_u8; 64];
//! // Encrypt a 64-byte cache block with (address, counter) as the IV.
//! let cipher = encrypt_block_ctr(&key, 0x8000, 7, &plain);
//! let plain_again = encrypt_block_ctr(&key, 0x8000, 7, &cipher);
//! assert_eq!(plain, plain_again);
//!
//! let mac = Cmac::new(&[0x77; 16]).mac64(&cipher);
//! assert_eq!(mac, Cmac::new(&[0x77; 16]).mac64(&cipher));
//! ```

// `deny` rather than `forbid`: the one exception is the AES-NI kernel in
// `aes::hw`, which carries a scoped `#[allow(unsafe_code)]` for the
// `core::arch` intrinsics (each `unsafe` block documents why it is sound,
// and the software T-table path remains the cross-check oracle). Every
// other module still refuses unsafe at compile time.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod aes;
pub mod cmac;
pub mod otp;

pub use aes::Aes128;
pub use cmac::{Cmac, Mac64};

/// Size in bytes of a cache block / memory block throughout the system.
pub const BLOCK_SIZE: usize = 64;

/// A 64-byte data block, the unit of all memory traffic.
pub type DataBlock = [u8; BLOCK_SIZE];

/// Constant-time equality comparison of two byte slices.
///
/// Returns `false` if the lengths differ. The comparison examines every
/// byte regardless of where the first mismatch occurs, so an attacker
/// timing the verification step learns nothing about the mismatch
/// position.
///
/// ```
/// assert!(horus_crypto::ct_eq(b"abc", b"abc"));
/// assert!(!horus_crypto::ct_eq(b"abc", b"abd"));
/// assert!(!horus_crypto::ct_eq(b"abc", b"ab"));
/// ```
#[must_use]
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ct_eq_equal() {
        assert!(ct_eq(&[], &[]));
        assert!(ct_eq(&[1, 2, 3], &[1, 2, 3]));
    }

    #[test]
    fn ct_eq_unequal_content() {
        assert!(!ct_eq(&[1, 2, 3], &[1, 2, 4]));
        assert!(!ct_eq(&[0], &[1]));
    }

    #[test]
    fn ct_eq_unequal_length() {
        assert!(!ct_eq(&[1, 2], &[1, 2, 3]));
        assert!(!ct_eq(&[1, 2, 3], &[]));
    }
}
