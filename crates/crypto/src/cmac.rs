//! AES-CMAC message authentication (RFC 4493 / NIST SP 800-38B).
//!
//! The secure memory controller stores a truncated 64-bit MAC ([`Mac64`])
//! per protected block; eight of them fit in one 64-byte memory block,
//! which is what makes the Horus MAC-coalescing scheme (§IV-C.2) possible.

use crate::aes::{Aes128, AesBlock, AES_BLOCK_SIZE};

/// A 64-bit (8-byte) truncated MAC as stored in memory.
///
/// Full 128-bit CMAC tags are computed internally and truncated to the
/// first 8 bytes, matching the per-block MAC budget used by secure-memory
/// designs (8 MACs per 64-byte MAC block).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Mac64(pub [u8; 8]);

impl Mac64 {
    /// The all-zero MAC, used as the initial value of coalescing registers.
    pub const ZERO: Mac64 = Mac64([0; 8]);

    /// Returns the MAC as a little-endian `u64` (handy for hashing MACs
    /// into higher tree levels).
    #[must_use]
    pub fn as_u64(self) -> u64 {
        u64::from_le_bytes(self.0)
    }
}

impl From<u64> for Mac64 {
    fn from(v: u64) -> Self {
        Mac64(v.to_le_bytes())
    }
}

impl std::fmt::Display for Mac64 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.as_u64())
    }
}

/// An AES-CMAC instance with precomputed subkeys.
///
/// ```
/// use horus_crypto::cmac::Cmac;
/// let cmac = Cmac::new(&[0x2b; 16]);
/// let tag = cmac.mac64(b"hello world");
/// assert_eq!(tag, Cmac::new(&[0x2b; 16]).mac64(b"hello world"));
/// assert_ne!(tag, cmac.mac64(b"hello worle"));
/// ```
#[derive(Clone)]
pub struct Cmac {
    aes: Aes128,
    k1: AesBlock,
    k2: AesBlock,
}

impl std::fmt::Debug for Cmac {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cmac").field("key", &"<redacted>").finish()
    }
}

/// Doubling in GF(2^128) with the CMAC polynomial (left shift, conditional
/// XOR with 0x87 in the last byte).
fn dbl(block: &AesBlock) -> AesBlock {
    let mut out = [0u8; AES_BLOCK_SIZE];
    let mut carry = 0u8;
    for i in (0..AES_BLOCK_SIZE).rev() {
        out[i] = (block[i] << 1) | carry;
        carry = block[i] >> 7;
    }
    if carry != 0 {
        out[AES_BLOCK_SIZE - 1] ^= 0x87;
    }
    out
}

impl Cmac {
    /// Creates a CMAC instance, deriving the two RFC 4493 subkeys.
    #[must_use]
    pub fn new(key: &[u8; 16]) -> Self {
        Self::with_cipher(Aes128::new(key))
    }

    /// Creates a CMAC instance over an existing cipher (e.g. one pinned to
    /// a specific [`crate::aes::AesBackend`] for equivalence testing).
    #[must_use]
    pub fn with_cipher(aes: Aes128) -> Self {
        let l = aes.encrypt_block(&[0u8; 16]);
        let k1 = dbl(&l);
        let k2 = dbl(&k1);
        Self { aes, k1, k2 }
    }

    /// Computes the full 128-bit CMAC tag of `msg`.
    #[must_use]
    pub fn mac(&self, msg: &[u8]) -> AesBlock {
        if !msg.is_empty() && msg.len() % AES_BLOCK_SIZE == 0 {
            // Every message the metadata engine MACs (64 B block
            // ciphertexts, 80 B CHV entries) is whole blocks; skip the
            // padding bookkeeping entirely on that path.
            return self.mac_complete_blocks(msg);
        }
        let n = msg.len().div_ceil(AES_BLOCK_SIZE).max(1);
        let complete = msg.len() == n * AES_BLOCK_SIZE && !msg.is_empty();
        let body = &msg[..(n - 1) * AES_BLOCK_SIZE];
        let mut x = self.aes.cbc_absorb(&[0u8; AES_BLOCK_SIZE], body);
        let mut last = [0u8; AES_BLOCK_SIZE];
        let tail = &msg[(n - 1) * AES_BLOCK_SIZE..];
        if complete {
            last.copy_from_slice(tail);
            for (l, k) in last.iter_mut().zip(self.k1.iter()) {
                *l ^= k;
            }
        } else {
            last[..tail.len()].copy_from_slice(tail);
            last[tail.len()] = 0x80;
            for (l, k) in last.iter_mut().zip(self.k2.iter()) {
                *l ^= k;
            }
        }
        for j in 0..AES_BLOCK_SIZE {
            x[j] ^= last[j];
        }
        self.aes.encrypt_block(&x)
    }

    /// CBC-MAC chain over a message that is a non-zero whole number of
    /// blocks: no padding buffer, k1 folded into the final block. Bit-
    /// identical to the general path for these lengths (RFC 4493's
    /// `flag = true` case). The chain runs through
    /// [`Aes128::cbc_absorb`], which keeps the running state in an XMM
    /// register on the AES-NI backend.
    fn mac_complete_blocks(&self, msg: &[u8]) -> AesBlock {
        debug_assert!(!msg.is_empty() && msg.len() % AES_BLOCK_SIZE == 0);
        let (body, last) = msg.split_at(msg.len() - AES_BLOCK_SIZE);
        let mut x = self.aes.cbc_absorb(&[0u8; AES_BLOCK_SIZE], body);
        for ((xj, lj), kj) in x.iter_mut().zip(last.iter()).zip(self.k1.iter()) {
            *xj ^= lj ^ kj;
        }
        self.aes.encrypt_block(&x)
    }

    /// Computes the truncated 64-bit MAC of `msg` stored by the memory
    /// controller.
    #[must_use]
    pub fn mac64(&self, msg: &[u8]) -> Mac64 {
        let full = self.mac(msg);
        let mut out = [0u8; 8];
        out.copy_from_slice(&full[..8]);
        Mac64(out)
    }

    /// Verifies that `tag` is the truncated MAC of `msg`, in constant time.
    #[must_use]
    pub fn verify64(&self, msg: &[u8], tag: Mac64) -> bool {
        crate::ct_eq(&self.mac64(msg).0, &tag.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KEY: [u8; 16] = [
        0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f,
        0x3c,
    ];

    // RFC 4493 test vectors.
    #[test]
    fn rfc4493_subkeys() {
        let cmac = Cmac::new(&KEY);
        let k1 = [
            0xfb, 0xee, 0xd6, 0x18, 0x35, 0x71, 0x33, 0x66, 0x7c, 0x85, 0xe0, 0x8f, 0x72, 0x36,
            0xa8, 0xde,
        ];
        let k2 = [
            0xf7, 0xdd, 0xac, 0x30, 0x6a, 0xe2, 0x66, 0xcc, 0xf9, 0x0b, 0xc1, 0x1e, 0xe4, 0x6d,
            0x51, 0x3b,
        ];
        assert_eq!(cmac.k1, k1);
        assert_eq!(cmac.k2, k2);
    }

    #[test]
    fn rfc4493_empty_message() {
        let cmac = Cmac::new(&KEY);
        let expected = [
            0xbb, 0x1d, 0x69, 0x29, 0xe9, 0x59, 0x37, 0x28, 0x7f, 0xa3, 0x7d, 0x12, 0x9b, 0x75,
            0x67, 0x46,
        ];
        assert_eq!(cmac.mac(b""), expected);
    }

    #[test]
    fn rfc4493_16_byte_message() {
        let cmac = Cmac::new(&KEY);
        let msg = [
            0x6b, 0xc1, 0xbe, 0xe2, 0x2e, 0x40, 0x9f, 0x96, 0xe9, 0x3d, 0x7e, 0x11, 0x73, 0x93,
            0x17, 0x2a,
        ];
        let expected = [
            0x07, 0x0a, 0x16, 0xb4, 0x6b, 0x4d, 0x41, 0x44, 0xf7, 0x9b, 0xdd, 0x9d, 0xd0, 0x4a,
            0x28, 0x7c,
        ];
        assert_eq!(cmac.mac(&msg), expected);
    }

    #[test]
    fn rfc4493_40_byte_message() {
        let cmac = Cmac::new(&KEY);
        let msg = [
            0x6b, 0xc1, 0xbe, 0xe2, 0x2e, 0x40, 0x9f, 0x96, 0xe9, 0x3d, 0x7e, 0x11, 0x73, 0x93,
            0x17, 0x2a, 0xae, 0x2d, 0x8a, 0x57, 0x1e, 0x03, 0xac, 0x9c, 0x9e, 0xb7, 0x6f, 0xac,
            0x45, 0xaf, 0x8e, 0x51, 0x30, 0xc8, 0x1c, 0x46, 0xa3, 0x5c, 0xe4, 0x11,
        ];
        let expected = [
            0xdf, 0xa6, 0x67, 0x47, 0xde, 0x9a, 0xe6, 0x30, 0x30, 0xca, 0x32, 0x61, 0x14, 0x97,
            0xc8, 0x27,
        ];
        assert_eq!(cmac.mac(&msg), expected);
    }

    #[test]
    fn rfc4493_64_byte_message() {
        let cmac = Cmac::new(&KEY);
        let msg = [
            0x6b, 0xc1, 0xbe, 0xe2, 0x2e, 0x40, 0x9f, 0x96, 0xe9, 0x3d, 0x7e, 0x11, 0x73, 0x93,
            0x17, 0x2a, 0xae, 0x2d, 0x8a, 0x57, 0x1e, 0x03, 0xac, 0x9c, 0x9e, 0xb7, 0x6f, 0xac,
            0x45, 0xaf, 0x8e, 0x51, 0x30, 0xc8, 0x1c, 0x46, 0xa3, 0x5c, 0xe4, 0x11, 0xe5, 0xfb,
            0xc1, 0x19, 0x1a, 0x0a, 0x52, 0xef, 0xf6, 0x9f, 0x24, 0x45, 0xdf, 0x4f, 0x9b, 0x17,
            0xad, 0x2b, 0x41, 0x7b, 0xe6, 0x6c, 0x37, 0x10,
        ];
        let expected = [
            0x51, 0xf0, 0xbe, 0xbf, 0x7e, 0x3b, 0x9d, 0x92, 0xfc, 0x49, 0x74, 0x17, 0x79, 0x36,
            0x3c, 0xfe,
        ];
        assert_eq!(cmac.mac(&msg), expected);
    }

    #[test]
    fn mac64_is_truncation() {
        let cmac = Cmac::new(&KEY);
        let msg = b"some message bytes";
        let full = cmac.mac(msg);
        assert_eq!(cmac.mac64(msg).0, full[..8]);
    }

    #[test]
    fn verify64_accepts_and_rejects() {
        let cmac = Cmac::new(&KEY);
        let tag = cmac.mac64(b"payload");
        assert!(cmac.verify64(b"payload", tag));
        assert!(!cmac.verify64(b"payloae", tag));
        assert!(!cmac.verify64(b"payload", Mac64::from(tag.as_u64() ^ 1)));
    }

    #[test]
    fn mac64_display_and_u64_roundtrip() {
        let m = Mac64::from(0x0123_4567_89ab_cdefu64);
        assert_eq!(m.as_u64(), 0x0123_4567_89ab_cdef);
        assert_eq!(format!("{m}"), "0123456789abcdef");
    }

    #[test]
    fn length_extension_padding_distinct() {
        // A message and the same message with the 0x80 pad byte appended
        // must MAC differently (the k1/k2 domain separation).
        let cmac = Cmac::new(&KEY);
        let short = [0xAAu8; 15];
        let mut padded = [0xAAu8; 16];
        padded[15] = 0x80;
        assert_ne!(cmac.mac(&short), cmac.mac(&padded));
    }
}
