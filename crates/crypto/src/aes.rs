//! AES-128 block cipher, implemented from the FIPS-197 specification.
//!
//! The secure memory controller uses AES both to generate one-time pads
//! for counter-mode encryption and (through CMAC) to compute MACs. The
//! cipher runs on every simulated memory operation, so the encrypt
//! direction uses the classic T-table formulation: the SubBytes /
//! ShiftRows / MixColumns composition is precomputed into four
//! const-evaluated 256-entry `u32` tables, and each round is 16 table
//! lookups and XORs over the four state columns. Round keys are kept in
//! both byte form (FIPS-197 layout, used by the key-schedule tests and
//! the inverse cipher) and word form (the T-table operand).
//!
//! [`Aes128::encrypt4`] additionally processes four independent blocks
//! per call with their rounds interleaved, hiding the table-lookup
//! latency of one block behind the others' — this is the unit the OTP
//! path consumes, since a 64-byte line needs exactly four pad blocks.
//!
//! Only encryption is needed for CTR mode and CMAC, but the inverse
//! cipher is provided as well (byte-oriented; it is never on the hot
//! path) so the crate is a complete AES-128 and round-trip properties
//! can be tested directly.
//!
//! # Hardware acceleration
//!
//! On x86-64 hosts with the AES-NI extension, block encryption runs on
//! the `aesenc`/`aesenclast` instructions instead of the T-tables — one
//! instruction per round, computed in hardware from the same FIPS-197
//! round keys the software path expands. The backend is chosen once per
//! process by [`active_backend`]: `is_x86_feature_detected!("aes")` at
//! first use, overridable with the `HORUS_FORCE_SOFT_AES=1` environment
//! variable (the CI soft-crypto lane) and degrading automatically to the
//! software path on every other architecture, under Miri, and on x86-64
//! parts without the extension. Both paths are bit-identical AES-128;
//! the FIPS-197 vectors and the soft-vs-hardware equivalence property
//! tests in `tests/properties.rs` are the oracle.

/// The AES block size in bytes.
pub const AES_BLOCK_SIZE: usize = 16;

/// A 16-byte AES block.
pub type AesBlock = [u8; AES_BLOCK_SIZE];

/// Number of rounds for AES-128.
const ROUNDS: usize = 10;

/// Forward S-box (FIPS-197 Figure 7).
const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

/// Inverse S-box (FIPS-197 Figure 14).
const INV_SBOX: [u8; 256] = [
    0x52, 0x09, 0x6a, 0xd5, 0x30, 0x36, 0xa5, 0x38, 0xbf, 0x40, 0xa3, 0x9e, 0x81, 0xf3, 0xd7, 0xfb,
    0x7c, 0xe3, 0x39, 0x82, 0x9b, 0x2f, 0xff, 0x87, 0x34, 0x8e, 0x43, 0x44, 0xc4, 0xde, 0xe9, 0xcb,
    0x54, 0x7b, 0x94, 0x32, 0xa6, 0xc2, 0x23, 0x3d, 0xee, 0x4c, 0x95, 0x0b, 0x42, 0xfa, 0xc3, 0x4e,
    0x08, 0x2e, 0xa1, 0x66, 0x28, 0xd9, 0x24, 0xb2, 0x76, 0x5b, 0xa2, 0x49, 0x6d, 0x8b, 0xd1, 0x25,
    0x72, 0xf8, 0xf6, 0x64, 0x86, 0x68, 0x98, 0x16, 0xd4, 0xa4, 0x5c, 0xcc, 0x5d, 0x65, 0xb6, 0x92,
    0x6c, 0x70, 0x48, 0x50, 0xfd, 0xed, 0xb9, 0xda, 0x5e, 0x15, 0x46, 0x57, 0xa7, 0x8d, 0x9d, 0x84,
    0x90, 0xd8, 0xab, 0x00, 0x8c, 0xbc, 0xd3, 0x0a, 0xf7, 0xe4, 0x58, 0x05, 0xb8, 0xb3, 0x45, 0x06,
    0xd0, 0x2c, 0x1e, 0x8f, 0xca, 0x3f, 0x0f, 0x02, 0xc1, 0xaf, 0xbd, 0x03, 0x01, 0x13, 0x8a, 0x6b,
    0x3a, 0x91, 0x11, 0x41, 0x4f, 0x67, 0xdc, 0xea, 0x97, 0xf2, 0xcf, 0xce, 0xf0, 0xb4, 0xe6, 0x73,
    0x96, 0xac, 0x74, 0x22, 0xe7, 0xad, 0x35, 0x85, 0xe2, 0xf9, 0x37, 0xe8, 0x1c, 0x75, 0xdf, 0x6e,
    0x47, 0xf1, 0x1a, 0x71, 0x1d, 0x29, 0xc5, 0x89, 0x6f, 0xb7, 0x62, 0x0e, 0xaa, 0x18, 0xbe, 0x1b,
    0xfc, 0x56, 0x3e, 0x4b, 0xc6, 0xd2, 0x79, 0x20, 0x9a, 0xdb, 0xc0, 0xfe, 0x78, 0xcd, 0x5a, 0xf4,
    0x1f, 0xdd, 0xa8, 0x33, 0x88, 0x07, 0xc7, 0x31, 0xb1, 0x12, 0x10, 0x59, 0x27, 0x80, 0xec, 0x5f,
    0x60, 0x51, 0x7f, 0xa9, 0x19, 0xb5, 0x4a, 0x0d, 0x2d, 0xe5, 0x7a, 0x9f, 0x93, 0xc9, 0x9c, 0xef,
    0xa0, 0xe0, 0x3b, 0x4d, 0xae, 0x2a, 0xf5, 0xb0, 0xc8, 0xeb, 0xbb, 0x3c, 0x83, 0x53, 0x99, 0x61,
    0x17, 0x2b, 0x04, 0x7e, 0xba, 0x77, 0xd6, 0x26, 0xe1, 0x69, 0x14, 0x63, 0x55, 0x21, 0x0c, 0x7d,
];

/// Round constants for key expansion.
const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];

// ----- backend selection ---------------------------------------------------

/// Which implementation executes the AES rounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AesBackend {
    /// AES-NI instructions (`aesenc`/`aesenclast`), x86-64 only.
    Hardware,
    /// The portable T-table implementation.
    Software,
}

impl std::fmt::Display for AesBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            AesBackend::Hardware => "aes-ni",
            AesBackend::Software => "soft",
        })
    }
}

/// True when this CPU can run the AES-NI path (independent of the
/// `HORUS_FORCE_SOFT_AES` override). Always `false` off x86-64 and
/// under Miri, which cannot interpret the vendor intrinsics.
#[must_use]
pub fn hardware_available() -> bool {
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    {
        std::arch::is_x86_feature_detected!("aes") && std::arch::is_x86_feature_detected!("sse2")
    }
    #[cfg(not(all(target_arch = "x86_64", not(miri))))]
    {
        false
    }
}

/// The backend-selection rule, factored pure so the override semantics
/// are unit-testable without touching the process environment:
/// `HORUS_FORCE_SOFT_AES` set to anything but empty or `0` forces the
/// software path; otherwise hardware is used whenever the CPU has it.
fn backend_from(force_soft: Option<&std::ffi::OsStr>, hardware: bool) -> AesBackend {
    let forced = force_soft.is_some_and(|v| !v.is_empty() && v != "0");
    if !forced && hardware {
        AesBackend::Hardware
    } else {
        AesBackend::Software
    }
}

/// The backend new [`Aes128`] instances use, decided once per process:
/// CPU detection plus the `HORUS_FORCE_SOFT_AES` environment override
/// (read at first use; the CI soft-crypto lane sets it before launch).
#[must_use]
pub fn active_backend() -> AesBackend {
    static BACKEND: std::sync::OnceLock<AesBackend> = std::sync::OnceLock::new();
    *BACKEND.get_or_init(|| {
        backend_from(
            std::env::var_os("HORUS_FORCE_SOFT_AES").as_deref(),
            hardware_available(),
        )
    })
}

/// Multiply by `x` (i.e. `{02}`) in GF(2^8) with the AES polynomial.
#[inline]
const fn xtime(b: u8) -> u8 {
    (b << 1) ^ (if b & 0x80 != 0 { 0x1b } else { 0 })
}

/// General GF(2^8) multiplication, used by the inverse MixColumns.
fn gf_mul(mut a: u8, mut b: u8) -> u8 {
    let mut acc = 0u8;
    for _ in 0..8 {
        if b & 1 != 0 {
            acc ^= a;
        }
        a = xtime(a);
        b >>= 1;
    }
    acc
}

// ----- encrypt T-tables ----------------------------------------------------
//
// TE0[x] packs the MixColumns contribution of a SubBytes'ed byte landing
// in row 0 of a column: ({02}·S[x], S[x], S[x], {03}·S[x]) big-endian.
// Rows 1–3 contribute the same vector rotated, so TE1..TE3 are byte
// rotations of TE0. One encrypt round over a column is then four lookups
// and four XORs (plus the round key).

const fn build_te0() -> [u32; 256] {
    let mut t = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let s = SBOX[i];
        let s2 = xtime(s);
        let s3 = s2 ^ s;
        t[i] = ((s2 as u32) << 24) | ((s as u32) << 16) | ((s as u32) << 8) | (s3 as u32);
        i += 1;
    }
    t
}

const fn rotr_each(t: &[u32; 256], n: u32) -> [u32; 256] {
    let mut out = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        out[i] = t[i].rotate_right(n);
        i += 1;
    }
    out
}

const TE0: [u32; 256] = build_te0();
const TE1: [u32; 256] = rotr_each(&TE0, 8);
const TE2: [u32; 256] = rotr_each(&TE0, 16);
const TE3: [u32; 256] = rotr_each(&TE0, 24);

/// The state as four big-endian column words (FIPS-197 is column-major,
/// so column `c` is bytes `4c..4c+4`).
#[inline]
fn load_columns(block: &AesBlock) -> [u32; 4] {
    core::array::from_fn(|c| {
        u32::from_be_bytes([
            block[4 * c],
            block[4 * c + 1],
            block[4 * c + 2],
            block[4 * c + 3],
        ])
    })
}

#[inline]
fn store_columns(s: &[u32; 4]) -> AesBlock {
    let mut out = [0u8; 16];
    for c in 0..4 {
        out[4 * c..4 * c + 4].copy_from_slice(&s[c].to_be_bytes());
    }
    out
}

/// One full SubBytes + ShiftRows + MixColumns + AddRoundKey round.
/// ShiftRows is folded into the column selection: output column `c`
/// takes row `r` from input column `c + r`. Hand-unrolled so the 16
/// independent table loads issue without loop-carried dependencies.
#[inline(always)]
fn ttable_round(s: &[u32; 4], rk: &[u32; 4]) -> [u32; 4] {
    let [s0, s1, s2, s3] = *s;
    [
        TE0[(s0 >> 24) as usize]
            ^ TE1[((s1 >> 16) & 0xff) as usize]
            ^ TE2[((s2 >> 8) & 0xff) as usize]
            ^ TE3[(s3 & 0xff) as usize]
            ^ rk[0],
        TE0[(s1 >> 24) as usize]
            ^ TE1[((s2 >> 16) & 0xff) as usize]
            ^ TE2[((s3 >> 8) & 0xff) as usize]
            ^ TE3[(s0 & 0xff) as usize]
            ^ rk[1],
        TE0[(s2 >> 24) as usize]
            ^ TE1[((s3 >> 16) & 0xff) as usize]
            ^ TE2[((s0 >> 8) & 0xff) as usize]
            ^ TE3[(s1 & 0xff) as usize]
            ^ rk[2],
        TE0[(s3 >> 24) as usize]
            ^ TE1[((s0 >> 16) & 0xff) as usize]
            ^ TE2[((s1 >> 8) & 0xff) as usize]
            ^ TE3[(s2 & 0xff) as usize]
            ^ rk[3],
    ]
}

/// The last round (no MixColumns): plain S-box bytes, re-packed.
#[inline(always)]
fn ttable_final(s: &[u32; 4], rk: &[u32; 4]) -> [u32; 4] {
    let [s0, s1, s2, s3] = *s;
    let sub = |c0: u32, c1: u32, c2: u32, c3: u32| {
        (u32::from(SBOX[(c0 >> 24) as usize]) << 24)
            | (u32::from(SBOX[((c1 >> 16) & 0xff) as usize]) << 16)
            | (u32::from(SBOX[((c2 >> 8) & 0xff) as usize]) << 8)
            | u32::from(SBOX[(c3 & 0xff) as usize])
    };
    [
        sub(s0, s1, s2, s3) ^ rk[0],
        sub(s1, s2, s3, s0) ^ rk[1],
        sub(s2, s3, s0, s1) ^ rk[2],
        sub(s3, s0, s1, s2) ^ rk[3],
    ]
}

/// An expanded AES-128 key, ready to encrypt or decrypt blocks.
///
/// Construction performs the FIPS-197 key schedule once; each block
/// operation then only does the rounds.
///
/// ```
/// use horus_crypto::aes::Aes128;
/// let aes = Aes128::new(&[0u8; 16]);
/// let ct = aes.encrypt_block(&[0u8; 16]);
/// assert_eq!(aes.decrypt_block(&ct), [0u8; 16]);
/// ```
#[derive(Clone)]
pub struct Aes128 {
    round_keys: [[u8; 16]; ROUNDS + 1],
    /// The same round keys as big-endian column words, the form the
    /// T-table rounds consume.
    enc_keys: [[u32; 4]; ROUNDS + 1],
    /// Which implementation executes the rounds. Invariant: `Hardware`
    /// only ever appears after [`hardware_available`] returned true
    /// (both constructors enforce it), which is what makes the
    /// `unsafe` intrinsic calls in [`hw`] sound.
    backend: AesBackend,
}

impl std::fmt::Debug for Aes128 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        f.debug_struct("Aes128")
            .field("round_keys", &"<redacted>")
            .finish()
    }
}

impl Aes128 {
    /// Expands `key` into the 11 round keys of AES-128, running block
    /// operations on the process-wide [`active_backend`].
    #[must_use]
    pub fn new(key: &[u8; 16]) -> Self {
        Self::with_backend(key, active_backend())
    }

    /// [`new`](Self::new) pinned to an explicit backend — the handle the
    /// soft-vs-hardware equivalence tests and benchmarks use to compare
    /// both implementations inside one process.
    ///
    /// # Panics
    ///
    /// Panics if [`AesBackend::Hardware`] is requested on a host whose
    /// CPU lacks AES-NI (use [`hardware_available`] to probe first).
    #[must_use]
    pub fn with_backend(key: &[u8; 16], backend: AesBackend) -> Self {
        assert!(
            backend == AesBackend::Software || hardware_available(),
            "AES hardware backend requested but AES-NI is not available"
        );
        let mut w = [[0u8; 4]; 4 * (ROUNDS + 1)];
        for (i, chunk) in key.chunks_exact(4).enumerate() {
            w[i].copy_from_slice(chunk);
        }
        for i in 4..4 * (ROUNDS + 1) {
            let mut temp = w[i - 1];
            if i % 4 == 0 {
                // RotWord + SubWord + Rcon
                temp = [
                    SBOX[temp[1] as usize] ^ RCON[i / 4 - 1],
                    SBOX[temp[2] as usize],
                    SBOX[temp[3] as usize],
                    SBOX[temp[0] as usize],
                ];
            }
            for j in 0..4 {
                w[i][j] = w[i - 4][j] ^ temp[j];
            }
        }
        let mut round_keys = [[0u8; 16]; ROUNDS + 1];
        let mut enc_keys = [[0u32; 4]; ROUNDS + 1];
        for r in 0..=ROUNDS {
            for c in 0..4 {
                round_keys[r][4 * c..4 * c + 4].copy_from_slice(&w[4 * r + c]);
                enc_keys[r][c] = u32::from_be_bytes(w[4 * r + c]);
            }
        }
        Self {
            round_keys,
            enc_keys,
            backend,
        }
    }

    /// The backend this instance runs block operations on.
    #[must_use]
    pub fn backend(&self) -> AesBackend {
        self.backend
    }

    /// Encrypts one 16-byte block.
    #[must_use]
    pub fn encrypt_block(&self, block: &AesBlock) -> AesBlock {
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        if self.backend == AesBackend::Hardware {
            return hw::encrypt_block(&self.round_keys, block);
        }
        self.encrypt_block_soft(block)
    }

    /// The T-table path of [`encrypt_block`](Self::encrypt_block).
    fn encrypt_block_soft(&self, block: &AesBlock) -> AesBlock {
        let mut s = load_columns(block);
        for (col, key) in s.iter_mut().zip(&self.enc_keys[0]) {
            *col ^= key;
        }
        for r in 1..ROUNDS {
            s = ttable_round(&s, &self.enc_keys[r]);
        }
        store_columns(&ttable_final(&s, &self.enc_keys[ROUNDS]))
    }

    /// Encrypts four independent 16-byte blocks with their rounds
    /// interleaved, so the four dependency chains overlap instead of
    /// running back to back. This is the natural unit for the OTP path:
    /// one 64-byte memory line needs exactly four pad blocks.
    #[must_use]
    pub fn encrypt4(&self, blocks: &[AesBlock; 4]) -> [AesBlock; 4] {
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        if self.backend == AesBackend::Hardware {
            return hw::encrypt4(&self.round_keys, blocks);
        }
        let mut s: [[u32; 4]; 4] = core::array::from_fn(|i| load_columns(&blocks[i]));
        for lane in &mut s {
            for (col, key) in lane.iter_mut().zip(&self.enc_keys[0]) {
                *col ^= key;
            }
        }
        for r in 1..ROUNDS {
            let rk = &self.enc_keys[r];
            for lane in &mut s {
                *lane = ttable_round(lane, rk);
            }
        }
        let rk = &self.enc_keys[ROUNDS];
        core::array::from_fn(|i| store_columns(&ttable_final(&s[i], rk)))
    }

    /// Encrypts a batch of blocks in place, running complete groups of
    /// four through the interleaved [`encrypt4`](Self::encrypt4) kernel
    /// and any remainder one block at a time.
    pub fn encrypt_blocks(&self, blocks: &mut [AesBlock]) {
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        if self.backend == AesBackend::Hardware {
            hw::encrypt_blocks(&self.round_keys, blocks);
            return;
        }
        let mut quads = blocks.chunks_exact_mut(4);
        for quad in &mut quads {
            let quad: &mut [AesBlock; 4] = quad.try_into().expect("chunk of 4");
            *quad = self.encrypt4(quad);
        }
        for block in quads.into_remainder() {
            *block = self.encrypt_block(block);
        }
    }

    /// CBC absorption: folds `msg` (a whole number of 16-byte blocks)
    /// into the running value `x` as `x = E(x ⊕ mᵢ)` per block — the
    /// chain at the heart of CMAC. The hardware path keeps `x` in an XMM
    /// register across the whole chain instead of round-tripping through
    /// memory per block, which is the CMAC fast path's win.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `msg.len()` is not a multiple of 16.
    #[must_use]
    pub fn cbc_absorb(&self, x: &AesBlock, msg: &[u8]) -> AesBlock {
        debug_assert_eq!(msg.len() % AES_BLOCK_SIZE, 0);
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        if self.backend == AesBackend::Hardware {
            return hw::cbc_absorb(&self.round_keys, x, msg);
        }
        let mut x = *x;
        for block in msg.chunks_exact(AES_BLOCK_SIZE) {
            for (xj, bj) in x.iter_mut().zip(block.iter()) {
                *xj ^= bj;
            }
            x = self.encrypt_block_soft(&x);
        }
        x
    }

    /// Decrypts one 16-byte block (the FIPS-197 inverse cipher).
    ///
    /// Decryption is only used by tests and round-trip checks, never on
    /// the simulator's hot path (CTR mode and CMAC only encrypt), so it
    /// keeps the byte-oriented form.
    #[must_use]
    pub fn decrypt_block(&self, block: &AesBlock) -> AesBlock {
        let mut state = *block;
        add_round_key(&mut state, &self.round_keys[ROUNDS]);
        for r in (1..ROUNDS).rev() {
            inv_shift_rows(&mut state);
            inv_sub_bytes(&mut state);
            add_round_key(&mut state, &self.round_keys[r]);
            inv_mix_columns(&mut state);
        }
        inv_shift_rows(&mut state);
        inv_sub_bytes(&mut state);
        add_round_key(&mut state, &self.round_keys[0]);
        state
    }
}

#[cfg(all(target_arch = "x86_64", not(miri)))]
mod hw {
    //! The AES-NI kernel: one `aesenc` per middle round and one
    //! `aesenclast` for the final round, fed the same byte-form round
    //! keys the software key schedule produced (`round_keys[r]` is
    //! exactly the 16 bytes `_mm_loadu_si128` wants, so no
    //! `aeskeygenassist` reimplementation is needed and both paths
    //! provably share one key schedule).
    //!
    //! Safety: every public function here requires that the caller has
    //! verified AES-NI support. The only call sites are the
    //! `AesBackend::Hardware` dispatch arms in [`Aes128`], and the
    //! `Hardware` tag can only be constructed after
    //! [`super::hardware_available`] returned true — the constructors
    //! assert it. `_mm_loadu_si128`/`_mm_storeu_si128` are unaligned
    //! loads/stores over `[u8; 16]`, so there are no alignment or
    //! validity requirements beyond the feature check.
    #![allow(unsafe_code)]

    use super::{AesBlock, AES_BLOCK_SIZE, ROUNDS};
    use core::arch::x86_64::{
        __m128i, _mm_aesenc_si128, _mm_aesenclast_si128, _mm_loadu_si128, _mm_setzero_si128,
        _mm_storeu_si128, _mm_xor_si128,
    };

    type RoundKeys = [[u8; 16]; ROUNDS + 1];

    /// The interleave width of the batch path: 8 in-flight lanes cover
    /// the 4-cycle `aesenc` latency at its 1/cycle issue rate.
    const LANES: usize = 8;

    #[inline]
    #[target_feature(enable = "aes")]
    unsafe fn load_keys(rk: &RoundKeys) -> [__m128i; ROUNDS + 1] {
        let mut keys = [_mm_setzero_si128(); ROUNDS + 1];
        for (key, bytes) in keys.iter_mut().zip(rk.iter()) {
            *key = _mm_loadu_si128(bytes.as_ptr().cast::<__m128i>());
        }
        keys
    }

    /// Runs the ten rounds over one state register.
    #[inline]
    #[target_feature(enable = "aes")]
    unsafe fn rounds(keys: &[__m128i; ROUNDS + 1], mut s: __m128i) -> __m128i {
        s = _mm_xor_si128(s, keys[0]);
        for key in &keys[1..ROUNDS] {
            s = _mm_aesenc_si128(s, *key);
        }
        _mm_aesenclast_si128(s, keys[ROUNDS])
    }

    #[target_feature(enable = "aes")]
    unsafe fn encrypt_block_impl(rk: &RoundKeys, block: &AesBlock) -> AesBlock {
        let keys = load_keys(rk);
        let s = rounds(&keys, _mm_loadu_si128(block.as_ptr().cast::<__m128i>()));
        let mut out = [0u8; 16];
        _mm_storeu_si128(out.as_mut_ptr().cast::<__m128i>(), s);
        out
    }

    /// Encrypts up to [`LANES`] independent blocks in place with their
    /// rounds interleaved, so the dependency chain of one lane hides
    /// behind the others'.
    #[target_feature(enable = "aes")]
    unsafe fn encrypt_up_to_lanes(keys: &[__m128i; ROUNDS + 1], blocks: &mut [AesBlock]) {
        debug_assert!(blocks.len() <= LANES);
        let n = blocks.len();
        let mut s = [_mm_setzero_si128(); LANES];
        for (lane, block) in s.iter_mut().zip(blocks.iter()) {
            *lane = _mm_xor_si128(_mm_loadu_si128(block.as_ptr().cast::<__m128i>()), keys[0]);
        }
        for key in &keys[1..ROUNDS] {
            for lane in s.iter_mut().take(n) {
                *lane = _mm_aesenc_si128(*lane, *key);
            }
        }
        for (lane, block) in s.iter().zip(blocks.iter_mut()) {
            let last = _mm_aesenclast_si128(*lane, keys[ROUNDS]);
            _mm_storeu_si128(block.as_mut_ptr().cast::<__m128i>(), last);
        }
    }

    pub(super) fn encrypt_block(rk: &RoundKeys, block: &AesBlock) -> AesBlock {
        // Safety: AES-NI support was verified before the Hardware tag
        // could exist (see the module docs).
        unsafe { encrypt_block_impl(rk, block) }
    }

    pub(super) fn encrypt4(rk: &RoundKeys, blocks: &[AesBlock; 4]) -> [AesBlock; 4] {
        let mut out = *blocks;
        // Safety: as above.
        unsafe {
            let keys = load_keys(rk);
            encrypt_up_to_lanes(&keys, &mut out);
        }
        out
    }

    pub(super) fn encrypt_blocks(rk: &RoundKeys, blocks: &mut [AesBlock]) {
        // Safety: as above.
        unsafe {
            let keys = load_keys(rk);
            for chunk in blocks.chunks_mut(LANES) {
                encrypt_up_to_lanes(&keys, chunk);
            }
        }
    }

    #[target_feature(enable = "aes")]
    unsafe fn cbc_absorb_impl(rk: &RoundKeys, x: &AesBlock, msg: &[u8]) -> AesBlock {
        let keys = load_keys(rk);
        let mut s = _mm_loadu_si128(x.as_ptr().cast::<__m128i>());
        for block in msg.chunks_exact(AES_BLOCK_SIZE) {
            let m = _mm_loadu_si128(block.as_ptr().cast::<__m128i>());
            s = rounds(&keys, _mm_xor_si128(s, m));
        }
        let mut out = [0u8; 16];
        _mm_storeu_si128(out.as_mut_ptr().cast::<__m128i>(), s);
        out
    }

    pub(super) fn cbc_absorb(rk: &RoundKeys, x: &AesBlock, msg: &[u8]) -> AesBlock {
        // Safety: as above; `chunks_exact` never reads past `msg`.
        unsafe { cbc_absorb_impl(rk, x, msg) }
    }
}

// The state is stored column-major as in FIPS-197: state[4*c + r] is row r,
// column c.

fn add_round_key(state: &mut AesBlock, rk: &[u8; 16]) {
    for (s, k) in state.iter_mut().zip(rk.iter()) {
        *s ^= k;
    }
}

fn inv_sub_bytes(state: &mut AesBlock) {
    for b in state.iter_mut() {
        *b = INV_SBOX[*b as usize];
    }
}

fn inv_shift_rows(state: &mut AesBlock) {
    for r in 1..4 {
        let row = [state[r], state[4 + r], state[8 + r], state[12 + r]];
        for c in 0..4 {
            state[4 * c + r] = row[(c + 4 - r) % 4];
        }
    }
}

fn inv_mix_columns(state: &mut AesBlock) {
    for c in 0..4 {
        let col = [
            state[4 * c],
            state[4 * c + 1],
            state[4 * c + 2],
            state[4 * c + 3],
        ];
        state[4 * c] = gf_mul(col[0], 0x0e)
            ^ gf_mul(col[1], 0x0b)
            ^ gf_mul(col[2], 0x0d)
            ^ gf_mul(col[3], 0x09);
        state[4 * c + 1] = gf_mul(col[0], 0x09)
            ^ gf_mul(col[1], 0x0e)
            ^ gf_mul(col[2], 0x0b)
            ^ gf_mul(col[3], 0x0d);
        state[4 * c + 2] = gf_mul(col[0], 0x0d)
            ^ gf_mul(col[1], 0x09)
            ^ gf_mul(col[2], 0x0e)
            ^ gf_mul(col[3], 0x0b);
        state[4 * c + 3] = gf_mul(col[0], 0x0b)
            ^ gf_mul(col[1], 0x0d)
            ^ gf_mul(col[2], 0x09)
            ^ gf_mul(col[3], 0x0e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // ----- byte-oriented reference cipher ----------------------------------
    // The straightforward FIPS-197 round functions the T-table encrypt
    // replaced, kept as the oracle for the equivalence tests below.

    fn sub_bytes(state: &mut AesBlock) {
        for b in state.iter_mut() {
            *b = SBOX[*b as usize];
        }
    }

    fn shift_rows(state: &mut AesBlock) {
        // Row r is rotated left by r positions.
        for r in 1..4 {
            let row = [state[r], state[4 + r], state[8 + r], state[12 + r]];
            for c in 0..4 {
                state[4 * c + r] = row[(c + r) % 4];
            }
        }
    }

    fn mix_columns(state: &mut AesBlock) {
        for c in 0..4 {
            let col = [
                state[4 * c],
                state[4 * c + 1],
                state[4 * c + 2],
                state[4 * c + 3],
            ];
            let t = col[0] ^ col[1] ^ col[2] ^ col[3];
            state[4 * c] = col[0] ^ t ^ xtime(col[0] ^ col[1]);
            state[4 * c + 1] = col[1] ^ t ^ xtime(col[1] ^ col[2]);
            state[4 * c + 2] = col[2] ^ t ^ xtime(col[2] ^ col[3]);
            state[4 * c + 3] = col[3] ^ t ^ xtime(col[3] ^ col[0]);
        }
    }

    fn encrypt_block_reference(aes: &Aes128, block: &AesBlock) -> AesBlock {
        let mut state = *block;
        add_round_key(&mut state, &aes.round_keys[0]);
        for r in 1..ROUNDS {
            sub_bytes(&mut state);
            shift_rows(&mut state);
            mix_columns(&mut state);
            add_round_key(&mut state, &aes.round_keys[r]);
        }
        sub_bytes(&mut state);
        shift_rows(&mut state);
        add_round_key(&mut state, &aes.round_keys[ROUNDS]);
        state
    }

    /// Deterministic pseudo-random test blocks.
    fn test_block(i: u32) -> AesBlock {
        core::array::from_fn(|j| {
            let x = (i as u64)
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add((j as u64).wrapping_mul(0x517c_c1b7_2722_0a95));
            (x >> 32) as u8
        })
    }

    /// FIPS-197 Appendix B example vector.
    #[test]
    fn fips197_appendix_b() {
        let key = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let plain = [
            0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
            0x07, 0x34,
        ];
        let expected = [
            0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb, 0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a,
            0x0b, 0x32,
        ];
        let aes = Aes128::new(&key);
        assert_eq!(aes.encrypt_block(&plain), expected);
        assert_eq!(aes.decrypt_block(&expected), plain);
    }

    /// FIPS-197 Appendix C.1 (AES-128) known-answer test.
    #[test]
    fn fips197_appendix_c1() {
        let key: [u8; 16] = core::array::from_fn(|i| i as u8);
        let plain: [u8; 16] = core::array::from_fn(|i| (i as u8) * 0x11);
        let expected = [
            0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4,
            0xc5, 0x5a,
        ];
        let aes = Aes128::new(&key);
        assert_eq!(aes.encrypt_block(&plain), expected);
        assert_eq!(aes.decrypt_block(&expected), plain);
    }

    #[test]
    fn key_schedule_first_and_last_round_keys() {
        // FIPS-197 Appendix A.1 expanded-key words.
        let key = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let aes = Aes128::new(&key);
        assert_eq!(aes.round_keys[0], key);
        let last = [
            0xd0, 0x14, 0xf9, 0xa8, 0xc9, 0xee, 0x25, 0x89, 0xe1, 0x3f, 0x0c, 0xc8, 0xb6, 0x63,
            0x0c, 0xa6,
        ];
        assert_eq!(aes.round_keys[10], last);
    }

    #[test]
    fn word_round_keys_match_byte_round_keys() {
        let aes = Aes128::new(&[0x42; 16]);
        for r in 0..=ROUNDS {
            for c in 0..4 {
                let bytes: [u8; 4] = aes.round_keys[r][4 * c..4 * c + 4].try_into().unwrap();
                assert_eq!(aes.enc_keys[r][c], u32::from_be_bytes(bytes));
            }
        }
    }

    #[test]
    #[cfg_attr(miri, ignore = "8 keys x 64 blocks x 2 impls is minutes under miri")]
    fn ttable_encrypt_matches_reference() {
        for k in 0..8u32 {
            let aes = Aes128::new(&test_block(1000 + k));
            for i in 0..64u32 {
                let pt = test_block(i);
                assert_eq!(aes.encrypt_block(&pt), encrypt_block_reference(&aes, &pt));
            }
        }
    }

    #[test]
    fn encrypt4_matches_single_block() {
        let aes = Aes128::new(&[0x37; 16]);
        let blocks: [AesBlock; 4] = core::array::from_fn(|i| test_block(i as u32));
        let batched = aes.encrypt4(&blocks);
        for (b, out) in blocks.iter().zip(batched.iter()) {
            assert_eq!(aes.encrypt_block(b), *out);
        }
    }

    #[test]
    fn encrypt_blocks_handles_remainders() {
        let aes = Aes128::new(&[0x91; 16]);
        for n in 0..11usize {
            let mut batch: Vec<AesBlock> = (0..n).map(|i| test_block(i as u32)).collect();
            let expected: Vec<AesBlock> = batch.iter().map(|b| aes.encrypt_block(b)).collect();
            aes.encrypt_blocks(&mut batch);
            assert_eq!(batch, expected, "batch of {n}");
        }
    }

    #[test]
    #[cfg_attr(miri, ignore = "512 block ops are minutes under miri")]
    fn roundtrip_many_blocks() {
        let aes = Aes128::new(&[0x42; 16]);
        for i in 0..256u32 {
            let mut pt = [0u8; 16];
            pt[0..4].copy_from_slice(&i.to_le_bytes());
            pt[7] = (i * 7) as u8;
            let ct = aes.encrypt_block(&pt);
            assert_ne!(ct, pt, "ciphertext must differ from plaintext");
            assert_eq!(aes.decrypt_block(&ct), pt);
        }
    }

    #[test]
    fn different_keys_different_ciphertexts() {
        let a = Aes128::new(&[1; 16]);
        let b = Aes128::new(&[2; 16]);
        let pt = [0x5a; 16];
        assert_ne!(a.encrypt_block(&pt), b.encrypt_block(&pt));
    }

    #[test]
    fn gf_mul_matches_xtime() {
        for b in 0..=255u8 {
            assert_eq!(gf_mul(b, 2), xtime(b));
            assert_eq!(gf_mul(b, 1), b);
            assert_eq!(gf_mul(b, 0), 0);
        }
    }

    #[test]
    fn te_tables_encode_mix_columns() {
        // TE0[x] must be the MixColumns image of S[x] placed in row 0.
        for x in 0..=255usize {
            let s = SBOX[x];
            let mut col = [s, 0, 0, 0];
            let mut state = [0u8; 16];
            state[..4].copy_from_slice(&col);
            mix_columns(&mut state);
            col.copy_from_slice(&state[..4]);
            assert_eq!(TE0[x], u32::from_be_bytes(col));
            assert_eq!(TE1[x], TE0[x].rotate_right(8));
            assert_eq!(TE2[x], TE0[x].rotate_right(16));
            assert_eq!(TE3[x], TE0[x].rotate_right(24));
        }
    }

    #[test]
    fn debug_redacts_key() {
        let aes = Aes128::new(&[9; 16]);
        let s = format!("{aes:?}");
        assert!(s.contains("redacted"));
        assert!(!s.contains('9'));
    }

    // ----- backend selection -----------------------------------------------

    #[test]
    fn backend_from_override_semantics() {
        use std::ffi::OsStr;
        let set = |v: &str| Some(OsStr::new(v).to_os_string());
        // No override: follow the hardware probe.
        assert_eq!(backend_from(None, true), AesBackend::Hardware);
        assert_eq!(backend_from(None, false), AesBackend::Software);
        // Empty and "0" count as unset (shell `HORUS_FORCE_SOFT_AES= cmd`).
        assert_eq!(backend_from(set("").as_deref(), true), AesBackend::Hardware);
        assert_eq!(
            backend_from(set("0").as_deref(), true),
            AesBackend::Hardware
        );
        // Any other value forces the software path.
        assert_eq!(
            backend_from(set("1").as_deref(), true),
            AesBackend::Software
        );
        assert_eq!(
            backend_from(set("yes").as_deref(), true),
            AesBackend::Software
        );
        // Forcing soft on a soft-only host is a no-op, not an error.
        assert_eq!(
            backend_from(set("1").as_deref(), false),
            AesBackend::Software
        );
    }

    #[test]
    fn backend_display_names() {
        assert_eq!(AesBackend::Hardware.to_string(), "aes-ni");
        assert_eq!(AesBackend::Software.to_string(), "soft");
    }

    #[test]
    fn active_backend_is_stable_and_consistent() {
        // Whatever the process-wide decision was, it must be cached and the
        // default constructor must agree with it.
        assert_eq!(active_backend(), active_backend());
        assert_eq!(Aes128::new(&[7; 16]).backend(), active_backend());
        if !hardware_available() {
            assert_eq!(active_backend(), AesBackend::Software);
        }
    }

    #[test]
    fn software_backend_always_constructible() {
        let aes = Aes128::with_backend(&[3; 16], AesBackend::Software);
        assert_eq!(aes.backend(), AesBackend::Software);
        // The software instance still passes the Appendix C.1 vector.
        let key: [u8; 16] = core::array::from_fn(|i| i as u8);
        let plain: [u8; 16] = core::array::from_fn(|i| (i as u8) * 0x11);
        let soft = Aes128::with_backend(&key, AesBackend::Software);
        assert_eq!(
            soft.encrypt_block(&plain),
            [
                0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4,
                0xc5, 0x5a,
            ]
        );
    }

    #[test]
    fn cbc_absorb_matches_manual_chain() {
        let aes = Aes128::new(&[0x5c; 16]);
        for nblocks in 0..5usize {
            let msg: Vec<u8> = (0..nblocks * AES_BLOCK_SIZE).map(|i| i as u8).collect();
            let iv = test_block(99);
            let mut expect = iv;
            for block in msg.chunks_exact(AES_BLOCK_SIZE) {
                for (xj, bj) in expect.iter_mut().zip(block.iter()) {
                    *xj ^= bj;
                }
                expect = aes.encrypt_block(&expect);
            }
            assert_eq!(aes.cbc_absorb(&iv, &msg), expect, "{nblocks} blocks");
        }
    }

    /// Soft vs AES-NI agreement on the FIPS-197 vectors plus deterministic
    /// pseudo-random keys/blocks, across every public entry point. Skipped
    /// (with a notice) on hosts without the `aes` feature; the CI
    /// `soft-crypto` lane covers the reverse direction by forcing the
    /// software path on hardware-capable runners.
    #[test]
    fn hardware_backend_matches_software() {
        if !hardware_available() {
            eprintln!("SKIPPED: hardware_backend_matches_software (CPU lacks AES-NI)");
            return;
        }
        let fips_key = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let mut keys: Vec<[u8; 16]> = vec![fips_key, core::array::from_fn(|i| i as u8)];
        keys.extend((0..8u32).map(|k| test_block(2000 + k)));
        for key in keys {
            let hw = Aes128::with_backend(&key, AesBackend::Hardware);
            let sw = Aes128::with_backend(&key, AesBackend::Software);
            assert_eq!(hw.backend(), AesBackend::Hardware);
            for i in 0..32u32 {
                let pt = test_block(i);
                assert_eq!(hw.encrypt_block(&pt), sw.encrypt_block(&pt));
            }
            let quad: [AesBlock; 4] = core::array::from_fn(|i| test_block(40 + i as u32));
            assert_eq!(hw.encrypt4(&quad), sw.encrypt4(&quad));
            for n in 0..19usize {
                let mut hw_batch: Vec<AesBlock> = (0..n).map(|i| test_block(i as u32)).collect();
                let mut sw_batch = hw_batch.clone();
                hw.encrypt_blocks(&mut hw_batch);
                sw.encrypt_blocks(&mut sw_batch);
                assert_eq!(hw_batch, sw_batch, "batch of {n}");
            }
            let msg: Vec<u8> = (0..7 * AES_BLOCK_SIZE).map(|i| (i * 3) as u8).collect();
            let iv = test_block(77);
            assert_eq!(hw.cbc_absorb(&iv, &msg), sw.cbc_absorb(&iv, &msg));
        }
    }
}
