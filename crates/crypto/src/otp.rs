//! Counter-mode encryption (CME) for 64-byte memory blocks.
//!
//! As in the paper's Figure 2, the encryption engine never sees the data:
//! it encrypts `address || counter || lane` to produce a one-time pad
//! (OTP) that is XOR'ed with the plaintext/ciphertext. Temporal uniqueness
//! comes from the counter (incremented per write), spatial uniqueness from
//! including the address in the seed.
//!
//! A 64-byte block needs four AES blocks of pad; the `lane` byte
//! distinguishes them.

use crate::aes::{Aes128, AesBlock};
use crate::{DataBlock, BLOCK_SIZE};

/// Number of 16-byte AES pads per 64-byte memory block.
pub const PADS_PER_BLOCK: usize = BLOCK_SIZE / 16;

/// Builds the AES input seeding one pad lane: `address (8B) || counter
/// (7B) || lane (1B)`.
///
/// The counter is truncated to 56 bits, which mirrors real split-counter
/// designs where the concatenated (major, minor) counter is bounded; the
/// public API takes a full `u64` for convenience and the truncation is an
/// internal layout choice (counters in this system are far below 2^56).
fn seed(address: u64, counter: u64, lane: u8) -> AesBlock {
    let mut s = [0u8; 16];
    s[..8].copy_from_slice(&address.to_le_bytes());
    s[8..15].copy_from_slice(&counter.to_le_bytes()[..7]);
    s[15] = lane;
    s
}

/// Generates the 64-byte one-time pad for `(address, counter)`.
///
/// ```
/// use horus_crypto::{Aes128, otp::one_time_pad};
/// let key = Aes128::new(&[1; 16]);
/// let a = one_time_pad(&key, 0x1000, 5);
/// let b = one_time_pad(&key, 0x1000, 6);
/// assert_ne!(a, b, "bumping the counter must change the pad");
/// ```
#[must_use]
pub fn one_time_pad(key: &Aes128, address: u64, counter: u64) -> DataBlock {
    // All four pad lanes go through the interleaved batch kernel in one
    // call instead of four serial block encryptions.
    let seeds: [AesBlock; PADS_PER_BLOCK] =
        core::array::from_fn(|lane| seed(address, counter, lane as u8));
    let chunks = key.encrypt4(&seeds);
    let mut pad = [0u8; BLOCK_SIZE];
    for (lane, chunk) in chunks.iter().enumerate() {
        pad[lane * 16..(lane + 1) * 16].copy_from_slice(chunk);
    }
    pad
}

/// Encrypts (or decrypts — the operation is an involution) a 64-byte block
/// in counter mode with `(address, counter)` as the initialization vector.
#[must_use]
pub fn encrypt_block_ctr(key: &Aes128, address: u64, counter: u64, block: &DataBlock) -> DataBlock {
    let pad = one_time_pad(key, address, counter);
    let mut out = [0u8; BLOCK_SIZE];
    for i in 0..BLOCK_SIZE {
        out[i] = block[i] ^ pad[i];
    }
    out
}

/// Decrypts a block encrypted by [`encrypt_block_ctr`]. Provided for call
/// sites where the direction matters for readability; the operation is the
/// same XOR.
#[must_use]
pub fn decrypt_block_ctr(key: &Aes128, address: u64, counter: u64, block: &DataBlock) -> DataBlock {
    encrypt_block_ctr(key, address, counter, block)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> Aes128 {
        Aes128::new(&[0x5c; 16])
    }

    #[test]
    fn roundtrip() {
        let k = key();
        let pt: DataBlock = core::array::from_fn(|i| i as u8);
        let ct = encrypt_block_ctr(&k, 0xdead_beef, 42, &pt);
        assert_ne!(ct, pt);
        assert_eq!(decrypt_block_ctr(&k, 0xdead_beef, 42, &ct), pt);
    }

    #[test]
    fn spatial_uniqueness() {
        // Same plaintext + counter at two addresses yields two ciphertexts.
        let k = key();
        let pt = [0u8; BLOCK_SIZE];
        let a = encrypt_block_ctr(&k, 0x1000, 1, &pt);
        let b = encrypt_block_ctr(&k, 0x1040, 1, &pt);
        assert_ne!(a, b);
    }

    #[test]
    fn temporal_uniqueness() {
        // Same plaintext + address across two counters yields two
        // ciphertexts — the property the drain counter provides in Horus.
        let k = key();
        let pt = [0u8; BLOCK_SIZE];
        let a = encrypt_block_ctr(&k, 0x1000, 1, &pt);
        let b = encrypt_block_ctr(&k, 0x1000, 2, &pt);
        assert_ne!(a, b);
    }

    #[test]
    fn pad_lanes_are_distinct() {
        let pad = one_time_pad(&key(), 7, 9);
        for i in 0..PADS_PER_BLOCK {
            for j in (i + 1)..PADS_PER_BLOCK {
                assert_ne!(pad[i * 16..(i + 1) * 16], pad[j * 16..(j + 1) * 16]);
            }
        }
    }

    #[test]
    fn wrong_counter_garbles() {
        let k = key();
        let pt: DataBlock = core::array::from_fn(|i| (i * 3) as u8);
        let ct = encrypt_block_ctr(&k, 0x40, 10, &pt);
        assert_ne!(decrypt_block_ctr(&k, 0x40, 11, &ct), pt);
    }

    #[test]
    fn counter_truncation_boundary() {
        // Counters equal mod 2^56 produce the same pad (documented layout);
        // counters differing below that bound never collide.
        let k = key();
        let a = one_time_pad(&k, 0, 1);
        let b = one_time_pad(&k, 0, 1 + (1u64 << 56));
        assert_eq!(a, b);
        let c = one_time_pad(&k, 0, 2);
        assert_ne!(a, c);
    }
}
