//! Property tests for the cryptographic primitives.

use horus_crypto::aes::{hardware_available, AesBackend};
use horus_crypto::{ct_eq, otp, Aes128, Cmac, Mac64};
use proptest::prelude::*;

/// Prints the "no AES-NI on this host" notice once per process, so a run
/// where the hardware-equivalence properties degraded to no-ops is visible
/// in the log instead of silently green.
fn hardware_or_skip(test: &str) -> bool {
    if hardware_available() {
        return true;
    }
    static NOTICE: std::sync::Once = std::sync::Once::new();
    NOTICE.call_once(|| {
        eprintln!("SKIPPED: soft-vs-hardware AES equivalence properties (CPU lacks AES-NI)");
    });
    eprintln!("SKIPPED: {test}");
    false
}

proptest! {
    /// The AES-NI backend is bit-identical to the T-table software cipher
    /// for any key and block, across every public encrypt entry point.
    #[test]
    fn hardware_aes_equivalent_to_software(
        key in prop::array::uniform16(any::<u8>()),
        pt in prop::array::uniform16(any::<u8>()),
        batch in prop::collection::vec(prop::array::uniform16(any::<u8>()), 0..24),
    ) {
        if hardware_or_skip("hardware_aes_equivalent_to_software") {
            let hw = Aes128::with_backend(&key, AesBackend::Hardware);
            let sw = Aes128::with_backend(&key, AesBackend::Software);
            prop_assert_eq!(hw.encrypt_block(&pt), sw.encrypt_block(&pt));
            let quad = [pt, key, pt, key];
            prop_assert_eq!(hw.encrypt4(&quad), sw.encrypt4(&quad));
            let mut hw_batch = batch.clone();
            let mut sw_batch = batch;
            hw.encrypt_blocks(&mut hw_batch);
            sw.encrypt_blocks(&mut sw_batch);
            prop_assert_eq!(hw_batch, sw_batch);
        }
    }

    /// The CMAC fast path (CBC absorb in XMM registers) agrees with the
    /// software chain for arbitrary messages, including the padded tail
    /// cases.
    #[test]
    fn hardware_cmac_equivalent_to_software(
        key in prop::array::uniform16(any::<u8>()),
        iv in prop::array::uniform16(any::<u8>()),
        msg in prop::collection::vec(any::<u8>(), 0..200),
    ) {
        if hardware_or_skip("hardware_cmac_equivalent_to_software") {
            let hw = Aes128::with_backend(&key, AesBackend::Hardware);
            let sw = Aes128::with_backend(&key, AesBackend::Software);
            let whole = msg.len() - msg.len() % 16;
            prop_assert_eq!(hw.cbc_absorb(&iv, &msg[..whole]), sw.cbc_absorb(&iv, &msg[..whole]));
            let hw_tag = Cmac::with_cipher(hw).mac64(&msg);
            let sw_tag = Cmac::with_cipher(sw).mac64(&msg);
            prop_assert_eq!(hw_tag, sw_tag);
        }
    }
}

proptest! {
    #[test]
    fn aes_roundtrip_any_key_any_block(
        key in prop::array::uniform16(any::<u8>()),
        pt in prop::array::uniform16(any::<u8>()),
    ) {
        let aes = Aes128::new(&key);
        let ct = aes.encrypt_block(&pt);
        prop_assert_eq!(aes.decrypt_block(&ct), pt);
    }

    #[test]
    fn aes_is_a_permutation(
        key in prop::array::uniform16(any::<u8>()),
        a in prop::array::uniform16(any::<u8>()),
        b in prop::array::uniform16(any::<u8>()),
    ) {
        prop_assume!(a != b);
        let aes = Aes128::new(&key);
        prop_assert_ne!(aes.encrypt_block(&a), aes.encrypt_block(&b));
    }

    #[test]
    fn cmac_agrees_with_itself_and_rejects_prefixes(
        key in prop::array::uniform16(any::<u8>()),
        msg in prop::collection::vec(any::<u8>(), 1..200),
    ) {
        let cmac = Cmac::new(&key);
        let tag = cmac.mac64(&msg);
        prop_assert_eq!(Cmac::new(&key).mac64(&msg), tag);
        // A strict prefix must not collide (the CMAC padding/domain
        // separation property).
        let prefix = &msg[..msg.len() - 1];
        prop_assert_ne!(cmac.mac64(prefix), tag);
    }

    #[test]
    fn cmac_keys_separate(
        k1 in prop::array::uniform16(any::<u8>()),
        k2 in prop::array::uniform16(any::<u8>()),
        msg in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        prop_assume!(k1 != k2);
        prop_assert_ne!(Cmac::new(&k1).mac64(&msg), Cmac::new(&k2).mac64(&msg));
    }

    #[test]
    fn otp_pads_unique_over_counter_and_address(
        key in prop::array::uniform16(any::<u8>()),
        addr1 in (0u64..1 << 35).prop_map(|a| a & !63),
        addr2 in (0u64..1 << 35).prop_map(|a| a & !63),
        c1 in 0u64..1 << 50,
        c2 in 0u64..1 << 50,
    ) {
        let aes = Aes128::new(&key);
        prop_assume!((addr1, c1) != (addr2, c2));
        prop_assert_ne!(
            otp::one_time_pad(&aes, addr1, c1),
            otp::one_time_pad(&aes, addr2, c2),
            "distinct (address, counter) seeds must give distinct pads"
        );
    }

    #[test]
    fn ct_eq_matches_plain_equality(
        a in prop::collection::vec(any::<u8>(), 0..40),
        b in prop::collection::vec(any::<u8>(), 0..40),
    ) {
        prop_assert_eq!(ct_eq(&a, &b), a == b);
    }

    #[test]
    fn mac64_u64_roundtrip(v in any::<u64>()) {
        prop_assert_eq!(Mac64::from(v).as_u64(), v);
    }
}
