//! Property tests for the cryptographic primitives.

use horus_crypto::{ct_eq, otp, Aes128, Cmac, Mac64};
use proptest::prelude::*;

proptest! {
    #[test]
    fn aes_roundtrip_any_key_any_block(
        key in prop::array::uniform16(any::<u8>()),
        pt in prop::array::uniform16(any::<u8>()),
    ) {
        let aes = Aes128::new(&key);
        let ct = aes.encrypt_block(&pt);
        prop_assert_eq!(aes.decrypt_block(&ct), pt);
    }

    #[test]
    fn aes_is_a_permutation(
        key in prop::array::uniform16(any::<u8>()),
        a in prop::array::uniform16(any::<u8>()),
        b in prop::array::uniform16(any::<u8>()),
    ) {
        prop_assume!(a != b);
        let aes = Aes128::new(&key);
        prop_assert_ne!(aes.encrypt_block(&a), aes.encrypt_block(&b));
    }

    #[test]
    fn cmac_agrees_with_itself_and_rejects_prefixes(
        key in prop::array::uniform16(any::<u8>()),
        msg in prop::collection::vec(any::<u8>(), 1..200),
    ) {
        let cmac = Cmac::new(&key);
        let tag = cmac.mac64(&msg);
        prop_assert_eq!(Cmac::new(&key).mac64(&msg), tag);
        // A strict prefix must not collide (the CMAC padding/domain
        // separation property).
        let prefix = &msg[..msg.len() - 1];
        prop_assert_ne!(cmac.mac64(prefix), tag);
    }

    #[test]
    fn cmac_keys_separate(
        k1 in prop::array::uniform16(any::<u8>()),
        k2 in prop::array::uniform16(any::<u8>()),
        msg in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        prop_assume!(k1 != k2);
        prop_assert_ne!(Cmac::new(&k1).mac64(&msg), Cmac::new(&k2).mac64(&msg));
    }

    #[test]
    fn otp_pads_unique_over_counter_and_address(
        key in prop::array::uniform16(any::<u8>()),
        addr1 in (0u64..1 << 35).prop_map(|a| a & !63),
        addr2 in (0u64..1 << 35).prop_map(|a| a & !63),
        c1 in 0u64..1 << 50,
        c2 in 0u64..1 << 50,
    ) {
        let aes = Aes128::new(&key);
        prop_assume!((addr1, c1) != (addr2, c2));
        prop_assert_ne!(
            otp::one_time_pad(&aes, addr1, c1),
            otp::one_time_pad(&aes, addr2, c2),
            "distinct (address, counter) seeds must give distinct pads"
        );
    }

    #[test]
    fn ct_eq_matches_plain_equality(
        a in prop::collection::vec(any::<u8>(), 0..40),
        b in prop::collection::vec(any::<u8>(), 0..40),
    ) {
        prop_assert_eq!(ct_eq(&a, &b), a == b);
    }

    #[test]
    fn mac64_u64_roundtrip(v in any::<u64>()) {
        prop_assert_eq!(Mac64::from(v).as_u64(), v);
    }
}
