//! Property tests for the physical address map.

use horus_nvm::{AddressMap, Region};
use proptest::prelude::*;

fn arb_map() -> impl Strategy<Value = AddressMap> {
    // Data sizes from 64 KB to 256 MB in 4 KB multiples.
    (16u64..65_536, 1u64..2_048, 1u64..512)
        .prop_map(|(pages, chv, shadow)| AddressMap::new(pages * 4096, chv, shadow))
}

proptest! {
    /// Every data block maps to exactly one counter block/slot and one
    /// MAC block/slot, and the mappings are consistent with coverage.
    #[test]
    fn metadata_mappings_are_consistent(map in arb_map(), blk in 0u64..1 << 20) {
        let addr = (blk * 64) % map.data_bytes();
        let cb = map.counter_block_addr(addr);
        prop_assert_eq!(map.region_of(cb), Region::Counter);
        // All 64 blocks of the page share the counter block.
        let page = addr & !4095;
        for i in 0..64u64 {
            prop_assert_eq!(map.counter_block_addr(page + i * 64), cb);
        }
        prop_assert_eq!(map.counter_slot(addr) as u64, (addr / 64) % 64);
        let mb = map.mac_block_addr(addr);
        prop_assert_eq!(map.region_of(mb), Region::Mac);
        prop_assert_eq!(map.mac_slot(addr) as u64, (addr / 64) % 8);
    }

    /// Regions partition the mapped space: every block belongs to
    /// exactly one region and regions appear in layout order.
    #[test]
    fn regions_partition_the_space(map in arb_map()) {
        let total_blocks = map.total_bytes() / 64;
        // Sample a spread of blocks rather than every one (maps can be
        // millions of blocks).
        let step = (total_blocks / 500).max(1);
        let mut last_rank = 0u8;
        for b in (0..total_blocks).step_by(step as usize) {
            let rank = match map.region_of(b * 64) {
                Region::Data => 1,
                Region::Counter => 2,
                Region::Mac => 3,
                Region::Bmt(_) => 4,
                Region::Chv => 5,
                Region::Shadow => 6,
                Region::Unmapped => 7,
            };
            prop_assert!(rank >= last_rank, "regions out of order at block {}", b);
            last_rank = rank;
        }
        prop_assert_eq!(map.region_of(map.total_bytes()), Region::Unmapped);
    }

    /// BMT level sizes shrink by the arity until a single node.
    #[test]
    fn bmt_levels_shrink_by_arity(map in arb_map()) {
        let mut expected = map.counter_blocks().div_ceil(8);
        for level in 0..map.bmt_levels() {
            prop_assert_eq!(map.bmt_level_nodes(level), expected);
            expected = expected.div_ceil(8);
        }
        prop_assert_eq!(map.bmt_level_nodes(map.bmt_levels() - 1), 1);
    }

    /// Node addresses are dense and in-range per level.
    #[test]
    fn bmt_node_addresses_in_region(map in arb_map()) {
        for level in 0..map.bmt_levels() {
            let n = map.bmt_level_nodes(level);
            for idx in [0, n / 2, n - 1] {
                let a = map.bmt_node_addr(level, idx);
                prop_assert_eq!(map.region_of(a), Region::Bmt(level));
            }
        }
    }
}
