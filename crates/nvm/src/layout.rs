//! The physical address map of the secure NVM.
//!
//! A secure memory controller reserves part of the NVM for security
//! metadata. The map below mirrors the organization assumed by the paper
//! (§II-B, Table I):
//!
//! * **Data** — the OS-visible memory (32 GB by default).
//! * **Counters** — one 64-byte split-counter block per 4 KB data page
//!   (64-bit major counter + 64 seven-bit minor counters).
//! * **MACs** — one 8-byte MAC per data block, eight per 64-byte MAC
//!   block.
//! * **BMT** — the 8-ary Bonsai Merkle Tree over the counter blocks,
//!   stored level by level; the root lives on-chip.
//! * **CHV** — the Horus cache-hierarchy vault (§IV-C), a reserved log
//!   the drain engine streams into.
//! * **Shadow** — the reserved region the baseline lazy scheme flushes
//!   its metadata-cache contents into (the Anubis-style final step).

use crate::BLOCK_SIZE;

/// Bytes of data covered by one counter block (64 minor counters x 64 B).
pub const COUNTER_COVERAGE: u64 = 4096;

/// Data blocks covered by one MAC block (8 x 8-byte MACs).
pub const MACS_PER_BLOCK: u64 = 8;

/// Arity of the Bonsai Merkle Tree (8 x 8-byte child MACs per node).
pub const BMT_ARITY: u64 = 8;

/// Which region of the physical map an address falls in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Region {
    /// OS-visible data.
    Data,
    /// Encryption-counter blocks.
    Counter,
    /// Data-MAC blocks.
    Mac,
    /// A Bonsai-Merkle-tree level (0 = leaf-parent level).
    Bmt(usize),
    /// The Horus cache-hierarchy vault.
    Chv,
    /// The metadata-cache shadow region.
    Shadow,
    /// Beyond the mapped space.
    Unmapped,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Extent {
    base: u64,
    blocks: u64,
}

impl Extent {
    fn bytes(&self) -> u64 {
        self.blocks * BLOCK_SIZE as u64
    }
    fn end(&self) -> u64 {
        self.base + self.bytes()
    }
    fn contains(&self, addr: u64) -> bool {
        addr >= self.base && addr < self.end()
    }
}

/// The complete physical address map.
///
/// ```
/// use horus_nvm::AddressMap;
/// let map = AddressMap::paper_default();
/// // One counter block serves the whole 4 KB page.
/// assert_eq!(map.counter_block_addr(0x0000), map.counter_block_addr(0x0fc0));
/// assert_ne!(map.counter_block_addr(0x0000), map.counter_block_addr(0x1000));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AddressMap {
    data: Extent,
    counters: Extent,
    macs: Extent,
    bmt_levels: Vec<Extent>,
    chv: Extent,
    shadow: Extent,
}

impl AddressMap {
    /// Builds a map for `data_bytes` of protected memory with a CHV of
    /// `chv_blocks` and a metadata shadow region of `shadow_blocks`.
    ///
    /// # Panics
    ///
    /// Panics if `data_bytes` is not a positive multiple of the counter
    /// coverage (4 KB), or if either reserved region is empty.
    #[must_use]
    pub fn new(data_bytes: u64, chv_blocks: u64, shadow_blocks: u64) -> Self {
        assert!(
            data_bytes > 0 && data_bytes % COUNTER_COVERAGE == 0,
            "data size must be a positive multiple of {COUNTER_COVERAGE}"
        );
        assert!(chv_blocks > 0, "CHV must be non-empty");
        assert!(shadow_blocks > 0, "shadow region must be non-empty");
        let bs = BLOCK_SIZE as u64;
        let data = Extent {
            base: 0,
            blocks: data_bytes / bs,
        };
        let counter_blocks = data_bytes / COUNTER_COVERAGE;
        let counters = Extent {
            base: data.end(),
            blocks: counter_blocks,
        };
        let mac_blocks = data.blocks.div_ceil(MACS_PER_BLOCK);
        let macs = Extent {
            base: counters.end(),
            blocks: mac_blocks,
        };

        let mut bmt_levels = Vec::new();
        let mut cursor = macs.end();
        let mut nodes = counter_blocks.div_ceil(BMT_ARITY);
        loop {
            bmt_levels.push(Extent {
                base: cursor,
                blocks: nodes,
            });
            cursor += nodes * bs;
            if nodes == 1 {
                break;
            }
            nodes = nodes.div_ceil(BMT_ARITY);
        }

        let chv = Extent {
            base: cursor,
            blocks: chv_blocks,
        };
        let shadow = Extent {
            base: chv.end(),
            blocks: shadow_blocks,
        };
        Self {
            data,
            counters,
            macs,
            bmt_levels,
            chv,
            shadow,
        }
    }

    /// The paper's configuration: 32 GB PCM, a CHV sized for the Table I
    /// hierarchy (with headroom for larger LLC sweeps), and a shadow
    /// region covering the metadata caches.
    #[must_use]
    pub fn paper_default() -> Self {
        // CHV sized by the paper's formula (1.25x cache + 1.125x metadata
        // cache) for the largest swept LLC (128 MB) so every experiment
        // fits: ~131 MB of hierarchy -> 2.2M lines; round up generously.
        Self::new(32 << 30, 4 << 20, 64 << 10)
    }

    /// Total bytes of mapped physical space.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.shadow.end()
    }

    /// Size of the data region in bytes.
    #[must_use]
    pub fn data_bytes(&self) -> u64 {
        self.data.bytes()
    }

    /// Number of data blocks.
    #[must_use]
    pub fn data_blocks(&self) -> u64 {
        self.data.blocks
    }

    /// Number of counter blocks (= BMT leaves).
    #[must_use]
    pub fn counter_blocks(&self) -> u64 {
        self.counters.blocks
    }

    /// Number of stored BMT levels (level 0 is the leaf-parent level; the
    /// highest stored level has a single node whose MAC-of-MACs is the
    /// on-chip root).
    #[must_use]
    pub fn bmt_levels(&self) -> usize {
        self.bmt_levels.len()
    }

    /// Node count of a BMT level.
    ///
    /// # Panics
    ///
    /// Panics if `level` is out of range.
    #[must_use]
    pub fn bmt_level_nodes(&self, level: usize) -> u64 {
        self.bmt_levels[level].blocks
    }

    fn assert_data(&self, data_addr: u64) {
        assert!(
            self.data.contains(data_addr),
            "address {data_addr:#x} outside the data region"
        );
    }

    /// Index of the counter block covering `data_addr`.
    #[must_use]
    pub fn counter_index(&self, data_addr: u64) -> u64 {
        self.assert_data(data_addr);
        data_addr / COUNTER_COVERAGE
    }

    /// Physical address of the counter block covering `data_addr`.
    #[must_use]
    pub fn counter_block_addr(&self, data_addr: u64) -> u64 {
        self.counters.base + self.counter_index(data_addr) * BLOCK_SIZE as u64
    }

    /// The minor-counter slot (0..64) of `data_addr` within its counter
    /// block.
    #[must_use]
    pub fn counter_slot(&self, data_addr: u64) -> usize {
        self.assert_data(data_addr);
        ((data_addr / BLOCK_SIZE as u64) % 64) as usize
    }

    /// Physical address of the MAC block covering `data_addr`.
    #[must_use]
    pub fn mac_block_addr(&self, data_addr: u64) -> u64 {
        self.assert_data(data_addr);
        self.macs.base + (data_addr / (MACS_PER_BLOCK * BLOCK_SIZE as u64)) * BLOCK_SIZE as u64
    }

    /// The MAC slot (0..8) of `data_addr` within its MAC block.
    #[must_use]
    pub fn mac_slot(&self, data_addr: u64) -> usize {
        self.assert_data(data_addr);
        ((data_addr / BLOCK_SIZE as u64) % MACS_PER_BLOCK) as usize
    }

    /// Physical address of BMT node `index` at `level`.
    ///
    /// # Panics
    ///
    /// Panics if `level` or `index` is out of range.
    #[must_use]
    pub fn bmt_node_addr(&self, level: usize, index: u64) -> u64 {
        let ext = &self.bmt_levels[level];
        assert!(
            index < ext.blocks,
            "BMT level {level} has {} nodes, asked for {index}",
            ext.blocks
        );
        ext.base + index * BLOCK_SIZE as u64
    }

    /// Base address of the cache-hierarchy vault.
    #[must_use]
    pub fn chv_base(&self) -> u64 {
        self.chv.base
    }

    /// Capacity of the CHV in blocks.
    #[must_use]
    pub fn chv_blocks(&self) -> u64 {
        self.chv.blocks
    }

    /// Base address of the metadata-cache shadow region.
    #[must_use]
    pub fn shadow_base(&self) -> u64 {
        self.shadow.base
    }

    /// Capacity of the shadow region in blocks.
    #[must_use]
    pub fn shadow_blocks(&self) -> u64 {
        self.shadow.blocks
    }

    /// Classifies an address.
    #[must_use]
    pub fn region_of(&self, addr: u64) -> Region {
        if self.data.contains(addr) {
            Region::Data
        } else if self.counters.contains(addr) {
            Region::Counter
        } else if self.macs.contains(addr) {
            Region::Mac
        } else if let Some(l) = self.bmt_levels.iter().position(|e| e.contains(addr)) {
            Region::Bmt(l)
        } else if self.chv.contains(addr) {
            Region::Chv
        } else if self.shadow.contains(addr) {
            Region::Shadow
        } else {
            Region::Unmapped
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> AddressMap {
        // 1 MB data => 256 counter blocks => BMT levels 32, 4, 1.
        AddressMap::new(1 << 20, 128, 16)
    }

    #[test]
    fn region_sizes() {
        let m = small();
        assert_eq!(m.data_blocks(), 16_384);
        assert_eq!(m.counter_blocks(), 256);
        assert_eq!(m.bmt_levels(), 3);
        assert_eq!(m.bmt_level_nodes(0), 32);
        assert_eq!(m.bmt_level_nodes(1), 4);
        assert_eq!(m.bmt_level_nodes(2), 1);
        assert_eq!(m.chv_blocks(), 128);
        assert_eq!(m.shadow_blocks(), 16);
    }

    #[test]
    fn regions_are_disjoint_and_ordered() {
        let m = small();
        assert_eq!(m.region_of(0), Region::Data);
        assert_eq!(m.region_of(m.counter_block_addr(0)), Region::Counter);
        assert_eq!(m.region_of(m.mac_block_addr(0)), Region::Mac);
        assert_eq!(m.region_of(m.bmt_node_addr(0, 0)), Region::Bmt(0));
        assert_eq!(m.region_of(m.bmt_node_addr(2, 0)), Region::Bmt(2));
        assert_eq!(m.region_of(m.chv_base()), Region::Chv);
        assert_eq!(m.region_of(m.shadow_base()), Region::Shadow);
        assert_eq!(m.region_of(m.total_bytes()), Region::Unmapped);
    }

    #[test]
    fn counter_mapping() {
        let m = small();
        assert_eq!(m.counter_index(0), 0);
        assert_eq!(m.counter_index(4095), 0);
        assert_eq!(m.counter_index(4096), 1);
        assert_eq!(m.counter_slot(0), 0);
        assert_eq!(m.counter_slot(64), 1);
        assert_eq!(m.counter_slot(63 * 64), 63);
        assert_eq!(m.counter_slot(64 * 64), 0);
    }

    #[test]
    fn mac_mapping() {
        let m = small();
        assert_eq!(m.mac_block_addr(0), m.mac_block_addr(7 * 64));
        assert_ne!(m.mac_block_addr(0), m.mac_block_addr(8 * 64));
        assert_eq!(m.mac_slot(0), 0);
        assert_eq!(m.mac_slot(7 * 64), 7);
        assert_eq!(m.mac_slot(8 * 64), 0);
    }

    #[test]
    fn paper_default_dimensions() {
        let m = AddressMap::paper_default();
        assert_eq!(m.data_bytes(), 32 << 30);
        assert_eq!(m.counter_blocks(), (32 << 30) / 4096);
        // 8M counter blocks -> 1M, 128K, 16K, 2K, 256, 32, 4, 1.
        assert_eq!(m.bmt_levels(), 8);
        assert_eq!(m.bmt_level_nodes(7), 1);
    }

    #[test]
    #[should_panic(expected = "outside the data region")]
    fn counter_of_metadata_address_panics() {
        let m = small();
        let _ = m.counter_block_addr(m.counter_block_addr(0));
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn unaligned_data_size_rejected() {
        let _ = AddressMap::new(1000, 1, 1);
    }
}
