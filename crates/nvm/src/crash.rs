//! The functional half of crash-point injection: what NVM holds after a
//! power failure cuts a write stream mid-flight.
//!
//! [`NvmSystem`](crate::NvmSystem) applies writes to the functional
//! device at issue time and keeps timing as separate bookkeeping, so a
//! crash at cycle `C` is reconstructed *post hoc*: while the crash
//! journal is armed, every write records its pre-image and completion
//! window; firing the failure walks the journal backwards and rewinds
//! each write according to its [`WriteFate`](horus_sim::WriteFate) —
//! completed writes stay, never-started writes are undone, and the one
//! write per bank the cut can catch mid-service is replaced by what a
//! real PCM array would hold: a torn block under a configurable
//! [`TornWriteModel`].
//!
//! All garbling is deterministic in `(address, cut geometry)`, so a
//! crash experiment is exactly reproducible for a given crash cycle.

use crate::{Block, BLOCK_SIZE};
use horus_sim::{Completion, Cycles};
use serde::{Deserialize, Serialize};

/// What a write caught mid-service leaves in its target block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum TornWriteModel {
    /// Byte-granular tearing: a prefix proportional to the write's
    /// progress holds the new data, the suffix holds the old, and the
    /// boundary byte is garbled (the cell row the failure interrupted).
    /// This is the default and the hardest case for verification layers.
    #[default]
    Torn,
    /// The whole block retains its old contents (a device whose row
    /// buffer never commits partial programs).
    Stale,
    /// The whole block is deterministic garbage (a device whose
    /// interrupted program scrambles the row).
    Garbled,
}

impl std::fmt::Display for TornWriteModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TornWriteModel::Torn => write!(f, "torn"),
            TornWriteModel::Stale => write!(f, "stale"),
            TornWriteModel::Garbled => write!(f, "garbled"),
        }
    }
}

/// One journaled write: everything needed to rewind or tear it.
#[derive(Debug, Clone)]
pub(crate) struct JournalEntry {
    pub(crate) addr: u64,
    /// The block's contents before this write.
    pub(crate) pre: Block,
    /// Whether the block had ever been written before this write (a
    /// never-written block rewinds to *erased*, not to zeros-as-data).
    pub(crate) was_written: bool,
    /// The data this write carried.
    pub(crate) data: Block,
    /// The request kind the write was attributed to (`"data"`,
    /// `"chv_mac"`, …), for per-kind fate accounting.
    pub(crate) kind: String,
    /// The bank service window the failure is classified against.
    pub(crate) completion: Completion,
}

/// What firing a power failure did to the journaled write stream.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrashOutcome {
    /// The failure cycle the journal was cut at.
    pub at: u64,
    /// Writes that completed before the cut.
    pub durable: u64,
    /// Writes rewound because they had not started.
    pub lost: u64,
    /// Writes caught mid-service and torn.
    pub torn: u64,
    /// Addresses of torn blocks, in rewind (reverse-issue) order.
    pub torn_addrs: Vec<u64>,
    /// `kind`s of torn writes, parallel to [`torn_addrs`](Self::torn_addrs).
    pub torn_kinds: Vec<String>,
    /// Addresses of lost (rewound) writes, in rewind order.
    pub lost_addrs: Vec<u64>,
}

impl CrashOutcome {
    /// Total journaled writes the cut classified.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.durable + self.lost + self.torn
    }
}

/// Deterministic byte-stream for the garbled portions of a torn block,
/// seeded by the block address and the cut geometry.
fn garble_stream(addr: u64, elapsed: Cycles, duration: Cycles) -> impl FnMut() -> u8 {
    let mut z = (addr >> 6)
        ^ elapsed.0.rotate_left(17)
        ^ duration.0.rotate_left(31)
        ^ 0x9e37_79b9_7f4a_7c15;
    move || {
        z = z
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        (z >> 33) as u8
    }
}

/// Builds the block a torn write leaves behind.
///
/// Under [`TornWriteModel::Torn`], `elapsed / duration` of the block (by
/// bytes, clamped so at least the boundary byte is affected) holds the
/// new data, the rest holds the pre-image, and the boundary byte is
/// garbled — never equal to the old byte or the new byte, so a torn
/// block always differs from both images.
pub(crate) fn torn_block(
    pre: &Block,
    new: &Block,
    addr: u64,
    elapsed: Cycles,
    duration: Cycles,
    model: TornWriteModel,
) -> Block {
    let mut garble = garble_stream(addr, elapsed, duration);
    match model {
        TornWriteModel::Stale => *pre,
        TornWriteModel::Garbled => {
            let mut out = [0u8; BLOCK_SIZE];
            for b in &mut out {
                *b = garble();
            }
            out
        }
        TornWriteModel::Torn => {
            let den = duration.0.max(1);
            let persisted = (((elapsed.0 * BLOCK_SIZE as u64) / den) as usize).min(BLOCK_SIZE - 1);
            let mut out = *pre;
            out[..persisted].copy_from_slice(&new[..persisted]);
            // Garble the boundary byte until it differs from both images.
            loop {
                let g = garble();
                if g != pre[persisted] && g != new[persisted] {
                    out[persisted] = g;
                    break;
                }
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PRE: Block = [0x11; 64];
    const NEW: Block = [0xEE; 64];

    #[test]
    fn stale_keeps_pre_image() {
        let b = torn_block(
            &PRE,
            &NEW,
            0x1000,
            Cycles(5),
            Cycles(10),
            TornWriteModel::Stale,
        );
        assert_eq!(b, PRE);
    }

    #[test]
    fn garbled_differs_from_both_images_and_is_deterministic() {
        let a = torn_block(
            &PRE,
            &NEW,
            0x1000,
            Cycles(5),
            Cycles(10),
            TornWriteModel::Garbled,
        );
        let b = torn_block(
            &PRE,
            &NEW,
            0x1000,
            Cycles(5),
            Cycles(10),
            TornWriteModel::Garbled,
        );
        assert_eq!(a, b, "deterministic for the same cut");
        assert_ne!(a, PRE);
        assert_ne!(a, NEW);
        let c = torn_block(
            &PRE,
            &NEW,
            0x2000,
            Cycles(5),
            Cycles(10),
            TornWriteModel::Garbled,
        );
        assert_ne!(a, c, "different address, different garbage");
    }

    #[test]
    fn torn_prefix_is_proportional_to_progress() {
        // Half-way through a 2000-cycle write: 32 bytes persisted.
        let b = torn_block(
            &PRE,
            &NEW,
            0x40,
            Cycles(1000),
            Cycles(2000),
            TornWriteModel::Torn,
        );
        assert_eq!(&b[..32], &NEW[..32]);
        assert_eq!(&b[33..], &PRE[33..]);
        assert_ne!(b[32], PRE[32]);
        assert_ne!(b[32], NEW[32]);
    }

    #[test]
    fn torn_block_never_matches_either_image() {
        for elapsed in [1u64, 3, 999, 1000, 1999] {
            let b = torn_block(
                &PRE,
                &NEW,
                0x80,
                Cycles(elapsed),
                Cycles(2000),
                TornWriteModel::Torn,
            );
            assert_ne!(b, PRE, "elapsed {elapsed}");
            assert_ne!(b, NEW, "elapsed {elapsed}");
        }
    }

    #[test]
    fn torn_clamps_to_leave_a_boundary_byte() {
        // elapsed == duration-1 would round to 64 persisted bytes without
        // the clamp; the boundary byte must still exist.
        let b = torn_block(
            &PRE,
            &NEW,
            0,
            Cycles(1999),
            Cycles(2000),
            TornWriteModel::Torn,
        );
        assert_eq!(&b[..63], &NEW[..63]);
        assert_ne!(b[63], PRE[63]);
        assert_ne!(b[63], NEW[63]);
    }

    #[test]
    fn model_display_and_default() {
        assert_eq!(TornWriteModel::default(), TornWriteModel::Torn);
        assert_eq!(TornWriteModel::Torn.to_string(), "torn");
        assert_eq!(TornWriteModel::Stale.to_string(), "stale");
        assert_eq!(TornWriteModel::Garbled.to_string(), "garbled");
    }
}
