//! Non-volatile memory model for the Horus secure-EPD reproduction.
//!
//! Three pieces:
//!
//! * [`layout::AddressMap`] — the physical address map: the 32 GB data
//!   region plus the reserved regions a secure memory controller needs
//!   (encryption counters, data MACs, Bonsai-Merkle-tree nodes), the
//!   Horus *cache hierarchy vault* (CHV), and the shadow region the
//!   baseline lazy scheme flushes its metadata cache into.
//! * [`device::NvmDevice`] — a functional, byte-accurate (but sparse)
//!   block store: what is written is exactly what is read back, so the
//!   cryptographic layers above operate on real data.
//! * [`system::NvmSystem`] — the timed front end: a bank-interleaved PCM
//!   device with the paper's 150 ns read / 500 ns write latencies, which
//!   also attributes every access to a request *kind* (data, counter,
//!   MAC, tree, CHV…) in a [`Stats`](horus_sim::Stats) registry — the raw
//!   material for the paper's Figure 6 and Figure 12 breakdowns.
//!
//! # Example
//!
//! ```
//! use horus_nvm::{NvmConfig, NvmSystem};
//! use horus_sim::Cycles;
//!
//! let mut nvm = NvmSystem::new(NvmConfig::paper_default());
//! let done = nvm.write(0x40, [7u8; 64], "data", Cycles(0)).done;
//! let (block, _) = nvm.read(0x40, "data", done);
//! assert_eq!(block, [7u8; 64]);
//! assert_eq!(nvm.stats().get("mem.write.data"), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crash;
pub mod device;
pub mod layout;
pub mod system;
pub mod wear;

pub use crash::{CrashOutcome, TornWriteModel};
pub use device::NvmDevice;
pub use layout::{AddressMap, Region};
pub use system::{NvmConfig, NvmSystem};
pub use wear::WearTracker;

/// Size in bytes of a memory block (one cache line).
pub const BLOCK_SIZE: usize = 64;

/// A 64-byte memory block.
pub type Block = [u8; BLOCK_SIZE];
