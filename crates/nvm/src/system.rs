//! The timed NVM front end: functional device + bank timing + accounting.

use crate::crash::{torn_block, CrashOutcome, JournalEntry, TornWriteModel};
use crate::wear::WearTracker;
use crate::{Block, NvmDevice, BLOCK_SIZE};
use horus_sim::{
    Completion, Cycles, Frequency, PowerFailure, SlotBankSet, Stats, TraceEvent, WriteFate,
};
use serde::{Deserialize, Serialize};

/// PCM device and channel parameters.
///
/// Defaults are the paper's Table I: 150 ns reads, 500 ns writes, one
/// DDR-based PCM channel modelled with 16 independent banks.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NvmConfig {
    /// Read latency in nanoseconds.
    pub read_ns: f64,
    /// Write latency in nanoseconds.
    pub write_ns: f64,
    /// Number of independently-timed banks.
    pub banks: usize,
    /// The core clock used to express latencies in cycles.
    pub frequency: Frequency,
}

impl NvmConfig {
    /// The paper's Table I memory configuration.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            read_ns: 150.0,
            write_ns: 500.0,
            banks: 16,
            frequency: Frequency::ghz(4),
        }
    }
}

impl Default for NvmConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// The timed, accounted NVM system.
///
/// Every access names a request *kind* (e.g. `"data"`, `"counter"`,
/// `"tree"`, `"chv_data"`); counts accumulate under `mem.read.<kind>` /
/// `mem.write.<kind>` so experiment harnesses can reproduce the request
/// breakdowns of the paper's Figures 6 and 12 directly from the registry.
#[derive(Debug, Clone)]
pub struct NvmSystem {
    config: NvmConfig,
    device: NvmDevice,
    banks: SlotBankSet,
    read_latency: Cycles,
    write_latency: Cycles,
    stats: Stats,
    wear: WearTracker,
    /// Armed only during crash-point experiments: records every write's
    /// pre-image and service window so a power failure can be applied
    /// post hoc.
    journal: Option<Vec<JournalEntry>>,
}

impl NvmSystem {
    /// Creates a zeroed NVM system.
    #[must_use]
    pub fn new(config: NvmConfig) -> Self {
        let read_latency = config.frequency.ns_to_cycles(config.read_ns);
        let write_latency = config.frequency.ns_to_cycles(config.write_ns);
        Self {
            config,
            device: NvmDevice::new(),
            banks: SlotBankSet::new("pcm-bank", config.banks, write_latency),
            read_latency,
            write_latency,
            stats: Stats::new(),
            wear: WearTracker::new(),
            journal: None,
        }
    }

    /// The configuration this system was built with.
    #[must_use]
    pub fn config(&self) -> &NvmConfig {
        &self.config
    }

    /// Read latency in cycles.
    #[must_use]
    pub fn read_latency(&self) -> Cycles {
        self.read_latency
    }

    /// Write latency in cycles.
    #[must_use]
    pub fn write_latency(&self) -> Cycles {
        self.write_latency
    }

    /// The accounting registry (`mem.read.*` / `mem.write.*`).
    #[must_use]
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Direct access to the functional store, bypassing timing and
    /// accounting. Used by attackers (who do not pay the controller's
    /// costs) and by test setup.
    pub fn device_mut(&mut self) -> &mut NvmDevice {
        &mut self.device
    }

    /// Read-only access to the functional store.
    #[must_use]
    pub fn device(&self) -> &NvmDevice {
        &self.device
    }

    /// Timed read of the block at `addr`, attributed to `kind`.
    pub fn read(&mut self, addr: u64, kind: &str, ready: Cycles) -> (Block, Completion) {
        let completion = if self.banks.probe_enabled() {
            self.banks
                .issue_addr_for_named(&format!("read.{kind}"), addr, ready, self.read_latency)
        } else {
            self.banks.issue_addr_for(addr, ready, self.read_latency)
        };
        self.stats.incr_pair("mem.read.", kind);
        (self.device.read_block(addr), completion)
    }

    /// Timed write of `data` to `addr`, attributed to `kind`.
    pub fn write(&mut self, addr: u64, data: Block, kind: &str, ready: Cycles) -> Completion {
        let completion = if self.banks.probe_enabled() {
            self.banks.issue_addr_for_named(
                &format!("write.{kind}"),
                addr,
                ready,
                self.write_latency,
            )
        } else {
            self.banks.issue_addr_for(addr, ready, self.write_latency)
        };
        self.stats.incr_pair("mem.write.", kind);
        self.wear.record(addr);
        if let Some(journal) = &mut self.journal {
            journal.push(JournalEntry {
                addr,
                pre: self.device.read_block(addr),
                was_written: self.device.is_written(addr),
                data,
                kind: kind.to_owned(),
                completion,
            });
        }
        self.device.write_block(addr, data);
        completion
    }

    // ----- crash-point injection -------------------------------------------

    /// Arms the crash journal: every subsequent write records its
    /// pre-image and service window until [`fire_crash`](Self::fire_crash)
    /// or [`disarm_crash_journal`](Self::disarm_crash_journal). Re-arming
    /// discards any previous journal.
    pub fn arm_crash_journal(&mut self) {
        self.journal = Some(Vec::new());
    }

    /// Whether the crash journal is armed.
    #[must_use]
    pub fn crash_journal_armed(&self) -> bool {
        self.journal.is_some()
    }

    /// Drops the crash journal without applying a failure (the
    /// experiment's reference run survived).
    pub fn disarm_crash_journal(&mut self) {
        self.journal = None;
    }

    /// Applies a power failure to the journaled write stream and disarms
    /// the journal: each journaled write is classified against the cut
    /// and — walking the journal backwards so overlapping writes to the
    /// same block unwind correctly — completed writes are kept, writes
    /// that never started are rewound to their pre-image (or to the
    /// erased state), and mid-flight writes are replaced per `model`.
    ///
    /// # Panics
    ///
    /// Panics if the journal was not armed.
    pub fn fire_crash(&mut self, failure: PowerFailure, model: TornWriteModel) -> CrashOutcome {
        let journal = self
            .journal
            .take()
            .expect("fire_crash requires an armed crash journal");
        let mut outcome = CrashOutcome {
            at: failure.cycle().0,
            ..CrashOutcome::default()
        };
        for e in journal.iter().rev() {
            match failure.fate_of(&e.completion) {
                WriteFate::Durable => outcome.durable += 1,
                WriteFate::Lost => {
                    if e.was_written {
                        self.device.write_block(e.addr, e.pre);
                    } else {
                        self.device.erase_range(e.addr, 1);
                    }
                    outcome.lost += 1;
                    outcome.lost_addrs.push(e.addr);
                }
                WriteFate::Torn { elapsed, duration } => {
                    let torn = torn_block(&e.pre, &e.data, e.addr, elapsed, duration, model);
                    self.device.write_block(e.addr, torn);
                    outcome.torn += 1;
                    outcome.torn_addrs.push(e.addr);
                    outcome.torn_kinds.push(e.kind.clone());
                }
            }
        }
        outcome
    }

    /// Starts recording per-bank operation traces (bank-indexed tracks,
    /// `"pcm-bank[3]"`).
    pub fn enable_probe(&mut self) {
        self.banks.enable_probe();
    }

    /// Whether the banks record traces.
    #[must_use]
    pub fn probe_enabled(&self) -> bool {
        self.banks.probe_enabled()
    }

    /// Drains the recorded bank events, in bank-index order.
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        self.banks.take_trace()
    }

    /// Total reads issued.
    #[must_use]
    pub fn total_reads(&self) -> u64 {
        self.stats.sum_prefix("mem.read.")
    }

    /// Total writes issued.
    #[must_use]
    pub fn total_writes(&self) -> u64 {
        self.stats.sum_prefix("mem.write.")
    }

    /// Total memory requests (reads + writes).
    #[must_use]
    pub fn total_requests(&self) -> u64 {
        self.total_reads() + self.total_writes()
    }

    /// The completion time of the latest operation across all banks.
    #[must_use]
    pub fn busy_until(&self) -> Cycles {
        self.banks.busy_until()
    }

    /// Device-lifetime wear statistics (survives
    /// [`reset_timing`](Self::reset_timing) — wear is not per-episode).
    #[must_use]
    pub fn wear(&self) -> &WearTracker {
        &self.wear
    }

    /// Resets device-lifetime wear statistics (a fresh device).
    pub fn reset_wear(&mut self) {
        self.wear.reset();
    }

    /// Resets timing state and accounting, keeping memory *contents* — a
    /// new measurement episode over the same persistent data (e.g. the
    /// recovery that follows a drain).
    pub fn reset_timing(&mut self) {
        self.banks.reset();
        self.stats.clear();
    }

    /// Bytes of traffic implied by the recorded requests.
    #[must_use]
    pub fn traffic_bytes(&self) -> u64 {
        self.total_requests() * BLOCK_SIZE as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latencies_from_table1() {
        let nvm = NvmSystem::new(NvmConfig::paper_default());
        assert_eq!(nvm.read_latency(), Cycles(600));
        assert_eq!(nvm.write_latency(), Cycles(2000));
    }

    #[test]
    fn functional_roundtrip_with_accounting() {
        let mut nvm = NvmSystem::new(NvmConfig::paper_default());
        let w = nvm.write(0, [9u8; 64], "data", Cycles(0));
        assert_eq!(w.done, Cycles(2000));
        let (b, r) = nvm.read(0, "counter", w.done);
        assert_eq!(b, [9u8; 64]);
        assert_eq!(r.done, Cycles(2600));
        assert_eq!(nvm.stats().get("mem.write.data"), 1);
        assert_eq!(nvm.stats().get("mem.read.counter"), 1);
        assert_eq!(nvm.total_requests(), 2);
        assert_eq!(nvm.traffic_bytes(), 128);
    }

    #[test]
    fn banks_parallelize() {
        let mut nvm = NvmSystem::new(NvmConfig {
            banks: 4,
            ..NvmConfig::paper_default()
        });
        // Four writes to four consecutive blocks land on four banks.
        let dones: Vec<_> = (0..4)
            .map(|i| nvm.write(i * 64, [0u8; 64], "data", Cycles(0)).done)
            .collect();
        assert!(dones.iter().all(|d| *d == Cycles(2000)));
        // A fifth to bank 0 serializes.
        assert_eq!(
            nvm.write(4 * 64, [0u8; 64], "data", Cycles(0)).done,
            Cycles(4000)
        );
    }

    #[test]
    fn reset_timing_keeps_contents() {
        let mut nvm = NvmSystem::new(NvmConfig::paper_default());
        nvm.write(0, [5u8; 64], "data", Cycles(0));
        nvm.reset_timing();
        assert_eq!(nvm.total_requests(), 0);
        assert_eq!(nvm.busy_until(), Cycles::ZERO);
        let (b, _) = nvm.read(0, "data", Cycles(0));
        assert_eq!(b, [5u8; 64]);
    }

    #[test]
    fn probe_traces_reads_and_writes_with_kinds() {
        let mut nvm = NvmSystem::new(NvmConfig::paper_default());
        assert!(!nvm.probe_enabled());
        nvm.enable_probe();
        assert!(nvm.probe_enabled());
        nvm.write(0, [1u8; 64], "chv_data", Cycles(0));
        nvm.read(64, "counter", Cycles(0));
        let mut trace = nvm.take_trace();
        trace.sort_by(|a, b| a.name.cmp(&b.name));
        assert_eq!(trace.len(), 2);
        assert_eq!(trace[0].name, "read.counter");
        assert_eq!(trace[1].name, "write.chv_data");
        assert!(trace[1].track.starts_with("pcm-bank["));
        // Timing identical to an unprobed system.
        let mut plain = NvmSystem::new(NvmConfig::paper_default());
        assert_eq!(plain.write(128, [0u8; 64], "data", Cycles(0)), {
            let mut probed = NvmSystem::new(NvmConfig::paper_default());
            probed.enable_probe();
            probed.write(128, [0u8; 64], "data", Cycles(0))
        });
    }

    #[test]
    fn crash_journal_rewinds_unstarted_writes() {
        let mut nvm = NvmSystem::new(NvmConfig::paper_default());
        nvm.write(0, [1u8; 64], "data", Cycles(0));
        nvm.arm_crash_journal();
        assert!(nvm.crash_journal_armed());
        // Same bank: both serialize behind the pre-arm write (0..2000).
        let c1 = nvm.write(0, [2u8; 64], "data", Cycles(0));
        let c2 = nvm.write(0, [3u8; 64], "data", Cycles(0));
        assert_eq!((c1.done, c2.start), (Cycles(4000), Cycles(4000)));
        // Cut after the first completes, before the second starts.
        let o = nvm.fire_crash(PowerFailure::at(Cycles(4000)), TornWriteModel::Torn);
        assert!(!nvm.crash_journal_armed());
        assert_eq!((o.durable, o.lost, o.torn), (1, 1, 0));
        assert_eq!(o.lost_addrs, vec![0]);
        assert_eq!(o.total(), 2);
        assert_eq!(nvm.device().read_block(0), [2u8; 64]);
    }

    #[test]
    fn crash_journal_rewinds_never_written_blocks_to_erased() {
        let mut nvm = NvmSystem::new(NvmConfig::paper_default());
        nvm.arm_crash_journal();
        nvm.write(64, [7u8; 64], "data", Cycles(0));
        let o = nvm.fire_crash(PowerFailure::at(Cycles(0)), TornWriteModel::Torn);
        assert_eq!(o.lost, 1);
        assert!(!nvm.device().is_written(64), "rewound to erased, not zeros");
    }

    #[test]
    fn crash_journal_tears_the_in_flight_write() {
        let mut nvm = NvmSystem::new(NvmConfig::paper_default());
        nvm.write(0, [0x11u8; 64], "data", Cycles(0));
        nvm.arm_crash_journal();
        nvm.write(0, [0xEEu8; 64], "chv_data", Cycles(3000));
        // The write runs 3000..5000; cut half-way.
        let o = nvm.fire_crash(PowerFailure::at(Cycles(4000)), TornWriteModel::Torn);
        assert_eq!((o.durable, o.lost, o.torn), (0, 0, 1));
        assert_eq!(o.torn_addrs, vec![0]);
        assert_eq!(o.torn_kinds, vec!["chv_data".to_owned()]);
        let b = nvm.device().read_block(0);
        assert_eq!(&b[..32], &[0xEEu8; 32][..], "persisted prefix");
        assert_eq!(&b[33..], &[0x11u8; 31][..], "stale suffix");
        assert!(b[32] != 0x11 && b[32] != 0xEE, "garbled boundary byte");
    }

    #[test]
    fn crash_journal_is_deterministic_per_cut() {
        let run = |at: u64| {
            let mut nvm = NvmSystem::new(NvmConfig::paper_default());
            nvm.arm_crash_journal();
            for i in 0..8u64 {
                nvm.write(i * 64, [i as u8 + 1; 64], "data", Cycles(0));
            }
            nvm.fire_crash(PowerFailure::at(Cycles(at)), TornWriteModel::Torn);
            (0..8u64)
                .map(|i| nvm.device().read_block(i * 64))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(1234), run(1234));
        assert_ne!(run(0), run(2000));
    }

    #[test]
    fn disarm_keeps_contents_and_stops_journaling() {
        let mut nvm = NvmSystem::new(NvmConfig::paper_default());
        nvm.arm_crash_journal();
        nvm.write(0, [5u8; 64], "data", Cycles(0));
        nvm.disarm_crash_journal();
        assert!(!nvm.crash_journal_armed());
        assert_eq!(nvm.device().read_block(0), [5u8; 64]);
    }

    #[test]
    #[should_panic(expected = "armed crash journal")]
    fn fire_without_arm_panics() {
        let mut nvm = NvmSystem::new(NvmConfig::paper_default());
        let _ = nvm.fire_crash(PowerFailure::at(Cycles(0)), TornWriteModel::Torn);
    }

    #[test]
    fn device_access_bypasses_accounting() {
        let mut nvm = NvmSystem::new(NvmConfig::paper_default());
        nvm.device_mut().write_block(64, [1u8; 64]);
        assert_eq!(nvm.total_requests(), 0);
        assert_eq!(nvm.device().read_block(64), [1u8; 64]);
    }
}
