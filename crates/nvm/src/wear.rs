//! PCM write-endurance tracking.
//!
//! Phase-change memory cells endure a bounded number of writes, which is
//! why the paper counts every extra metadata write as harm beyond the
//! battery (§II-D: "these updates can lead to significant increase in
//! the number of memory writes (and hence premature wear-out)"). The
//! tracker records per-block write counts so experiments can compare not
//! just *how many* writes a drain scheme issues but *where it
//! concentrates them* — e.g. Horus re-writes the same CHV region every
//! episode, while the baselines spray the metadata regions.

use horus_sim::{FxHashMap, Histogram};

/// Per-block write counts for the whole device.
#[derive(Debug, Clone, Default)]
pub struct WearTracker {
    per_block: FxHashMap<u64, u64>,
    total: u64,
}

impl WearTracker {
    /// A fresh (unworn) device.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one write to the block at `addr`.
    pub fn record(&mut self, addr: u64) {
        *self.per_block.entry(addr).or_insert(0) += 1;
        self.total += 1;
    }

    /// Total writes ever recorded.
    #[must_use]
    pub fn total_writes(&self) -> u64 {
        self.total
    }

    /// Number of distinct blocks ever written.
    #[must_use]
    pub fn blocks_touched(&self) -> u64 {
        self.per_block.len() as u64
    }

    /// The worst-case (most-written) block's write count — the cell that
    /// dies first under no wear levelling.
    #[must_use]
    pub fn max_wear(&self) -> u64 {
        self.per_block.values().copied().max().unwrap_or(0)
    }

    /// Mean writes per touched block.
    #[must_use]
    pub fn mean_wear(&self) -> f64 {
        if self.per_block.is_empty() {
            0.0
        } else {
            self.total as f64 / self.per_block.len() as f64
        }
    }

    /// Write count of a specific block.
    #[must_use]
    pub fn wear_of(&self, addr: u64) -> u64 {
        self.per_block.get(&addr).copied().unwrap_or(0)
    }

    /// The `n` most-written blocks, hottest first (ties broken by
    /// address for determinism).
    #[must_use]
    pub fn hottest(&self, n: usize) -> Vec<(u64, u64)> {
        let mut v: Vec<(u64, u64)> = self.per_block.iter().map(|(a, c)| (*a, *c)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(n);
        v
    }

    /// Distribution of per-block write counts.
    #[must_use]
    pub fn histogram(&self) -> Histogram {
        let mut h = Histogram::new();
        for c in self.per_block.values() {
            h.record(*c);
        }
        h
    }

    /// Sums the writes that landed in `[base, base + blocks*64)` — used
    /// to attribute wear to address-map regions.
    #[must_use]
    pub fn writes_in_range(&self, base: u64, blocks: u64) -> u64 {
        let end = base + blocks * 64;
        self.per_block
            .iter()
            .filter(|(a, _)| **a >= base && **a < end)
            .map(|(_, c)| *c)
            .sum()
    }

    /// Forgets all recorded wear (a fresh device, not a new episode —
    /// wear is device-lifetime state).
    pub fn reset(&mut self) {
        self.per_block.clear();
        self.total = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_tracker_is_zero() {
        let w = WearTracker::new();
        assert_eq!(w.total_writes(), 0);
        assert_eq!(w.blocks_touched(), 0);
        assert_eq!(w.max_wear(), 0);
        assert_eq!(w.mean_wear(), 0.0);
        assert!(w.hottest(5).is_empty());
    }

    #[test]
    fn records_accumulate_per_block() {
        let mut w = WearTracker::new();
        for _ in 0..5 {
            w.record(0);
        }
        w.record(64);
        assert_eq!(w.total_writes(), 6);
        assert_eq!(w.blocks_touched(), 2);
        assert_eq!(w.max_wear(), 5);
        assert_eq!(w.wear_of(0), 5);
        assert_eq!(w.wear_of(64), 1);
        assert_eq!(w.wear_of(128), 0);
        assert_eq!(w.mean_wear(), 3.0);
    }

    #[test]
    fn hottest_orders_deterministically() {
        let mut w = WearTracker::new();
        w.record(64);
        w.record(64);
        w.record(0);
        w.record(0);
        w.record(128);
        assert_eq!(w.hottest(2), vec![(0, 2), (64, 2)]);
        assert_eq!(w.hottest(10).len(), 3);
    }

    #[test]
    fn range_attribution() {
        let mut w = WearTracker::new();
        w.record(0);
        w.record(64);
        w.record(1024);
        assert_eq!(w.writes_in_range(0, 2), 2);
        assert_eq!(w.writes_in_range(0, 17), 3);
        assert_eq!(w.writes_in_range(1024, 1), 1);
    }

    #[test]
    fn histogram_and_reset() {
        let mut w = WearTracker::new();
        for i in 0..10u64 {
            for _ in 0..=i {
                w.record(i * 64);
            }
        }
        let h = w.histogram();
        assert_eq!(h.count(), 10);
        assert_eq!(h.max(), Some(10));
        w.reset();
        assert_eq!(w.total_writes(), 0);
    }
}
