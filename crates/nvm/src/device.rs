//! The functional (value-level) NVM block store.

use crate::{Block, BLOCK_SIZE};
use std::collections::HashMap;

/// A sparse, byte-accurate non-volatile block store.
///
/// The simulated machine has 32 GB of PCM plus reserved metadata regions;
/// experiments touch a few hundred thousand blocks of it, so storage is a
/// hash map from block address to contents and unwritten blocks read as
/// zero (freshly-initialized memory).
///
/// ```
/// use horus_nvm::NvmDevice;
/// let mut d = NvmDevice::new();
/// assert_eq!(d.read_block(0x80), [0u8; 64]);
/// d.write_block(0x80, [3u8; 64]);
/// assert_eq!(d.read_block(0x80), [3u8; 64]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct NvmDevice {
    blocks: HashMap<u64, Block>,
}

impl NvmDevice {
    /// Creates an empty (all-zero) device.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn assert_aligned(addr: u64) {
        assert!(
            addr.is_multiple_of(BLOCK_SIZE as u64),
            "NVM address {addr:#x} is not block-aligned"
        );
    }

    /// Reads the block at `addr` (zero if never written).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 64-byte aligned.
    #[must_use]
    pub fn read_block(&self, addr: u64) -> Block {
        Self::assert_aligned(addr);
        self.blocks.get(&addr).copied().unwrap_or([0u8; BLOCK_SIZE])
    }

    /// Writes the block at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 64-byte aligned.
    pub fn write_block(&mut self, addr: u64, data: Block) {
        Self::assert_aligned(addr);
        self.blocks.insert(addr, data);
    }

    /// Whether the block at `addr` has ever been written.
    #[must_use]
    pub fn is_written(&self, addr: u64) -> bool {
        Self::assert_aligned(addr);
        self.blocks.contains_key(&addr)
    }

    /// Number of distinct blocks ever written.
    #[must_use]
    pub fn written_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// All written block addresses, sorted (deterministic iteration for
    /// recovery scans over a sparse device).
    #[must_use]
    pub fn written_addrs_sorted(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.blocks.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Erases a range of blocks back to zero (used when a drain episode's
    /// vault is logically discarded).
    ///
    /// # Panics
    ///
    /// Panics if `start` is not block-aligned.
    pub fn erase_range(&mut self, start: u64, blocks: u64) {
        Self::assert_aligned(start);
        for i in 0..blocks {
            self.blocks.remove(&(start + i * BLOCK_SIZE as u64));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_reads_zero() {
        let d = NvmDevice::new();
        assert_eq!(d.read_block(0), [0u8; 64]);
        assert!(!d.is_written(0));
        assert_eq!(d.written_blocks(), 0);
    }

    #[test]
    fn write_then_read() {
        let mut d = NvmDevice::new();
        let b: Block = core::array::from_fn(|i| i as u8);
        d.write_block(1 << 34, b);
        assert_eq!(d.read_block(1 << 34), b);
        assert!(d.is_written(1 << 34));
        assert_eq!(d.written_blocks(), 1);
    }

    #[test]
    fn overwrite_replaces() {
        let mut d = NvmDevice::new();
        d.write_block(64, [1u8; 64]);
        d.write_block(64, [2u8; 64]);
        assert_eq!(d.read_block(64), [2u8; 64]);
        assert_eq!(d.written_blocks(), 1);
    }

    #[test]
    fn erase_range_zeroes() {
        let mut d = NvmDevice::new();
        d.write_block(0, [1u8; 64]);
        d.write_block(64, [1u8; 64]);
        d.write_block(128, [1u8; 64]);
        d.erase_range(0, 2);
        assert_eq!(d.read_block(0), [0u8; 64]);
        assert_eq!(d.read_block(64), [0u8; 64]);
        assert_eq!(d.read_block(128), [1u8; 64]);
    }

    #[test]
    #[should_panic(expected = "block-aligned")]
    fn misaligned_read_panics() {
        let d = NvmDevice::new();
        let _ = d.read_block(7);
    }

    #[test]
    #[should_panic(expected = "block-aligned")]
    fn misaligned_write_panics() {
        let mut d = NvmDevice::new();
        d.write_block(100, [0u8; 64]);
    }
}
