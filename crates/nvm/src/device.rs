//! The functional (value-level) NVM block store.

use crate::{Block, BLOCK_SIZE};
use horus_sim::FxHashMap;
use std::fmt;

/// Blocks per page: 4 KiB pages of 64-byte blocks.
const PAGE_BLOCKS: usize = 64;
/// Bytes per page.
const PAGE_SIZE: u64 = (PAGE_BLOCKS * BLOCK_SIZE) as u64;

/// One 4 KiB page of backing store plus a written-block bitmask.
///
/// The mask distinguishes "written with zeros" from "never written" and
/// makes `written_addrs_sorted` a bit scan instead of a key sort.
#[derive(Clone)]
struct Page {
    blocks: [Block; PAGE_BLOCKS],
    written: u64,
}

impl Page {
    fn empty() -> Box<Self> {
        Box::new(Self {
            blocks: [[0u8; BLOCK_SIZE]; PAGE_BLOCKS],
            written: 0,
        })
    }
}

impl fmt::Debug for Page {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Page")
            .field("written_blocks", &self.written.count_ones())
            .finish_non_exhaustive()
    }
}

/// Per-page storage, graded by population.
///
/// Strided-sparse drains touch exactly one block per page; materializing
/// a 4 KiB page (and deep-copying it on crash-rewind clones) for each
/// would cost 64x the memory of the blocks actually written. A page
/// holding a single block stays inline; the second write to the same
/// page promotes it to a full backing page.
#[derive(Debug, Clone)]
enum PageSlot {
    Single { idx: u8, block: Block },
    Full(Box<Page>),
}

/// A sparse, byte-accurate non-volatile block store.
///
/// The simulated machine has 32 GB of PCM plus reserved metadata regions;
/// experiments touch a few hundred thousand blocks of it, so storage is a
/// two-level page table: a hash map from page number (address bits 12 and
/// up) to 4 KiB pages of 64-byte blocks. Unwritten blocks read as zero
/// (freshly-initialized memory). Workloads are page-clustered, so the
/// common access hits one hash lookup per 64 blocks of locality and the
/// per-block work is an index and a bitmask instead of a `HashMap` probe.
///
/// ```
/// use horus_nvm::NvmDevice;
/// let mut d = NvmDevice::new();
/// assert_eq!(d.read_block(0x80), [0u8; 64]);
/// d.write_block(0x80, [3u8; 64]);
/// assert_eq!(d.read_block(0x80), [3u8; 64]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct NvmDevice {
    pages: FxHashMap<u64, PageSlot>,
    written: usize,
}

impl NvmDevice {
    /// Creates an empty (all-zero) device.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn assert_aligned(addr: u64) {
        assert!(
            addr % BLOCK_SIZE as u64 == 0,
            "NVM address {addr:#x} is not block-aligned"
        );
    }

    /// Splits a block address into (page number, block-in-page index).
    fn split(addr: u64) -> (u64, usize) {
        (addr / PAGE_SIZE, ((addr % PAGE_SIZE) as usize) / BLOCK_SIZE)
    }

    /// Reads the block at `addr` (zero if never written).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 64-byte aligned.
    #[must_use]
    pub fn read_block(&self, addr: u64) -> Block {
        Self::assert_aligned(addr);
        let (page, idx) = Self::split(addr);
        match self.pages.get(&page) {
            Some(PageSlot::Single { idx: i, block }) if *i as usize == idx => *block,
            Some(PageSlot::Full(p)) => p.blocks[idx],
            _ => [0u8; BLOCK_SIZE],
        }
    }

    /// Writes the block at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 64-byte aligned.
    pub fn write_block(&mut self, addr: u64, data: Block) {
        Self::assert_aligned(addr);
        let (page, idx) = Self::split(addr);
        match self.pages.entry(page) {
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(PageSlot::Single {
                    idx: idx as u8,
                    block: data,
                });
                self.written += 1;
            }
            std::collections::hash_map::Entry::Occupied(mut o) => match o.get_mut() {
                PageSlot::Single { idx: i, block } if *i as usize == idx => *block = data,
                slot @ PageSlot::Single { .. } => {
                    let PageSlot::Single { idx: i, block } = *slot else {
                        unreachable!()
                    };
                    let mut p = Page::empty();
                    p.blocks[i as usize] = block;
                    p.blocks[idx] = data;
                    p.written = (1u64 << i) | (1u64 << idx);
                    *slot = PageSlot::Full(p);
                    self.written += 1;
                }
                PageSlot::Full(p) => {
                    let bit = 1u64 << idx;
                    if p.written & bit == 0 {
                        p.written |= bit;
                        self.written += 1;
                    }
                    p.blocks[idx] = data;
                }
            },
        }
    }

    /// Whether the block at `addr` has ever been written.
    #[must_use]
    pub fn is_written(&self, addr: u64) -> bool {
        Self::assert_aligned(addr);
        let (page, idx) = Self::split(addr);
        match self.pages.get(&page) {
            Some(PageSlot::Single { idx: i, .. }) => *i as usize == idx,
            Some(PageSlot::Full(p)) => p.written & (1u64 << idx) != 0,
            None => false,
        }
    }

    /// Number of distinct blocks ever written.
    #[must_use]
    pub fn written_blocks(&self) -> usize {
        self.written
    }

    /// All written block addresses, sorted (deterministic iteration for
    /// recovery scans over a sparse device).
    #[must_use]
    pub fn written_addrs_sorted(&self) -> Vec<u64> {
        let mut pages: Vec<u64> = self.pages.keys().copied().collect();
        pages.sort_unstable();
        let mut addrs = Vec::with_capacity(self.written);
        for page in pages {
            let mut mask = match &self.pages[&page] {
                PageSlot::Single { idx, .. } => 1u64 << idx,
                PageSlot::Full(p) => p.written,
            };
            while mask != 0 {
                let idx = mask.trailing_zeros() as u64;
                addrs.push(page * PAGE_SIZE + idx * BLOCK_SIZE as u64);
                mask &= mask - 1;
            }
        }
        addrs
    }

    /// Erases a range of blocks back to zero (used when a drain episode's
    /// vault is logically discarded).
    ///
    /// # Panics
    ///
    /// Panics if `start` is not block-aligned.
    pub fn erase_range(&mut self, start: u64, blocks: u64) {
        Self::assert_aligned(start);
        for i in 0..blocks {
            let (page, idx) = Self::split(start + i * BLOCK_SIZE as u64);
            match self.pages.get_mut(&page) {
                Some(PageSlot::Single { idx: i, .. }) if *i as usize == idx => {
                    self.pages.remove(&page);
                    self.written -= 1;
                }
                Some(PageSlot::Single { .. }) => {}
                Some(PageSlot::Full(p)) => {
                    let bit = 1u64 << idx;
                    if p.written & bit != 0 {
                        p.written &= !bit;
                        p.blocks[idx] = [0u8; BLOCK_SIZE];
                        self.written -= 1;
                    }
                    if p.written == 0 {
                        self.pages.remove(&page);
                    }
                }
                None => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_reads_zero() {
        let d = NvmDevice::new();
        assert_eq!(d.read_block(0), [0u8; 64]);
        assert!(!d.is_written(0));
        assert_eq!(d.written_blocks(), 0);
    }

    #[test]
    fn write_then_read() {
        let mut d = NvmDevice::new();
        let b: Block = core::array::from_fn(|i| i as u8);
        d.write_block(1 << 34, b);
        assert_eq!(d.read_block(1 << 34), b);
        assert!(d.is_written(1 << 34));
        assert_eq!(d.written_blocks(), 1);
    }

    #[test]
    fn overwrite_replaces() {
        let mut d = NvmDevice::new();
        d.write_block(64, [1u8; 64]);
        d.write_block(64, [2u8; 64]);
        assert_eq!(d.read_block(64), [2u8; 64]);
        assert_eq!(d.written_blocks(), 1);
    }

    #[test]
    fn second_write_promotes_page_and_keeps_first_block() {
        let mut d = NvmDevice::new();
        d.write_block(4096, [1u8; 64]);
        d.write_block(4096 + 64, [2u8; 64]);
        d.write_block(4096 + 4032, [3u8; 64]);
        assert_eq!(d.read_block(4096), [1u8; 64]);
        assert_eq!(d.read_block(4096 + 64), [2u8; 64]);
        assert_eq!(d.read_block(4096 + 4032), [3u8; 64]);
        assert_eq!(d.read_block(4096 + 128), [0u8; 64]);
        assert_eq!(d.written_blocks(), 3);
        assert_eq!(d.written_addrs_sorted(), vec![4096, 4096 + 64, 4096 + 4032]);
    }

    #[test]
    fn erase_single_block_page() {
        let mut d = NvmDevice::new();
        d.write_block(8192, [1u8; 64]);
        d.erase_range(8192, 1);
        assert!(!d.is_written(8192));
        assert_eq!(d.read_block(8192), [0u8; 64]);
        assert_eq!(d.written_blocks(), 0);
    }

    #[test]
    fn zero_write_is_still_written() {
        // The bitmask, not the contents, defines written-ness.
        let mut d = NvmDevice::new();
        d.write_block(128, [0u8; 64]);
        assert!(d.is_written(128));
        assert!(!d.is_written(192), "neighbour in the same page unwritten");
        assert_eq!(d.written_blocks(), 1);
        assert_eq!(d.written_addrs_sorted(), vec![128]);
    }

    #[test]
    fn erase_range_zeroes() {
        let mut d = NvmDevice::new();
        d.write_block(0, [1u8; 64]);
        d.write_block(64, [1u8; 64]);
        d.write_block(128, [1u8; 64]);
        d.erase_range(0, 2);
        assert_eq!(d.read_block(0), [0u8; 64]);
        assert_eq!(d.read_block(64), [0u8; 64]);
        assert_eq!(d.read_block(128), [1u8; 64]);
        assert_eq!(d.written_blocks(), 1);
        assert!(!d.is_written(0));
        assert_eq!(d.written_addrs_sorted(), vec![128]);
    }

    #[test]
    fn written_addrs_sorted_across_pages() {
        let mut d = NvmDevice::new();
        // Out-of-order writes spanning several pages and a page boundary.
        for addr in [1 << 30, 4096, 4032, 0, 64, (1 << 30) + 64, 8192] {
            d.write_block(addr, [7u8; 64]);
        }
        assert_eq!(
            d.written_addrs_sorted(),
            vec![0, 64, 4032, 4096, 8192, 1 << 30, (1 << 30) + 64]
        );
        assert_eq!(d.written_blocks(), 7);
    }

    #[test]
    #[should_panic(expected = "block-aligned")]
    fn misaligned_read_panics() {
        let d = NvmDevice::new();
        let _ = d.read_block(7);
    }

    #[test]
    #[should_panic(expected = "block-aligned")]
    fn misaligned_write_panics() {
        let mut d = NvmDevice::new();
        d.write_block(100, [0u8; 64]);
    }
}
