//! Security metadata for the Horus secure-EPD reproduction.
//!
//! A counter-mode secure memory controller (paper §II-B) maintains three
//! kinds of metadata, all modelled functionally here:
//!
//! * [`counter::CounterBlock`] — split encryption counters: one 64-bit
//!   major counter plus 64 seven-bit minor counters per 64-byte block,
//!   covering a 4 KB data page;
//! * [`bmt::Bmt`] — the 8-ary Bonsai Merkle Tree over the counter blocks,
//!   with an on-chip root; implemented sparsely (untouched subtrees share
//!   per-level default nodes) so a 32 GB tree costs nothing to set up;
//! * data MACs, stored eight to a block in the MAC region.
//!
//! [`engine::MetadataEngine`] ties these to the metadata caches of
//! Table I (256 KB counter / 512 KB MAC / 256 KB tree caches) and
//! implements both **lazy** and **eager** tree-update schemes (§II-C),
//! including the cascading evict-update-fetch behaviour that makes the
//! baseline secure EPD drain so expensive (§III).
//!
//! [`platform::Platform`] bundles the timed NVM with the AES and hash
//! engine timing models, and owns the `macop.*` / `aesop.*` accounting
//! used to reproduce the paper's Figure 13.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bmt;
pub mod counter;
pub mod engine;
pub mod platform;

pub use bmt::Bmt;
pub use counter::CounterBlock;
pub use engine::{IntegrityError, MetadataCacheConfig, MetadataEngine, UpdateScheme};
pub use platform::{CryptoTimingConfig, Platform};
