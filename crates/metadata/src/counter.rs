//! Split encryption counters (paper §II-B).
//!
//! The state-of-the-art split-counter layout packs, into one 64-byte
//! block, a 64-bit *major* counter shared by a 4 KB page and 64 *minor*
//! 7-bit counters, one per 64-byte data block. A data block's encryption
//! counter is the concatenation `major || minor`; when a minor counter
//! overflows, the major counter is incremented and the whole page must be
//! re-encrypted (every sibling's effective counter changed).

use horus_nvm::Block;

/// Maximum value of a 7-bit minor counter.
pub const MINOR_MAX: u8 = 127;

/// Number of minor counters in a block (one 4 KB page of 64 B blocks).
pub const MINORS: usize = 64;

/// The outcome of incrementing a minor counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Increment {
    /// The minor counter advanced; the new full counter is given.
    Advanced(u64),
    /// The minor counter overflowed: the major counter was incremented,
    /// all minors were reset, and this slot now reads 1. Every *other*
    /// block in the page must be re-encrypted with its new full counter.
    /// The new full counter for the written slot is given.
    Overflowed(u64),
}

impl Increment {
    /// The full counter to encrypt the written block with, regardless of
    /// overflow.
    #[must_use]
    pub fn counter(self) -> u64 {
        match self {
            Increment::Advanced(c) | Increment::Overflowed(c) => c,
        }
    }

    /// Whether the increment overflowed the minor counter.
    #[must_use]
    pub fn overflowed(self) -> bool {
        matches!(self, Increment::Overflowed(_))
    }
}

/// A split-counter block: one major + 64 minor counters.
///
/// ```
/// use horus_metadata::CounterBlock;
/// let mut cb = CounterBlock::new();
/// assert_eq!(cb.counter(3), 0);
/// cb.increment(3);
/// assert_eq!(cb.counter(3), 1);
/// let bytes = cb.to_block();
/// assert_eq!(CounterBlock::from_block(&bytes), cb);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterBlock {
    major: u64,
    minors: [u8; MINORS],
}

impl Default for CounterBlock {
    fn default() -> Self {
        Self::new()
    }
}

impl CounterBlock {
    /// A fresh block: all counters zero.
    #[must_use]
    pub fn new() -> Self {
        Self {
            major: 0,
            minors: [0; MINORS],
        }
    }

    /// The major counter.
    #[must_use]
    pub fn major(&self) -> u64 {
        self.major
    }

    /// The minor counter of `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= 64`.
    #[must_use]
    pub fn minor(&self, slot: usize) -> u8 {
        self.minors[slot]
    }

    /// The full encryption counter of `slot`: `major << 7 | minor`.
    #[must_use]
    pub fn counter(&self, slot: usize) -> u64 {
        (self.major << 7) | u64::from(self.minors[slot])
    }

    /// Increments the minor counter of `slot`, handling overflow per the
    /// split-counter scheme.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= 64`.
    pub fn increment(&mut self, slot: usize) -> Increment {
        if self.minors[slot] == MINOR_MAX {
            self.major += 1;
            self.minors = [0; MINORS];
            self.minors[slot] = 1;
            Increment::Overflowed(self.counter(slot))
        } else {
            self.minors[slot] += 1;
            Increment::Advanced(self.counter(slot))
        }
    }

    /// Serializes to the 64-byte memory layout: major (8 B little-endian)
    /// followed by the 64 minors bit-packed 7 bits each (56 B).
    #[must_use]
    pub fn to_block(&self) -> Block {
        let mut out = [0u8; 64];
        out[..8].copy_from_slice(&self.major.to_le_bytes());
        for (i, &m) in self.minors.iter().enumerate() {
            let v = m & 0x7f;
            let bit = 7 * i;
            let (byte, off) = (bit / 8, (bit % 8) as u32);
            out[8 + byte] |= v << off;
            if off > 1 {
                out[8 + byte + 1] |= v >> (8 - off);
            }
        }
        out
    }

    /// Parses the 64-byte memory layout written by
    /// [`to_block`](Self::to_block).
    #[must_use]
    pub fn from_block(block: &Block) -> Self {
        let major = u64::from_le_bytes(block[..8].try_into().expect("8-byte slice"));
        let mut minors = [0u8; MINORS];
        for (i, m) in minors.iter_mut().enumerate() {
            let bit = 7 * i;
            let (byte, off) = (bit / 8, (bit % 8) as u32);
            let mut v = block[8 + byte] >> off;
            if off > 1 {
                v |= block[8 + byte + 1] << (8 - off);
            }
            *m = v & 0x7f;
        }
        Self { major, minors }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_block_is_zero() {
        let cb = CounterBlock::new();
        assert_eq!(cb.major(), 0);
        for s in 0..MINORS {
            assert_eq!(cb.counter(s), 0);
        }
        assert_eq!(cb.to_block(), [0u8; 64]);
    }

    #[test]
    fn increment_advances() {
        let mut cb = CounterBlock::new();
        let inc = cb.increment(0);
        assert_eq!(inc, Increment::Advanced(1));
        assert_eq!(inc.counter(), 1);
        assert!(!inc.overflowed());
        assert_eq!(cb.minor(0), 1);
        assert_eq!(cb.minor(1), 0);
    }

    #[test]
    fn counter_concatenates_major_minor() {
        let mut cb = CounterBlock::new();
        for _ in 0..5 {
            cb.increment(7);
        }
        assert_eq!(cb.counter(7), 5);
        // Force an overflow to bump the major counter.
        for _ in 0..(MINOR_MAX as usize - 5) {
            cb.increment(7);
        }
        assert_eq!(cb.minor(7), MINOR_MAX);
        let inc = cb.increment(7);
        assert!(inc.overflowed());
        assert_eq!(cb.major(), 1);
        assert_eq!(cb.counter(7), (1 << 7) | 1);
        assert_eq!(inc.counter(), (1 << 7) | 1);
        // Siblings were reset.
        assert_eq!(cb.minor(6), 0);
    }

    #[test]
    fn overflow_resets_all_minors() {
        let mut cb = CounterBlock::new();
        cb.increment(3);
        cb.increment(9);
        for _ in 0..=MINOR_MAX as usize {
            cb.increment(0);
        }
        assert_eq!(cb.major(), 1);
        assert_eq!(cb.minor(3), 0);
        assert_eq!(cb.minor(9), 0);
        assert_eq!(cb.minor(0), 1);
    }

    #[test]
    fn counters_never_repeat_across_overflow() {
        // The full counter sequence for a slot must be strictly
        // increasing even across an overflow.
        let mut cb = CounterBlock::new();
        let mut last = cb.counter(0);
        for _ in 0..300 {
            let c = cb.increment(0).counter();
            assert!(c > last, "counter repeated or regressed: {c} after {last}");
            last = c;
        }
    }

    #[test]
    fn block_roundtrip_exhaustive_slots() {
        let mut cb = CounterBlock::new();
        for s in 0..MINORS {
            for _ in 0..(s % 7) + 1 {
                cb.increment(s);
            }
        }
        cb.major = 0x0123_4567_89ab_cdef;
        let block = cb.to_block();
        assert_eq!(CounterBlock::from_block(&block), cb);
    }

    #[test]
    fn packing_is_dense() {
        // Slot 63 set to 127 must land in the last byte.
        let mut cb = CounterBlock::new();
        cb.minors[63] = 127;
        let block = cb.to_block();
        assert_ne!(block[63], 0);
        assert_eq!(CounterBlock::from_block(&block).minor(63), 127);
    }

    #[test]
    fn distinct_slots_do_not_interfere() {
        let mut cb = CounterBlock::new();
        cb.minors = core::array::from_fn(|i| (i as u8).wrapping_mul(37) & 0x7f);
        let rt = CounterBlock::from_block(&cb.to_block());
        assert_eq!(rt, cb);
    }

    #[test]
    #[should_panic]
    fn out_of_range_slot_panics() {
        let cb = CounterBlock::new();
        let _ = cb.minor(64);
    }
}
