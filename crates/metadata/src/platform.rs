//! The platform model: timed NVM plus crypto-engine timing and
//! accounting.
//!
//! The secure memory controller contains an AES engine (pad generation)
//! and a hash engine (MAC computation). The paper's Table I gives their
//! latencies (AES 40 cycles, single hash 160 cycles); real engines are
//! pipelined, so each also has an initiation interval. Every operation is
//! attributed to a *kind* in the `aesop.*` / `macop.*` counters — the
//! hash-engine breakdown reproduces the paper's Figure 13.

use horus_nvm::{NvmConfig, NvmSystem};
use horus_sim::trace::Probe;
use horus_sim::{Completion, Cycles, SlotResource, Stats, TraceEvent};
use serde::{Deserialize, Serialize};

/// Latency/throughput parameters of the on-chip crypto engines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CryptoTimingConfig {
    /// AES block-encryption latency (Table I: 40 cycles).
    pub aes_latency: Cycles,
    /// AES pipeline initiation interval.
    pub aes_interval: Cycles,
    /// Hash/MAC latency (Table I: 160 cycles).
    pub hash_latency: Cycles,
    /// Hash pipeline initiation interval (the engine accepts a new MAC
    /// every this many cycles; 80 models a two-stage pipelined unit).
    pub hash_interval: Cycles,
}

impl CryptoTimingConfig {
    /// The paper's Table I engine parameters. The 40-cycle hash
    /// initiation interval models four pipelined 160-cycle hash units —
    /// the throughput the paper's eager baseline implies (≈13 MACs per
    /// flushed block without becoming hash-bound relative to memory).
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            aes_latency: Cycles(40),
            aes_interval: Cycles(2),
            hash_latency: Cycles(160),
            hash_interval: Cycles(40),
        }
    }
}

impl Default for CryptoTimingConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// The timed platform every controller operation runs against: NVM,
/// AES engine, hash engine, and the crypto-op accounting registry.
#[derive(Debug, Clone)]
pub struct Platform {
    /// The timed, accounted NVM system.
    pub nvm: NvmSystem,
    aes: SlotResource,
    hash: SlotResource,
    stats: Stats,
    /// Carries drain-phase and recovery markers on a dedicated
    /// `"phase"` track (disabled, hence free, by default).
    phase_probe: Probe,
}

impl Platform {
    /// Builds a platform from NVM and crypto-engine configurations.
    #[must_use]
    pub fn new(nvm: NvmConfig, crypto: CryptoTimingConfig) -> Self {
        Self {
            nvm: NvmSystem::new(nvm),
            aes: SlotResource::pipelined("aes", crypto.aes_latency, crypto.aes_interval),
            hash: SlotResource::pipelined("hash", crypto.hash_latency, crypto.hash_interval),
            stats: Stats::new(),
            phase_probe: Probe::disabled(),
        }
    }

    /// The paper's default platform (Table I).
    #[must_use]
    pub fn paper_default() -> Self {
        Self::new(
            NvmConfig::paper_default(),
            CryptoTimingConfig::paper_default(),
        )
    }

    /// Issues one MAC computation attributed to `kind` (`macop.<kind>`).
    pub fn mac_op(&mut self, kind: &str, ready: Cycles) -> Completion {
        self.stats.incr_pair("macop.", kind);
        if self.hash.probe_enabled() {
            self.hash.issue_named(&format!("mac.{kind}"), ready)
        } else {
            self.hash.issue(ready)
        }
    }

    /// Issues the four pipelined AES operations generating one 64-byte
    /// one-time pad, attributed to `kind` (`aesop.<kind>` counts pads).
    /// Returns the completion of the last lane.
    pub fn otp_op(&mut self, kind: &str, ready: Cycles) -> Completion {
        self.stats.incr_pair("aesop.", kind);
        if self.aes.probe_enabled() {
            let name = format!("otp.{kind}");
            let mut last = self.aes.issue_named(&name, ready);
            for _ in 1..4 {
                last = self.aes.issue_named(&name, ready);
            }
            last
        } else {
            let mut last = self.aes.issue(ready);
            for _ in 1..4 {
                last = self.aes.issue(ready);
            }
            last
        }
    }

    /// Starts recording operation traces on every platform resource:
    /// per-bank NVM tracks, the AES and hash engines, and the `"phase"`
    /// marker track.
    pub fn enable_probe(&mut self) {
        self.nvm.enable_probe();
        self.aes.enable_probe();
        self.hash.enable_probe();
        self.phase_probe.enable("phase");
    }

    /// Whether the platform records traces.
    #[must_use]
    pub fn probe_enabled(&self) -> bool {
        self.phase_probe.enabled()
    }

    /// Records a phase marker span (e.g. `"drain.data"`) on the
    /// `"phase"` track. A no-op when the probe is disabled.
    pub fn record_phase(&mut self, name: &str, start: Cycles, end: Cycles) {
        self.phase_probe.record_span(name, start.0, end.0);
    }

    /// Drains every recorded event: NVM banks, AES, hash, then phase
    /// markers, each in recording order.
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        let mut events = self.nvm.take_trace();
        events.extend(self.aes.take_trace());
        events.extend(self.hash.take_trace());
        events.extend(self.phase_probe.take());
        events
    }

    /// The crypto-op accounting registry (`macop.*`, `aesop.*`).
    #[must_use]
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Total MAC computations issued.
    #[must_use]
    pub fn total_mac_ops(&self) -> u64 {
        self.stats.sum_prefix("macop.")
    }

    /// Total one-time pads generated.
    #[must_use]
    pub fn total_otp_ops(&self) -> u64 {
        self.stats.sum_prefix("aesop.")
    }

    /// A merged view of platform statistics: memory (`mem.*`) and crypto
    /// (`macop.*`, `aesop.*`) counters.
    #[must_use]
    pub fn merged_stats(&self) -> Stats {
        let mut s = self.stats.clone();
        s.merge(self.nvm.stats());
        s
    }

    /// The time the platform becomes fully idle — the draining time when
    /// measured after a drain.
    #[must_use]
    pub fn busy_until(&self) -> Cycles {
        self.nvm
            .busy_until()
            .max(self.aes.busy_until())
            .max(self.hash.busy_until())
    }

    /// Resets timing and accounting, keeping NVM contents (a new
    /// measurement episode, e.g. recovery after a drain).
    pub fn reset_timing(&mut self) {
        self.nvm.reset_timing();
        self.aes.reset();
        self.hash.reset();
        self.stats.clear();
        self.phase_probe.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_ops_are_pipelined_and_counted() {
        let mut p = Platform::paper_default();
        let a = p.mac_op("verify_counter", Cycles(0));
        let b = p.mac_op("verify_counter", Cycles(0));
        assert_eq!(a.done, Cycles(160));
        assert_eq!(b.done, Cycles(200)); // 40-cycle initiation interval
        assert_eq!(p.stats().get("macop.verify_counter"), 2);
        assert_eq!(p.total_mac_ops(), 2);
    }

    #[test]
    fn otp_uses_four_lanes() {
        let mut p = Platform::paper_default();
        let c = p.otp_op("data", Cycles(0));
        // Lanes at 0,2,4,6 + 40-cycle latency.
        assert_eq!(c.done, Cycles(46));
        assert_eq!(p.total_otp_ops(), 1);
    }

    #[test]
    fn busy_until_covers_all_engines() {
        let mut p = Platform::paper_default();
        assert_eq!(p.busy_until(), Cycles::ZERO);
        // Ready 100 rounds up to the next 40-cycle initiation slot (120).
        p.mac_op("x", Cycles(100));
        assert_eq!(p.busy_until(), Cycles(280));
        p.nvm.write(0, [0u8; 64], "data", Cycles(0));
        assert_eq!(p.busy_until(), Cycles(2000));
    }

    #[test]
    fn merged_stats_combines_registries() {
        let mut p = Platform::paper_default();
        p.mac_op("data_mac", Cycles(0));
        p.nvm.write(0, [0u8; 64], "data", Cycles(0));
        let s = p.merged_stats();
        assert_eq!(s.get("macop.data_mac"), 1);
        assert_eq!(s.get("mem.write.data"), 1);
    }

    #[test]
    fn probe_traces_all_engines_and_phases() {
        let mut p = Platform::paper_default();
        assert!(!p.probe_enabled());
        p.enable_probe();
        assert!(p.probe_enabled());
        p.mac_op("data_mac", Cycles(0));
        p.otp_op("data", Cycles(0));
        p.nvm.write(0, [0u8; 64], "data", Cycles(0));
        p.record_phase("drain.data", Cycles(0), Cycles(2000));
        let trace = p.take_trace();
        let tracks: std::collections::BTreeSet<&str> =
            trace.iter().map(|e| e.track.as_str()).collect();
        assert!(tracks.contains("aes"));
        assert!(tracks.contains("hash"));
        assert!(tracks.contains("phase"));
        assert!(tracks.iter().any(|t| t.starts_with("pcm-bank[")));
        // 1 mac + 4 aes lanes + 1 write + 1 phase marker.
        assert_eq!(trace.len(), 7);
        assert_eq!(
            trace.iter().filter(|e| e.name == "otp.data").count(),
            4,
            "all four AES lanes labelled"
        );
        // Probing does not perturb timing.
        let mut plain = Platform::paper_default();
        assert_eq!(plain.mac_op("data_mac", Cycles(0)).done, Cycles(160));
    }

    #[test]
    fn reset_timing_clears_probe_buffers() {
        let mut p = Platform::paper_default();
        p.enable_probe();
        p.mac_op("x", Cycles(0));
        p.record_phase("drain.data", Cycles(0), Cycles(100));
        p.reset_timing();
        assert!(p.probe_enabled(), "probe survives a timing reset");
        assert!(p.take_trace().is_empty());
    }

    #[test]
    fn reset_timing_clears_everything_but_contents() {
        let mut p = Platform::paper_default();
        p.nvm.write(64, [3u8; 64], "data", Cycles(0));
        p.mac_op("x", Cycles(0));
        p.reset_timing();
        assert_eq!(p.busy_until(), Cycles::ZERO);
        assert_eq!(p.total_mac_ops(), 0);
        assert_eq!(p.nvm.device().read_block(64), [3u8; 64]);
    }
}
