//! The security-metadata engine: caches + update schemes.
//!
//! This implements the run-time metadata path of a secure NVM controller
//! (paper §II-B/C) — exactly the machinery the *baseline* secure EPD
//! systems keep using while draining the cache hierarchy, and the source
//! of their 10x memory-access blow-up (§III):
//!
//! * every counter fetch that misses the counter cache costs a memory
//!   read **plus** a Merkle-path verification walk (more reads + MAC
//!   computations until the first tree-cache hit, or the root);
//! * every insertion can evict a dirty metadata block, which costs a
//!   write **and** (in the lazy scheme) an update of its parent tree
//!   node, which may itself miss, fetch, verify, and evict — a cascade;
//! * the eager scheme instead pays a full path update (one MAC per tree
//!   level) on every single counter bump.
//!
//! All of it is functional: MACs really are verified, and a mismatch
//! surfaces as an [`IntegrityError`].

use crate::bmt::{decode_node, encode_node, Bmt};
use crate::counter::{CounterBlock, Increment};
use crate::platform::Platform;
use horus_cache::{CacheGeometry, EvictedLine, ReplacementPolicy, SetAssocCache};
use horus_crypto::Mac64;
use horus_nvm::{AddressMap, Block, Region};
use horus_sim::Cycles;
use serde::{Deserialize, Serialize};

/// How the Merkle tree is brought up to date (paper §II-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UpdateScheme {
    /// Update a parent only when a dirty child is evicted from the
    /// metadata cache. Fast at run time; the root is stale until all
    /// dirty nodes are flushed.
    Lazy,
    /// Update the whole affected path, including the on-chip root, on
    /// every counter write.
    Eager,
}

impl std::fmt::Display for UpdateScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UpdateScheme::Lazy => write!(f, "lazy"),
            UpdateScheme::Eager => write!(f, "eager"),
        }
    }
}

/// Sizes of the three metadata caches (Table I defaults).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetadataCacheConfig {
    /// Counter cache capacity in bytes (Table I: 256 KB).
    pub counter_cache_bytes: u64,
    /// MAC cache capacity in bytes (Table I: 512 KB).
    pub mac_cache_bytes: u64,
    /// Merkle-tree cache capacity in bytes (Table I: 256 KB).
    pub tree_cache_bytes: u64,
    /// Associativity of all three (Table I: 8).
    pub ways: usize,
    /// Replacement policy of all three (ablation knob; LRU by default).
    pub policy: ReplacementPolicy,
}

impl MetadataCacheConfig {
    /// The paper's Table I metadata caches.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            counter_cache_bytes: 256 * 1024,
            mac_cache_bytes: 512 * 1024,
            tree_cache_bytes: 256 * 1024,
            ways: 8,
            policy: ReplacementPolicy::Lru,
        }
    }

    /// Total lines across the three caches — what the final metadata
    /// flush must move.
    #[must_use]
    pub fn total_lines(&self) -> u64 {
        (self.counter_cache_bytes + self.mac_cache_bytes + self.tree_cache_bytes) / 64
    }
}

impl Default for MetadataCacheConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// An integrity-verification failure: a stored MAC did not match the
/// recomputed one. In hardware this halts the machine; in the simulator
/// it is an error the caller surfaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntegrityError {
    /// The physical address of the object that failed verification.
    pub addr: u64,
    /// What kind of object failed (`"counter"`, `"tree-node"`, …).
    pub what: &'static str,
}

impl std::fmt::Display for IntegrityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "integrity verification failed for {} at {:#x}",
            self.what, self.addr
        )
    }
}

impl std::error::Error for IntegrityError {}

/// The result of bumping a block's write counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterUpdate {
    /// Advance/overflow outcome; `outcome.counter()` is the counter to
    /// encrypt with.
    pub outcome: Increment,
    /// The counter block before the increment (needed to re-encrypt the
    /// page on overflow).
    pub old: CounterBlock,
    /// The counter block after the increment.
    pub new: CounterBlock,
    /// When the metadata work completed.
    pub ready: Cycles,
}

/// The metadata engine: the three metadata caches, the functional BMT,
/// and the update-scheme logic.
#[derive(Debug, Clone)]
pub struct MetadataEngine {
    map: AddressMap,
    scheme: UpdateScheme,
    counter_cache: SetAssocCache,
    mac_cache: SetAssocCache,
    tree_cache: SetAssocCache,
    bmt: Bmt,
    small_tree_root: Option<Mac64>,
    shadow_blocks: Option<u64>,
    /// Victim buffer: tree nodes whose eviction is in flight (written to
    /// NVM but their parent entry not yet updated). A fetch hitting this
    /// buffer is served trusted, exactly like hardware's write-back
    /// MSHRs — without it, a nested eviction cascade could re-fetch the
    /// node from NVM before the parent entry catches up and fail
    /// verification spuriously.
    wb_tree: horus_sim::FxHashMap<u64, Block>,
    /// Reinstall generations: bumped whenever a node is served out of the
    /// victim buffer back into the cache. An in-flight eviction whose
    /// node was reinstalled (and possibly re-modified and re-evicted)
    /// must *not* apply its now-stale parent update — the reinstalled
    /// copy is dirty and its own eviction carries the fresh one.
    wb_reinstall_gen: horus_sim::FxHashMap<u64, u64>,
    /// Osiris-style stop-loss: when set to `K`, a counter block is
    /// persisted (with its tree update) whenever a counter crosses a
    /// multiple of `K` or overflows, bounding how far any stored counter
    /// can lag its true value — the property Osiris-style disaster
    /// recovery needs (every true counter lies within `K` of the stored
    /// one).
    osiris_stop_loss: Option<u64>,
    event_log: Option<Vec<String>>,
}

impl MetadataEngine {
    /// Builds an engine over `map` with the given scheme, cache sizes,
    /// and tree key.
    ///
    /// # Panics
    ///
    /// Panics if the BMT geometry derived from the key/leaf count does
    /// not match the address map's reserved levels.
    #[must_use]
    pub fn new(
        map: AddressMap,
        scheme: UpdateScheme,
        caches: MetadataCacheConfig,
        tree_key: &[u8; 16],
    ) -> Self {
        let bmt = Bmt::new(tree_key, map.counter_blocks());
        assert_eq!(
            bmt.levels(),
            map.bmt_levels(),
            "BMT geometry must match the address map's reserved levels"
        );
        Self {
            counter_cache: SetAssocCache::with_policy(
                CacheGeometry::new("counter$", caches.counter_cache_bytes, caches.ways),
                caches.policy,
            ),
            mac_cache: SetAssocCache::with_policy(
                CacheGeometry::new("mac$", caches.mac_cache_bytes, caches.ways),
                caches.policy,
            ),
            tree_cache: SetAssocCache::with_policy(
                CacheGeometry::new("tree$", caches.tree_cache_bytes, caches.ways),
                caches.policy,
            ),
            map,
            scheme,
            bmt,
            small_tree_root: None,
            shadow_blocks: None,
            wb_tree: horus_sim::FxHashMap::default(),
            wb_reinstall_gen: horus_sim::FxHashMap::default(),
            osiris_stop_loss: None,
            event_log: None,
        }
    }

    /// Enables Osiris-style counter persistence with the given stop-loss
    /// (see the field docs); returns the engine for chaining.
    ///
    /// # Panics
    ///
    /// Panics if `stop_loss` is zero.
    #[must_use]
    pub fn with_osiris(mut self, stop_loss: u64) -> Self {
        assert!(stop_loss > 0, "stop-loss must be positive");
        self.osiris_stop_loss = Some(stop_loss);
        self
    }

    /// The Osiris stop-loss in force, if any.
    #[must_use]
    pub fn osiris_stop_loss(&self) -> Option<u64> {
        self.osiris_stop_loss
    }

    /// Enables or disables the Osiris discipline on a live engine.
    ///
    /// # Panics
    ///
    /// Panics if `stop_loss` is `Some(0)`.
    pub fn set_osiris(&mut self, stop_loss: Option<u64>) {
        assert!(stop_loss != Some(0), "stop-loss must be positive");
        self.osiris_stop_loss = stop_loss;
    }

    /// Installs a root computed by an external tree rebuild (the Osiris
    /// disaster-recovery path) as the on-chip root.
    pub fn install_rebuilt_root(&mut self, root: Mac64) {
        self.bmt.set_root(root);
    }

    /// Debug aid: start recording engine events.
    #[doc(hidden)]
    pub fn enable_trace(&mut self) {
        self.event_log = Some(Vec::new());
    }

    /// Debug aid: stop recording and return the events.
    #[doc(hidden)]
    pub fn take_trace(&mut self) -> Vec<String> {
        self.event_log.take().unwrap_or_default()
    }

    fn log(&mut self, msg: impl FnOnce() -> String) {
        if let Some(log) = self.event_log.as_mut() {
            log.push(msg());
        }
    }

    /// The update scheme in force.
    #[must_use]
    pub fn scheme(&self) -> UpdateScheme {
        self.scheme
    }

    /// The physical address map.
    #[must_use]
    pub fn map(&self) -> &AddressMap {
        &self.map
    }

    /// The on-chip Merkle root.
    #[must_use]
    pub fn root(&self) -> Mac64 {
        self.bmt.root()
    }

    /// The BMT calculator (geometry, defaults, recompute helpers).
    #[must_use]
    pub fn bmt(&self) -> &Bmt {
        &self.bmt
    }

    /// The root of the small tree computed over the metadata cache during
    /// the lazy scheme's final flush, if one has been computed.
    #[must_use]
    pub fn small_tree_root(&self) -> Option<Mac64> {
        self.small_tree_root
    }

    /// The counter cache (inspection/statistics).
    #[must_use]
    pub fn counter_cache(&self) -> &SetAssocCache {
        &self.counter_cache
    }

    /// The MAC cache (inspection/statistics).
    #[must_use]
    pub fn mac_cache(&self) -> &SetAssocCache {
        &self.mac_cache
    }

    /// The Merkle-tree cache (inspection/statistics).
    #[must_use]
    pub fn tree_cache(&self) -> &SetAssocCache {
        &self.tree_cache
    }

    // ----- tree node storage helpers -------------------------------------

    /// Reads a tree node's authoritative bytes from NVM, substituting the
    /// level's default for never-written nodes.
    fn node_from_nvm(
        &mut self,
        p: &mut Platform,
        level: usize,
        index: u64,
        ready: Cycles,
    ) -> (Block, Cycles) {
        let addr = self.map.bmt_node_addr(level, index);
        let written = p.nvm.device().is_written(addr);
        let (bytes, c) = p.nvm.read(addr, "tree", ready);
        let bytes = if written {
            bytes
        } else {
            self.bmt.default_node(level)
        };
        (bytes, c.done)
    }

    /// The MAC a node/counter's parent should hold for `bytes`.
    fn child_mac(&self, bytes: &Block) -> Mac64 {
        self.bmt.node_mac(bytes)
    }

    /// Fetches tree node `(level, index)` through the tree cache,
    /// verifying it on a miss against its parent (fetched recursively) or
    /// the on-chip root. Fetched nodes are cached clean; any evictions
    /// this causes are fully processed.
    ///
    /// Eviction cascades triggered while servicing the miss can insert —
    /// or insert *and re-evict* — the very node being fetched, so each
    /// step re-checks the cache and retries; the retry bound only trips
    /// on pathologically tiny cache geometries.
    fn fetch_tree_node(
        &mut self,
        p: &mut Platform,
        level: usize,
        index: u64,
        ready: Cycles,
    ) -> Result<(Block, Cycles), IntegrityError> {
        let addr = self.map.bmt_node_addr(level, index);
        let mut t = ready;
        for _ in 0..64 {
            if let Some(b) = self.tree_cache.lookup(addr) {
                return Ok((*b, t));
            }
            if let Some(b) = self.wb_tree.get(&addr).copied() {
                // Victim-buffer hit: the node just left the trusted cache
                // and its write-back is in flight — serve it trusted and
                // reinstall it.
                self.log(|| format!("wb-serve L{level}[{index}] {addr:#x}"));
                *self.wb_reinstall_gen.entry(addr).or_insert(0) += 1;
                // Reinstall dirty: the in-flight eviction's parent update
                // will be cancelled, so this copy's own eventual eviction
                // must re-emit it.
                let spill = self.tree_cache.insert(addr, b, true);
                t = self.process_spill(p, spill, t)?;
                if let Some(bb) = self.tree_cache.peek(addr) {
                    return Ok((*bb, t));
                }
                continue; // the reinstall was itself evicted; retry
            }
            // Establish the trusted expectation first: the parent's entry
            // (recursively verified) or the on-chip root for the top node.
            let expected = if level == self.bmt.levels() - 1 {
                self.bmt.root()
            } else {
                let (pi, slot) = Bmt::parent_of(index);
                let (pbytes, pt) = self.fetch_tree_node(p, level + 1, pi, t)?;
                t = pt;
                decode_node(&pbytes)[slot]
            };
            if self.tree_cache.contains(addr) {
                // A cascade during the parent fetch brought the node in
                // (possibly with updates); use the cached copy.
                continue;
            }
            let (bytes, rt) = self.node_from_nvm(p, level, index, t);
            let vc = p.mac_op("verify_tree", rt);
            t = vc.done;
            if self.child_mac(&bytes) != expected {
                return Err(IntegrityError {
                    addr,
                    what: "tree-node",
                });
            }
            let fetched_mac = self.bmt.node_mac(&bytes);
            self.log(move || {
                format!("fetched+verified L{level}[{index}] {addr:#x} mac={fetched_mac}")
            });
            let spill = self.tree_cache.insert(addr, bytes, false);
            t = self.process_spill(p, spill, t)?;
            // The cascade may have evicted the node again; loop re-checks.
        }
        panic!("metadata cache livelock fetching tree node {addr:#x}");
    }

    /// Writes `child_mac` into slot `slot` of tree node `(level, index)`
    /// (fetching and verifying the node first), marking the node dirty.
    /// Under the eager scheme the change propagates to the root.
    #[allow(clippy::too_many_arguments)] // internal: (level, index, slot) + guard is clearer inline
    fn update_tree_entry(
        &mut self,
        p: &mut Platform,
        level: usize,
        index: u64,
        slot: usize,
        child_mac: Mac64,
        guard: Option<(u64, u64)>,
        ready: Cycles,
    ) -> Result<Cycles, IntegrityError> {
        let addr = self.map.bmt_node_addr(level, index);
        self.log(|| {
            format!("update entry L{level}[{index}].{slot} = {child_mac} (addr {addr:#x})")
        });
        let mut t = ready;
        let new_bytes = loop {
            let (bytes, ft) = self.fetch_tree_node(p, level, index, t)?;
            t = ft;
            if let Some((child_addr, gen0)) = guard {
                // The fetch may have run an eviction cascade that served
                // the child out of the victim buffer (reinstalling it
                // dirty, possibly modified and re-evicted with a fresh
                // parent update). Applying this update now would clobber
                // the fresh entry with a stale MAC — cancel it; the
                // reinstalled copy's own eviction owns the update.
                if self.wb_reinstall_gen.get(&child_addr).copied().unwrap_or(0) != gen0 {
                    self.log(|| format!("cancel stale update of L{level}[{index}].{slot} (child {child_addr:#x} reinstalled)"));
                    return Ok(t);
                }
            }
            let mut entries = decode_node(&bytes);
            entries[slot] = child_mac;
            let candidate = encode_node(&entries);
            // The fetch's trailing eviction cascade can evict the node
            // again before we apply the update; re-fetch and retry.
            if self.tree_cache.write_hit(addr, candidate) {
                break candidate;
            }
        };

        if self.scheme == UpdateScheme::Eager {
            // Propagate: recompute this node's MAC and update the parent,
            // level by level, finishing at the on-chip root.
            let mac = self.child_mac(&new_bytes);
            let c = p.mac_op("update_tree", t);
            t = c.done;
            if level == self.bmt.levels() - 1 {
                self.bmt.set_root(mac);
            } else {
                let (pi, pslot) = Bmt::parent_of(index);
                t = self.update_tree_entry(p, level + 1, pi, pslot, mac, None, t)?;
            }
        }
        Ok(t)
    }

    /// Fully processes an eviction spill (and any cascade it causes).
    fn process_spill(
        &mut self,
        p: &mut Platform,
        spill: Option<EvictedLine>,
        ready: Cycles,
    ) -> Result<Cycles, IntegrityError> {
        let mut t = ready;
        let mut pending: Vec<EvictedLine> = Vec::new();
        if let Some(l) = spill {
            pending.push(l);
        }
        let mut guard = 0u32;
        while let Some(line) = pending.pop() {
            guard += 1;
            assert!(guard < 1_000_000, "runaway metadata eviction cascade");
            if !line.dirty {
                continue;
            }
            match self.map.region_of(line.addr) {
                Region::Counter => {
                    self.log(|| format!("evict counter {:#x}", line.addr));
                    let c = p.nvm.write(line.addr, line.data, "counter_evict", t);
                    t = c.done;
                    if self.scheme == UpdateScheme::Lazy {
                        let cidx = (line.addr - self.map.counter_block_addr(0)) / 64;
                        let (pi, slot) = Bmt::parent_of(cidx);
                        let mac = self.child_mac(&line.data);
                        let mc = p.mac_op("update_tree", t);
                        t = self.update_tree_entry(p, 0, pi, slot, mac, None, mc.done)?;
                    }
                }
                Region::Bmt(level) => {
                    let evicted_mac = self.bmt.node_mac(&line.data);
                    self.log(move || {
                        format!(
                            "evict tree L{level} {:#x} mac(bytes)={evicted_mac} dirty={}",
                            line.addr, line.dirty
                        )
                    });
                    let gen0 = self.wb_reinstall_gen.get(&line.addr).copied().unwrap_or(0);
                    self.wb_tree.insert(line.addr, line.data);
                    let c = p.nvm.write(line.addr, line.data, "tree_evict", t);
                    t = c.done;
                    if self.scheme == UpdateScheme::Lazy {
                        let base = self.map.bmt_node_addr(level, 0);
                        let idx = (line.addr - base) / 64;
                        let mac = self.child_mac(&line.data);
                        let mc = p.mac_op("update_tree", t);
                        t = mc.done;
                        let res = if level == self.bmt.levels() - 1 {
                            self.log(|| {
                                format!("set_root {mac} from evicted top {:#x}", line.addr)
                            });
                            self.bmt.set_root(mac);
                            Ok(t)
                        } else {
                            let (pi, slot) = Bmt::parent_of(idx);
                            self.update_tree_entry(
                                p,
                                level + 1,
                                pi,
                                slot,
                                mac,
                                Some((line.addr, gen0)),
                                t,
                            )
                        };
                        self.wb_tree.remove(&line.addr);
                        t = res?;
                    } else {
                        self.wb_tree.remove(&line.addr);
                    }
                }
                Region::Mac => {
                    let c = p.nvm.write(line.addr, line.data, "mac_evict", t);
                    t = c.done;
                }
                other => panic!("metadata cache held a non-metadata block in {other:?}"),
            }
        }
        Ok(t)
    }

    // ----- counter path ---------------------------------------------------

    /// Fetches (and on a miss, verifies) the counter block covering
    /// `data_addr` into the counter cache, returning its parsed form.
    fn fetch_counter_block(
        &mut self,
        p: &mut Platform,
        data_addr: u64,
        ready: Cycles,
    ) -> Result<(CounterBlock, Cycles), IntegrityError> {
        let cb_addr = self.map.counter_block_addr(data_addr);
        if let Some(b) = self.counter_cache.lookup(cb_addr) {
            return Ok((CounterBlock::from_block(b), ready));
        }
        let (bytes, c) = p.nvm.read(cb_addr, "counter", ready);
        let mut t = c.done;
        // A never-written counter block reads as all-zero, which is also
        // its genuine initial value — no substitution needed.
        let cidx = self.map.counter_index(data_addr);
        let (pi, slot) = Bmt::parent_of(cidx);
        let (parent, pt) = self.fetch_tree_node(p, 0, pi, t)?;
        t = pt;
        let mac = self.child_mac(&bytes);
        let vc = p.mac_op("verify_counter", t);
        t = vc.done;
        if decode_node(&parent)[slot] != mac {
            return Err(IntegrityError {
                addr: cb_addr,
                what: "counter",
            });
        }
        let spill = self.counter_cache.insert(cb_addr, bytes, false);
        t = self.process_spill(p, spill, t)?;
        Ok((CounterBlock::from_block(&bytes), t))
    }

    /// Reads the current encryption counter for `data_addr` (a read-path
    /// operation: verify, do not modify).
    pub fn read_counter(
        &mut self,
        p: &mut Platform,
        data_addr: u64,
        ready: Cycles,
    ) -> Result<(u64, Cycles), IntegrityError> {
        let slot = self.map.counter_slot(data_addr);
        let (cb, t) = self.fetch_counter_block(p, data_addr, ready)?;
        Ok((cb.counter(slot), t))
    }

    /// Bumps the write counter for `data_addr` (the write path): fetch +
    /// verify, increment, mark dirty, and update the tree per the scheme.
    pub fn increment_counter(
        &mut self,
        p: &mut Platform,
        data_addr: u64,
        ready: Cycles,
    ) -> Result<CounterUpdate, IntegrityError> {
        let slot = self.map.counter_slot(data_addr);
        let cb_addr = self.map.counter_block_addr(data_addr);
        let (old, mut t) = self.fetch_counter_block(p, data_addr, ready)?;
        let mut new = old;
        let outcome = new.increment(slot);
        self.counter_cache.write_hit(cb_addr, new.to_block());

        if let Some(k) = self.osiris_stop_loss {
            if outcome.overflowed() || outcome.counter() % k == 0 {
                // Stop-loss hit: persist the counter block now, with its
                // tree entry, so the stored counter never lags by >= k.
                let bytes = new.to_block();
                let c = p.nvm.write(cb_addr, bytes, "counter_osiris", t);
                t = c.done;
                self.counter_cache.mark_clean(cb_addr);
                if self.scheme == UpdateScheme::Lazy {
                    let cidx = self.map.counter_index(data_addr);
                    let (pi, pslot) = Bmt::parent_of(cidx);
                    let mac = self.child_mac(&bytes);
                    let mc = p.mac_op("update_tree", t);
                    t = self.update_tree_entry(p, 0, pi, pslot, mac, None, mc.done)?;
                }
            }
        }

        if self.scheme == UpdateScheme::Eager {
            let cidx = self.map.counter_index(data_addr);
            let (pi, pslot) = Bmt::parent_of(cidx);
            let mac = self.child_mac(&new.to_block());
            let mc = p.mac_op("update_tree", t);
            t = self.update_tree_entry(p, 0, pi, pslot, mac, None, mc.done)?;
        }
        Ok(CounterUpdate {
            outcome,
            old,
            new,
            ready: t,
        })
    }

    // ----- data-MAC path ---------------------------------------------------

    fn fetch_mac_block(
        &mut self,
        p: &mut Platform,
        data_addr: u64,
        ready: Cycles,
    ) -> Result<(Block, Cycles), IntegrityError> {
        let mb_addr = self.map.mac_block_addr(data_addr);
        if let Some(b) = self.mac_cache.lookup(mb_addr) {
            return Ok((*b, ready));
        }
        let (bytes, c) = p.nvm.read(mb_addr, "mac", ready);
        let spill = self.mac_cache.insert(mb_addr, bytes, false);
        let t = self.process_spill(p, spill, c.done)?;
        Ok((bytes, t))
    }

    /// Stores the data MAC for `data_addr` (read-modify-write of its MAC
    /// block through the MAC cache).
    pub fn store_mac(
        &mut self,
        p: &mut Platform,
        data_addr: u64,
        mac: Mac64,
        ready: Cycles,
    ) -> Result<Cycles, IntegrityError> {
        let mb_addr = self.map.mac_block_addr(data_addr);
        let slot = self.map.mac_slot(data_addr);
        let (mut bytes, mut t) = self.fetch_mac_block(p, data_addr, ready)?;
        bytes[slot * 8..(slot + 1) * 8].copy_from_slice(&mac.0);
        self.mac_cache.write_hit(mb_addr, bytes);
        if self.osiris_stop_loss.is_some() {
            // Osiris co-locates the MAC with the data line's ECC bits, so
            // data and MAC persist atomically; model that as a write-
            // through of the MAC block.
            let c = p.nvm.write(mb_addr, bytes, "mac_osiris", t);
            t = c.done;
            self.mac_cache.mark_clean(mb_addr);
        }
        Ok(t)
    }

    /// Loads the data MAC for `data_addr`.
    pub fn load_mac(
        &mut self,
        p: &mut Platform,
        data_addr: u64,
        ready: Cycles,
    ) -> Result<(Mac64, Cycles), IntegrityError> {
        let slot = self.map.mac_slot(data_addr);
        let (bytes, t) = self.fetch_mac_block(p, data_addr, ready)?;
        let mut m = [0u8; 8];
        m.copy_from_slice(&bytes[slot * 8..(slot + 1) * 8]);
        Ok((Mac64(m), t))
    }

    // ----- final metadata flush (end of a baseline drain) ------------------

    /// Flushes the metadata caches at the end of a drain (paper §IV-B).
    ///
    /// * **Eager**: dirty blocks are written back in place; the root is
    ///   already up to date, so memory is immediately verifiable.
    /// * **Lazy**: the root is stale, so instead of propagating every
    ///   pending update through the tree, the cache *contents* are
    ///   protected by a small Merkle tree (one MAC per 8 blocks,
    ///   hierarchically to a single on-chip root) and streamed to the
    ///   reserved shadow region, Anubis-style.
    ///
    /// Returns when the flush traffic completes. The caches are cleared
    /// (the hierarchy loses power afterwards).
    pub fn flush_after_drain(&mut self, p: &mut Platform, ready: Cycles) -> Cycles {
        let mut t = ready;
        match self.scheme {
            UpdateScheme::Eager => {
                let caches = [&self.counter_cache, &self.mac_cache, &self.tree_cache];
                let mut dirty: Vec<(u64, Block)> = Vec::new();
                for c in caches {
                    dirty.extend(c.dirty_lines().map(|(a, b)| (a, *b)));
                }
                for (addr, bytes) in dirty {
                    let c = p.nvm.write(addr, bytes, "meta_flush", t);
                    t = t.max(c.start); // stream: issue in order, banks overlap
                }
                t = p.nvm.busy_until().max(t);
            }
            UpdateScheme::Lazy => {
                // Stream every valid block (with its tag) to the shadow
                // region and build the small tree over the stream.
                let mut blocks: Vec<(u64, Block)> = Vec::new();
                for c in [&self.counter_cache, &self.mac_cache, &self.tree_cache] {
                    blocks.extend(c.iter().map(|(a, b, _)| (a, *b)));
                }
                let base = self.map.shadow_base();
                let mut cursor = base;
                let mut level_macs: Vec<Mac64> = Vec::with_capacity(blocks.len());
                let mut tags = [0u8; 64];
                let mut tag_n = 0usize;
                for (i, (addr, bytes)) in blocks.iter().enumerate() {
                    let c = p.nvm.write(cursor, *bytes, "shadow", t);
                    t = t.max(c.start);
                    cursor += 64;
                    // Tag blocks: 8 original addresses per 64-byte block.
                    tags[tag_n * 8..(tag_n + 1) * 8].copy_from_slice(&addr.to_le_bytes());
                    tag_n += 1;
                    if tag_n == 8 || i + 1 == blocks.len() {
                        let c = p.nvm.write(cursor, tags, "shadow", t);
                        t = t.max(c.start);
                        cursor += 64;
                        tags = [0u8; 64];
                        tag_n = 0;
                    }
                    let mc = p.mac_op("small_tree", t);
                    level_macs.push(self.bmt.node_mac(bytes));
                    t = t.max(mc.start);
                }
                // Reduce 8:1 until a single root remains.
                while level_macs.len() > 1 {
                    let mut next = Vec::with_capacity(level_macs.len().div_ceil(8));
                    for chunk in level_macs.chunks(8) {
                        let mut node = [0u8; 64];
                        for (i, m) in chunk.iter().enumerate() {
                            node[i * 8..(i + 1) * 8].copy_from_slice(&m.0);
                        }
                        let mc = p.mac_op("small_tree", t);
                        t = t.max(mc.start);
                        next.push(self.bmt.node_mac(&node));
                    }
                    level_macs = next;
                }
                self.small_tree_root = level_macs.first().copied();
                self.shadow_blocks = Some(blocks.len() as u64);
                t = p.busy_until().max(t);
            }
        }
        self.counter_cache.clear();
        self.mac_cache.clear();
        self.tree_cache.clear();
        t
    }

    /// Exhaustively checks the fetch-verification invariant (test/debug
    /// aid, linear in tree size — use small maps): for every uncached
    /// counter block / tree node `N`, the MAC of its NVM bytes must match
    /// the entry held by the authoritative copy of its parent (cache copy
    /// if cached, else NVM), and the top node must match the root
    /// register. Returns a description of the first violation.
    ///
    /// # Errors
    ///
    /// A human-readable description of the violated edge.
    #[doc(hidden)]
    pub fn check_consistency(&self, dev: &horus_nvm::NvmDevice) -> Result<(), String> {
        let auth_node = |level: usize, idx: u64| -> Block {
            let addr = self.map.bmt_node_addr(level, idx);
            if let Some(b) = self.tree_cache.peek(addr) {
                *b
            } else if dev.is_written(addr) {
                dev.read_block(addr)
            } else {
                self.bmt.default_node(level)
            }
        };
        // Counter blocks against level-0 nodes.
        for cidx in 0..self.map.counter_blocks() {
            let caddr = self.map.counter_block_addr(0) + cidx * 64;
            if self.counter_cache.contains(caddr) || !dev.is_written(caddr) {
                continue;
            }
            let (pi, slot) = Bmt::parent_of(cidx);
            let expected = decode_node(&auth_node(0, pi))[slot];
            let actual = self.child_mac(&dev.read_block(caddr));
            if expected != actual {
                return Err(format!(
                    "counter block {cidx} (addr {caddr:#x}): stored bytes do not match L0 node {pi} slot {slot}"
                ));
            }
        }
        // Tree nodes against their parents / the root.
        for level in 0..self.bmt.levels() {
            for idx in 0..self.map.bmt_level_nodes(level) {
                let addr = self.map.bmt_node_addr(level, idx);
                if self.tree_cache.contains(addr) {
                    continue;
                }
                let bytes = if dev.is_written(addr) {
                    dev.read_block(addr)
                } else {
                    self.bmt.default_node(level)
                };
                let actual = self.child_mac(&bytes);
                let expected = if level == self.bmt.levels() - 1 {
                    self.bmt.root()
                } else {
                    let (pi, slot) = Bmt::parent_of(idx);
                    decode_node(&auth_node(level + 1, pi))[slot]
                };
                if expected != actual {
                    return Err(format!(
                        "tree node L{level}[{idx}] (addr {addr:#x}): stored bytes do not match its parent entry"
                    ));
                }
            }
        }
        Ok(())
    }

    /// Strictly persists the metadata covering `data_addr`: the counter
    /// block, the MAC block, and every cached node on the affected tree
    /// path are written through to NVM and marked clean.
    ///
    /// This is what a secure **ADR** system must do per durable store
    /// (paper §II-D: metadata updates "need to push ... to the
    /// persistence domain atomically along with the data") — and exactly
    /// the cost EPD systems avoid at run time. Requires the eager
    /// scheme: under lazy updates the tree would be stale in NVM and the
    /// data unrecoverable.
    ///
    /// # Panics
    ///
    /// Panics if the engine runs the lazy scheme.
    ///
    /// # Errors
    ///
    /// Currently none, but the signature matches the other metadata
    /// operations for uniform call sites.
    pub fn persist_strict(
        &mut self,
        p: &mut Platform,
        data_addr: u64,
        ready: Cycles,
    ) -> Result<Cycles, IntegrityError> {
        assert_eq!(
            self.scheme,
            UpdateScheme::Eager,
            "strict persistence needs eager tree updates (lazy leaves the NVM tree stale)"
        );
        let mut t = ready;
        let cb_addr = self.map.counter_block_addr(data_addr);
        if self.counter_cache.is_dirty(cb_addr) {
            let bytes = *self
                .counter_cache
                .peek(cb_addr)
                .expect("dirty implies present");
            let c = p.nvm.write(cb_addr, bytes, "counter_persist", t);
            t = c.done;
            self.counter_cache.mark_clean(cb_addr);
        }
        let mb_addr = self.map.mac_block_addr(data_addr);
        if self.mac_cache.is_dirty(mb_addr) {
            let bytes = *self.mac_cache.peek(mb_addr).expect("dirty implies present");
            let c = p.nvm.write(mb_addr, bytes, "mac_persist", t);
            t = c.done;
            self.mac_cache.mark_clean(mb_addr);
        }
        let mut idx = self.map.counter_index(data_addr) / 8;
        for level in 0..self.bmt.levels() {
            let addr = self.map.bmt_node_addr(level, idx);
            if self.tree_cache.is_dirty(addr) {
                let bytes = *self.tree_cache.peek(addr).expect("dirty implies present");
                let c = p.nvm.write(addr, bytes, "tree_persist", t);
                t = c.done;
                self.tree_cache.mark_clean(addr);
            }
            idx /= 8;
        }
        Ok(t)
    }

    /// Drops all cache contents without writing anything back — the
    /// power-loss path for schemes (Horus) that vault their dirty
    /// metadata elsewhere.
    pub fn clear_caches_on_power_loss(&mut self) {
        self.counter_cache.clear();
        self.mac_cache.clear();
        self.tree_cache.clear();
    }

    /// Re-installs a recovered metadata block into the cache for its
    /// region, in dirty state (the Horus recovery path for drained
    /// metadata-cache contents).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not a metadata address.
    pub fn restore_block(
        &mut self,
        p: &mut Platform,
        addr: u64,
        block: Block,
        ready: Cycles,
    ) -> Result<Cycles, IntegrityError> {
        let spill = match self.map.region_of(addr) {
            Region::Counter => self.counter_cache.insert(addr, block, true),
            Region::Mac => self.mac_cache.insert(addr, block, true),
            Region::Bmt(_) => self.tree_cache.insert(addr, block, true),
            other => panic!("cannot restore a {other:?} block into the metadata caches"),
        };
        self.process_spill(p, spill, ready)
    }

    /// Recovers the metadata-cache contents from the shadow region after
    /// a lazy-scheme drain: reads the stream back, re-verifies the small
    /// tree against its on-chip root, and re-installs every block dirty.
    ///
    /// Returns the number of restored blocks and the completion time.
    ///
    /// # Errors
    ///
    /// [`IntegrityError`] if the recomputed small-tree root does not
    /// match the on-chip value (the shadow region was tampered with), or
    /// if no shadow flush was recorded.
    pub fn recover_from_shadow(
        &mut self,
        p: &mut Platform,
        ready: Cycles,
    ) -> Result<(u64, Cycles), IntegrityError> {
        let n = self.shadow_blocks.ok_or(IntegrityError {
            addr: self.map.shadow_base(),
            what: "shadow-region (no flush recorded)",
        })?;
        let expected_root = self.small_tree_root.expect("root recorded with the flush");
        let base = self.map.shadow_base();
        let mut t = ready;
        let mut cursor = base;
        let mut blocks: Vec<(u64, Block)> = Vec::with_capacity(n as usize);
        let mut group: Vec<Block> = Vec::with_capacity(8);
        let mut macs: Vec<Mac64> = Vec::with_capacity(n as usize);
        let mut read = 0u64;
        while read < n {
            let take = (n - read).min(8);
            group.clear();
            for _ in 0..take {
                let (b, c) = p.nvm.read(cursor, "shadow", t);
                t = c.done;
                cursor += 64;
                group.push(b);
            }
            let (tags, c) = p.nvm.read(cursor, "shadow", t);
            t = c.done;
            cursor += 64;
            for (k, b) in group.iter().enumerate() {
                let mut a = [0u8; 8];
                a.copy_from_slice(&tags[k * 8..(k + 1) * 8]);
                blocks.push((u64::from_le_bytes(a), *b));
                let mc = p.mac_op("small_tree", t);
                t = t.max(mc.start);
                macs.push(self.bmt.node_mac(b));
            }
            read += take;
        }
        // Reduce to the root exactly as the flush did.
        while macs.len() > 1 {
            let mut next = Vec::with_capacity(macs.len().div_ceil(8));
            for chunk in macs.chunks(8) {
                let mut node = [0u8; 64];
                for (i, m) in chunk.iter().enumerate() {
                    node[i * 8..(i + 1) * 8].copy_from_slice(&m.0);
                }
                let mc = p.mac_op("small_tree", t);
                t = t.max(mc.start);
                next.push(self.bmt.node_mac(&node));
            }
            macs = next;
        }
        if macs.first().copied() != Some(expected_root) {
            return Err(IntegrityError {
                addr: base,
                what: "shadow-region",
            });
        }
        for (addr, block) in blocks {
            t = self.restore_block(p, addr, block, t)?;
        }
        self.shadow_blocks = None;
        Ok((n, t.max(p.busy_until())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use horus_nvm::AddressMap;

    fn small_map() -> AddressMap {
        // 1 MB data -> 256 counter blocks -> BMT 32/4/1.
        AddressMap::new(1 << 20, 256, 64)
    }

    fn tiny_caches() -> MetadataCacheConfig {
        MetadataCacheConfig {
            counter_cache_bytes: 8 * 64,
            mac_cache_bytes: 8 * 64,
            tree_cache_bytes: 8 * 64,
            ways: 2,
            policy: ReplacementPolicy::Lru,
        }
    }

    fn engine(scheme: UpdateScheme) -> (MetadataEngine, Platform) {
        let e = MetadataEngine::new(small_map(), scheme, tiny_caches(), &[7; 16]);
        (e, Platform::paper_default())
    }

    #[test]
    fn fresh_counter_reads_zero_and_verifies() {
        let (mut e, mut p) = engine(UpdateScheme::Lazy);
        let (c, _) = e.read_counter(&mut p, 0x40, Cycles(0)).expect("verify");
        assert_eq!(c, 0);
        // The miss cost one counter read and at least one tree read.
        assert!(p.nvm.stats().get("mem.read.counter") == 1);
        assert!(p.nvm.stats().get("mem.read.tree") >= 1);
        assert!(p.stats().get("macop.verify_counter") == 1);
    }

    #[test]
    fn increment_advances_and_hits_cache() {
        let (mut e, mut p) = engine(UpdateScheme::Lazy);
        let u1 = e.increment_counter(&mut p, 0x80, Cycles(0)).expect("ok");
        assert_eq!(u1.outcome.counter(), 1);
        let u2 = e.increment_counter(&mut p, 0x80, Cycles(0)).expect("ok");
        assert_eq!(u2.outcome.counter(), 2);
        // Second access hit the counter cache: still one memory read.
        assert_eq!(p.nvm.stats().get("mem.read.counter"), 1);
    }

    #[test]
    fn eager_updates_root_on_every_increment() {
        let (mut e, mut p) = engine(UpdateScheme::Eager);
        let r0 = e.root();
        e.increment_counter(&mut p, 0, Cycles(0)).expect("ok");
        let r1 = e.root();
        assert_ne!(r0, r1);
        e.increment_counter(&mut p, 0, Cycles(0)).expect("ok");
        assert_ne!(e.root(), r1);
        // Path updates: one MAC per level + the counter's own entry.
        assert!(p.stats().get("macop.update_tree") >= e.bmt().levels() as u64);
    }

    #[test]
    fn lazy_keeps_root_stale_until_evictions() {
        let (mut e, mut p) = engine(UpdateScheme::Lazy);
        let r0 = e.root();
        e.increment_counter(&mut p, 0, Cycles(0)).expect("ok");
        assert_eq!(
            e.root(),
            r0,
            "lazy scheme must not touch the root on a write"
        );
    }

    #[test]
    fn mac_store_load_roundtrip() {
        let (mut e, mut p) = engine(UpdateScheme::Lazy);
        let mac = Mac64::from(0xdead_beef);
        e.store_mac(&mut p, 0x1000, mac, Cycles(0)).expect("ok");
        let (m, _) = e.load_mac(&mut p, 0x1000, Cycles(0)).expect("ok");
        assert_eq!(m, mac);
        // Neighbour slot unaffected.
        let (m2, _) = e.load_mac(&mut p, 0x1040, Cycles(0)).expect("ok");
        assert_eq!(m2, Mac64::ZERO);
    }

    #[test]
    fn eviction_cascade_writes_back_and_keeps_integrity() {
        let (mut e, mut p) = engine(UpdateScheme::Lazy);
        // Touch many distinct counter blocks (stride = one 4 KB page) to
        // overflow the tiny 16-line counter cache.
        for i in 0..64u64 {
            e.increment_counter(&mut p, i * 4096, Cycles(0))
                .expect("ok");
        }
        assert!(
            p.nvm.stats().get("mem.write.counter_evict") > 0,
            "evictions must write back"
        );
        // Every previously evicted counter must still verify when
        // re-fetched (parent entries were kept consistent).
        for i in 0..64u64 {
            let (c, _) = e
                .read_counter(&mut p, i * 4096, Cycles(0))
                .expect("verify after evict");
            assert_eq!(c, 1);
        }
    }

    #[test]
    fn eager_eviction_needs_no_tree_update() {
        let (mut e, mut p) = engine(UpdateScheme::Eager);
        for i in 0..64u64 {
            e.increment_counter(&mut p, i * 4096, Cycles(0))
                .expect("ok");
        }
        // Re-fetch all: parents were eagerly correct.
        for i in 0..64u64 {
            let (c, _) = e.read_counter(&mut p, i * 4096, Cycles(0)).expect("verify");
            assert_eq!(c, 1);
        }
    }

    #[test]
    fn tampered_counter_is_detected() {
        let (mut e, mut p) = engine(UpdateScheme::Eager);
        e.increment_counter(&mut p, 0, Cycles(0)).expect("ok");
        // Push it out to memory by touching other counter blocks.
        for i in 1..64u64 {
            e.increment_counter(&mut p, i * 4096, Cycles(0))
                .expect("ok");
        }
        let cb_addr = e.map().counter_block_addr(0);
        assert!(
            p.nvm.device().is_written(cb_addr),
            "counter must be in memory"
        );
        let mut tampered = p.nvm.device().read_block(cb_addr);
        tampered[8] ^= 1;
        p.nvm.device_mut().write_block(cb_addr, tampered);
        // Drop any cached copy so the fetch goes to memory.
        // (The cache is tiny; after 64 distinct blocks it cannot hold
        // block 0, but be explicit for robustness.)
        let err = match e.read_counter(&mut p, 0, Cycles(0)) {
            Err(err) => Some(err),
            Ok(_) => {
                // Cached — evict by touching more blocks, then retry.
                for i in 64..128u64 {
                    e.increment_counter(&mut p, i * 4096, Cycles(0))
                        .expect("ok");
                }
                e.read_counter(&mut p, 0, Cycles(0)).err()
            }
        };
        let err = err.expect("tampering must be detected");
        assert_eq!(err.what, "counter");
    }

    #[test]
    fn tampered_tree_node_is_detected() {
        let (mut e, mut p) = engine(UpdateScheme::Eager);
        for i in 0..64u64 {
            e.increment_counter(&mut p, i * 4096, Cycles(0))
                .expect("ok");
        }
        // Tamper a written level-0 node in memory.
        let target = (0..32)
            .map(|i| e.map().bmt_node_addr(0, i))
            .find(|a| p.nvm.device().is_written(*a))
            .expect("some node was evicted to memory");
        let mut bytes = p.nvm.device().read_block(target);
        bytes[0] ^= 0xff;
        p.nvm.device_mut().write_block(target, bytes);
        // Clear the tree cache by a fresh engine sharing the same NVM:
        // simplest is to re-create the engine (root survives on-chip).
        let root = e.root();
        let mut e2 = MetadataEngine::new(small_map(), UpdateScheme::Eager, tiny_caches(), &[7; 16]);
        e2.bmt_set_root_for_test(root);
        let mut failed = false;
        for i in 0..64u64 {
            if e2.read_counter(&mut p, i * 4096, Cycles(0)).is_err() {
                failed = true;
                break;
            }
        }
        assert!(
            failed,
            "a tampered tree node must fail verification somewhere"
        );
    }

    #[test]
    fn eager_flush_makes_memory_state_match_root() {
        let (mut e, mut p) = engine(UpdateScheme::Eager);
        for i in 0..32u64 {
            e.increment_counter(&mut p, i * 4096, Cycles(0))
                .expect("ok");
        }
        e.flush_after_drain(&mut p, Cycles(0));
        assert!(p.nvm.stats().get("mem.write.meta_flush") > 0);
        // Recompute the root from NVM: must equal the on-chip root.
        let map = small_map();
        let dev = p.nvm.device();
        let recomputed = e.bmt().recompute_root(
            map.counter_blocks(),
            |i| {
                let a = map.counter_block_addr(0) + i * 64;
                dev.is_written(a).then(|| dev.read_block(a))
            },
            |l, i| {
                let a = map.bmt_node_addr(l, i);
                dev.is_written(a).then(|| dev.read_block(a))
            },
        );
        assert_eq!(
            recomputed,
            e.root(),
            "eager flush must leave a verifiable tree"
        );
    }

    #[test]
    fn lazy_flush_builds_small_tree_and_shadows() {
        let (mut e, mut p) = engine(UpdateScheme::Lazy);
        for i in 0..16u64 {
            e.increment_counter(&mut p, i * 4096, Cycles(0))
                .expect("ok");
        }
        assert!(e.small_tree_root().is_none());
        e.flush_after_drain(&mut p, Cycles(0));
        assert!(e.small_tree_root().is_some());
        assert!(p.nvm.stats().get("mem.write.shadow") > 0);
        assert!(p.stats().get("macop.small_tree") > 0);
        assert!(
            e.counter_cache().is_empty(),
            "caches cleared after power-off flush"
        );
    }

    impl MetadataEngine {
        fn bmt_set_root_for_test(&mut self, root: Mac64) {
            self.bmt.set_root(root);
        }
    }
}
