//! The Bonsai Merkle Tree (paper §II-B, Figure 4).
//!
//! The BMT protects only the encryption counters; data blocks carry their
//! own MACs. Each 64-byte tree node holds eight 8-byte child MACs, giving
//! the 8-ary tree of Table I. The root is held on-chip.
//!
//! The tree is *sparse*: memory starts zeroed, so every untouched subtree
//! at a given level has the same "default node" value, computed once at
//! construction. The authoritative node contents live in the NVM device
//! (written by the metadata engine); this type is the calculator — node
//! encoding, MAC computation, default values — plus the on-chip root
//! register.

use horus_crypto::{Cmac, Mac64};
use horus_nvm::Block;

/// The eight child MACs held by one tree node.
pub type NodeEntries = [Mac64; 8];

/// Encodes eight child MACs into a 64-byte node block.
#[must_use]
pub fn encode_node(entries: &NodeEntries) -> Block {
    let mut out = [0u8; 64];
    for (i, m) in entries.iter().enumerate() {
        out[i * 8..(i + 1) * 8].copy_from_slice(&m.0);
    }
    out
}

/// Decodes a 64-byte node block into its eight child MACs.
#[must_use]
pub fn decode_node(block: &Block) -> NodeEntries {
    core::array::from_fn(|i| {
        let mut m = [0u8; 8];
        m.copy_from_slice(&block[i * 8..(i + 1) * 8]);
        Mac64(m)
    })
}

/// The Bonsai Merkle Tree calculator and on-chip root register.
///
/// Level numbering matches the NVM layout
/// ([`AddressMap`](horus_nvm::AddressMap)): level 0 nodes are the parents
/// of counter blocks; the highest stored level has a single node whose
/// MAC is the on-chip root.
///
/// ```
/// use horus_metadata::Bmt;
/// let bmt = Bmt::new(&[0x11; 16], 256);
/// assert_eq!(bmt.levels(), 3); // 256 -> 32 -> 4 -> 1
/// // A fresh tree's root verifies the all-default top node.
/// let top = bmt.default_node(2);
/// assert_eq!(bmt.node_mac(&top), bmt.root());
/// ```
#[derive(Debug, Clone)]
pub struct Bmt {
    cmac: Cmac,
    level_nodes: Vec<u64>,
    default_nodes: Vec<Block>,
    root: Mac64,
}

impl Bmt {
    /// Builds the tree geometry and default values for `counter_blocks`
    /// leaves, keyed by `tree_key`.
    ///
    /// # Panics
    ///
    /// Panics if `counter_blocks` is zero.
    #[must_use]
    pub fn new(tree_key: &[u8; 16], counter_blocks: u64) -> Self {
        assert!(
            counter_blocks > 0,
            "tree must cover at least one counter block"
        );
        let cmac = Cmac::new(tree_key);

        let mut level_nodes = Vec::new();
        let mut n = counter_blocks.div_ceil(8);
        loop {
            level_nodes.push(n);
            if n == 1 {
                break;
            }
            n = n.div_ceil(8);
        }

        // Default chain: zeroed counter block -> default level-0 node -> ...
        let mut default_nodes = Vec::with_capacity(level_nodes.len());
        let mut child_mac = cmac.mac64(&[0u8; 64]);
        for _ in 0..level_nodes.len() {
            let node = encode_node(&[child_mac; 8]);
            child_mac = cmac.mac64(&node);
            default_nodes.push(node);
        }
        let root = child_mac;
        Self {
            cmac,
            level_nodes,
            default_nodes,
            root,
        }
    }

    /// Number of stored node levels (level 0 = parents of counter
    /// blocks).
    #[must_use]
    pub fn levels(&self) -> usize {
        self.level_nodes.len()
    }

    /// Node count at `level`.
    ///
    /// # Panics
    ///
    /// Panics if `level` is out of range.
    #[must_use]
    pub fn nodes_at(&self, level: usize) -> u64 {
        self.level_nodes[level]
    }

    /// The default (all-zero-subtree) node value at `level`.
    ///
    /// # Panics
    ///
    /// Panics if `level` is out of range.
    #[must_use]
    pub fn default_node(&self, level: usize) -> Block {
        self.default_nodes[level]
    }

    /// MAC of a counter block or tree node — the value stored in the
    /// parent's entry slot (or the root register for the top node).
    #[must_use]
    pub fn node_mac(&self, bytes: &Block) -> Mac64 {
        self.cmac.mac64(bytes)
    }

    /// The on-chip root register.
    #[must_use]
    pub fn root(&self) -> Mac64 {
        self.root
    }

    /// Updates the on-chip root register (top node changed).
    pub fn set_root(&mut self, root: Mac64) {
        self.root = root;
    }

    /// The `(parent_index, slot)` of child `index` one level down.
    #[must_use]
    pub fn parent_of(index: u64) -> (u64, usize) {
        (index / 8, (index % 8) as usize)
    }

    /// Recomputes the root from authoritative storage, for invariant
    /// checks in tests (linear in tree size — use small maps).
    ///
    /// `read_counter(i)` and `read_node(level, i)` return the stored
    /// bytes, or `None` where storage was never written (defaults apply).
    #[must_use]
    pub fn recompute_root(
        &self,
        counter_blocks: u64,
        mut read_counter: impl FnMut(u64) -> Option<Block>,
        mut read_node: impl FnMut(usize, u64) -> Option<Block>,
    ) -> Mac64 {
        // Level 0 is rebuilt from the counter blocks; deeper levels from
        // the stored nodes of the level below (which is the authoritative
        // content the parent MACs cover).
        let mut macs: Vec<Mac64> = (0..counter_blocks)
            .map(|i| self.node_mac(&read_counter(i).unwrap_or([0u8; 64])))
            .collect();
        for level in 0..self.levels() {
            let nodes = self.nodes_at(level) as usize;
            let mut next = Vec::with_capacity(nodes);
            for idx in 0..nodes {
                let stored = read_node(level, idx as u64).unwrap_or(self.default_nodes[level]);
                // The stored node must itself be consistent with its
                // children; recompute what it should contain.
                let mut entries = decode_node(&stored);
                for (slot, e) in entries.iter_mut().enumerate() {
                    if let Some(m) = macs.get(idx * 8 + slot) {
                        *e = *m;
                    }
                }
                next.push(self.node_mac(&encode_node(&entries)));
            }
            macs = next;
        }
        macs[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bmt() -> Bmt {
        Bmt::new(&[0xAA; 16], 256)
    }

    #[test]
    fn geometry() {
        let t = bmt();
        assert_eq!(t.levels(), 3);
        assert_eq!(t.nodes_at(0), 32);
        assert_eq!(t.nodes_at(1), 4);
        assert_eq!(t.nodes_at(2), 1);
    }

    #[test]
    fn single_counter_block_tree() {
        let t = Bmt::new(&[1; 16], 1);
        assert_eq!(t.levels(), 1);
        assert_eq!(t.nodes_at(0), 1);
    }

    #[test]
    fn node_roundtrip() {
        let entries: NodeEntries = core::array::from_fn(|i| Mac64::from(i as u64 * 7 + 1));
        assert_eq!(decode_node(&encode_node(&entries)), entries);
    }

    #[test]
    fn default_chain_is_consistent() {
        let t = bmt();
        // Each level's default node holds eight MACs of the level below's
        // default.
        let zero_mac = t.node_mac(&[0u8; 64]);
        assert_eq!(decode_node(&t.default_node(0)), [zero_mac; 8]);
        let l0_mac = t.node_mac(&t.default_node(0));
        assert_eq!(decode_node(&t.default_node(1)), [l0_mac; 8]);
        assert_eq!(t.root(), t.node_mac(&t.default_node(2)));
    }

    #[test]
    fn parent_math() {
        assert_eq!(Bmt::parent_of(0), (0, 0));
        assert_eq!(Bmt::parent_of(7), (0, 7));
        assert_eq!(Bmt::parent_of(8), (1, 0));
        assert_eq!(Bmt::parent_of(65), (8, 1));
    }

    #[test]
    fn root_register_updates() {
        let mut t = bmt();
        let new_root = Mac64::from(42);
        t.set_root(new_root);
        assert_eq!(t.root(), new_root);
    }

    #[test]
    fn recompute_root_of_fresh_tree_matches() {
        let t = bmt();
        let root = t.recompute_root(256, |_| None, |_, _| None);
        assert_eq!(root, t.root());
    }

    #[test]
    fn recompute_root_detects_counter_change() {
        let t = bmt();
        let mut tampered = [0u8; 64];
        tampered[5] = 1;
        let root = t.recompute_root(
            256,
            |i| if i == 3 { Some(tampered) } else { None },
            |_, _| None,
        );
        assert_ne!(root, t.root());
    }

    #[test]
    fn different_keys_different_roots() {
        let a = Bmt::new(&[1; 16], 64);
        let b = Bmt::new(&[2; 16], 64);
        assert_ne!(a.root(), b.root());
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_leaves_rejected() {
        let _ = Bmt::new(&[0; 16], 0);
    }
}
