//! Randomized stress of the metadata engine's verification invariant.
//!
//! Historical bugs this guards against (both found by exactly this kind
//! of stress):
//!
//! 1. a nested eviction cascade re-fetching a node whose write-back was
//!    in flight before the parent entry caught up (fixed by the victim
//!    buffer);
//! 2. an in-flight eviction applying its stale parent update after the
//!    node had been reinstalled, re-modified and re-evicted (fixed by
//!    the reinstall-generation guard).

use horus_cache::ReplacementPolicy;
use horus_metadata::{MetadataCacheConfig, MetadataEngine, Platform, UpdateScheme};
use horus_nvm::AddressMap;
use horus_sim::Cycles;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn tiny_caches() -> MetadataCacheConfig {
    MetadataCacheConfig {
        counter_cache_bytes: 8 * 64,
        mac_cache_bytes: 8 * 64,
        tree_cache_bytes: 8 * 64,
        ways: 2,
        policy: horus_cache::ReplacementPolicy::Lru,
    }
}

fn run_mix(scheme: UpdateScheme, seed: u64, ops: u32) {
    run_mix_with(scheme, seed, ops, ReplacementPolicy::Lru);
}

fn run_mix_with(scheme: UpdateScheme, seed: u64, ops: u32, policy: ReplacementPolicy) {
    let map = AddressMap::new(1 << 20, 256, 64);
    let caches = MetadataCacheConfig {
        policy,
        ..tiny_caches()
    };
    let mut e = MetadataEngine::new(map.clone(), scheme, caches, &[7; 16]);
    let mut p = Platform::paper_default();
    let mut rng = StdRng::seed_from_u64(seed);
    for op in 0..ops {
        let addr = rng.gen_range(0..(1u64 << 20) / 64) * 64;
        let res = if rng.gen_bool(0.6) {
            e.increment_counter(&mut p, addr, Cycles::ZERO).map(|_| ())
        } else {
            e.read_counter(&mut p, addr, Cycles::ZERO).map(|_| ())
        };
        res.unwrap_or_else(|err| {
            panic!("{scheme} seed {seed} op {op}: verification failed: {err}")
        });
        if op % 25 == 0 {
            if let Err(msg) = e.check_consistency(p.nvm.device()) {
                panic!("{scheme} seed {seed} op {op}: invariant broken: {msg}");
            }
        }
    }
    e.check_consistency(p.nvm.device())
        .unwrap_or_else(|msg| panic!("{scheme} seed {seed} final: {msg}"));
}

#[test]
fn lazy_scheme_stays_consistent_under_random_mix() {
    for seed in 0..4 {
        run_mix(UpdateScheme::Lazy, seed, 1500);
    }
}

#[test]
fn eager_scheme_stays_consistent_under_random_mix() {
    for seed in 0..4 {
        run_mix(UpdateScheme::Eager, seed, 1500);
    }
}

#[test]
fn consistency_holds_under_every_replacement_policy() {
    // The eviction-cascade machinery must be policy-agnostic: FIFO and
    // random replacement change *which* victim spills, never whether the
    // verification chain stays intact.
    for policy in [ReplacementPolicy::Fifo, ReplacementPolicy::Random(17)] {
        for scheme in [UpdateScheme::Lazy, UpdateScheme::Eager] {
            run_mix_with(scheme, 3, 1200, policy);
        }
    }
}

#[test]
fn eviction_cascades_preserve_refetch_verification() {
    // The original cascade repro: strided increments thrash the tiny
    // caches; every counter must still verify on re-fetch.
    let map = AddressMap::new(1 << 20, 256, 64);
    let mut e = MetadataEngine::new(map, UpdateScheme::Lazy, tiny_caches(), &[7; 16]);
    let mut p = Platform::paper_default();
    for i in 0..64u64 {
        e.increment_counter(&mut p, i * 4096, Cycles::ZERO)
            .unwrap_or_else(|err| panic!("increment {i}: {err}"));
    }
    for i in 0..64u64 {
        let (c, _) = e
            .read_counter(&mut p, i * 4096, Cycles::ZERO)
            .unwrap_or_else(|err| panic!("read {i}: {err}"));
        assert_eq!(c, 1, "counter {i}");
    }
}
