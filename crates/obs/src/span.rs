//! Per-job lifecycle spans and the cross-host Chrome-trace timeline.
//!
//! PR 2's probe layer traces *inside* one simulated drain episode; this
//! module traces the *job around it* as it moves through the fleet:
//!
//! ```text
//! queued ──► leased ──► executing ──► pushed ──► committed
//! (submit)   (coord)    (worker)      (worker)   (coord)
//! ```
//!
//! A [`SpanBook`] is the collector: the coordinator (or a local harness
//! pool) stamps each stage with a millisecond timestamp on the book's
//! own monotonic clock ([`SpanBook::now_ms`]). Worker-side stamps are
//! normalized to coordinator-relative time by the wire layer (the
//! worker learns the coordinator's clock from the `Hello`/`Welcome`
//! round trip and applies the offset before pushing), so one timeline
//! spans every host in the fleet.
//!
//! [`chrome_trace_json`] assembles the completed spans into the same
//! Chrome-trace-event JSON shape `horus_sim::trace` emits — one track
//! per worker, five `ph:"X"` events per job — so `chrome://tracing` and
//! [Perfetto](https://ui.perfetto.dev) open fleet timelines exactly
//! like drain timelines. Assembly is deterministic: spans sort by
//! `(plan, job)`, tracks by name, and only complete (all five stages)
//! jobs are emitted, so two identical books render byte-identical JSON.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Mints a process-unique 16-hex-digit trace id.
///
/// FNV-1a over the pid, a process-global counter, and the wall clock —
/// the same hashing idiom as the plan content key, so ids look uniform
/// without pulling in a randomness dependency. Collisions across
/// processes are possible in principle but irrelevant at fleet scale:
/// an id only needs to be unique within the artifacts of one run.
#[must_use]
pub fn mint_trace_id() -> String {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| {
            u64::try_from(d.as_nanos() & u128::from(u64::MAX)).unwrap_or(0)
        });
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for chunk in [
        u64::from(std::process::id()),
        SEQ.fetch_add(1, Ordering::Relaxed),
        nanos,
    ] {
        for byte in chunk.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    format!("{hash:016x}")
}

/// Number of lifecycle stages a job passes through.
pub const STAGES: usize = 5;

/// One lifecycle stage of a fleet job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Stage {
    /// Enqueued by a plan submission, waiting for a lease.
    Queued = 0,
    /// Handed to a worker by the coordinator.
    Leased = 1,
    /// The worker's pool started executing the spec.
    Executing = 2,
    /// The worker pushed the outcome back.
    Pushed = 3,
    /// The coordinator committed the outcome.
    Committed = 4,
}

impl Stage {
    /// Every stage, in lifecycle order.
    pub const ALL: [Stage; STAGES] = [
        Stage::Queued,
        Stage::Leased,
        Stage::Executing,
        Stage::Pushed,
        Stage::Committed,
    ];

    /// The stage's name, used as the `stage` metric label and the
    /// trace-event name.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Stage::Queued => "queued",
            Stage::Leased => "leased",
            Stage::Executing => "executing",
            Stage::Pushed => "pushed",
            Stage::Committed => "committed",
        }
    }

    /// The stage's index into a [`JobSpan`]'s stamp array.
    #[must_use]
    pub fn index(self) -> usize {
        self as usize
    }
}

/// One job's collected stage stamps.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpan {
    /// The owning plan's coordinator-assigned id.
    pub plan: u64,
    /// The job's coordinator-assigned slot id.
    pub job: u64,
    /// The job's content key (`JobSpec::key`).
    pub key: String,
    /// Display name of the worker that executed the job; empty until
    /// the job is leased.
    pub worker: String,
    /// Correlation id minted at admission ([`mint_trace_id`]); empty
    /// for untraced jobs. Like `worker`, the first non-empty value
    /// wins.
    pub trace: String,
    /// Coordinator-relative milliseconds per stage, indexed by
    /// [`Stage::index`]; `None` until the stage is stamped.
    pub stamps: [Option<f64>; STAGES],
}

impl JobSpan {
    /// True once every stage has been stamped.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.stamps.iter().all(Option::is_some)
    }

    /// The five stamps, present and clamped monotonically non-decreasing
    /// in lifecycle order (clock-normalization error across hosts can
    /// leave a later stage a hair earlier; the timeline must not).
    /// `None` while any stage is missing.
    #[must_use]
    pub fn normalized(&self) -> Option<[f64; STAGES]> {
        if !self.is_complete() {
            return None;
        }
        let mut out = [0.0; STAGES];
        let mut floor = 0.0f64;
        for (i, stamp) in self.stamps.iter().enumerate() {
            let at = stamp.expect("complete span").max(floor).max(0.0);
            out[i] = at;
            floor = at;
        }
        Some(out)
    }

    /// Per-stage durations in seconds, for the
    /// `horus_fleet_job_stage_seconds` histograms: time *in* each of the
    /// first four stages, plus end-to-end (queued → committed) under the
    /// `committed` label. `None` while any stage is missing.
    #[must_use]
    pub fn stage_seconds(&self) -> Option<[f64; STAGES]> {
        let [q, l, e, p, c] = self.normalized()?;
        Some([
            (l - q) / 1e3,
            (e - l) / 1e3,
            (p - e) / 1e3,
            (c - p) / 1e3,
            (c - q) / 1e3,
        ])
    }
}

/// A thread-safe collector of [`JobSpan`]s with its own monotonic
/// millisecond clock.
pub struct SpanBook {
    origin: Instant,
    jobs: Mutex<BTreeMap<(u64, u64), JobSpan>>,
}

impl Default for SpanBook {
    fn default() -> Self {
        Self::new()
    }
}

impl SpanBook {
    /// An empty book; its clock's zero is the moment of creation.
    #[must_use]
    pub fn new() -> SpanBook {
        SpanBook {
            origin: Instant::now(),
            jobs: Mutex::new(BTreeMap::new()),
        }
    }

    /// An empty book behind an `Arc`, the usual sharing shape.
    #[must_use]
    pub fn shared() -> Arc<SpanBook> {
        Arc::new(Self::new())
    }

    /// Milliseconds since the book was created — the timeline's clock.
    #[must_use]
    pub fn now_ms(&self) -> f64 {
        self.origin.elapsed().as_secs_f64() * 1e3
    }

    /// Stamps `stage` of job `(plan, job)` at `at_ms` on the book's
    /// clock, creating the span on first touch. `worker`, when given,
    /// names the span's track. Re-stamping a stage keeps the first
    /// stamp (a duplicate push must not rewrite history).
    pub fn stamp(
        &self,
        plan: u64,
        job: u64,
        key: &str,
        stage: Stage,
        at_ms: f64,
        worker: Option<&str>,
    ) {
        self.stamp_traced(plan, job, key, stage, at_ms, worker, None);
    }

    /// [`SpanBook::stamp`] with a correlation trace id. `trace` follows
    /// the worker rule: the first non-empty value sticks, so a late or
    /// duplicate stamp can never re-attribute a span.
    #[allow(clippy::too_many_arguments)]
    pub fn stamp_traced(
        &self,
        plan: u64,
        job: u64,
        key: &str,
        stage: Stage,
        at_ms: f64,
        worker: Option<&str>,
        trace: Option<&str>,
    ) {
        let mut jobs = self.jobs.lock().expect("span book poisoned");
        let span = jobs.entry((plan, job)).or_insert_with(|| JobSpan {
            plan,
            job,
            key: key.to_string(),
            worker: String::new(),
            trace: String::new(),
            stamps: [None; STAGES],
        });
        if let Some(w) = worker {
            if span.worker.is_empty() {
                span.worker = w.to_string();
            }
        }
        if let Some(t) = trace {
            if span.trace.is_empty() {
                span.trace = t.to_string();
            }
        }
        let slot = &mut span.stamps[stage.index()];
        if slot.is_none() {
            *slot = Some(at_ms);
        }
    }

    /// One job's span, if anything has been stamped for it.
    #[must_use]
    pub fn get(&self, plan: u64, job: u64) -> Option<JobSpan> {
        self.jobs
            .lock()
            .expect("span book poisoned")
            .get(&(plan, job))
            .cloned()
    }

    /// Every span collected so far, sorted by `(plan, job)`.
    #[must_use]
    pub fn spans(&self) -> Vec<JobSpan> {
        self.jobs
            .lock()
            .expect("span book poisoned")
            .values()
            .cloned()
            .collect()
    }

    /// Number of spans (complete or not) in the book.
    #[must_use]
    pub fn len(&self) -> usize {
        self.jobs.lock().expect("span book poisoned").len()
    }

    /// True when nothing has been stamped yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Renders the book's complete spans as a Chrome-trace JSON
    /// document (see [`chrome_trace_json`]).
    #[must_use]
    pub fn chrome_trace_json(&self) -> String {
        chrome_trace_json(&self.spans())
    }
}

/// Renders complete spans as a Chrome-trace-event JSON document, the
/// same shape `horus_sim::trace::chrome_trace_json` emits: `ph:"M"`
/// thread-name metadata per track (one track per worker, sorted by
/// name) followed by `ph:"X"` duration events, timestamps in
/// microseconds. Each complete job contributes five events — one per
/// stage, `committed` as an instant — carrying `plan`, `job`, and `key`
/// in `args`. Incomplete spans are skipped.
#[must_use]
pub fn chrome_trace_json(spans: &[JobSpan]) -> String {
    let mut ordered: Vec<(&JobSpan, [f64; STAGES])> = spans
        .iter()
        .filter_map(|s| s.normalized().map(|n| (s, n)))
        .collect();
    ordered.sort_by_key(|(s, _)| (s.plan, s.job));

    let mut tids: BTreeMap<&str, usize> = BTreeMap::new();
    for (span, _) in &ordered {
        let next = tids.len();
        tids.entry(track_name(span)).or_insert(next);
    }
    // Re-number in sorted track order so tids are stable no matter the
    // stamping order.
    let tids: BTreeMap<&str, usize> = tids
        .keys()
        .enumerate()
        .map(|(i, track)| (*track, i))
        .collect();

    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    for (track, tid) in &tids {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "{{\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"{}\"}}}}",
            escape_json(track)
        ));
    }
    for (span, stamps) in &ordered {
        let tid = tids[track_name(span)];
        for (i, stage) in Stage::ALL.iter().enumerate() {
            let ts = to_us(stamps[i]);
            let dur = if i + 1 < STAGES {
                to_us(stamps[i + 1]).saturating_sub(ts)
            } else {
                0
            };
            if !first {
                out.push(',');
            }
            first = false;
            // Untraced spans keep the exact pre-correlation arg shape;
            // the `trace` arg appears only when an id was attached.
            let trace_arg = if span.trace.is_empty() {
                String::new()
            } else {
                format!(",\"trace\":\"{}\"", escape_json(&span.trace))
            };
            out.push_str(&format!(
                "{{\"ph\":\"X\",\"pid\":0,\"tid\":{tid},\"ts\":{ts},\"dur\":{dur},\
                 \"name\":\"{}\",\"args\":{{\"plan\":{},\"job\":{},\"key\":\"{}\"{trace_arg}}}}}",
                stage.as_str(),
                span.plan,
                span.job,
                escape_json(&span.key)
            ));
        }
    }
    out.push_str("],\"displayTimeUnit\":\"ns\"}");
    out
}

fn track_name(span: &JobSpan) -> &str {
    if span.worker.is_empty() {
        "unassigned"
    } else {
        &span.worker
    }
}

fn to_us(ms: f64) -> u64 {
    (ms.max(0.0) * 1e3).round() as u64
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stamp_all(book: &SpanBook, plan: u64, job: u64, worker: &str, base: f64) {
        let key = format!("key-{job}");
        book.stamp(plan, job, &key, Stage::Queued, base, None);
        book.stamp(plan, job, &key, Stage::Leased, base + 1.0, Some(worker));
        book.stamp(plan, job, &key, Stage::Executing, base + 2.0, None);
        book.stamp(plan, job, &key, Stage::Pushed, base + 5.0, None);
        book.stamp(plan, job, &key, Stage::Committed, base + 6.0, None);
    }

    #[test]
    fn stamps_accumulate_and_first_stamp_wins() {
        let book = SpanBook::new();
        book.stamp(0, 1, "k", Stage::Queued, 10.0, None);
        book.stamp(0, 1, "k", Stage::Queued, 99.0, None);
        book.stamp(0, 1, "k", Stage::Leased, 20.0, Some("w-a"));
        let spans = book.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].stamps[0], Some(10.0), "first stamp wins");
        assert_eq!(spans[0].worker, "w-a");
        assert!(!spans[0].is_complete());
        assert_eq!(spans[0].normalized(), None);
    }

    #[test]
    fn normalization_clamps_monotone() {
        let span = JobSpan {
            plan: 0,
            job: 0,
            key: "k".into(),
            worker: "w".into(),
            trace: String::new(),
            // Executing "before" leased: cross-host clock skew.
            stamps: [Some(10.0), Some(20.0), Some(18.0), Some(30.0), Some(31.0)],
        };
        let n = span.normalized().expect("complete");
        assert_eq!(n, [10.0, 20.0, 20.0, 30.0, 31.0]);
        let secs = span.stage_seconds().expect("complete");
        assert!((secs[0] - 0.010).abs() < 1e-12);
        assert!((secs[1] - 0.0).abs() < 1e-12);
        assert!((secs[4] - 0.021).abs() < 1e-12, "end-to-end");
        assert!(secs.iter().all(|s| *s >= 0.0));
    }

    #[test]
    fn chrome_trace_shape_and_determinism() {
        let book = SpanBook::new();
        stamp_all(&book, 0, 2, "w-b", 50.0);
        stamp_all(&book, 0, 1, "w-a", 40.0);
        // Incomplete span: must not appear.
        book.stamp(0, 3, "k-3", Stage::Queued, 60.0, None);

        let json = book.chrome_trace_json();
        assert_eq!(json, book.chrome_trace_json(), "deterministic");
        assert!(json.starts_with("{\"traceEvents\":["), "{json}");
        assert!(json.ends_with("],\"displayTimeUnit\":\"ns\"}"), "{json}");
        // 2 thread_name metadata + 2 jobs x 5 stages.
        assert_eq!(json.matches("\"ph\":\"M\"").count(), 2, "{json}");
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 2 * STAGES, "{json}");
        assert!(!json.contains("k-3"), "incomplete span skipped");
        for stage in Stage::ALL {
            assert_eq!(
                json.matches(&format!("\"name\":\"{}\"", stage.as_str()))
                    .count(),
                2,
                "{json}"
            );
        }
        // Job 1 sorts before job 2 regardless of stamp order, with
        // stamps converted ms -> us and dur = gap to the next stage.
        let first_x = json.find("\"ph\":\"X\"").map(|i| &json[i..]).expect("x");
        assert!(
            first_x.starts_with(
                "\"ph\":\"X\",\"pid\":0,\"tid\":0,\"ts\":40000,\"dur\":1000,\"name\":\"queued\""
            ),
            "{first_x}"
        );
        assert!(first_x.contains("\"args\":{\"plan\":0,\"job\":1,\"key\":\"key-1\"}"));
        // Tracks sorted by worker name, tids in that order.
        let ma = json.find("{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"thread_name\",\"args\":{\"name\":\"w-a\"}}");
        let mb = json.find("{\"ph\":\"M\",\"pid\":0,\"tid\":1,\"name\":\"thread_name\",\"args\":{\"name\":\"w-b\"}}");
        assert!(ma.is_some() && mb.is_some() && ma < mb, "{json}");
    }

    #[test]
    fn minted_trace_ids_are_well_formed_and_distinct() {
        let a = mint_trace_id();
        let b = mint_trace_id();
        for id in [&a, &b] {
            assert_eq!(id.len(), 16, "{id}");
            assert!(
                id.chars()
                    .all(|c| c.is_ascii_hexdigit() && !c.is_ascii_uppercase()),
                "{id}"
            );
        }
        assert_ne!(a, b, "sequence counter keeps ids distinct");
    }

    #[test]
    fn first_trace_wins_and_only_traced_spans_render_trace_args() {
        let book = SpanBook::new();
        stamp_all(&book, 0, 1, "w-a", 10.0);
        let untraced = book.chrome_trace_json();
        assert!(!untraced.contains("\"trace\""), "{untraced}");

        book.stamp_traced(0, 2, "k-2", Stage::Queued, 20.0, None, Some("aa11"));
        book.stamp_traced(0, 2, "k-2", Stage::Leased, 21.0, Some("w-a"), Some("bb22"));
        book.stamp(0, 2, "k-2", Stage::Executing, 22.0, None);
        book.stamp(0, 2, "k-2", Stage::Pushed, 23.0, None);
        book.stamp(0, 2, "k-2", Stage::Committed, 24.0, None);
        let span = book.get(0, 2).expect("span");
        assert_eq!(span.trace, "aa11", "first non-empty trace wins");

        let json = book.chrome_trace_json();
        assert_eq!(
            json.matches(",\"trace\":\"aa11\"").count(),
            STAGES,
            "every stage event of the traced job carries the id: {json}"
        );
        // The untraced job's events are byte-identical to the pre-trace
        // render: the traced job only adds events, never rewrites them.
        assert!(
            json.contains("\"args\":{\"plan\":0,\"job\":1,\"key\":\"key-1\"}"),
            "{json}"
        );
    }

    #[test]
    fn clock_runs() {
        let book = SpanBook::new();
        let a = book.now_ms();
        let b = book.now_ms();
        assert!(a >= 0.0 && b >= a);
    }
}
