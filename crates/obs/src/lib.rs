//! # horus-obs: fleet-level telemetry for the Horus reproduction
//!
//! PR 2's probe layer answers "what happened *inside* one drain episode";
//! this crate answers "what is the *fleet* doing right now" while the
//! harness chews through hundreds of memoized sweep jobs. It provides:
//!
//! * [`registry`] — a sharded metrics registry handing out lock-free atomic
//!   [`Counter`]/[`Gauge`]/[`FloatCounter`]/[`FloatGauge`]/[`ObsHistogram`]
//!   handles with static label sets and deterministic snapshots.
//! * [`expo`] — Prometheus/OpenMetrics text rendering plus the name-based
//!   determinism rule golden tests rely on.
//! * [`http`] — a zero-dependency blocking scrape endpoint
//!   (`GET /metrics`), used by `horus-cli serve-metrics` and the
//!   `--metrics-addr` flag on the sweep binaries.
//! * [`dashboard`] — a live TTY panel fed from registry snapshots,
//!   degrading to the JSON-lines progress stream off-TTY.
//! * [`profile`] — per-job and whole-process host profiles (wall vs CPU
//!   time via `/proc` with a portable fallback, peak RSS, and a counting
//!   global allocator behind the `alloc-profile` feature).
//! * [`bridge`] — read-only mirroring of `horus_sim::Stats` counters into
//!   the registry, guaranteed not to perturb serialized `StatsRepr`.
//! * [`summary`] — the deterministic end-of-run `obs-summary.json`
//!   artifact that CI uploads and `bench-gate` folds into its baseline.
//! * [`span`] — per-job lifecycle spans
//!   (queued → leased → executing → pushed → committed) assembled into a
//!   cross-host Chrome-trace timeline (`--span-out`, `fleet-trace`).
//! * [`log`] — leveled structured line-delimited-JSON logging with an
//!   in-memory ring served at `GET /logs` (`--log-level`, `--log-json`).
//! * [`insight`] — the offline cross-signal analyzer behind
//!   `horus-cli insight`: joins summary, span, and log artifacts by
//!   trace id into one `insight.json` + human report.
//!
//! Everything is observe-only: with no `--metrics-addr`/`--dashboard` flag
//! and `alloc-profile` off, instrumented binaries produce byte-identical
//! outputs to uninstrumented ones.

#![cfg_attr(not(feature = "alloc-profile"), forbid(unsafe_code))]
#![cfg_attr(feature = "alloc-profile", deny(unsafe_code))]
#![warn(missing_docs)]

pub mod bridge;
pub mod dashboard;
pub mod expo;
pub mod http;
pub mod insight;
pub mod log;
pub mod names;
pub mod profile;
pub mod registry;
pub mod span;
pub mod summary;

pub use dashboard::Dashboard;
pub use http::{HttpRequest, HttpResponse, MetricsServer, Router};
pub use profile::{HostProfile, JobProfile, JobProfiler};
pub use registry::{
    Counter, FloatCounter, FloatGauge, Gauge, MetricKind, ObsHistogram, Registry, Sample,
    SampleValue, Snapshot, TimeHistogram,
};
pub use span::{JobSpan, SpanBook, Stage};
pub use summary::ObsSummary;

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// What a caller wants observed; parsed from `--metrics-addr`,
/// `--dashboard`, `--obs-out`, and `--span-out`.
#[derive(Debug, Clone, Default)]
pub struct ObsOptions {
    /// Address to serve `GET /metrics` on (e.g. `127.0.0.1:9464`).
    pub metrics_addr: Option<String>,
    /// Render the live TTY dashboard (falls back to line progress
    /// off-TTY).
    pub dashboard: bool,
    /// Where to write the end-of-run summary artifact.
    pub summary_out: Option<PathBuf>,
    /// Where to write the end-of-run Chrome-trace span timeline.
    pub span_out: Option<PathBuf>,
}

impl ObsOptions {
    /// True if any observation output was requested.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.metrics_addr.is_some()
            || self.dashboard
            || self.summary_out.is_some()
            || self.span_out.is_some()
    }
}

/// One run's worth of telemetry: a registry plus the requested outputs.
///
/// Construct with [`ObsSession::start`], hand
/// [`ObsSession::registry`] to the harness, and call
/// [`ObsSession::finish`] when the run is done to stop the endpoint /
/// dashboard and write the summary artifact.
pub struct ObsSession {
    registry: Arc<Registry>,
    server: Option<MetricsServer>,
    dashboard: Option<Dashboard>,
    summary_out: Option<PathBuf>,
    spans: Option<Arc<SpanBook>>,
    span_out: Option<PathBuf>,
    started: Instant,
}

impl ObsSession {
    /// Starts serving/rendering according to `opts`.
    ///
    /// # Errors
    /// Returns a descriptive message if the metrics address cannot be
    /// bound.
    pub fn start(opts: &ObsOptions) -> Result<ObsSession, String> {
        let registry = Registry::shared();
        let server = match &opts.metrics_addr {
            Some(addr) => Some(
                MetricsServer::bind(addr, Arc::clone(&registry))
                    .map_err(|e| format!("cannot bind metrics address {addr}: {e}"))?,
            ),
            None => None,
        };
        let dashboard = if opts.dashboard {
            Dashboard::start(Arc::clone(&registry))
        } else {
            None
        };
        let spans = opts.span_out.as_ref().map(|_| SpanBook::shared());
        Ok(ObsSession {
            registry,
            server,
            dashboard,
            summary_out: opts.summary_out.clone(),
            spans,
            span_out: opts.span_out.clone(),
            started: Instant::now(),
        })
    }

    /// The registry every layer should record into.
    #[must_use]
    pub fn registry(&self) -> Arc<Registry> {
        Arc::clone(&self.registry)
    }

    /// True if the live dashboard is actually rendering (requested *and*
    /// stderr is a TTY).
    #[must_use]
    pub fn dashboard_active(&self) -> bool {
        self.dashboard.is_some()
    }

    /// The bound scrape address, when a server is running.
    #[must_use]
    pub fn metrics_addr(&self) -> Option<std::net::SocketAddr> {
        self.server.as_ref().map(MetricsServer::local_addr)
    }

    /// The span collector, when `--span-out` asked for a timeline.
    /// Hand it to the harness pool or the fleet coordinator; whatever
    /// gets stamped into it is written at [`ObsSession::finish`].
    #[must_use]
    pub fn span_book(&self) -> Option<Arc<SpanBook>> {
        self.spans.as_ref().map(Arc::clone)
    }

    /// Forwards to [`MetricsServer::set_ready`] when a server is
    /// running (no-op otherwise): what `GET /readyz` answers.
    pub fn set_ready(&self, ready: bool) {
        if let Some(server) = &self.server {
            server.set_ready(ready);
        }
    }

    /// Mounts `router` on the metrics server, in front of the built-in
    /// routes (no-op when no `--metrics-addr` server is running). This
    /// is how `horus-service` shares one listener between `/metrics`
    /// and its `/v1/...` experiment API.
    pub fn install_router(&self, router: Arc<dyn http::Router>) {
        if let Some(server) = &self.server {
            server.set_router(router);
        }
    }

    /// Stops the dashboard and endpoint, captures the host profile, and
    /// writes the summary and span-timeline artifacts if requested.
    /// Returns the summary path written, if any.
    ///
    /// # Errors
    /// Returns a descriptive message if an artifact cannot be written.
    pub fn finish(self, jobs: Vec<JobProfile>) -> Result<Option<PathBuf>, String> {
        if let Some(dash) = self.dashboard {
            dash.stop();
        }
        if let (Some(path), Some(book)) = (&self.span_out, &self.spans) {
            std::fs::write(path, book.chrome_trace_json())
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        }
        let written = match &self.summary_out {
            Some(path) => {
                let summary = ObsSummary {
                    host: profile::host_profile(self.started.elapsed().as_secs_f64()),
                    jobs,
                    registry: self.registry.snapshot(),
                };
                summary
                    .write(path)
                    .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
                Some(path.clone())
            }
            None => None,
        };
        if let Some(server) = self.server {
            server.shutdown();
        }
        Ok(written)
    }
}

/// Convenience wrapper: capture a [`HostProfile`] for a run that started
/// at `started`.
#[must_use]
pub fn host_profile_since(started: Instant) -> HostProfile {
    profile::host_profile(started.elapsed().as_secs_f64())
}

/// Re-exported summary writer location helper: the default artifact name.
#[must_use]
pub fn default_summary_path(dir: &Path) -> PathBuf {
    dir.join("obs-summary.json")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_serves_and_writes_summary() {
        let dir = std::env::temp_dir().join(format!("horus-obs-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let out = dir.join("obs-summary.json");
        let opts = ObsOptions {
            metrics_addr: Some("127.0.0.1:0".to_string()),
            summary_out: Some(out.clone()),
            ..ObsOptions::default()
        };
        let session = ObsSession::start(&opts).expect("start");
        session
            .registry()
            .counter(names::JOBS_COMPLETED, "h", &[])
            .add(2);
        let addr = session.metrics_addr().expect("addr");
        let (status, body) = http::http_get(addr, "/metrics").expect("scrape");
        assert!(status.contains("200"));
        assert!(body.contains("horus_harness_jobs_completed_total 2"));
        let written = session.finish(Vec::new()).expect("finish");
        assert_eq!(written.as_deref(), Some(out.as_path()));
        let json = std::fs::read_to_string(&out).expect("read");
        assert!(json.contains("horus_harness_jobs_completed_total"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn inactive_options() {
        assert!(!ObsOptions::default().is_active());
        assert!(ObsOptions {
            dashboard: true,
            ..ObsOptions::default()
        }
        .is_active());
    }
}
