//! Bridge from `horus_sim::Stats` to the metrics registry.
//!
//! The simulator keeps per-episode counters in an interned [`Stats`] map
//! whose serialized face (`StatsRepr`) feeds golden traces, the result
//! cache, and `JobSpec` content keys — so the bridge must never mutate the
//! `Stats` it mirrors. [`mirror_stats`] therefore takes `&Stats`, reads
//! every counter and histogram, and *adds* the values into registry
//! counters; calling it once per completed job accumulates fleet totals.
//!
//! Counters land in [`crate::names::SIM_STAT`] labelled by the interned
//! key; histograms are summarized as two counters (observation count and
//! saturating sum) because registry histograms cannot adopt foreign bucket
//! layouts without re-observing samples.
//!
//! [`stats_from_snapshot`] reconstructs a `Stats` from a snapshot, which
//! gives the round-trip property the test suite leans on: `mirror` into a
//! fresh registry then `stats_from_snapshot` returns exactly the original
//! counter map.

use horus_sim::Stats;

use crate::names;
use crate::registry::{Registry, SampleValue, Snapshot};

/// Help text for mirrored counters.
const STAT_HELP: &str = "Simulator stat counters mirrored from horus_sim::Stats.";
/// Help text for mirrored histogram observation counts.
const SAMPLE_COUNT_HELP: &str = "Observation counts of simulator sample histograms.";
/// Help text for mirrored histogram sums.
const SAMPLE_SUM_HELP: &str = "Summed values of simulator sample histograms (saturating).";

/// Adds every counter and histogram of `stats` into `registry`.
///
/// Read-only with respect to `stats`; see the module docs for why that
/// matters. Extra labels (e.g. `("scheme", "Horus")`) are attached to every
/// mirrored series.
pub fn mirror_stats(registry: &Registry, stats: &Stats, extra: &[(&str, &str)]) {
    for (key, value) in stats.iter() {
        let mut labels: Vec<(&str, &str)> = Vec::with_capacity(extra.len() + 1);
        labels.push(("counter", key));
        labels.extend_from_slice(extra);
        registry
            .counter(names::SIM_STAT, STAT_HELP, &labels)
            .add(value);
    }
    for (key, histogram) in stats.histograms() {
        let mut labels: Vec<(&str, &str)> = Vec::with_capacity(extra.len() + 1);
        labels.push(("sample", key));
        labels.extend_from_slice(extra);
        registry
            .counter(names::SIM_SAMPLE_COUNT, SAMPLE_COUNT_HELP, &labels)
            .add(histogram.count());
        let sum = u64::try_from(histogram.sum()).unwrap_or(u64::MAX);
        registry
            .counter(names::SIM_SAMPLE_SUM, SAMPLE_SUM_HELP, &labels)
            .add(sum);
    }
}

/// Rebuilds a [`Stats`] from the mirrored counters in `snap`.
///
/// Only [`crate::names::SIM_STAT`] series participate; the per-histogram
/// count/sum summaries cannot be turned back into histograms and are
/// skipped. Extra labels applied at mirror time are ignored — series with
/// the same `counter` key fold together, mirroring what `Stats::merge`
/// would do.
#[must_use]
pub fn stats_from_snapshot(snap: &Snapshot) -> Stats {
    let mut stats = Stats::new();
    for sample in &snap.samples {
        if sample.name != names::SIM_STAT {
            continue;
        }
        let Some((_, key)) = sample.labels.iter().find(|(k, _)| k == "counter") else {
            continue;
        };
        if let SampleValue::Uint(v) = sample.value {
            stats.add(key, v);
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mirror_roundtrip_preserves_counters() {
        let mut stats = Stats::new();
        stats.add("nvm.writes", 42);
        stats.add("nvm.reads", 7);
        stats.incr("drain.episodes");
        let registry = Registry::new();
        mirror_stats(&registry, &stats, &[]);
        let rebuilt = stats_from_snapshot(&registry.snapshot());
        assert_eq!(rebuilt.get("nvm.writes"), 42);
        assert_eq!(rebuilt.get("nvm.reads"), 7);
        assert_eq!(rebuilt.get("drain.episodes"), 1);
        assert_eq!(rebuilt.iter().count(), 3);
    }

    #[test]
    fn mirror_accumulates_across_jobs() {
        let mut a = Stats::new();
        a.add("nvm.writes", 10);
        let mut b = Stats::new();
        b.add("nvm.writes", 5);
        let registry = Registry::new();
        mirror_stats(&registry, &a, &[]);
        mirror_stats(&registry, &b, &[]);
        let rebuilt = stats_from_snapshot(&registry.snapshot());
        assert_eq!(rebuilt.get("nvm.writes"), 15);
    }

    #[test]
    fn mirror_histograms_as_count_and_sum() {
        let mut stats = Stats::new();
        stats.record_sample("queue.delay", 3);
        stats.record_sample("queue.delay", 5);
        let registry = Registry::new();
        mirror_stats(&registry, &stats, &[("scheme", "Horus")]);
        let snap = registry.snapshot();
        let count = snap
            .samples
            .iter()
            .find(|s| s.name == names::SIM_SAMPLE_COUNT)
            .expect("count series");
        assert_eq!(count.value, SampleValue::Uint(2));
        let sum = snap
            .samples
            .iter()
            .find(|s| s.name == names::SIM_SAMPLE_SUM)
            .expect("sum series");
        assert_eq!(sum.value, SampleValue::Uint(8));
        assert!(count.labels.contains(&("scheme".into(), "Horus".into())));
    }
}
