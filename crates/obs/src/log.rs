//! Leveled structured logging with an in-memory ring buffer.
//!
//! The workspace's diagnostics were ad-hoc `eprintln!` calls — fine for
//! a single process, useless for a fleet where "which worker said what,
//! when, and about which job" is the whole question. This module is the
//! replacement: one process-global logger that
//!
//! * filters by [`Level`] (`--log-level`),
//! * renders every accepted record as one line-delimited JSON object
//!   and keeps the most recent [`RING_CAPACITY`] of them in a ring
//!   buffer served at `GET /logs` by [`crate::http::MetricsServer`],
//! * mirrors records to stderr — human-readable by default
//!   (`target: message key=value ...`), raw JSON under `--log-json` —
//!   so existing "watch the coordinator's stderr" workflows keep
//!   working.
//!
//! Like the rest of the obs stack it is observe-only and zero-
//! dependency: the JSON encoder is hand-rolled, the ring is a mutexed
//! `VecDeque`, and nothing here ever touches job results, content keys,
//! or any other determinism-bearing output.

use std::collections::VecDeque;
use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{SystemTime, UNIX_EPOCH};

/// Maximum JSON lines retained in the in-memory ring (`GET /logs`
/// serves exactly this window, oldest first).
pub const RING_CAPACITY: usize = 1024;

/// Log severity, ordered from chattiest to most urgent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Development chatter; off by default.
    Debug = 0,
    /// Normal operational events (the default threshold).
    Info = 1,
    /// Something degraded but the run continues.
    Warn = 2,
    /// Something failed.
    Error = 3,
}

impl Level {
    /// Every level, in severity order.
    pub const ALL: [Level; 4] = [Level::Debug, Level::Info, Level::Warn, Level::Error];

    /// The lowercase name used on the wire and in `--log-level`.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }

    /// Parses a `--log-level` argument (case-insensitive).
    #[must_use]
    pub fn parse(s: &str) -> Option<Level> {
        match s.to_ascii_lowercase().as_str() {
            "debug" => Some(Level::Debug),
            "info" => Some(Level::Info),
            "warn" | "warning" => Some(Level::Warn),
            "error" => Some(Level::Error),
            _ => None,
        }
    }

    fn from_u8(v: u8) -> Level {
        match v {
            0 => Level::Debug,
            1 => Level::Info,
            2 => Level::Warn,
            _ => Level::Error,
        }
    }
}

/// The process-global logger state.
struct Logger {
    min_level: AtomicU8,
    json_stderr: AtomicBool,
    seq: AtomicU64,
    ring: Mutex<VecDeque<String>>,
}

fn global() -> &'static Logger {
    static LOGGER: OnceLock<Logger> = OnceLock::new();
    LOGGER.get_or_init(|| Logger {
        min_level: AtomicU8::new(Level::Info as u8),
        json_stderr: AtomicBool::new(false),
        seq: AtomicU64::new(0),
        ring: Mutex::new(VecDeque::with_capacity(RING_CAPACITY)),
    })
}

/// Sets the minimum level a record needs to be kept (ring) and printed
/// (stderr). Records below it are dropped entirely.
pub fn set_level(level: Level) {
    global().min_level.store(level as u8, Ordering::Relaxed);
}

/// The current minimum level.
#[must_use]
pub fn level() -> Level {
    Level::from_u8(global().min_level.load(Ordering::Relaxed))
}

/// Switches the stderr mirror between human-readable lines (default)
/// and the raw JSON the ring stores (`--log-json`).
pub fn set_json_stderr(json: bool) {
    global().json_stderr.store(json, Ordering::Relaxed);
}

/// Records one structured event: JSON into the ring, a mirror line on
/// stderr. `fields` are `(name, value)` pairs carried verbatim as JSON
/// string values.
pub fn log(level: Level, target: &str, msg: &str, fields: &[(&str, &str)]) {
    let logger = global();
    if (level as u8) < logger.min_level.load(Ordering::Relaxed) {
        return;
    }
    let seq = logger.seq.fetch_add(1, Ordering::Relaxed);
    let ts_ms = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0);
    let mut line = String::with_capacity(96 + msg.len());
    line.push_str(&format!(
        "{{\"ts_ms\":{ts_ms},\"seq\":{seq},\"level\":\"{}\",\"target\":{},\"msg\":{}",
        level.as_str(),
        json_escape(target),
        json_escape(msg),
    ));
    line.push_str(",\"fields\":{");
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        line.push_str(&json_escape(k));
        line.push(':');
        line.push_str(&json_escape(v));
    }
    line.push_str("}}");
    {
        let mut ring = logger.ring.lock().expect("obs log ring poisoned");
        if ring.len() == RING_CAPACITY {
            ring.pop_front();
        }
        ring.push_back(line.clone());
    }
    let mut err = std::io::stderr().lock();
    if logger.json_stderr.load(Ordering::Relaxed) {
        let _ = writeln!(err, "{line}");
    } else {
        let mut human = format!("{target}: {msg}");
        for (k, v) in fields {
            human.push_str(&format!(" {k}={v}"));
        }
        let _ = writeln!(err, "{human}");
    }
}

/// Records a debug-level event.
pub fn debug(target: &str, msg: &str, fields: &[(&str, &str)]) {
    log(Level::Debug, target, msg, fields);
}

/// Records an info-level event.
pub fn info(target: &str, msg: &str, fields: &[(&str, &str)]) {
    log(Level::Info, target, msg, fields);
}

/// Records a warn-level event.
pub fn warn(target: &str, msg: &str, fields: &[(&str, &str)]) {
    log(Level::Warn, target, msg, fields);
}

/// Records an error-level event.
pub fn error(target: &str, msg: &str, fields: &[(&str, &str)]) {
    log(Level::Error, target, msg, fields);
}

/// The ring's contents as newline-delimited JSON, oldest record first
/// (the `GET /logs` body). Empty string when nothing has been logged.
#[must_use]
pub fn ring_ndjson() -> String {
    let ring = global().ring.lock().expect("obs log ring poisoned");
    let mut out = String::new();
    for line in ring.iter() {
        out.push_str(line);
        out.push('\n');
    }
    out
}

/// [`ring_ndjson`] with server-side filters, the `GET /logs?level=`
/// `&trace_id=` body. `min_level` keeps records at or above the given
/// severity; `trace_id` keeps records whose `fields` carry exactly that
/// `trace_id` value. Both filters are conjunctive; either alone is
/// fine. Records are matched on their rendered JSON, so the filter
/// never re-parses or re-orders anything — surviving lines are
/// byte-identical to the unfiltered body.
#[must_use]
pub fn ring_ndjson_filtered(min_level: Option<Level>, trace_id: Option<&str>) -> String {
    let level_needles: Vec<String> = min_level
        .map(|min| {
            Level::ALL
                .iter()
                .filter(|l| **l >= min)
                .map(|l| format!("\"level\":{}", json_escape(l.as_str())))
                .collect()
        })
        .unwrap_or_default();
    let trace_needle = trace_id.map(|t| format!("\"trace_id\":{}", json_escape(t)));
    let ring = global().ring.lock().expect("obs log ring poisoned");
    let mut out = String::new();
    for line in ring.iter() {
        if !level_needles.is_empty() && !level_needles.iter().any(|n| line.contains(n.as_str())) {
            continue;
        }
        if let Some(needle) = &trace_needle {
            if !line.contains(needle.as_str()) {
                continue;
            }
        }
        out.push_str(line);
        out.push('\n');
    }
    out
}

/// Number of records currently held in the ring.
#[must_use]
pub fn ring_len() -> usize {
    global().ring.lock().expect("obs log ring poisoned").len()
}

/// Encodes a string as a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test drives the global logger end to end; the ring and level
    // are process-wide, so splitting this into several parallel tests
    // would race on them.
    #[test]
    fn logger_levels_ring_and_shape() {
        set_level(Level::Info);
        info(
            "fleet",
            "worker registered",
            &[("worker", "3"), ("name", "ci-a")],
        );
        debug("fleet", "this is dropped", &[]);
        warn("fleet", "a \"quoted\" warning", &[]);

        let body = ring_ndjson();
        assert!(
            body.contains("\"level\":\"info\",\"target\":\"fleet\",\"msg\":\"worker registered\""),
            "{body}"
        );
        assert!(
            body.contains("\"fields\":{\"worker\":\"3\",\"name\":\"ci-a\"}"),
            "{body}"
        );
        assert!(!body.contains("this is dropped"), "{body}");
        assert!(body.contains("a \\\"quoted\\\" warning"), "{body}");
        for line in body.lines() {
            assert!(
                line.starts_with("{\"ts_ms\":") && line.ends_with('}'),
                "{line}"
            );
            assert!(line.contains("\"seq\":"), "{line}");
        }

        set_level(Level::Error);
        assert_eq!(level(), Level::Error);
        let before = ring_len();
        info("fleet", "below threshold", &[]);
        assert_eq!(ring_len(), before, "info dropped at error threshold");
        set_level(Level::Info);

        // Server-side filters reuse the same ring (still one test: the
        // logger is process-global).
        info("service", "traced event", &[("trace_id", "feed0001")]);
        let warns = ring_ndjson_filtered(Some(Level::Warn), None);
        assert!(warns.contains("a \\\"quoted\\\" warning"), "{warns}");
        assert!(!warns.contains("worker registered"), "info filtered out");
        for line in warns.lines() {
            assert!(
                line.contains("\"level\":\"warn\"") || line.contains("\"level\":\"error\""),
                "{line}"
            );
        }
        let traced = ring_ndjson_filtered(None, Some("feed0001"));
        assert!(traced.contains("traced event"), "{traced}");
        assert!(!traced.contains("worker registered"), "{traced}");
        let both = ring_ndjson_filtered(Some(Level::Warn), Some("feed0001"));
        assert!(both.is_empty(), "traced event is info, not warn: {both}");
        let none = ring_ndjson_filtered(None, Some("no-such-trace"));
        assert!(none.is_empty(), "unknown trace id matches nothing");
        assert_eq!(
            ring_ndjson_filtered(None, None),
            ring_ndjson(),
            "no filters means the full body"
        );
    }

    #[test]
    fn level_parsing() {
        assert_eq!(Level::parse("info"), Some(Level::Info));
        assert_eq!(Level::parse("WARN"), Some(Level::Warn));
        assert_eq!(Level::parse("warning"), Some(Level::Warn));
        assert_eq!(Level::parse("nope"), None);
        assert!(Level::Debug < Level::Error);
        for l in Level::ALL {
            assert_eq!(Level::parse(l.as_str()), Some(l));
        }
    }
}
