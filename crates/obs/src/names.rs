//! Canonical metric names shared by the harness, bench layer, CLI,
//! dashboard, and tests.
//!
//! Keeping the names in one place is what makes the label-cardinality and
//! determinism rules auditable: every family the workspace emits is listed
//! here with its kind and label set.
//!
//! ## Label cardinality rules
//!
//! Labels must come from small, closed sets known at compile time or
//! bounded by the run configuration:
//!
//! * `scheme` — one of the five drain schemes (`DrainScheme::ALL`).
//! * `worker` — `0..jobs`, bounded by `--jobs`.
//! * `verdict` — crash-sweep classification (`recovered`, `detected`,
//!   `silent_corruption`).
//! * `counter` / `sample` — interned `horus_sim::Stats` keys, a fixed
//!   vocabulary defined by the simulator.
//! * `route` — a pattern-normalized route id from the closed set in
//!   [`crate::http::normalize_route`] (`/v1/jobs`, `/v1/jobs/{id}`,
//!   `/metrics`, …, with `other` as the catch-all). Never the raw
//!   request path: ids and query strings would make the label set grow
//!   with traffic.
//! * `status` — the three-digit HTTP status code of the response, a
//!   closed set bounded by the statuses the server can emit.
//!
//! Never label by job key, crash cycle, raw URL path, or anything else
//! that grows with the plan size or traffic — that turns a bounded
//! registry into an unbounded one. Trace ids never become labels
//! either: they ride on histogram buckets as OpenMetrics *exemplars*
//! (see [`crate::registry::HistogramSnapshot::exemplars`]), which hold
//! one most-recent trace per bucket instead of one series per trace.

/// Counter: jobs handed to the worker pool (includes cache hits).
pub const JOBS_STARTED: &str = "horus_harness_jobs_started_total";
/// Counter: jobs that ran to completion (includes cache hits).
pub const JOBS_COMPLETED: &str = "horus_harness_jobs_completed_total";
/// Counter: jobs whose worker panicked.
pub const JOBS_PANICKED: &str = "horus_harness_jobs_panicked_total";
/// Counter: jobs answered from the on-disk result cache.
pub const CACHE_HITS: &str = "horus_harness_cache_hits_total";
/// Gauge: jobs accepted but not yet finished.
pub const QUEUE_DEPTH: &str = "horus_harness_queue_depth";
/// Gauge: jobs the current plan will run in total.
pub const JOBS_PLANNED: &str = "horus_harness_jobs_planned";
/// Gauge: size of the worker pool (host-dependent: excluded from
/// deterministic snapshots by the `worker` naming rule).
pub const WORKER_THREADS: &str = "horus_harness_worker_threads";
/// Float counter, labelled `worker`: seconds each worker spent running
/// jobs (host-dependent).
pub const WORKER_BUSY_SECONDS: &str = "horus_harness_worker_busy_seconds_total";
/// Counter: simulated drain episodes completed.
pub const EPISODES_TOTAL: &str = "horus_harness_episodes_total";
/// Counter: total simulated cycles across completed jobs.
pub const SIM_CYCLES_TOTAL: &str = "horus_sim_cycles_total";
/// Counter, labelled `scheme`: NVM memory operations per drain scheme.
pub const SCHEME_MEMORY_OPS: &str = "horus_scheme_memory_ops_total";
/// Counter, labelled `scheme`: MAC operations per drain scheme.
pub const SCHEME_MAC_OPS: &str = "horus_scheme_mac_ops_total";
/// Float gauge: live episodes/s over the run so far (timing-dependent).
pub const EPISODES_PER_SECOND: &str = "horus_harness_episodes_per_second";
/// Float gauge: live simulated cycles/s over the run so far
/// (timing-dependent).
pub const SIM_CYCLES_PER_SECOND: &str = "horus_harness_sim_cycles_per_second";
/// Float gauge: live memory operations/s over the run so far
/// (timing-dependent).
pub const MEMORY_OPS_PER_SECOND: &str = "horus_harness_memory_ops_per_second";
/// Counter, labelled `scheme` and `verdict`: crash-sweep classifications.
pub const CRASH_VERDICTS: &str = "horus_crash_verdicts_total";
/// Counter, labelled `counter`: mirrored `horus_sim::Stats` counters (see
/// [`crate::bridge`]).
pub const SIM_STAT: &str = "horus_sim_stat_total";
/// Counter, labelled `sample`: observation counts of mirrored
/// `horus_sim::Stats` histograms.
pub const SIM_SAMPLE_COUNT: &str = "horus_sim_sample_count_total";
/// Counter, labelled `sample`: summed values of mirrored
/// `horus_sim::Stats` histograms (saturating at `u64::MAX`).
pub const SIM_SAMPLE_SUM: &str = "horus_sim_sample_sum_total";
/// Gauge: workers currently registered with the fleet coordinator.
/// All `horus_fleet_` families are scheduling-dependent (who leased
/// what, when, and how often leases expired) and therefore excluded
/// from deterministic snapshots by the prefix rule in [`crate::expo`].
pub const FLEET_WORKERS: &str = "horus_fleet_workers";
/// Gauge: job leases currently held by fleet workers.
pub const FLEET_LEASES_IN_FLIGHT: &str = "horus_fleet_leases_in_flight";
/// Counter: expired leases returned to the fleet queue.
pub const FLEET_REQUEUES: &str = "horus_fleet_requeues_total";
/// Counter, labelled `worker`: jobs committed per fleet worker (the
/// label is the coordinator-assigned worker id, bounded by the number
/// of worker registrations in the coordinator's lifetime).
pub const FLEET_WORKER_JOBS: &str = "horus_fleet_worker_jobs_total";
/// Counter: sweep plans fully merged by the fleet coordinator.
pub const FLEET_PLANS: &str = "horus_fleet_plans_total";
/// Duration histogram, labelled `stage`: per-stage job latency observed
/// at commit time. The `stage` label is one of the five lifecycle
/// stages (`queued`, `leased`, `executing`, `pushed`, `committed` — the
/// last meaning end-to-end queued→committed), a closed set defined by
/// `obs::span::Stage::ALL`.
pub const FLEET_JOB_STAGE_SECONDS: &str = "horus_fleet_job_stage_seconds";
/// Counter, labelled `tenant`: plan submissions received by the service
/// API, before admission control. All `horus_service_` families are
/// load-dependent (client arrival order, wall-clock bucket refill) and
/// therefore excluded from deterministic snapshots by the prefix rule
/// in [`crate::expo`]. The `tenant` label is bounded by the tenant
/// config file plus the single fallback tenant.
pub const SERVICE_SUBMITTED: &str = "horus_service_jobs_submitted_total";
/// Counter, labelled `tenant`: submissions the governor admitted.
pub const SERVICE_ADMITTED: &str = "horus_service_jobs_admitted_total";
/// Counter, labelled `tenant`: submissions shed with `429 Too Many
/// Requests` (token budget exhausted or max-in-flight quota hit).
pub const SERVICE_SHED: &str = "horus_service_jobs_shed_total";
/// Gauge: admitted jobs waiting in the service priority queue.
pub const SERVICE_QUEUE_DEPTH: &str = "horus_service_queue_depth";
/// Gauge, labelled `tenant`: admitted plans currently queued or
/// executing, the quantity the max-in-flight quota bounds.
pub const SERVICE_IN_FLIGHT: &str = "horus_service_jobs_in_flight";
/// Counter: service plans executed to completion (includes plans whose
/// every job was a cache hit; excludes deduped alias submissions).
pub const SERVICE_PLANS_COMPLETED: &str = "horus_service_plans_completed_total";
/// Duration histogram: time from request arrival to admission verdict.
pub const SERVICE_ADMISSION_SECONDS: &str = "horus_service_admission_seconds";
/// Duration histogram: client-observed request latency, recorded by the
/// `horus-load` generator into its own registry (not the server's).
pub const SERVICE_CLIENT_REQUEST_SECONDS: &str = "horus_service_client_request_seconds";
/// Gauge: seconds the oldest plan in the service queue has been
/// waiting. Zero when the queue is empty.
pub const SERVICE_QUEUE_AGE_SECONDS: &str = "horus_service_queue_age_seconds";
/// Gauge: seconds the oldest admitted-but-uncommitted plan (queued or
/// executing) has been in flight. Zero when nothing is in flight.
pub const SERVICE_OLDEST_IN_FLIGHT_SECONDS: &str = "horus_service_oldest_in_flight_seconds";
/// Counter, labelled `route` and `status`: HTTP requests answered by
/// the shared listener, RED-style. All `horus_http_` families are
/// traffic-dependent and excluded from deterministic snapshots by the
/// prefix rule in [`crate::expo`]. Both labels come from closed sets —
/// see the cardinality rules above.
pub const HTTP_REQUESTS: &str = "horus_http_requests_total";
/// Duration histogram, labelled `route`: server-side request latency,
/// accept-to-response. Buckets carry trace-id exemplars when the
/// response was correlated.
pub const HTTP_REQUEST_SECONDS: &str = "horus_http_request_seconds";
/// Counter: jobs the fleet stall watchdog flagged as leased but not
/// pushed within the configured multiple of the lease interval.
pub const FLEET_STALLED_JOBS: &str = "horus_fleet_stalled_jobs_total";

#[cfg(test)]
mod tests {
    use crate::expo::is_deterministic_metric;

    #[test]
    fn determinism_classification_of_every_family() {
        for name in [
            super::JOBS_STARTED,
            super::JOBS_COMPLETED,
            super::JOBS_PANICKED,
            super::CACHE_HITS,
            super::QUEUE_DEPTH,
            super::JOBS_PLANNED,
            super::EPISODES_TOTAL,
            super::SIM_CYCLES_TOTAL,
            super::SCHEME_MEMORY_OPS,
            super::SCHEME_MAC_OPS,
            super::CRASH_VERDICTS,
            super::SIM_STAT,
            super::SIM_SAMPLE_COUNT,
            super::SIM_SAMPLE_SUM,
        ] {
            assert!(
                is_deterministic_metric(name),
                "{name} should be deterministic"
            );
        }
        for name in [
            super::WORKER_THREADS,
            super::WORKER_BUSY_SECONDS,
            super::EPISODES_PER_SECOND,
            super::SIM_CYCLES_PER_SECOND,
            super::MEMORY_OPS_PER_SECOND,
            super::FLEET_WORKERS,
            super::FLEET_LEASES_IN_FLIGHT,
            super::FLEET_REQUEUES,
            super::FLEET_WORKER_JOBS,
            super::FLEET_PLANS,
            super::FLEET_JOB_STAGE_SECONDS,
            super::SERVICE_SUBMITTED,
            super::SERVICE_ADMITTED,
            super::SERVICE_SHED,
            super::SERVICE_QUEUE_DEPTH,
            super::SERVICE_IN_FLIGHT,
            super::SERVICE_PLANS_COMPLETED,
            super::SERVICE_ADMISSION_SECONDS,
            super::SERVICE_CLIENT_REQUEST_SECONDS,
            super::SERVICE_QUEUE_AGE_SECONDS,
            super::SERVICE_OLDEST_IN_FLIGHT_SECONDS,
            super::HTTP_REQUESTS,
            super::HTTP_REQUEST_SECONDS,
            super::FLEET_STALLED_JOBS,
        ] {
            assert!(
                !is_deterministic_metric(name),
                "{name} should be host/timing-dependent"
            );
        }
    }
}
