//! Live TTY dashboard for long sweeps.
//!
//! [`Dashboard::start`] spawns a thread that re-renders a four-line panel
//! on stderr every 250 ms, fed purely from registry snapshots — it
//! registers nothing itself, so attaching a dashboard never changes what a
//! scraper sees. When stderr is not a TTY, `start` returns `None` and
//! callers fall back to the existing JSON-lines progress stream; the
//! dashboard is additive, never a replacement.
//!
//! The panel shows job completion, queue depth and ETA, worker occupancy
//! derived from busy-seconds deltas between frames, cache-hit rate, live
//! throughput gauges, and a sparkline of memory-ops/s history. When the
//! registry carries fleet stage-latency histograms
//! (`horus_fleet_job_stage_seconds`, recorded by a span-collecting
//! coordinator), a fifth line shows the mean latency per lifecycle
//! stage.

use std::collections::VecDeque;
use std::io::{IsTerminal, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::names;
use crate::registry::{Registry, SampleValue, Snapshot};

/// Redraw interval.
const FRAME_INTERVAL: Duration = Duration::from_millis(250);
/// Sparkline history length (frames).
const SPARK_LEN: usize = 32;
/// Number of lines the base panel occupies (one more when fleet
/// stage-latency histograms are present); the renderer itself counts
/// lines per frame, so this only anchors the shape test.
#[cfg(test)]
const PANEL_LINES: usize = 4;

/// A running dashboard; stop it with [`Dashboard::stop`] (or drop it).
pub struct Dashboard {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Dashboard {
    /// Starts the dashboard if stderr is a TTY; returns `None` otherwise so
    /// the caller can keep (or enable) line-oriented progress instead.
    #[must_use]
    pub fn start(registry: Arc<Registry>) -> Option<Dashboard> {
        if !std::io::stderr().is_terminal() {
            return None;
        }
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("horus-obs-dashboard".to_string())
            .spawn(move || run(&registry, &flag))
            .ok()?;
        Some(Dashboard {
            stop,
            handle: Some(handle),
        })
    }

    /// Stops the redraw thread, leaving the final frame on screen.
    pub fn stop(mut self) {
        self.halt();
    }

    fn halt(&mut self) {
        if let Some(handle) = self.handle.take() {
            self.stop.store(true, Ordering::SeqCst);
            let _ = handle.join();
        }
    }
}

impl Drop for Dashboard {
    fn drop(&mut self) {
        self.halt();
    }
}

fn run(registry: &Arc<Registry>, stop: &Arc<AtomicBool>) {
    let mut state = DashState::new();
    // The panel grows a line when fleet stage histograms first appear;
    // track how many lines the previous frame drew so the cursor
    // rewinds exactly that far.
    let mut prev_lines = 0usize;
    while !stop.load(Ordering::SeqCst) {
        let frame = state.frame(&registry.snapshot());
        let mut err = std::io::stderr().lock();
        if prev_lines > 0 {
            // Move back to the top of the panel and overwrite in place.
            let _ = write!(err, "\x1b[{prev_lines}A");
        }
        for line in frame.lines() {
            let _ = writeln!(err, "\x1b[2K{line}");
        }
        let _ = err.flush();
        drop(err);
        prev_lines = frame.lines().count();
        std::thread::sleep(FRAME_INTERVAL);
    }
    // Render one last frame so the final numbers stay visible.
    let frame = state.frame(&registry.snapshot());
    let mut err = std::io::stderr().lock();
    if prev_lines > 0 {
        let _ = write!(err, "\x1b[{prev_lines}A");
    }
    for line in frame.lines() {
        let _ = writeln!(err, "\x1b[2K{line}");
    }
    let _ = err.flush();
}

/// Frame-to-frame dashboard state (occupancy deltas, sparkline history).
struct DashState {
    started: Instant,
    last_frame: Option<Instant>,
    last_busy_sum: f64,
    spark: VecDeque<f64>,
}

impl DashState {
    fn new() -> DashState {
        DashState {
            started: Instant::now(),
            last_frame: None,
            last_busy_sum: 0.0,
            spark: VecDeque::with_capacity(SPARK_LEN),
        }
    }

    /// Renders one frame from a snapshot. Pure with respect to the
    /// terminal, which keeps it unit-testable.
    fn frame(&mut self, snap: &Snapshot) -> String {
        let now = Instant::now();
        let completed = get_uint(snap, names::JOBS_COMPLETED);
        let planned = get_int(snap, names::JOBS_PLANNED).max(0) as u64;
        let cached = get_uint(snap, names::CACHE_HITS);
        let panicked = get_uint(snap, names::JOBS_PANICKED);
        let queue = get_int(snap, names::QUEUE_DEPTH).max(0);
        let workers = get_int(snap, names::WORKER_THREADS).max(0);
        let episodes_s = get_float(snap, names::EPISODES_PER_SECOND);
        let cycles_s = get_float(snap, names::SIM_CYCLES_PER_SECOND);
        let mem_ops_s = get_float(snap, names::MEMORY_OPS_PER_SECOND);

        let busy_sum = sum_floats(snap, names::WORKER_BUSY_SECONDS);
        let occupancy = match self.last_frame {
            Some(prev) if workers > 0 => {
                let dt = now.duration_since(prev).as_secs_f64();
                if dt > 0.0 {
                    ((busy_sum - self.last_busy_sum) / (dt * workers as f64)).clamp(0.0, 1.0)
                } else {
                    0.0
                }
            }
            _ => 0.0,
        };
        self.last_frame = Some(now);
        self.last_busy_sum = busy_sum;

        if self.spark.len() == SPARK_LEN {
            self.spark.pop_front();
        }
        self.spark.push_back(mem_ops_s.max(0.0));

        let elapsed = now.duration_since(self.started).as_secs_f64();
        let eta = if completed > 0 && planned > completed {
            let remaining = (planned - completed) as f64;
            Some(elapsed / completed as f64 * remaining)
        } else {
            None
        };
        let hit_rate = if completed > 0 {
            cached as f64 / completed as f64 * 100.0
        } else {
            0.0
        };

        let mut out = String::new();
        out.push_str(&format!(
            "horus sweep  {} {completed}/{planned} jobs  ({cached} cached, {panicked} panicked)  queue {queue}  ETA {}\n",
            bar(completed, planned, 12),
            eta.map_or("--".to_string(), fmt_duration),
        ));
        out.push_str(&format!(
            "workers {workers}  busy {:>3.0}%  cache-hit {hit_rate:>3.0}%  elapsed {}\n",
            occupancy * 100.0,
            fmt_duration(elapsed),
        ));
        out.push_str(&format!(
            "episodes/s {}  sim-cycles/s {}  mem-ops/s {}\n",
            fmt_si(episodes_s),
            fmt_si(cycles_s),
            fmt_si(mem_ops_s),
        ));
        out.push_str(&format!("mem-ops/s {}\n", sparkline(&self.spark)));
        if let Some(stages) = stage_latency_line(snap) {
            out.push_str(&stages);
            out.push('\n');
        }
        out
    }
}

/// Renders the per-stage mean-latency line when the fleet stage
/// histograms are present and populated; `None` otherwise (local sweeps
/// never see it).
fn stage_latency_line(snap: &Snapshot) -> Option<String> {
    let mut parts = Vec::new();
    for stage in crate::span::Stage::ALL {
        let sample = snap.samples.iter().find(|s| {
            s.name == names::FLEET_JOB_STAGE_SECONDS
                && s.labels
                    .iter()
                    .any(|(k, v)| k == "stage" && v == stage.as_str())
        })?;
        let SampleValue::TimeHistogram(h) = &sample.value else {
            return None;
        };
        if h.count == 0 {
            return None;
        }
        let mean_ms = h.seconds_sum() / h.count as f64 * 1e3;
        parts.push(format!("{} {mean_ms:.1}ms", stage.as_str()));
    }
    Some(format!("stage mean  {}", parts.join("  ")))
}

fn get_uint(snap: &Snapshot, name: &str) -> u64 {
    snap.samples
        .iter()
        .find(|s| s.name == name)
        .and_then(|s| match s.value {
            SampleValue::Uint(v) => Some(v),
            _ => None,
        })
        .unwrap_or(0)
}

fn get_int(snap: &Snapshot, name: &str) -> i64 {
    snap.samples
        .iter()
        .find(|s| s.name == name)
        .and_then(|s| match s.value {
            SampleValue::Int(v) => Some(v),
            _ => None,
        })
        .unwrap_or(0)
}

fn get_float(snap: &Snapshot, name: &str) -> f64 {
    snap.samples
        .iter()
        .find(|s| s.name == name)
        .and_then(|s| match s.value {
            SampleValue::Float(v) => Some(v),
            _ => None,
        })
        .unwrap_or(0.0)
}

fn sum_floats(snap: &Snapshot, name: &str) -> f64 {
    snap.samples
        .iter()
        .filter(|s| s.name == name)
        .map(|s| match s.value {
            SampleValue::Float(v) => v,
            _ => 0.0,
        })
        .sum()
}

/// Renders a `width`-character progress bar.
fn bar(done: u64, total: u64, width: usize) -> String {
    let filled = if total == 0 {
        0
    } else {
        (done as f64 / total as f64 * width as f64).round() as usize
    }
    .min(width);
    format!("▐{}{}▌", "█".repeat(filled), "░".repeat(width - filled))
}

/// Renders a sparkline of `values` scaled to the window maximum.
fn sparkline(values: &VecDeque<f64>) -> String {
    const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().cloned().fold(0.0f64, f64::max);
    values
        .iter()
        .map(|&v| {
            if max <= 0.0 {
                LEVELS[0]
            } else {
                let idx = (v / max * (LEVELS.len() - 1) as f64).round() as usize;
                LEVELS[idx.min(LEVELS.len() - 1)]
            }
        })
        .collect()
}

/// Formats a rate with an SI suffix (`1.5k`, `203.2M`).
fn fmt_si(v: f64) -> String {
    let abs = v.abs();
    if abs >= 1e9 {
        format!("{:.1}G", v / 1e9)
    } else if abs >= 1e6 {
        format!("{:.1}M", v / 1e6)
    } else if abs >= 1e3 {
        format!("{:.1}k", v / 1e3)
    } else {
        format!("{v:.0}")
    }
}

/// Formats seconds as `Ns`, `NmMs`, or `NhMm`.
fn fmt_duration(s: f64) -> String {
    let s = s.max(0.0).round() as u64;
    if s < 60 {
        format!("{s}s")
    } else if s < 3600 {
        format!("{}m{:02}s", s / 60, s % 60)
    } else {
        format!("{}h{:02}m", s / 3600, (s % 3600) / 60)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_renders_from_snapshot() {
        let reg = Registry::new();
        reg.counter(names::JOBS_COMPLETED, "h", &[]).add(3);
        reg.gauge(names::JOBS_PLANNED, "h", &[]).set(10);
        reg.counter(names::CACHE_HITS, "h", &[]).add(1);
        reg.gauge(names::QUEUE_DEPTH, "h", &[]).set(7);
        reg.gauge(names::WORKER_THREADS, "h", &[]).set(4);
        reg.float_gauge(names::EPISODES_PER_SECOND, "h", &[])
            .set(1500.0);
        reg.float_gauge(names::SIM_CYCLES_PER_SECOND, "h", &[])
            .set(2.0e8);
        reg.float_gauge(names::MEMORY_OPS_PER_SECOND, "h", &[])
            .set(3.4e6);
        let mut state = DashState::new();
        let frame = state.frame(&reg.snapshot());
        assert_eq!(frame.lines().count(), PANEL_LINES);
        assert!(frame.contains("3/10 jobs"), "{frame}");
        assert!(frame.contains("(1 cached, 0 panicked)"), "{frame}");
        assert!(frame.contains("queue 7"), "{frame}");
        assert!(frame.contains("workers 4"), "{frame}");
        assert!(frame.contains("episodes/s 1.5k"), "{frame}");
        assert!(frame.contains("sim-cycles/s 200.0M"), "{frame}");

        // Stage histograms grow the panel by one line; all five stages
        // must be populated before it appears.
        for stage in crate::span::Stage::ALL {
            reg.time_histogram(
                names::FLEET_JOB_STAGE_SECONDS,
                "h",
                &[("stage", stage.as_str())],
            )
            .observe_seconds(0.002);
        }
        let frame = state.frame(&reg.snapshot());
        assert_eq!(frame.lines().count(), PANEL_LINES + 1);
        assert!(frame.contains("stage mean"), "{frame}");
        assert!(frame.contains("queued 2.0ms"), "{frame}");
        assert!(frame.contains("committed 2.0ms"), "{frame}");
    }

    #[test]
    fn helpers_format_sanely() {
        assert_eq!(fmt_si(950.0), "950");
        assert_eq!(fmt_si(1500.0), "1.5k");
        assert_eq!(fmt_si(2.5e6), "2.5M");
        assert_eq!(fmt_duration(5.0), "5s");
        assert_eq!(fmt_duration(125.0), "2m05s");
        assert_eq!(fmt_duration(7300.0), "2h01m");
        assert_eq!(bar(0, 0, 4), "▐░░░░▌");
        assert_eq!(bar(2, 4, 4), "▐██░░▌");
    }

    #[test]
    fn sparkline_scales_to_max() {
        let mut v = VecDeque::new();
        v.extend([0.0, 0.5, 1.0]);
        assert_eq!(sparkline(&v), "▁▅█");
        let empty: VecDeque<f64> = VecDeque::new();
        assert_eq!(sparkline(&empty), "");
    }
}
