//! Offline cross-signal analyzer behind `horus-cli insight`.
//!
//! One run of the service (or a fleet sweep) leaves up to three
//! correlated artifacts behind: the `obs-summary.json` registry-and-
//! profile freeze (`--obs-out`), the Chrome-trace span timeline
//! (`--span-out`), and the structured NDJSON log stream (`--log-json`).
//! Each carries the trace ids minted at admission
//! ([`crate::span::mint_trace_id`]) — profiles in their `trace` field,
//! span events in `args.trace`, log lines in a `trace_id` field. This
//! module joins them back into one story per trace: which tenant asked,
//! which scheme ran, how long each lifecycle stage took, what was
//! logged, and which resource bounded the request.
//!
//! The analyzer is pure and deterministic — same input files, byte-
//! identical `insight.json` — and entirely offline: it parses the
//! artifacts with its own minimal JSON reader (the workspace's serde
//! stubs rule out `serde_json` for free-form documents) and never
//! touches a live endpoint.

use std::collections::{BTreeMap, BTreeSet};

/// Schema version stamped into every `insight.json`.
pub const FORMAT_VERSION: u32 = 1;

// ---------------------------------------------------------------------------
// Minimal JSON value parser.
// ---------------------------------------------------------------------------

/// A parsed JSON value, just enough for the artifact formats above.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, kept as `f64`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member `key` of an object, if this is an object that has it.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parses one JSON document.
///
/// # Errors
/// Returns a position-annotated message on malformed input.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing bytes at offset {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key = match parse_value(bytes, pos)? {
                    Json::Str(s) => s,
                    other => return Err(format!("object key must be a string, got {other:?}")),
                };
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at offset {pos}"));
                }
                *pos += 1;
                members.push((key, parse_value(bytes, pos)?));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(format!("expected ',' or '}}' at offset {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at offset {pos}")),
                }
            }
        }
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b't') => parse_literal(bytes, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false").map(|()| Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null").map(|()| Json::Null),
        Some(_) => parse_number(bytes, pos),
        None => Err("unexpected end of input".to_string()),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected '{lit}' at offset {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("malformed number at offset {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes.get(*pos), Some(&b'"'));
    *pos += 1;
    let mut out = String::new();
    let mut buf = Vec::new();
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'"' => {
                *pos += 1;
                out.push_str(
                    std::str::from_utf8(&buf).map_err(|_| "invalid UTF-8 in string".to_string())?,
                );
                return Ok(out);
            }
            b'\\' => {
                out.push_str(
                    std::str::from_utf8(&buf).map_err(|_| "invalid UTF-8 in string".to_string())?,
                );
                buf.clear();
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at offset {pos}"))?;
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at offset {pos}")),
                }
                *pos += 1;
            }
            _ => {
                buf.push(b);
                *pos += 1;
            }
        }
    }
    Err("unterminated string".to_string())
}

// ---------------------------------------------------------------------------
// The cross-signal join.
// ---------------------------------------------------------------------------

/// The artifact texts to analyze; any subset may be present.
#[derive(Debug, Clone, Default)]
pub struct InsightInputs {
    /// `obs-summary.json` contents (`--obs-out`).
    pub obs_summary: Option<String>,
    /// Chrome-trace span timeline contents (`--span-out`).
    pub spans: Option<String>,
    /// NDJSON structured-log contents (`--log-json` stderr capture or
    /// a `GET /logs` body).
    pub logs: Option<String>,
}

/// Everything known about one trace id after the join.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceStory {
    /// The trace id.
    pub trace: String,
    /// Content keys of the jobs/plans that ran under this trace.
    pub keys: BTreeSet<String>,
    /// Tenant, when a log line names one.
    pub tenant: Option<String>,
    /// Drain schemes the trace's jobs ran.
    pub schemes: BTreeSet<String>,
    /// Profiled jobs under this trace.
    pub jobs: u64,
    /// How many of those were answered from the result cache.
    pub cached_jobs: u64,
    /// Summed job wall-clock seconds from the profiles.
    pub wall_seconds: f64,
    /// Summed job CPU seconds from the profiles (where `/proc` gave one).
    pub cpu_seconds: f64,
    /// Seconds spent in each lifecycle stage, summed over the trace's
    /// span events.
    pub stage_seconds: BTreeMap<String, f64>,
    /// Structured-log lines carrying this trace id.
    pub log_lines: u64,
    /// Present in the profile signal (`obs-summary.json`).
    pub in_profiles: bool,
    /// Present in the span signal (`--span-out`).
    pub in_spans: bool,
    /// Present in the log signal (`--log-json`).
    pub in_logs: bool,
}

impl TraceStory {
    /// Queued-to-committed seconds from the span stages (the four
    /// inter-stage gaps; the `committed` instant contributes nothing).
    #[must_use]
    pub fn end_to_end_seconds(&self) -> f64 {
        self.stage_seconds.values().sum()
    }

    /// True when the trace appears in every signal that was provided.
    #[must_use]
    pub fn joined(&self, have_profiles: bool, have_spans: bool, have_logs: bool) -> bool {
        (!have_profiles || self.in_profiles)
            && (!have_spans || self.in_spans)
            && (!have_logs || self.in_logs)
    }

    /// The lifecycle stage this trace spent the most time in, with a
    /// CPU-vs-wall verdict when execution dominates — the "bounding
    /// resource" line of the report.
    #[must_use]
    pub fn bounding_resource(&self) -> String {
        let Some((stage, secs)) = self
            .stage_seconds
            .iter()
            .max_by(|a, b| a.1.total_cmp(b.1).then_with(|| b.0.cmp(a.0)))
        else {
            return "unknown (no span)".to_string();
        };
        if stage == "executing" && self.wall_seconds > 0.0 {
            let ratio = self.cpu_seconds / self.wall_seconds;
            if ratio >= 0.5 {
                return format!("executing ({secs:.4}s, cpu-bound: {ratio:.2} cpu/wall)");
            }
            return format!("executing ({secs:.4}s, {ratio:.2} cpu/wall)");
        }
        format!("{stage} ({secs:.4}s)")
    }
}

/// Governor accounting for one tenant, read from the frozen registry.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TenantGovernor {
    /// Submissions received.
    pub submitted: u64,
    /// Submissions admitted.
    pub admitted: u64,
    /// Submissions shed with 429.
    pub shed: u64,
}

/// The analyzer's output: per-trace stories plus run-level accounting.
#[derive(Debug, Clone, Default)]
pub struct Insight {
    /// One story per trace id.
    pub stories: BTreeMap<String, TraceStory>,
    /// Which signals were provided at all.
    pub have_profiles: bool,
    /// True when a span artifact was provided.
    pub have_spans: bool,
    /// True when a log artifact was provided.
    pub have_logs: bool,
    /// Profiled jobs with no trace id (batch runs without correlation).
    pub untraced_profiles: u64,
    /// Span events with no trace id.
    pub untraced_spans: u64,
    /// Log lines with no trace id.
    pub untraced_logs: u64,
    /// Governor counters per tenant, from the registry freeze.
    pub governor: BTreeMap<String, TenantGovernor>,
    /// Shed warnings counted in the log stream, per tenant.
    pub shed_logged: BTreeMap<String, u64>,
}

impl Insight {
    /// Traces appearing in every provided signal.
    #[must_use]
    pub fn joined_traces(&self) -> u64 {
        self.stories
            .values()
            .filter(|s| s.joined(self.have_profiles, self.have_spans, self.have_logs))
            .count() as u64
    }

    /// Fraction of traces that joined across every provided signal
    /// (1.0 when no traces were seen at all).
    #[must_use]
    pub fn coverage(&self) -> f64 {
        if self.stories.is_empty() {
            return 1.0;
        }
        self.joined_traces() as f64 / self.stories.len() as f64
    }

    /// Traces seen in spans but in no other provided signal: a span
    /// that tells a story nothing else corroborates.
    #[must_use]
    pub fn orphan_spans(&self) -> Vec<&str> {
        self.stories
            .values()
            .filter(|s| s.in_spans && !s.in_profiles && !s.in_logs)
            .map(|s| s.trace.as_str())
            .collect()
    }

    /// Traces seen in logs but in no other provided signal.
    #[must_use]
    pub fn orphan_logs(&self) -> Vec<&str> {
        self.stories
            .values()
            .filter(|s| s.in_logs && !s.in_profiles && !s.in_spans)
            .map(|s| s.trace.as_str())
            .collect()
    }

    /// The `top` slowest traces by span end-to-end time (profile wall
    /// time as the tiebreak and the fallback for span-less traces),
    /// slowest first, ties broken by trace id for determinism.
    #[must_use]
    pub fn slowest(&self, top: usize) -> Vec<&TraceStory> {
        let mut ordered: Vec<&TraceStory> = self.stories.values().collect();
        ordered.sort_by(|a, b| {
            let ka = (a.end_to_end_seconds(), a.wall_seconds);
            let kb = (b.end_to_end_seconds(), b.wall_seconds);
            kb.0.total_cmp(&ka.0)
                .then(kb.1.total_cmp(&ka.1))
                .then_with(|| a.trace.cmp(&b.trace))
        });
        ordered.truncate(top);
        ordered
    }

    /// Per-scheme stage-time breakdown: scheme → stage → summed seconds
    /// over every trace that ran that scheme.
    #[must_use]
    pub fn scheme_stage_breakdown(&self) -> BTreeMap<String, BTreeMap<String, f64>> {
        let mut out: BTreeMap<String, BTreeMap<String, f64>> = BTreeMap::new();
        for story in self.stories.values() {
            for scheme in &story.schemes {
                let per_stage = out.entry(scheme.clone()).or_default();
                for (stage, secs) in &story.stage_seconds {
                    *per_stage.entry(stage.clone()).or_insert(0.0) += secs;
                }
            }
        }
        out
    }

    /// Per-tenant stage-time breakdown, for traces whose logs named a
    /// tenant.
    #[must_use]
    pub fn tenant_stage_breakdown(&self) -> BTreeMap<String, BTreeMap<String, f64>> {
        let mut out: BTreeMap<String, BTreeMap<String, f64>> = BTreeMap::new();
        for story in self.stories.values() {
            let Some(tenant) = &story.tenant else {
                continue;
            };
            let per_stage = out.entry(tenant.clone()).or_default();
            for (stage, secs) in &story.stage_seconds {
                *per_stage.entry(stage.clone()).or_insert(0.0) += secs;
            }
        }
        out
    }

    /// Stage-time outliers: traces whose time in some stage exceeds
    /// three times the median of that stage across all traces (and at
    /// least a millisecond, so sub-noise runs don't flag everything).
    /// Returned as deterministic `(trace, stage, seconds, median)` rows.
    #[must_use]
    pub fn stage_outliers(&self) -> Vec<(String, String, f64, f64)> {
        let mut by_stage: BTreeMap<&str, Vec<f64>> = BTreeMap::new();
        for story in self.stories.values() {
            for (stage, secs) in &story.stage_seconds {
                by_stage.entry(stage.as_str()).or_default().push(*secs);
            }
        }
        let medians: BTreeMap<&str, f64> = by_stage
            .into_iter()
            .map(|(stage, mut vals)| {
                vals.sort_by(f64::total_cmp);
                (stage, vals[vals.len() / 2])
            })
            .collect();
        let mut out = Vec::new();
        for story in self.stories.values() {
            for (stage, secs) in &story.stage_seconds {
                let median = medians.get(stage.as_str()).copied().unwrap_or(0.0);
                if *secs > (3.0 * median).max(1e-3) {
                    out.push((story.trace.clone(), stage.clone(), *secs, median));
                }
            }
        }
        out
    }

    /// Renders the deterministic `insight.json` document.
    #[must_use]
    pub fn to_json(&self, top: usize) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"format_version\": {FORMAT_VERSION},\n"));
        out.push_str(&format!(
            "  \"join\": {{\"traces\": {}, \"joined\": {}, \"coverage\": {}, \
             \"orphan_spans\": {}, \"orphan_logs\": {}, \"untraced_profiles\": {}, \
             \"untraced_spans\": {}, \"untraced_logs\": {}}},\n",
            self.stories.len(),
            self.joined_traces(),
            fmt_f64(self.coverage()),
            str_array(&self.orphan_spans()),
            str_array(&self.orphan_logs()),
            self.untraced_profiles,
            self.untraced_spans,
            self.untraced_logs,
        ));
        out.push_str("  \"governor\": [");
        for (i, (tenant, g)) in self.governor.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let logged = self.shed_logged.get(tenant).copied().unwrap_or(0);
            out.push_str(&format!(
                "\n    {{\"tenant\": {}, \"submitted\": {}, \"admitted\": {}, \"shed\": {}, \
                 \"shed_logged\": {}, \"reconciled\": {}}}",
                json_str(tenant),
                g.submitted,
                g.admitted,
                g.shed,
                logged,
                g.submitted == g.admitted + g.shed && g.shed == logged,
            ));
        }
        out.push_str(if self.governor.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        out.push_str("  \"slowest\": [");
        let slowest = self.slowest(top);
        for (i, story) in slowest.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            push_story(&mut out, story);
        }
        out.push_str(if slowest.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        out.push_str("  \"traces\": [");
        for (i, story) in self.stories.values().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            push_story(&mut out, story);
        }
        out.push_str(if self.stories.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        out.push_str("  \"anomalies\": [");
        let outliers = self.stage_outliers();
        for (i, (trace, stage, secs, median)) in outliers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"trace\": {}, \"stage\": {}, \"seconds\": {}, \"stage_median\": {}}}",
                json_str(trace),
                json_str(stage),
                fmt_f64(*secs),
                fmt_f64(*median),
            ));
        }
        out.push_str(if outliers.is_empty() {
            "]\n"
        } else {
            "\n  ]\n"
        });
        out.push_str("}\n");
        out
    }

    /// Renders the human report.
    #[must_use]
    pub fn human_report(&self, top: usize) -> String {
        let mut out = String::new();
        out.push_str("horus insight\n=============\n\n");
        out.push_str(&format!(
            "signals: profiles={} spans={} logs={}\n",
            self.have_profiles, self.have_spans, self.have_logs
        ));
        out.push_str(&format!(
            "traces: {} total, {} joined across all provided signals ({:.1}% coverage)\n",
            self.stories.len(),
            self.joined_traces(),
            self.coverage() * 100.0
        ));
        out.push_str(&format!(
            "untraced: {} profiles, {} span events, {} log lines\n",
            self.untraced_profiles, self.untraced_spans, self.untraced_logs
        ));
        let orphans = self.orphan_spans();
        if orphans.is_empty() {
            out.push_str("orphan spans: none\n");
        } else {
            out.push_str(&format!("orphan spans: {}\n", orphans.join(", ")));
        }
        let log_orphans = self.orphan_logs();
        if !log_orphans.is_empty() {
            out.push_str(&format!("orphan logs: {}\n", log_orphans.join(", ")));
        }

        if !self.governor.is_empty() {
            out.push_str("\nshed/admission accounting\n-------------------------\n");
            for (tenant, g) in &self.governor {
                let logged = self.shed_logged.get(tenant).copied().unwrap_or(0);
                let verdict = if g.submitted == g.admitted + g.shed && g.shed == logged {
                    "reconciled"
                } else {
                    "MISMATCH"
                };
                out.push_str(&format!(
                    "  {tenant}: submitted={} admitted={} shed={} shed-warns-logged={} [{verdict}]\n",
                    g.submitted, g.admitted, g.shed, logged
                ));
            }
        }

        let tenants = self.tenant_stage_breakdown();
        if !tenants.is_empty() {
            out.push_str("\nper-tenant stage seconds\n------------------------\n");
            for (tenant, stages) in &tenants {
                out.push_str(&format!("  {tenant}: {}\n", fmt_stages(stages)));
            }
        }
        let schemes = self.scheme_stage_breakdown();
        if !schemes.is_empty() {
            out.push_str("\nper-scheme stage seconds\n------------------------\n");
            for (scheme, stages) in &schemes {
                out.push_str(&format!("  {scheme}: {}\n", fmt_stages(stages)));
            }
        }

        out.push_str(&format!(
            "\ntop {top} slowest requests\n-----------------------\n"
        ));
        for story in self.slowest(top) {
            out.push_str(&format!(
                "  {} e2e={:.4}s jobs={} cached={} wall={:.4}s tenant={} schemes=[{}]\n",
                story.trace,
                story.end_to_end_seconds(),
                story.jobs,
                story.cached_jobs,
                story.wall_seconds,
                story.tenant.as_deref().unwrap_or("-"),
                story.schemes.iter().cloned().collect::<Vec<_>>().join(","),
            ));
            out.push_str(&format!(
                "    stages: {}\n",
                fmt_stages(&story.stage_seconds)
            ));
            out.push_str(&format!("    bounded by: {}\n", story.bounding_resource()));
            out.push_str(&format!(
                "    signals: profile={} span={} logs={} ({} lines)\n",
                story.in_profiles, story.in_spans, story.in_logs, story.log_lines
            ));
        }

        let outliers = self.stage_outliers();
        out.push_str("\nanomalies\n---------\n");
        if outliers.is_empty() {
            out.push_str("  none\n");
        } else {
            for (trace, stage, secs, median) in outliers {
                out.push_str(&format!(
                    "  {trace}: {stage} took {secs:.4}s vs stage median {median:.4}s\n"
                ));
            }
        }
        out
    }
}

fn fmt_stages(stages: &BTreeMap<String, f64>) -> String {
    // Lifecycle order, not alphabetical: the map keys are the stage
    // names from `crate::span::Stage::ALL`.
    let mut parts = Vec::new();
    for stage in crate::span::Stage::ALL {
        if let Some(secs) = stages.get(stage.as_str()) {
            parts.push(format!("{}={secs:.4}s", stage.as_str()));
        }
    }
    for (stage, secs) in stages {
        if crate::span::Stage::ALL.iter().all(|s| s.as_str() != stage) {
            parts.push(format!("{stage}={secs:.4}s"));
        }
    }
    parts.join(" ")
}

fn push_story(out: &mut String, story: &TraceStory) {
    out.push_str(&format!(
        "{{\"trace\": {}, \"tenant\": {}, \"keys\": {}, \"schemes\": {}, \
         \"jobs\": {}, \"cached_jobs\": {}, \"wall_seconds\": {}, \"cpu_seconds\": {}, \
         \"end_to_end_seconds\": {}, \"stages\": {{",
        json_str(&story.trace),
        story.tenant.as_deref().map_or("null".to_string(), json_str),
        str_array(&story.keys.iter().map(String::as_str).collect::<Vec<_>>()),
        str_array(&story.schemes.iter().map(String::as_str).collect::<Vec<_>>()),
        story.jobs,
        story.cached_jobs,
        fmt_f64(story.wall_seconds),
        fmt_f64(story.cpu_seconds),
        fmt_f64(story.end_to_end_seconds()),
    ));
    for (i, (stage, secs)) in story.stage_seconds.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("{}: {}", json_str(stage), fmt_f64(*secs)));
    }
    out.push_str(&format!(
        "}}, \"log_lines\": {}, \"in_profiles\": {}, \"in_spans\": {}, \"in_logs\": {}, \
         \"bounded_by\": {}}}",
        story.log_lines,
        story.in_profiles,
        story.in_spans,
        story.in_logs,
        json_str(&story.bounding_resource()),
    ));
}

fn str_array(items: &[&str]) -> String {
    let mut out = String::from("[");
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&json_str(item));
    }
    out.push(']');
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Joins the provided artifacts into an [`Insight`].
///
/// # Errors
/// Returns a descriptive message when a provided artifact fails to
/// parse (a missing artifact is fine — pass `None`).
pub fn analyze(inputs: &InsightInputs) -> Result<Insight, String> {
    let mut insight = Insight::default();

    if let Some(text) = &inputs.obs_summary {
        insight.have_profiles = true;
        let doc = parse_json(text).map_err(|e| format!("obs-summary: {e}"))?;
        for job in doc.get("jobs").and_then(Json::as_arr).unwrap_or(&[]) {
            let Some(trace) = job.get("trace").and_then(Json::as_str) else {
                insight.untraced_profiles += 1;
                continue;
            };
            let story = story_mut(&mut insight.stories, trace);
            story.in_profiles = true;
            story.jobs += 1;
            if job.get("cached").and_then(Json::as_bool) == Some(true) {
                story.cached_jobs += 1;
            }
            story.wall_seconds += job
                .get("wall_seconds")
                .and_then(Json::as_f64)
                .unwrap_or(0.0);
            story.cpu_seconds += job.get("cpu_seconds").and_then(Json::as_f64).unwrap_or(0.0);
            if let Some(key) = job.get("label").and_then(Json::as_str) {
                story.keys.insert(key.to_string());
            }
            if let Some(scheme) = job.get("scheme").and_then(Json::as_str) {
                story.schemes.insert(scheme.to_string());
            }
        }
        read_governor(&doc, &mut insight.governor);
    }

    if let Some(text) = &inputs.spans {
        insight.have_spans = true;
        let doc = parse_json(text).map_err(|e| format!("span timeline: {e}"))?;
        for event in doc.get("traceEvents").and_then(Json::as_arr).unwrap_or(&[]) {
            if event.get("ph").and_then(Json::as_str) != Some("X") {
                continue;
            }
            let args = event.get("args");
            let trace = args.and_then(|a| a.get("trace")).and_then(Json::as_str);
            let Some(trace) = trace else {
                insight.untraced_spans += 1;
                continue;
            };
            let story = story_mut(&mut insight.stories, trace);
            story.in_spans = true;
            if let Some(stage) = event.get("name").and_then(Json::as_str) {
                let dur_us = event.get("dur").and_then(Json::as_f64).unwrap_or(0.0);
                *story.stage_seconds.entry(stage.to_string()).or_insert(0.0) += dur_us / 1e6;
            }
            if let Some(key) = args.and_then(|a| a.get("key")).and_then(Json::as_str) {
                story.keys.insert(key.to_string());
            }
        }
    }

    if let Some(text) = &inputs.logs {
        insight.have_logs = true;
        for line in text.lines().filter(|l| !l.trim().is_empty()) {
            // One malformed line (an interleaved plain-stderr write)
            // must not sink the analysis; skip it as untraced.
            let Ok(doc) = parse_json(line) else {
                insight.untraced_logs += 1;
                continue;
            };
            let fields = doc.get("fields");
            let tenant = fields
                .and_then(|f| f.get("tenant"))
                .and_then(Json::as_str)
                .map(str::to_string);
            if doc.get("msg").and_then(Json::as_str) == Some("submission shed") {
                if let Some(tenant) = &tenant {
                    *insight.shed_logged.entry(tenant.clone()).or_insert(0) += 1;
                }
            }
            let trace = fields
                .and_then(|f| f.get("trace_id"))
                .and_then(Json::as_str);
            let Some(trace) = trace else {
                insight.untraced_logs += 1;
                continue;
            };
            let story = story_mut(&mut insight.stories, trace);
            story.in_logs = true;
            story.log_lines += 1;
            if story.tenant.is_none() {
                story.tenant = tenant;
            }
        }
    }

    Ok(insight)
}

fn story_mut<'a>(stories: &'a mut BTreeMap<String, TraceStory>, trace: &str) -> &'a mut TraceStory {
    stories
        .entry(trace.to_string())
        .or_insert_with(|| TraceStory {
            trace: trace.to_string(),
            ..TraceStory::default()
        })
}

fn read_governor(doc: &Json, governor: &mut BTreeMap<String, TenantGovernor>) {
    for sample in doc.get("metrics").and_then(Json::as_arr).unwrap_or(&[]) {
        let Some(name) = sample.get("name").and_then(Json::as_str) else {
            continue;
        };
        let Some(tenant) = sample
            .get("labels")
            .and_then(|l| l.get("tenant"))
            .and_then(Json::as_str)
        else {
            continue;
        };
        let value = sample.get("value").and_then(Json::as_f64).unwrap_or(0.0) as u64;
        let entry = governor.entry(tenant.to_string()).or_default();
        match name {
            crate::names::SERVICE_SUBMITTED => entry.submitted = value,
            crate::names::SERVICE_ADMITTED => entry.admitted = value,
            crate::names::SERVICE_SHED => entry.shed = value,
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_parser_round_trips_the_shapes_we_read() {
        let doc = parse_json(
            "{\"a\": [1, 2.5, -3e2], \"b\": {\"c\": \"x\\\"y\\u0041\", \"d\": null}, \
             \"e\": true, \"f\": false}",
        )
        .expect("parse");
        assert_eq!(
            doc.get("a").and_then(Json::as_arr).map(<[Json]>::len),
            Some(3)
        );
        assert_eq!(
            doc.get("a").unwrap().as_arr().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(
            doc.get("b").and_then(|b| b.get("c")).and_then(Json::as_str),
            Some("x\"yA")
        );
        assert_eq!(doc.get("b").and_then(|b| b.get("d")), Some(&Json::Null));
        assert_eq!(doc.get("e").and_then(Json::as_bool), Some(true));
        assert!(parse_json("{\"unterminated\": ").is_err());
        assert!(parse_json("{} trailing").is_err());
    }

    fn sample_inputs() -> InsightInputs {
        let obs = r#"{
  "format_version": 1,
  "host": {"wall_seconds": 2.0, "cpu_seconds": 1.0, "peak_rss_bytes": null, "allocations": null, "allocated_bytes": null},
  "jobs": [
    {"label": "key-a", "scheme": "Horus", "trace": "aaaa000000000001", "cached": false, "wall_seconds": 0.2, "cpu_seconds": 0.18, "allocations": null, "allocated_bytes": null},
    {"label": "key-b", "scheme": "WBF", "trace": "bbbb000000000002", "cached": true, "wall_seconds": 0.01, "cpu_seconds": 0.0, "allocations": null, "allocated_bytes": null},
    {"label": "key-c", "scheme": null, "trace": null, "cached": false, "wall_seconds": 0.1, "cpu_seconds": null, "allocations": null, "allocated_bytes": null}
  ],
  "metrics": [
    {"name": "horus_service_jobs_submitted_total", "labels": {"tenant": "team-a"}, "value": 3},
    {"name": "horus_service_jobs_admitted_total", "labels": {"tenant": "team-a"}, "value": 2},
    {"name": "horus_service_jobs_shed_total", "labels": {"tenant": "team-a"}, "value": 1}
  ]
}"#;
        let spans = concat!(
            "{\"traceEvents\":[",
            "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"thread_name\",\"args\":{\"name\":\"w\"}},",
            "{\"ph\":\"X\",\"pid\":0,\"tid\":0,\"ts\":0,\"dur\":1000,\"name\":\"queued\",\"args\":{\"plan\":1,\"job\":0,\"key\":\"key-a\",\"trace\":\"aaaa000000000001\"}},",
            "{\"ph\":\"X\",\"pid\":0,\"tid\":0,\"ts\":1000,\"dur\":200000,\"name\":\"executing\",\"args\":{\"plan\":1,\"job\":0,\"key\":\"key-a\",\"trace\":\"aaaa000000000001\"}},",
            "{\"ph\":\"X\",\"pid\":0,\"tid\":0,\"ts\":0,\"dur\":500,\"name\":\"queued\",\"args\":{\"plan\":2,\"job\":0,\"key\":\"key-b\",\"trace\":\"bbbb000000000002\"}},",
            "{\"ph\":\"X\",\"pid\":0,\"tid\":0,\"ts\":0,\"dur\":10,\"name\":\"queued\",\"args\":{\"plan\":3,\"job\":0,\"key\":\"key-z\"}}",
            "],\"displayTimeUnit\":\"ns\"}"
        )
        .to_string();
        let logs = concat!(
            "{\"ts_ms\":1,\"seq\":0,\"level\":\"info\",\"target\":\"service\",\"msg\":\"submission admitted\",\"fields\":{\"tenant\":\"team-a\",\"trace_id\":\"aaaa000000000001\"}}\n",
            "{\"ts_ms\":2,\"seq\":1,\"level\":\"info\",\"target\":\"service\",\"msg\":\"plan committed\",\"fields\":{\"tenant\":\"team-a\",\"trace_id\":\"aaaa000000000001\"}}\n",
            "{\"ts_ms\":3,\"seq\":2,\"level\":\"info\",\"target\":\"service\",\"msg\":\"submission admitted\",\"fields\":{\"tenant\":\"team-b\",\"trace_id\":\"bbbb000000000002\"}}\n",
            "{\"ts_ms\":4,\"seq\":3,\"level\":\"warn\",\"target\":\"service\",\"msg\":\"submission shed\",\"fields\":{\"tenant\":\"team-a\"}}\n",
            "not json at all\n",
        )
        .to_string();
        InsightInputs {
            obs_summary: Some(obs.to_string()),
            spans: Some(spans),
            logs: Some(logs),
        }
    }

    #[test]
    fn joins_all_three_signals_per_trace() {
        let insight = analyze(&sample_inputs()).expect("analyze");
        assert_eq!(insight.stories.len(), 2);
        assert_eq!(insight.joined_traces(), 2);
        assert!((insight.coverage() - 1.0).abs() < 1e-12);
        assert_eq!(insight.untraced_profiles, 1);
        assert_eq!(insight.untraced_spans, 1, "span without args.trace");
        assert_eq!(insight.untraced_logs, 2, "shed warn + malformed line");
        assert!(insight.orphan_spans().is_empty());

        let a = &insight.stories["aaaa000000000001"];
        assert_eq!(a.tenant.as_deref(), Some("team-a"));
        assert!(a.keys.contains("key-a"));
        assert_eq!(a.jobs, 1);
        assert_eq!(a.log_lines, 2);
        assert!((a.stage_seconds["executing"] - 0.2).abs() < 1e-12);
        assert!((a.end_to_end_seconds() - 0.201).abs() < 1e-12);
        assert!(
            a.bounding_resource().starts_with("executing"),
            "{}",
            a.bounding_resource()
        );
        assert!(
            a.bounding_resource().contains("cpu-bound"),
            "0.18 cpu over 0.2 wall: {}",
            a.bounding_resource()
        );

        let slowest = insight.slowest(1);
        assert_eq!(slowest[0].trace, "aaaa000000000001");

        let gov = &insight.governor["team-a"];
        assert_eq!((gov.submitted, gov.admitted, gov.shed), (3, 2, 1));
        assert_eq!(insight.shed_logged.get("team-a"), Some(&1));
    }

    #[test]
    fn insight_json_is_deterministic_and_self_describing() {
        let insight = analyze(&sample_inputs()).expect("analyze");
        let json = insight.to_json(5);
        assert_eq!(json, analyze(&sample_inputs()).expect("analyze").to_json(5));
        // The document itself parses under our own reader.
        let doc = parse_json(&json).expect("insight.json parses");
        assert_eq!(
            doc.get("join")
                .and_then(|j| j.get("coverage"))
                .and_then(Json::as_f64),
            Some(1.0)
        );
        assert_eq!(
            doc.get("traces").and_then(Json::as_arr).map(<[Json]>::len),
            Some(2)
        );
        let gov = &doc
            .get("governor")
            .and_then(Json::as_arr)
            .expect("governor")[0];
        assert_eq!(gov.get("reconciled").and_then(Json::as_bool), Some(true));

        let report = insight.human_report(3);
        assert!(report.contains("2 joined across all provided signals (100.0% coverage)"));
        assert!(report.contains("orphan spans: none"));
        assert!(report.contains("bounded by: executing"));
        assert!(report
            .contains("team-a: submitted=3 admitted=2 shed=1 shed-warns-logged=1 [reconciled]"));
    }

    #[test]
    fn orphans_and_partial_signals_are_reported() {
        // A span-only trace with no profile or log is an orphan span.
        let inputs = InsightInputs {
            obs_summary: None,
            spans: Some(
                "{\"traceEvents\":[{\"ph\":\"X\",\"pid\":0,\"tid\":0,\"ts\":0,\"dur\":5,\
                 \"name\":\"queued\",\"args\":{\"plan\":1,\"job\":0,\"key\":\"k\",\
                 \"trace\":\"feedfacefeedface\"}}],\"displayTimeUnit\":\"ns\"}"
                    .to_string(),
            ),
            logs: Some(String::new()),
        };
        let insight = analyze(&inputs).expect("analyze");
        assert_eq!(insight.orphan_spans(), vec!["feedfacefeedface"]);
        assert_eq!(insight.joined_traces(), 0, "logs were provided but empty");
        assert!(!insight.have_profiles);
        let json = insight.to_json(3);
        assert!(
            json.contains("\"orphan_spans\": [\"feedfacefeedface\"]"),
            "{json}"
        );
    }
}
