//! End-of-run `obs-summary.json` artifact.
//!
//! The summary freezes everything the scrape endpoint could have told you,
//! plus the per-job host profiles: a [`HostProfile`] for the whole process,
//! every [`JobProfile`], and the full registry [`Snapshot`]. CI uploads it;
//! `bench-gate` carries the host-profile numbers in its own snapshot format
//! so they become diffable against a committed baseline.
//!
//! The encoder is hand-rolled (this workspace's serde stubs make
//! `serde_json` unsuitable for structured output) and deterministic: keys
//! are emitted in a fixed order and registry samples arrive pre-sorted from
//! [`crate::registry::Registry::snapshot`]. Optional fields serialize as
//! `null` so the schema is stable whether or not `/proc` and
//! `alloc-profile` are available.

use crate::profile::{HostProfile, JobProfile};
use crate::registry::{SampleValue, Snapshot};

/// Schema version stamped into every summary.
pub const FORMAT_VERSION: u32 = 1;

/// Everything written to `obs-summary.json`.
#[derive(Debug, Clone)]
pub struct ObsSummary {
    /// Whole-process resource usage.
    pub host: HostProfile,
    /// Per-job profiles in completion-record order.
    pub jobs: Vec<JobProfile>,
    /// Frozen registry contents.
    pub registry: Snapshot,
}

impl ObsSummary {
    /// Renders the summary as a deterministic JSON document.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"format_version\": {FORMAT_VERSION},\n"));
        out.push_str("  \"host\": ");
        push_host(&mut out, &self.host);
        out.push_str(",\n  \"jobs\": [");
        for (i, job) in self.jobs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            push_job(&mut out, job);
        }
        if self.jobs.is_empty() {
            out.push_str("],\n");
        } else {
            out.push_str("\n  ],\n");
        }
        out.push_str("  \"metrics\": [");
        for (i, sample) in self.registry.samples.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            push_sample(&mut out, sample);
        }
        if self.registry.samples.is_empty() {
            out.push_str("]\n");
        } else {
            out.push_str("\n  ]\n");
        }
        out.push_str("}\n");
        out
    }

    /// Writes the summary to `path` (atomically via a sibling tmp file).
    ///
    /// # Errors
    /// Returns the underlying I/O error on failure.
    pub fn write(&self, path: &std::path::Path) -> std::io::Result<()> {
        let tmp = path.with_extension("json.tmp");
        std::fs::write(&tmp, self.to_json())?;
        std::fs::rename(&tmp, path)
    }
}

fn push_host(out: &mut String, host: &HostProfile) {
    out.push('{');
    out.push_str(&format!(
        "\"wall_seconds\": {}, \"cpu_seconds\": {}, \"peak_rss_bytes\": {}, \"allocations\": {}, \"allocated_bytes\": {}",
        json_f64(host.wall_seconds),
        opt_f64(host.cpu_seconds),
        opt_u64(host.peak_rss_bytes),
        opt_u64(host.allocations),
        opt_u64(host.allocated_bytes),
    ));
    out.push('}');
}

fn push_job(out: &mut String, job: &JobProfile) {
    out.push('{');
    out.push_str(&format!("\"label\": {}", json_str(&job.label)));
    out.push_str(&format!(
        ", \"scheme\": {}",
        job.scheme.as_deref().map_or("null".to_string(), json_str)
    ));
    out.push_str(&format!(
        ", \"trace\": {}",
        job.trace.as_deref().map_or("null".to_string(), json_str)
    ));
    out.push_str(&format!(", \"cached\": {}", job.cached));
    out.push_str(&format!(
        ", \"wall_seconds\": {}, \"cpu_seconds\": {}, \"allocations\": {}, \"allocated_bytes\": {}",
        json_f64(job.wall_seconds),
        opt_f64(job.cpu_seconds),
        opt_u64(job.allocations),
        opt_u64(job.allocated_bytes),
    ));
    out.push('}');
}

fn push_sample(out: &mut String, sample: &crate::registry::Sample) {
    out.push('{');
    out.push_str(&format!("\"name\": {}", json_str(&sample.name)));
    out.push_str(", \"labels\": {");
    for (i, (k, v)) in sample.labels.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("{}: {}", json_str(k), json_str(v)));
    }
    out.push('}');
    match &sample.value {
        SampleValue::Uint(v) => out.push_str(&format!(", \"value\": {v}")),
        SampleValue::Int(v) => out.push_str(&format!(", \"value\": {v}")),
        SampleValue::Float(v) => out.push_str(&format!(", \"value\": {}", json_f64(*v))),
        SampleValue::Histogram(h) => {
            out.push_str(&format!(", \"count\": {}, \"sum\": {}", h.count, h.sum));
            out.push_str(", \"buckets\": [");
            for (i, b) in h.buckets.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&b.to_string());
            }
            out.push(']');
        }
        SampleValue::TimeHistogram(h) => {
            // Duration histograms bucket microseconds; the summary
            // reports the sum in seconds to match the `_seconds` family
            // name. Bucket counts stay raw (bound of bucket `i` is
            // `2^i / 1e6` seconds).
            out.push_str(&format!(
                ", \"count\": {}, \"sum\": {}",
                h.count,
                json_f64(h.seconds_sum())
            ));
            out.push_str(", \"buckets\": [");
            for (i, b) in h.buckets.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&b.to_string());
            }
            out.push(']');
        }
    }
    out.push('}');
}

/// Encodes a string as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Encodes an `f64` as a JSON number (`null` for non-finite values, which
/// JSON cannot represent).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn opt_f64(v: Option<f64>) -> String {
    v.map_or("null".to_string(), json_f64)
}

fn opt_u64(v: Option<u64>) -> String {
    v.map_or("null".to_string(), |v| v.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn sample_summary() -> ObsSummary {
        let registry = Registry::new();
        registry
            .counter("jobs_total", "h", &[("scheme", "Horus")])
            .add(5);
        registry.histogram("lat", "h", &[]).observe(3);
        registry
            .time_histogram("stage_seconds", "h", &[])
            .observe_seconds(0.5);
        ObsSummary {
            host: HostProfile {
                wall_seconds: 1.5,
                cpu_seconds: Some(0.75),
                peak_rss_bytes: Some(1024),
                allocations: None,
                allocated_bytes: None,
            },
            jobs: vec![JobProfile {
                label: "abc123".to_string(),
                scheme: Some("Horus".to_string()),
                trace: Some("9f8a6c2d01b4e37f".to_string()),
                cached: true,
                wall_seconds: 0.25,
                cpu_seconds: None,
                allocations: None,
                allocated_bytes: None,
            }],
            registry: registry.snapshot(),
        }
    }

    #[test]
    fn summary_json_shape() {
        let json = sample_summary().to_json();
        assert!(json.starts_with("{\n  \"format_version\": 1,\n"));
        assert!(json.contains("\"wall_seconds\": 1.5"));
        assert!(json.contains("\"cpu_seconds\": 0.75"));
        assert!(json.contains("\"allocations\": null"));
        assert!(json.contains("\"label\": \"abc123\""));
        assert!(json.contains("\"trace\": \"9f8a6c2d01b4e37f\""));
        assert!(json.contains("\"cached\": true"));
        assert!(json.contains("\"name\": \"jobs_total\""));
        assert!(json.contains("\"scheme\": \"Horus\""));
        assert!(json.contains("\"count\": 1, \"sum\": 3"));
        // The time histogram reports its sum in seconds, not micros.
        assert!(json.contains("\"name\": \"stage_seconds\""));
        assert!(json.contains("\"count\": 1, \"sum\": 0.5"));
        assert!(json.ends_with("}\n"));
    }

    #[test]
    fn summary_json_is_deterministic() {
        assert_eq!(sample_summary().to_json(), sample_summary().to_json());
    }

    #[test]
    fn json_string_escaping() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }
}
