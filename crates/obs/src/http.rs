//! Zero-dependency blocking HTTP listener for metric scrapes.
//!
//! [`MetricsServer::bind`] spawns one background thread that accepts
//! connections and answers `GET /metrics` with the current registry
//! rendered as Prometheus text ([`crate::expo::render`]). This is a scrape
//! endpoint, not a web server: requests are handled serially, bodies are
//! ignored, and anything but the known `GET` paths gets a 404.
//!
//! Besides `/metrics` the server answers the standard operational
//! probes — `GET /healthz` (always 200 while the listener is up) and
//! `GET /readyz` (200/503 from a caller-controlled readiness flag, see
//! [`MetricsServer::set_ready`]; the fleet coordinator clears it until
//! its accept loop is running) — and `GET /logs`, which serves the
//! process's structured-log ring ([`crate::log`]) as newline-delimited
//! JSON.
//!
//! Shutdown is cooperative: [`MetricsServer::shutdown`] (also run on drop)
//! sets a flag and pokes the listener with a loopback connection so the
//! blocking `accept` wakes up and the thread exits. Binding port 0 works
//! and [`MetricsServer::local_addr`] reports the picked port, which is what
//! the golden tests use.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::expo;
use crate::registry::Registry;

/// A running scrape endpoint; dropping it stops the listener thread.
pub struct MetricsServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    ready: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `127.0.0.1:9464`, port 0 for an OS-picked port)
    /// and starts serving scrapes of `registry` on a background thread.
    ///
    /// The server starts *ready* (a registry is attached by
    /// construction); callers whose readiness depends on more — the
    /// fleet coordinator's accept loop, say — clear and re-set the flag
    /// with [`MetricsServer::set_ready`].
    ///
    /// # Errors
    /// Returns the underlying I/O error if the address cannot be bound.
    pub fn bind(addr: &str, registry: Arc<Registry>) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let ready = Arc::new(AtomicBool::new(true));
        let flag = Arc::clone(&shutdown);
        let ready_flag = Arc::clone(&ready);
        let handle = std::thread::Builder::new()
            .name("horus-obs-http".to_string())
            .spawn(move || serve(&listener, &registry, &flag, &ready_flag))?;
        Ok(MetricsServer {
            addr: local,
            shutdown,
            ready,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves port 0 to the actual port).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Sets what `GET /readyz` answers: `true` → 200, `false` → 503.
    pub fn set_ready(&self, ready: bool) {
        self.ready.store(ready, Ordering::SeqCst);
    }

    /// Stops the listener thread and waits for it to exit.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if let Some(handle) = self.handle.take() {
            self.shutdown.store(true, Ordering::SeqCst);
            // Wake the blocking accept; an error just means the listener
            // already went away.
            let _ = TcpStream::connect(self.addr);
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn serve(
    listener: &TcpListener,
    registry: &Arc<Registry>,
    shutdown: &Arc<AtomicBool>,
    ready: &Arc<AtomicBool>,
) {
    for conn in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = conn else { continue };
        // Errors on individual connections (slow clients, resets) only
        // lose that one scrape.
        let _ = handle_request(stream, registry, ready);
    }
}

fn handle_request(
    stream: TcpStream,
    registry: &Arc<Registry>,
    ready: &Arc<AtomicBool>,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain the remaining headers so well-behaved clients see a clean
    // connection close; stop at the blank line.
    let mut header = String::new();
    loop {
        header.clear();
        if reader.read_line(&mut header)? == 0 || header == "\r\n" || header == "\n" {
            break;
        }
    }
    let mut stream = reader.into_inner();
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let response = if method != "GET" {
        http_response(
            "405 Method Not Allowed",
            "text/plain",
            "method not allowed\n",
        )
    } else if path == "/metrics" || path == "/" {
        let body = expo::render(&registry.snapshot());
        http_response("200 OK", "text/plain; version=0.0.4; charset=utf-8", &body)
    } else if path == "/healthz" {
        // The listener answered, so the process is alive.
        http_response("200 OK", "application/json", "{\"status\":\"ok\"}\n")
    } else if path == "/readyz" {
        if ready.load(Ordering::SeqCst) {
            http_response("200 OK", "application/json", "{\"ready\":true}\n")
        } else {
            http_response(
                "503 Service Unavailable",
                "application/json",
                "{\"ready\":false}\n",
            )
        }
    } else if path == "/logs" {
        let body = crate::log::ring_ndjson();
        http_response("200 OK", "application/x-ndjson", &body)
    } else {
        http_response(
            "404 Not Found",
            "text/plain",
            "try /metrics, /logs, /healthz, or /readyz\n",
        )
    };
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

fn http_response(status: &str, content_type: &str, body: &str) -> String {
    format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
}

/// Performs a plain HTTP `GET` against `addr` at `path` and returns
/// `(status_line, body)`. This is the client half of the scrape endpoint,
/// used by `serve-metrics`-adjacent tooling and the golden tests; it speaks
/// just enough HTTP/1.1 for [`MetricsServer`].
///
/// # Errors
/// Returns the underlying I/O error if the connection or read fails.
pub fn http_get(addr: SocketAddr, path: &str) -> std::io::Result<(String, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )?;
    stream.flush()?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let (head, body) = raw.split_once("\r\n\r\n").ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed response")
    })?;
    let status = head.lines().next().unwrap_or("").to_string();
    Ok((status, body.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serves_metrics_and_404() {
        let reg = Registry::shared();
        reg.counter("up_total", "Help.", &[]).add(2);
        let server = MetricsServer::bind("127.0.0.1:0", Arc::clone(&reg)).expect("bind");
        let addr = server.local_addr();

        let (status, body) = http_get(addr, "/metrics").expect("get");
        assert!(status.contains("200"), "status: {status}");
        assert!(body.contains("up_total 2\n"), "body: {body}");

        let (status, _) = http_get(addr, "/nope").expect("get");
        assert!(status.contains("404"), "status: {status}");

        // Scrapes see live values.
        reg.counter("up_total", "Help.", &[]).inc();
        let (_, body) = http_get(addr, "/metrics").expect("get");
        assert!(body.contains("up_total 3\n"), "body: {body}");

        server.shutdown();
    }

    #[test]
    fn health_ready_and_logs_endpoints() {
        let server = MetricsServer::bind("127.0.0.1:0", Registry::shared()).expect("bind");
        let addr = server.local_addr();

        let (status, body) = http_get(addr, "/healthz").expect("get");
        assert!(status.contains("200"), "status: {status}");
        assert_eq!(body, "{\"status\":\"ok\"}\n");

        // Ready by default (a registry is attached by construction).
        let (status, body) = http_get(addr, "/readyz").expect("get");
        assert!(status.contains("200"), "status: {status}");
        assert_eq!(body, "{\"ready\":true}\n");

        server.set_ready(false);
        let (status, body) = http_get(addr, "/readyz").expect("get");
        assert!(status.contains("503"), "status: {status}");
        assert_eq!(body, "{\"ready\":false}\n");
        server.set_ready(true);
        let (status, _) = http_get(addr, "/readyz").expect("get");
        assert!(status.contains("200"), "status: {status}");

        crate::log::info("http-test", "a log line for the ring", &[("k", "v")]);
        let (status, body) = http_get(addr, "/logs").expect("get");
        assert!(status.contains("200"), "status: {status}");
        assert!(body.contains("a log line for the ring"), "body: {body}");

        server.shutdown();
    }
}
