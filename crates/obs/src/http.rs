//! Zero-dependency blocking HTTP listener for metric scrapes and, via
//! [`Router`], whole services.
//!
//! [`MetricsServer::bind`] spawns one background accept thread; each
//! accepted connection is handled on its own short-lived thread so one
//! slow or malicious client can never wedge the scrape path for
//! everyone else. Requests are parsed into [`HttpRequest`] under hard
//! bounds — a read deadline (`408 Request Timeout` for clients that
//! stall mid-request, e.g. a half-written request line) and size caps
//! on the request line, header block, and body (`413 Payload Too
//! Large`) — so garbage input costs one connection, not the listener.
//!
//! Built-in routes: `GET /metrics` (Prometheus text via
//! [`crate::expo::render`]), `GET /healthz` (200 while the listener is
//! up), `GET /readyz` (200/503 from a caller-controlled flag, see
//! [`MetricsServer::set_ready`]), and `GET /logs` (the structured-log
//! ring as newline-delimited JSON, [`crate::log`], filterable with
//! `?level=` and `?trace_id=`).
//!
//! Every answered request — routed, built-in, or error — is RED-
//! metered into the server's own registry: a request counter labelled
//! by pattern-normalized route ([`normalize_route`]) and status, and a
//! latency histogram per route whose buckets carry the responding
//! request's trace id as an OpenMetrics exemplar when the response
//! bears an `x-horus-trace` header.
//!
//! Anything else is offered to an optional [`Router`] first
//! ([`MetricsServer::set_router`]); `horus-service` mounts its
//! `/v1/...` experiment API this way. With no router, unknown paths
//! get a 404 and non-GET methods a 405.
//!
//! Shutdown is cooperative: [`MetricsServer::shutdown`] (also run on
//! drop) sets a flag and pokes the listener with a loopback connection
//! so the blocking `accept` wakes up and the thread exits. Binding
//! port 0 works and [`MetricsServer::local_addr`] reports the picked
//! port, which is what the golden tests use.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::expo;
use crate::names;
use crate::registry::Registry;

/// Longest accepted request line (method + path + version), in bytes.
pub const MAX_REQUEST_LINE: usize = 8 * 1024;
/// Longest accepted header block, in bytes.
pub const MAX_HEADER_BYTES: usize = 32 * 1024;
/// Largest accepted request body, in bytes.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;
/// How long a client may stall mid-request before it gets a 408.
pub const READ_DEADLINE: Duration = Duration::from_secs(2);

/// One parsed HTTP request, as handed to a [`Router`].
#[derive(Debug, Clone)]
pub struct HttpRequest {
    /// Upper-cased method token (`GET`, `POST`, ...).
    pub method: String,
    /// Request path including any query string, e.g. `/v1/jobs/3`.
    pub path: String,
    /// Header `(name, value)` pairs in arrival order, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Raw request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl HttpRequest {
    /// First value of header `name` (case-insensitive), if present.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        let want = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == want)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8, if it is valid UTF-8.
    #[must_use]
    pub fn body_str(&self) -> Option<&str> {
        std::str::from_utf8(&self.body).ok()
    }
}

/// One HTTP response a [`Router`] hands back.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// Full status line tail, e.g. `200 OK` or `429 Too Many Requests`.
    pub status: String,
    /// `Content-Type` header value.
    pub content_type: String,
    /// Extra response headers (e.g. `Retry-After`).
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: String,
}

impl HttpResponse {
    /// A response with the given status line, content type, and body.
    #[must_use]
    pub fn new(status: &str, content_type: &str, body: impl Into<String>) -> HttpResponse {
        HttpResponse {
            status: status.to_string(),
            content_type: content_type.to_string(),
            headers: Vec::new(),
            body: body.into(),
        }
    }

    /// An `application/json` response.
    #[must_use]
    pub fn json(status: &str, body: impl Into<String>) -> HttpResponse {
        Self::new(status, "application/json", body)
    }

    /// A `text/plain` response.
    #[must_use]
    pub fn text(status: &str, body: impl Into<String>) -> HttpResponse {
        Self::new(status, "text/plain", body)
    }

    /// Adds an extra header (builder style).
    #[must_use]
    pub fn with_header(mut self, name: &str, value: &str) -> HttpResponse {
        self.headers.push((name.to_string(), value.to_string()));
        self
    }

    /// Renders the full wire form (status line, headers, body).
    #[must_use]
    pub fn render(&self) -> String {
        let mut extra = String::new();
        for (name, value) in &self.headers {
            extra.push_str(name);
            extra.push_str(": ");
            extra.push_str(value);
            extra.push_str("\r\n");
        }
        format!(
            "HTTP/1.1 {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n{}Connection: close\r\n\r\n{}",
            self.status,
            self.content_type,
            self.body.len(),
            extra,
            self.body
        )
    }
}

/// Collapses a request path onto the closed set of route ids used as
/// the `route` metric label (see the cardinality rules in
/// [`crate::names`]).
///
/// Raw paths carry job ids, tenant names, and query strings — labelling
/// by them would grow the registry with traffic. This instead maps
/// every path the workspace serves onto a fixed pattern id
/// (`/v1/jobs/{id}`, `/v1/tenants/{tenant}`, ...) and everything else,
/// including malformed requests, onto `other`.
#[must_use]
pub fn normalize_route(path: &str) -> &'static str {
    let path = path.split('?').next().unwrap_or(path);
    match path {
        "/" | "/metrics" => "/metrics",
        "/healthz" => "/healthz",
        "/readyz" => "/readyz",
        "/logs" => "/logs",
        "/v1/jobs" => "/v1/jobs",
        "/v1/shutdown" => "/v1/shutdown",
        _ => {
            if let Some(rest) = path.strip_prefix("/v1/jobs/") {
                return match rest.split_once('/') {
                    None if !rest.is_empty() => "/v1/jobs/{id}",
                    Some((id, "result")) if !id.is_empty() => "/v1/jobs/{id}/result",
                    _ => "other",
                };
            }
            if let Some(rest) = path.strip_prefix("/v1/tenants/") {
                if !rest.is_empty() && !rest.contains('/') {
                    return "/v1/tenants/{tenant}";
                }
            }
            "other"
        }
    }
}

/// A request handler mounted in front of the built-in routes.
///
/// Returning `None` passes the request on to the built-ins
/// (`/metrics`, `/healthz`, `/readyz`, `/logs`, then 404/405).
pub trait Router: Send + Sync {
    /// Answer `req`, or `None` to decline it.
    fn route(&self, req: &HttpRequest) -> Option<HttpResponse>;
}

/// A running scrape endpoint; dropping it stops the listener thread.
pub struct MetricsServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    ready: Arc<AtomicBool>,
    router: Arc<Mutex<Option<Arc<dyn Router>>>>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `127.0.0.1:9464`, port 0 for an OS-picked port)
    /// and starts serving scrapes of `registry` on a background thread.
    ///
    /// The server starts *ready* (a registry is attached by
    /// construction); callers whose readiness depends on more — the
    /// fleet coordinator's accept loop, say — clear and re-set the flag
    /// with [`MetricsServer::set_ready`].
    ///
    /// # Errors
    /// Returns the underlying I/O error if the address cannot be bound.
    pub fn bind(addr: &str, registry: Arc<Registry>) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let ready = Arc::new(AtomicBool::new(true));
        let router: Arc<Mutex<Option<Arc<dyn Router>>>> = Arc::new(Mutex::new(None));
        let flag = Arc::clone(&shutdown);
        let ready_flag = Arc::clone(&ready);
        let router_slot = Arc::clone(&router);
        let handle = std::thread::Builder::new()
            .name("horus-obs-http".to_string())
            .spawn(move || serve(&listener, &registry, &flag, &ready_flag, &router_slot))?;
        Ok(MetricsServer {
            addr: local,
            shutdown,
            ready,
            router,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves port 0 to the actual port).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Sets what `GET /readyz` answers: `true` → 200, `false` → 503.
    pub fn set_ready(&self, ready: bool) {
        self.ready.store(ready, Ordering::SeqCst);
    }

    /// Mounts `router` in front of the built-in routes (replacing any
    /// previous one). Connections accepted after this call see it.
    pub fn set_router(&self, router: Arc<dyn Router>) {
        *self.router.lock().expect("router slot poisoned") = Some(router);
    }

    /// Stops the listener thread and waits for it to exit.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if let Some(handle) = self.handle.take() {
            self.shutdown.store(true, Ordering::SeqCst);
            // Wake the blocking accept; an error just means the listener
            // already went away.
            let _ = TcpStream::connect(self.addr);
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn serve(
    listener: &TcpListener,
    registry: &Arc<Registry>,
    shutdown: &Arc<AtomicBool>,
    ready: &Arc<AtomicBool>,
    router: &Arc<Mutex<Option<Arc<dyn Router>>>>,
) {
    for conn in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = conn else { continue };
        // One thread per connection: a stalled client times out on its
        // own clock instead of blocking the accept loop. Errors on
        // individual connections (resets, deadline hits) only lose that
        // one exchange.
        let registry = Arc::clone(registry);
        let ready = Arc::clone(ready);
        let router = router.lock().expect("router slot poisoned").clone();
        let spawned = std::thread::Builder::new()
            .name("horus-obs-conn".to_string())
            .spawn(move || {
                let _ = handle_connection(stream, &registry, &ready, router.as_deref());
            });
        if spawned.is_err() {
            // Thread exhaustion: shed the connection rather than die.
            continue;
        }
    }
}

/// Why a request could not be parsed, mapped to the status we answer.
enum ReadError {
    /// Client stalled past [`READ_DEADLINE`] or hung up mid-request.
    Timeout,
    /// Request line, header block, or body over the size caps.
    TooLarge,
    /// Not HTTP enough to answer anything specific.
    Malformed,
    /// Connection died before a single byte: nothing to answer.
    Dead,
}

impl ReadError {
    fn response(&self) -> Option<HttpResponse> {
        match self {
            ReadError::Timeout => Some(HttpResponse::text(
                "408 Request Timeout",
                "request not completed in time\n",
            )),
            ReadError::TooLarge => Some(HttpResponse::text(
                "413 Payload Too Large",
                "request exceeds size limits\n",
            )),
            ReadError::Malformed => {
                Some(HttpResponse::text("400 Bad Request", "malformed request\n"))
            }
            ReadError::Dead => None,
        }
    }
}

/// Reads one `\n`-terminated line of at most `max` bytes.
fn read_line_bounded<R: BufRead>(reader: &mut R, max: usize) -> Result<String, ReadError> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => {
                // EOF: a half-written request the client gave up on.
                return Err(if line.is_empty() {
                    ReadError::Dead
                } else {
                    ReadError::Timeout
                });
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    break;
                }
                if line.len() >= max {
                    return Err(ReadError::TooLarge);
                }
                line.push(byte[0]);
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return Err(ReadError::Timeout);
            }
            Err(_) => return Err(ReadError::Dead),
        }
    }
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    String::from_utf8(line).map_err(|_| ReadError::Malformed)
}

/// Parses one request off `reader` under the deadline and size caps.
fn read_request<R: BufRead>(reader: &mut R) -> Result<HttpRequest, ReadError> {
    let request_line = read_line_bounded(reader, MAX_REQUEST_LINE)?;
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(path)) = (parts.next(), parts.next()) else {
        return Err(ReadError::Malformed);
    };
    let method = method.to_ascii_uppercase();
    let path = path.to_string();

    let mut headers = Vec::new();
    let mut header_bytes = 0usize;
    let mut content_length = 0usize;
    loop {
        let line = read_line_bounded(reader, MAX_HEADER_BYTES)?;
        if line.is_empty() {
            break;
        }
        header_bytes += line.len();
        if header_bytes > MAX_HEADER_BYTES {
            return Err(ReadError::TooLarge);
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(ReadError::Malformed);
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim().to_string();
        if name == "content-length" {
            content_length = value.parse().map_err(|_| ReadError::Malformed)?;
        }
        headers.push((name, value));
    }

    if content_length > MAX_BODY_BYTES {
        return Err(ReadError::TooLarge);
    }
    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        reader.read_exact(&mut body).map_err(|e| {
            if e.kind() == std::io::ErrorKind::WouldBlock
                || e.kind() == std::io::ErrorKind::TimedOut
            {
                ReadError::Timeout
            } else {
                ReadError::Dead
            }
        })?;
    }
    Ok(HttpRequest {
        method,
        path,
        headers,
        body,
    })
}

fn handle_connection(
    stream: TcpStream,
    registry: &Arc<Registry>,
    ready: &Arc<AtomicBool>,
    router: Option<&dyn Router>,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(READ_DEADLINE))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let started = Instant::now();
    let mut reader = BufReader::new(stream);
    let (route, response) = match read_request(&mut reader) {
        Ok(req) => {
            let resp = respond(&req, registry, ready, router);
            (normalize_route(&req.path), resp)
        }
        // Unparseable requests have no trustworthy path: meter them
        // under `other` so error storms still show up in the RED view.
        Err(err) => match err.response() {
            Some(resp) => ("other", resp),
            None => return Ok(()),
        },
    };
    record_red(registry, route, &response, started.elapsed().as_secs_f64());
    let mut stream = reader.into_inner();
    stream.write_all(response.render().as_bytes())?;
    stream.flush()
}

/// Meters one answered request into the RED families: a counter by
/// `(route, status)` and a latency histogram by `route`, the latter
/// carrying the response's `x-horus-trace` header (if any) as the
/// bucket's exemplar.
fn record_red(registry: &Registry, route: &str, response: &HttpResponse, seconds: f64) {
    let status = response.status.get(..3).unwrap_or("000");
    registry
        .counter(
            names::HTTP_REQUESTS,
            "HTTP requests answered by the shared listener.",
            &[("route", route), ("status", status)],
        )
        .inc();
    let trace = response
        .headers
        .iter()
        .find(|(k, _)| k.eq_ignore_ascii_case("x-horus-trace"))
        .map(|(_, v)| v.as_str());
    registry
        .time_histogram(
            names::HTTP_REQUEST_SECONDS,
            "Server-side HTTP request latency, accept to response.",
            &[("route", route)],
        )
        .observe_seconds_traced(seconds, trace);
}

fn respond(
    req: &HttpRequest,
    registry: &Arc<Registry>,
    ready: &Arc<AtomicBool>,
    router: Option<&dyn Router>,
) -> HttpResponse {
    if let Some(router) = router {
        if let Some(resp) = router.route(req) {
            return resp;
        }
    }
    if req.method != "GET" {
        return HttpResponse::text("405 Method Not Allowed", "method not allowed\n");
    }
    let (path, query) = match req.path.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (req.path.as_str(), None),
    };
    match path {
        "/metrics" | "/" => {
            let body = expo::render(&registry.snapshot());
            HttpResponse::new("200 OK", "text/plain; version=0.0.4; charset=utf-8", body)
        }
        // The listener answered, so the process is alive.
        "/healthz" => HttpResponse::json("200 OK", "{\"status\":\"ok\"}\n"),
        "/readyz" => {
            if ready.load(Ordering::SeqCst) {
                HttpResponse::json("200 OK", "{\"ready\":true}\n")
            } else {
                HttpResponse::json("503 Service Unavailable", "{\"ready\":false}\n")
            }
        }
        "/logs" => logs_response(query),
        _ => HttpResponse::text(
            "404 Not Found",
            "try /metrics, /logs, /healthz, or /readyz\n",
        ),
    }
}

/// Answers `GET /logs[?level=...&trace_id=...]`. Unknown parameters and
/// unknown level names are a 400 — silently ignoring a typo like
/// `?lvl=warn` would serve the full ring and look like a match.
fn logs_response(query: Option<&str>) -> HttpResponse {
    let mut min_level = None;
    let mut trace_id = None;
    for pair in query.unwrap_or("").split('&').filter(|p| !p.is_empty()) {
        let (key, value) = pair.split_once('=').unwrap_or((pair, ""));
        match key {
            "level" => match crate::log::Level::parse(value) {
                Some(l) => min_level = Some(l),
                None => {
                    return HttpResponse::text(
                        "400 Bad Request",
                        format!("unknown level {value:?}; try debug, info, warn, or error\n"),
                    );
                }
            },
            "trace_id" => trace_id = Some(value),
            _ => {
                return HttpResponse::text(
                    "400 Bad Request",
                    format!("unknown query parameter {key:?}; try level= or trace_id=\n"),
                );
            }
        }
    }
    HttpResponse::new(
        "200 OK",
        "application/x-ndjson",
        crate::log::ring_ndjson_filtered(min_level, trace_id),
    )
}

/// Performs a plain HTTP `GET` against `addr` at `path` and returns
/// `(status_line, body)`. This is the client half of the scrape endpoint,
/// used by `serve-metrics`-adjacent tooling and the golden tests; it speaks
/// just enough HTTP/1.1 for [`MetricsServer`].
///
/// # Errors
/// Returns the underlying I/O error if the connection or read fails.
pub fn http_get(addr: SocketAddr, path: &str) -> std::io::Result<(String, String)> {
    request(addr, "GET", path, &[], "")
}

/// Performs an HTTP `POST` of `body` against `addr` at `path`, with
/// `headers` as extra `(name, value)` request headers, and returns
/// `(status_line, body)` — the client half of the `horus-service` API,
/// used by `horus-load` and the e2e tests.
///
/// # Errors
/// Returns the underlying I/O error if the connection or read fails.
pub fn http_post(
    addr: SocketAddr,
    path: &str,
    headers: &[(&str, &str)],
    body: &str,
) -> std::io::Result<(String, String)> {
    request(addr, "POST", path, headers, body)
}

/// Full HTTP response: `(status_line, lowercase-name response headers,
/// body)` — what [`http_post_full`] returns.
pub type FullResponse = (String, Vec<(String, String)>, String);

/// Like [`http_post`], but also returns the response headers as
/// lowercase-name `(name, value)` pairs — for clients that read
/// correlation headers like `x-horus-trace` off the answer.
///
/// # Errors
/// Returns the underlying I/O error if the connection or read fails.
pub fn http_post_full(
    addr: SocketAddr,
    path: &str,
    headers: &[(&str, &str)],
    body: &str,
) -> std::io::Result<FullResponse> {
    let (head, body) = request_raw(addr, "POST", path, headers, body)?;
    let mut lines = head.lines();
    let status = lines.next().unwrap_or("").to_string();
    let response_headers = lines
        .filter_map(|line| {
            let (name, value) = line.split_once(':')?;
            Some((name.trim().to_ascii_lowercase(), value.trim().to_string()))
        })
        .collect();
    Ok((status, response_headers, body))
}

fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &str,
) -> std::io::Result<(String, String)> {
    let (head, body) = request_raw(addr, method, path, headers, body)?;
    let status = head.lines().next().unwrap_or("").to_string();
    Ok((status, body))
}

/// The shared client: one request, one `Connection: close` response,
/// returned as `(raw head, body)`.
fn request_raw(
    addr: SocketAddr,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &str,
) -> std::io::Result<(String, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    let mut extra = String::new();
    for (name, value) in headers {
        extra.push_str(name);
        extra.push_str(": ");
        extra.push_str(value);
        extra.push_str("\r\n");
    }
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\n{extra}Connection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let (head, body) = raw.split_once("\r\n\r\n").ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed response")
    })?;
    Ok((head.to_string(), body.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serves_metrics_and_404() {
        let reg = Registry::shared();
        reg.counter("up_total", "Help.", &[]).add(2);
        let server = MetricsServer::bind("127.0.0.1:0", Arc::clone(&reg)).expect("bind");
        let addr = server.local_addr();

        let (status, body) = http_get(addr, "/metrics").expect("get");
        assert!(status.contains("200"), "status: {status}");
        assert!(body.contains("up_total 2\n"), "body: {body}");

        let (status, _) = http_get(addr, "/nope").expect("get");
        assert!(status.contains("404"), "status: {status}");

        // Scrapes see live values.
        reg.counter("up_total", "Help.", &[]).inc();
        let (_, body) = http_get(addr, "/metrics").expect("get");
        assert!(body.contains("up_total 3\n"), "body: {body}");

        server.shutdown();
    }

    #[test]
    fn health_ready_and_logs_endpoints() {
        let server = MetricsServer::bind("127.0.0.1:0", Registry::shared()).expect("bind");
        let addr = server.local_addr();

        let (status, body) = http_get(addr, "/healthz").expect("get");
        assert!(status.contains("200"), "status: {status}");
        assert_eq!(body, "{\"status\":\"ok\"}\n");

        // Ready by default (a registry is attached by construction).
        let (status, body) = http_get(addr, "/readyz").expect("get");
        assert!(status.contains("200"), "status: {status}");
        assert_eq!(body, "{\"ready\":true}\n");

        server.set_ready(false);
        let (status, body) = http_get(addr, "/readyz").expect("get");
        assert!(status.contains("503"), "status: {status}");
        assert_eq!(body, "{\"ready\":false}\n");
        server.set_ready(true);
        let (status, _) = http_get(addr, "/readyz").expect("get");
        assert!(status.contains("200"), "status: {status}");

        crate::log::info("http-test", "a log line for the ring", &[("k", "v")]);
        let (status, body) = http_get(addr, "/logs").expect("get");
        assert!(status.contains("200"), "status: {status}");
        assert!(body.contains("a log line for the ring"), "body: {body}");

        server.shutdown();
    }

    struct EchoRouter;

    impl Router for EchoRouter {
        fn route(&self, req: &HttpRequest) -> Option<HttpResponse> {
            if req.path == "/echo" {
                let tenant = req.header("x-horus-tenant").unwrap_or("-").to_string();
                let body = req.body_str().unwrap_or("").to_string();
                Some(
                    HttpResponse::json(
                        "200 OK",
                        format!("{{\"tenant\":\"{tenant}\",\"len\":{}}}", body.len()),
                    )
                    .with_header("Retry-After", "1"),
                )
            } else {
                None
            }
        }
    }

    #[test]
    fn router_sees_posts_and_extra_headers_render() {
        let server = MetricsServer::bind("127.0.0.1:0", Registry::shared()).expect("bind");
        server.set_router(Arc::new(EchoRouter));
        let addr = server.local_addr();

        let (status, body) =
            http_post(addr, "/echo", &[("X-Horus-Tenant", "team-a")], "hello").expect("post");
        assert!(status.contains("200"), "status: {status}");
        assert_eq!(body, "{\"tenant\":\"team-a\",\"len\":5}");

        // Unrouted paths still fall through to the built-ins.
        let (status, _) = http_get(addr, "/healthz").expect("get");
        assert!(status.contains("200"), "status: {status}");
        // ... and unrouted POSTs to the 405.
        let (status, _) = http_post(addr, "/metrics", &[], "").expect("post");
        assert!(status.contains("405"), "status: {status}");

        server.shutdown();
    }

    #[test]
    fn normalize_route_is_a_closed_set() {
        for (path, want) in [
            ("/", "/metrics"),
            ("/metrics", "/metrics"),
            ("/metrics?x=1", "/metrics"),
            ("/healthz", "/healthz"),
            ("/readyz", "/readyz"),
            ("/logs", "/logs"),
            ("/logs?level=warn&trace_id=ab", "/logs"),
            ("/v1/jobs", "/v1/jobs"),
            ("/v1/jobs/17", "/v1/jobs/{id}"),
            ("/v1/jobs/17/result", "/v1/jobs/{id}/result"),
            ("/v1/jobs/17/result/extra", "other"),
            ("/v1/jobs/", "other"),
            ("/v1/tenants/team-a", "/v1/tenants/{tenant}"),
            ("/v1/tenants/team-a/x", "other"),
            ("/v1/shutdown", "/v1/shutdown"),
            ("/nope", "other"),
            ("", "other"),
        ] {
            assert_eq!(normalize_route(path), want, "path {path:?}");
        }
    }

    /// Satellite guard: the 404 body is the route list clients see, so
    /// it must name every built-in route — exactly the routes `respond`
    /// serves — or docs and server drift apart silently again.
    #[test]
    fn not_found_body_names_every_builtin_route() {
        let server = MetricsServer::bind("127.0.0.1:0", Registry::shared()).expect("bind");
        let (status, body) = http_get(server.local_addr(), "/definitely-not-a-route").expect("get");
        assert!(status.contains("404"), "status: {status}");
        for route in ["/metrics", "/logs", "/healthz", "/readyz"] {
            assert!(body.contains(route), "404 body must list {route}: {body}");
        }
        assert!(
            !body.contains("/logz"),
            "the /logz spelling was a doc bug: {body}"
        );
        server.shutdown();
    }

    #[test]
    fn logs_filters_by_level_and_trace_id() {
        let server = MetricsServer::bind("127.0.0.1:0", Registry::shared()).expect("bind");
        let addr = server.local_addr();
        crate::log::warn(
            "http-filter-test",
            "warn with trace",
            &[("trace_id", "cafe1234")],
        );
        crate::log::info("http-filter-test", "plain info line", &[]);

        let (status, body) = http_get(addr, "/logs?level=warn").expect("get");
        assert!(status.contains("200"), "status: {status}");
        assert!(body.contains("warn with trace"), "body: {body}");
        assert!(!body.contains("plain info line"), "body: {body}");

        let (status, body) = http_get(addr, "/logs?trace_id=cafe1234").expect("get");
        assert!(status.contains("200"), "status: {status}");
        assert!(body.contains("warn with trace"), "body: {body}");
        assert!(!body.contains("plain info line"), "body: {body}");

        // Empty result is a 200 with an empty NDJSON body, not an error.
        let (status, body) = http_get(addr, "/logs?trace_id=no-such-trace").expect("get");
        assert!(status.contains("200"), "status: {status}");
        assert!(body.is_empty(), "body: {body:?}");

        // Unknown parameter names and unknown levels are 400s.
        let (status, body) = http_get(addr, "/logs?lvl=warn").expect("get");
        assert!(status.contains("400"), "status: {status}");
        assert!(body.contains("unknown query parameter"), "body: {body}");
        let (status, body) = http_get(addr, "/logs?level=loud").expect("get");
        assert!(status.contains("400"), "status: {status}");
        assert!(body.contains("unknown level"), "body: {body}");

        server.shutdown();
    }

    #[test]
    fn red_metrics_meter_every_answered_request() {
        let reg = Registry::shared();
        let server = MetricsServer::bind("127.0.0.1:0", Arc::clone(&reg)).expect("bind");
        let addr = server.local_addr();

        http_get(addr, "/healthz").expect("get");
        http_get(addr, "/healthz").expect("get");
        http_get(addr, "/v1/jobs/17").expect("get");

        // Metering happens just before the response is written, so poll
        // briefly for the last request's sample to land.
        let mut body = String::new();
        for _ in 0..50 {
            body = http_get(addr, "/metrics").expect("scrape").1;
            if body.contains("route=\"/v1/jobs/{id}\"") {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(
            body.contains("horus_http_requests_total{route=\"/healthz\",status=\"200\"} 2\n"),
            "body: {body}"
        );
        assert!(
            body.contains("horus_http_requests_total{route=\"/v1/jobs/{id}\",status=\"404\"} 1\n"),
            "unrouted /v1/jobs/17 normalizes and falls through to the built-in 404: {body}"
        );
        assert!(
            body.contains("horus_http_request_seconds_count{route=\"/healthz\"} 2\n"),
            "body: {body}"
        );

        server.shutdown();
    }

    /// The drive-by regression: a half-written request must get a 408
    /// and must not wedge the accept loop for the next client.
    #[test]
    fn half_written_request_gets_408_and_does_not_wedge() {
        let server = MetricsServer::bind("127.0.0.1:0", Registry::shared()).expect("bind");
        let addr = server.local_addr();

        // Stall a connection mid-request-line and leave it open.
        let mut stalled = TcpStream::connect(addr).expect("connect");
        stalled.write_all(b"GET /metr").expect("partial write");
        stalled.flush().expect("flush");

        // A well-behaved client must still be served immediately,
        // while the stalled one waits out its deadline.
        let (status, _) = http_get(addr, "/healthz").expect("get");
        assert!(status.contains("200"), "status: {status}");

        // The stalled client eventually gets its 408.
        stalled
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("timeout");
        let mut raw = String::new();
        stalled.read_to_string(&mut raw).expect("read");
        assert!(raw.contains("408"), "response: {raw}");

        server.shutdown();
    }

    #[test]
    fn oversized_body_gets_413_without_reading_it() {
        let server = MetricsServer::bind("127.0.0.1:0", Registry::shared()).expect("bind");
        let addr = server.local_addr();

        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("timeout");
        write!(
            stream,
            "POST /v1/jobs HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        )
        .expect("write");
        stream.flush().expect("flush");
        let mut raw = String::new();
        stream.read_to_string(&mut raw).expect("read");
        assert!(raw.contains("413"), "response: {raw}");

        server.shutdown();
    }

    #[test]
    fn garbage_request_line_gets_400() {
        let server = MetricsServer::bind("127.0.0.1:0", Registry::shared()).expect("bind");
        let addr = server.local_addr();

        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("timeout");
        stream
            .write_all(b"\x00\xffnot http\r\n\r\n")
            .expect("write");
        stream.flush().expect("flush");
        let mut raw = Vec::new();
        stream.read_to_end(&mut raw).expect("read");
        let raw = String::from_utf8_lossy(&raw);
        assert!(raw.contains("400"), "response: {raw}");

        server.shutdown();
    }
}
