//! Host-side profiling: CPU time, peak RSS, and (optionally) allocations.
//!
//! Everything here is best-effort and degrades to `None` off Linux: CPU
//! time and peak RSS come from `/proc`, which is free to read and needs no
//! libc binding. On other platforms jobs still get wall-clock profiles; the
//! host-dependent fields are simply absent (and absent from summaries).
//!
//! Clock-tick caveat: `/proc/*/stat` reports CPU time in kernel ticks.
//! Without libc we cannot call `sysconf(_SC_CLK_TCK)`, so the conversion
//! assumes the Linux default of 100 ticks/s, which has been the value on
//! every mainstream distribution for decades. If a kernel is configured
//! differently, CPU *ratios* (job vs job, run vs baseline on the same host)
//! remain meaningful even though absolute seconds are scaled.
//!
//! Allocation counting is behind the `alloc-profile` feature because it
//! installs a process-wide counting [`std::alloc::GlobalAlloc`] shim: two
//! relaxed atomic increments per allocation. With the feature off,
//! [`alloc_counts`] returns `None` and no allocator is installed.

use std::time::Instant;

/// Assumed kernel clock tick rate (see the module docs).
const CLK_TCK: f64 = 100.0;

/// Reads total process CPU time (user + system) in seconds, if available.
#[must_use]
pub fn process_cpu_seconds() -> Option<f64> {
    cpu_seconds_from_stat(&std::fs::read_to_string("/proc/self/stat").ok()?)
}

/// Reads the calling thread's CPU time (user + system) in seconds, if
/// available.
#[must_use]
pub fn thread_cpu_seconds() -> Option<f64> {
    cpu_seconds_from_stat(&std::fs::read_to_string("/proc/thread-self/stat").ok()?)
}

/// Parses `utime + stime` out of a `/proc/<pid>/stat` line.
///
/// The command name (field 2) may contain spaces and parentheses, so fields
/// are counted from after the *last* `)`: `utime` and `stime` are then the
/// 12th and 13th whitespace-separated fields (1-based fields 14 and 15 of
/// the full line).
fn cpu_seconds_from_stat(stat: &str) -> Option<f64> {
    let rest = &stat[stat.rfind(')')? + 1..];
    let mut fields = rest.split_whitespace().skip(11);
    let utime: u64 = fields.next()?.parse().ok()?;
    let stime: u64 = fields.next()?.parse().ok()?;
    Some((utime + stime) as f64 / CLK_TCK)
}

/// Reads the process's peak resident set size in bytes (`VmHWM`), if
/// available.
#[must_use]
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

/// Returns `(allocations, allocated_bytes)` recorded by the counting
/// allocator, or `None` when the `alloc-profile` feature is off.
#[must_use]
pub fn alloc_counts() -> Option<(u64, u64)> {
    #[cfg(feature = "alloc-profile")]
    {
        Some(alloc_shim::counts())
    }
    #[cfg(not(feature = "alloc-profile"))]
    {
        None
    }
}

/// Process-level resource usage for a whole run, captured at the end.
#[derive(Debug, Clone, PartialEq)]
pub struct HostProfile {
    /// Wall-clock duration of the run in seconds.
    pub wall_seconds: f64,
    /// Process CPU seconds (user + system), if `/proc` is available.
    pub cpu_seconds: Option<f64>,
    /// Peak resident set size in bytes, if `/proc` is available.
    pub peak_rss_bytes: Option<u64>,
    /// Total allocations, if the `alloc-profile` feature is on.
    pub allocations: Option<u64>,
    /// Total allocated bytes, if the `alloc-profile` feature is on.
    pub allocated_bytes: Option<u64>,
}

/// Captures a [`HostProfile`] for a run that took `wall_seconds`.
#[must_use]
pub fn host_profile(wall_seconds: f64) -> HostProfile {
    let allocs = alloc_counts();
    HostProfile {
        wall_seconds,
        cpu_seconds: process_cpu_seconds(),
        peak_rss_bytes: peak_rss_bytes(),
        allocations: allocs.map(|(n, _)| n),
        allocated_bytes: allocs.map(|(_, b)| b),
    }
}

/// Per-job resource usage, as recorded by the harness worker that ran it.
#[derive(Debug, Clone, PartialEq)]
pub struct JobProfile {
    /// Job content key, or a task label for non-`JobSpec` work.
    pub label: String,
    /// Drain scheme, when the job is a `JobSpec`.
    pub scheme: Option<String>,
    /// Correlation trace id of the request or plan that enqueued the
    /// job ([`crate::span::mint_trace_id`]); `None` for untraced runs.
    pub trace: Option<String>,
    /// Whether the result came from the on-disk cache.
    pub cached: bool,
    /// Wall-clock duration of the job in seconds.
    pub wall_seconds: f64,
    /// CPU seconds burned by the worker thread while running the job, if
    /// `/proc` is available.
    pub cpu_seconds: Option<f64>,
    /// Allocation count delta across the job, if `alloc-profile` is on.
    ///
    /// Note: the counting allocator is process-wide, so with `--jobs > 1`
    /// deltas include concurrent workers' allocations. Exact per-job
    /// attribution needs `--jobs 1`.
    pub allocations: Option<u64>,
    /// Allocated-bytes delta across the job; same caveat as `allocations`.
    pub allocated_bytes: Option<u64>,
}

/// In-flight measurement for one job: capture at start, delta at finish.
pub struct JobProfiler {
    label: String,
    scheme: Option<String>,
    trace: Option<String>,
    started: Instant,
    cpu_start: Option<f64>,
    alloc_start: Option<(u64, u64)>,
}

impl JobProfiler {
    /// Starts measuring; call on the worker thread that will run the job.
    #[must_use]
    pub fn start(label: impl Into<String>, scheme: Option<String>) -> JobProfiler {
        JobProfiler {
            label: label.into(),
            scheme,
            trace: None,
            started: Instant::now(),
            cpu_start: thread_cpu_seconds(),
            alloc_start: alloc_counts(),
        }
    }

    /// Attaches the correlation trace id the finished profile will carry
    /// (builder style; `None` leaves the profile untraced).
    #[must_use]
    pub fn with_trace(mut self, trace: Option<&str>) -> JobProfiler {
        self.trace = trace.filter(|t| !t.is_empty()).map(str::to_string);
        self
    }

    /// Finishes measuring and returns the profile. Must be called on the
    /// same thread as [`JobProfiler::start`] for CPU deltas to make sense.
    #[must_use]
    pub fn finish(self, cached: bool) -> JobProfile {
        let wall_seconds = self.started.elapsed().as_secs_f64();
        let cpu_seconds = match (self.cpu_start, thread_cpu_seconds()) {
            (Some(a), Some(b)) => Some((b - a).max(0.0)),
            _ => None,
        };
        let (allocations, allocated_bytes) = match (self.alloc_start, alloc_counts()) {
            (Some((n0, b0)), Some((n1, b1))) => {
                (Some(n1.saturating_sub(n0)), Some(b1.saturating_sub(b0)))
            }
            _ => (None, None),
        };
        JobProfile {
            label: self.label,
            scheme: self.scheme,
            trace: self.trace,
            cached,
            wall_seconds,
            cpu_seconds,
            allocations,
            allocated_bytes,
        }
    }
}

#[cfg(feature = "alloc-profile")]
#[allow(unsafe_code)]
mod alloc_shim {
    //! Counting global allocator, installed only with `alloc-profile`.

    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
    static ALLOCATED_BYTES: AtomicU64 = AtomicU64::new(0);

    pub(super) fn counts() -> (u64, u64) {
        (
            ALLOCATIONS.load(Ordering::Relaxed),
            ALLOCATED_BYTES.load(Ordering::Relaxed),
        )
    }

    struct CountingAlloc;

    // SAFETY: delegates every operation unchanged to `System`; the only
    // addition is two relaxed counter increments, which allocate nothing.
    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            ALLOCATED_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
            System.alloc(layout)
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout);
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            ALLOCATED_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
            System.realloc(ptr, layout, new_size)
        }
    }

    #[global_allocator]
    static GLOBAL: CountingAlloc = CountingAlloc;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_stat_line_with_hostile_comm() {
        let stat = "1234 (we ird) name) S 1 2 3 4 5 6 7 8 9 10 250 50 0 0 20 0 1 0";
        let secs = cpu_seconds_from_stat(stat).expect("parse");
        assert!((secs - 3.0).abs() < 1e-9, "got {secs}");
    }

    #[test]
    fn job_profiler_measures_wall_time() {
        let p = JobProfiler::start("job-1", Some("Horus".to_string()));
        std::thread::sleep(std::time::Duration::from_millis(10));
        let profile = p.finish(false);
        assert!(profile.wall_seconds >= 0.009, "{}", profile.wall_seconds);
        assert_eq!(profile.label, "job-1");
        assert_eq!(profile.trace, None, "untraced by default");
        assert!(!profile.cached);
    }

    #[test]
    fn job_profiler_carries_trace_id() {
        let p = JobProfiler::start("job-2", None).with_trace(Some("abcd1234"));
        assert_eq!(p.finish(true).trace.as_deref(), Some("abcd1234"));
        let p = JobProfiler::start("job-3", None).with_trace(Some(""));
        assert_eq!(p.finish(true).trace, None, "empty ids are untraced");
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn linux_proc_probes_work() {
        assert!(process_cpu_seconds().is_some());
        assert!(thread_cpu_seconds().is_some());
        let rss = peak_rss_bytes().expect("VmHWM");
        assert!(rss > 0);
    }
}
