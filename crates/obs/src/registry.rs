//! The metrics registry: named, labelled series backed by atomics.
//!
//! Design goals, in order:
//!
//! 1. **Zero hot-path locking.** A handle ([`Counter`], [`Gauge`],
//!    [`FloatCounter`], [`FloatGauge`], [`ObsHistogram`]) is a clone of an
//!    `Arc` around plain atomics; recording an observation is one or two
//!    relaxed atomic operations. The registry's internal locks are only
//!    taken at registration and snapshot time.
//! 2. **Static label sets.** The full label set is fixed when the handle is
//!    created; there is no per-observation label lookup. Callers that need a
//!    labelled family (e.g. per-scheme op totals) register one handle per
//!    label value up front and keep it.
//! 3. **Deterministic snapshots.** [`Registry::snapshot`] returns series
//!    sorted by `(name, labels)` regardless of registration order or shard
//!    assignment, so two runs that record the same values expose
//!    byte-identical text.
//!
//! Registration is idempotent: asking for the same `(name, labels)` series
//! twice returns handles sharing the same underlying atomic. Re-registering
//! a name with a different metric *kind* panics — that is a programming
//! error, not a runtime condition.

use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, HashMap};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of independently locked shards in the registry.
///
/// Registration from N harness workers hashes series keys across shards so
/// the (already rare) registration path does not serialize on one mutex.
const SHARDS: usize = 16;

/// The kind of a metric family, used for the `# TYPE` exposition line and
/// for kind-conflict detection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically non-decreasing value.
    Counter,
    /// Value that can go up and down.
    Gauge,
    /// Power-of-two bucketed distribution.
    Histogram,
}

impl MetricKind {
    /// The exposition-format type keyword.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// A monotonically increasing integer counter handle.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Increments the counter by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Returns the current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An integer gauge handle (can go up and down).
#[derive(Clone)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the gauge to `v`.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `d` (possibly negative) to the gauge.
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Returns the current value.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A monotonically increasing floating-point counter handle.
///
/// Stored as the bit pattern of an `f64` in an `AtomicU64`; additions use a
/// compare-and-swap loop. Used for accumulated durations (e.g. per-worker
/// busy seconds) where integer ticks would lose precision.
#[derive(Clone)]
pub struct FloatCounter(Arc<AtomicU64>);

impl FloatCounter {
    /// Adds `d` to the counter. Negative deltas are ignored (counters are
    /// monotonic by contract).
    pub fn add(&self, d: f64) {
        if d.is_nan() || d <= 0.0 {
            return;
        }
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = f64::from_bits(cur) + d;
            match self.0.compare_exchange_weak(
                cur,
                next.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Returns the current value.
    #[must_use]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A floating-point gauge handle (e.g. live throughput in ops/s).
#[derive(Clone)]
pub struct FloatGauge(Arc<AtomicU64>);

impl FloatGauge {
    /// Sets the gauge to `v`.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Returns the current value.
    #[must_use]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Shared core of a power-of-two histogram.
///
/// Bucket `i` counts observations `v` with `v <= 2^i`; one extra overflow
/// bucket counts the rest. `sum`/`count` track the running total so the
/// exposition can emit `_sum` and `_count` series.
pub struct HistogramCore {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    /// Last-written `(trace_id, raw value)` exemplar per bucket. The
    /// vector stays empty until the first *traced* observation, so
    /// untraced histograms never pay for (or expose) exemplars — their
    /// snapshots compare equal to pre-exemplar ones. The mutex is off
    /// the hot path: plain `record` never touches it.
    exemplars: Mutex<Vec<Option<(String, u64)>>>,
}

/// Number of finite power-of-two buckets: upper bounds `2^0 ..= 2^31`.
const HIST_BUCKETS: usize = 32;

impl HistogramCore {
    fn new() -> Self {
        HistogramCore {
            buckets: (0..=HIST_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            exemplars: Mutex::new(Vec::new()),
        }
    }

    fn bucket_index(v: u64) -> usize {
        if v <= 1 {
            0
        } else {
            let bits = 64 - (v - 1).leading_zeros() as usize;
            bits.min(HIST_BUCKETS)
        }
    }

    fn record(&self, v: u64) {
        let idx = Self::bucket_index(v);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    fn record_traced(&self, v: u64, trace: &str) {
        self.record(v);
        if trace.is_empty() {
            return;
        }
        let mut exemplars = self.exemplars.lock().expect("histogram exemplars poisoned");
        if exemplars.is_empty() {
            exemplars.resize(HIST_BUCKETS + 1, None);
        }
        exemplars[Self::bucket_index(v)] = Some((trace.to_string(), v));
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            exemplars: self
                .exemplars
                .lock()
                .expect("histogram exemplars poisoned")
                .clone(),
        }
    }
}

/// A power-of-two bucketed histogram handle.
#[derive(Clone)]
pub struct ObsHistogram(Arc<HistogramCore>);

impl ObsHistogram {
    /// Records one observation of `v`.
    pub fn observe(&self, v: u64) {
        self.0.record(v);
    }

    /// Records one observation of `v`, attaching `trace` as the bucket's
    /// exemplar when present. `None` (and the empty string) behave
    /// exactly like [`ObsHistogram::observe`].
    pub fn observe_traced(&self, v: u64, trace: Option<&str>) {
        match trace {
            Some(t) => self.0.record_traced(v, t),
            None => self.0.record(v),
        }
    }

    /// Returns the number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    fn snapshot(&self) -> HistogramSnapshot {
        self.0.snapshot()
    }
}

/// A power-of-two bucketed *duration* histogram handle.
///
/// Shares [`HistogramCore`] with [`ObsHistogram`] but records whole
/// microseconds internally — sub-second latencies would all collapse
/// into an integer-seconds bucket 0 — while the exposition and summary
/// present the series in seconds (`le` bounds of `2^i / 1e6`, float
/// `_sum`), per Prometheus convention for `_seconds` families.
#[derive(Clone)]
pub struct TimeHistogram(Arc<HistogramCore>);

impl TimeHistogram {
    /// Records one duration of `secs` seconds. Non-finite or negative
    /// observations are ignored.
    pub fn observe_seconds(&self, secs: f64) {
        if !secs.is_finite() || secs < 0.0 {
            return;
        }
        // `as` saturates, so absurdly long durations land in the
        // overflow bucket instead of wrapping.
        self.0.record((secs * 1e6).round() as u64);
    }

    /// Records one duration, attaching `trace` as the bucket's exemplar
    /// when present. `None` (and the empty string) behave exactly like
    /// [`TimeHistogram::observe_seconds`].
    pub fn observe_seconds_traced(&self, secs: f64, trace: Option<&str>) {
        if !secs.is_finite() || secs < 0.0 {
            return;
        }
        let micros = (secs * 1e6).round() as u64;
        match trace {
            Some(t) => self.0.record_traced(micros, t),
            None => self.0.record(micros),
        }
    }

    /// Returns the number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    fn snapshot(&self) -> HistogramSnapshot {
        self.0.snapshot()
    }
}

/// A frozen copy of one histogram series.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket (non-cumulative) observation counts; bucket `i` holds
    /// observations `<= 2^i`, with a final overflow bucket.
    pub buckets: Vec<u64>,
    /// Total number of observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Per-bucket `(trace_id, raw value)` exemplars — the most recent
    /// traced observation that landed in each bucket. Empty (not
    /// all-`None`) when the histogram never saw a traced observation,
    /// so exemplar-free snapshots are indistinguishable from
    /// pre-exemplar ones. Raw values are microseconds for snapshots
    /// taken from a [`TimeHistogram`].
    pub exemplars: Vec<Option<(String, u64)>>,
}

impl HistogramSnapshot {
    /// Upper bound of finite bucket `i` (`2^i`).
    #[must_use]
    pub fn bound(i: usize) -> u64 {
        1u64 << i
    }

    /// Number of finite buckets (the last bucket in `buckets` is +Inf).
    #[must_use]
    pub fn finite_buckets() -> usize {
        HIST_BUCKETS
    }

    /// Upper bound of finite bucket `i` in seconds, for snapshots taken
    /// from a [`TimeHistogram`] (which buckets whole microseconds).
    #[must_use]
    pub fn seconds_bound(i: usize) -> f64 {
        Self::bound(i) as f64 / 1e6
    }

    /// The observation sum in seconds, for snapshots taken from a
    /// [`TimeHistogram`].
    #[must_use]
    pub fn seconds_sum(&self) -> f64 {
        self.sum as f64 / 1e6
    }
}

/// The value of one series in a [`Snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub enum SampleValue {
    /// Integer counter value.
    Uint(u64),
    /// Integer gauge value.
    Int(i64),
    /// Floating-point counter or gauge value.
    Float(f64),
    /// Histogram buckets + sum + count.
    Histogram(HistogramSnapshot),
    /// Duration histogram buckets + sum + count; bucket bounds and the
    /// sum are microseconds internally, seconds in every rendering (see
    /// [`HistogramSnapshot::seconds_bound`]).
    TimeHistogram(HistogramSnapshot),
}

/// One `(name, labels, value)` series in a [`Snapshot`].
#[derive(Debug, Clone)]
pub struct Sample {
    /// Metric family name, e.g. `horus_harness_jobs_completed_total`.
    pub name: String,
    /// Sorted `(label, value)` pairs; empty for unlabelled series.
    pub labels: Vec<(String, String)>,
    /// The frozen value.
    pub value: SampleValue,
}

/// A frozen, deterministically ordered copy of the whole registry.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Help text and kind per family name, sorted by name.
    pub families: BTreeMap<String, (String, MetricKind)>,
    /// All series, sorted by `(name, labels)`.
    pub samples: Vec<Sample>,
}

enum Instrument {
    Counter(Counter),
    FloatCounter(FloatCounter),
    Gauge(Gauge),
    FloatGauge(FloatGauge),
    Histogram(ObsHistogram),
    TimeHistogram(TimeHistogram),
}

impl Instrument {
    fn sample(&self) -> SampleValue {
        match self {
            Instrument::Counter(c) => SampleValue::Uint(c.get()),
            Instrument::FloatCounter(c) => SampleValue::Float(c.get()),
            Instrument::Gauge(g) => SampleValue::Int(g.get()),
            Instrument::FloatGauge(g) => SampleValue::Float(g.get()),
            Instrument::Histogram(h) => SampleValue::Histogram(h.snapshot()),
            Instrument::TimeHistogram(h) => SampleValue::TimeHistogram(h.snapshot()),
        }
    }
}

type SeriesKey = (String, Vec<(String, String)>);

/// Sharded registry of metric series.
///
/// Cheap to share (`Arc<Registry>`); see the module docs for the locking
/// model. Every [`crate::ObsSession`] and every
/// `horus_harness::Harness` owns (or is handed) one of these.
pub struct Registry {
    families: Mutex<BTreeMap<String, (String, MetricKind)>>,
    shards: Vec<Mutex<HashMap<SeriesKey, Arc<Instrument>>>>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Registry {
            families: Mutex::new(BTreeMap::new()),
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
        }
    }

    /// Creates an empty registry behind an `Arc`, the usual sharing shape.
    #[must_use]
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    fn register(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Instrument,
        kind: MetricKind,
    ) -> Arc<Instrument> {
        debug_assert!(valid_metric_name(name), "invalid metric name: {name:?}");
        {
            let mut fam = self.families.lock().expect("obs registry poisoned");
            let entry = fam
                .entry(name.to_string())
                .or_insert_with(|| (help.to_string(), kind));
            assert!(
                entry.1 == kind,
                "metric {name:?} re-registered as {kind:?}, was {:?}",
                entry.1
            );
        }
        let mut key_labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| {
                debug_assert!(valid_metric_name(k), "invalid label name: {k:?}");
                ((*k).to_string(), (*v).to_string())
            })
            .collect();
        key_labels.sort();
        let key: SeriesKey = (name.to_string(), key_labels);
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        let shard = &self.shards[(hasher.finish() as usize) % SHARDS];
        let mut map = shard.lock().expect("obs registry shard poisoned");
        Arc::clone(map.entry(key).or_insert_with(|| Arc::new(make())))
    }

    /// Registers (or retrieves) an integer counter series.
    ///
    /// # Panics
    /// Panics if `name` was previously registered with a different kind.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        let inst = self.register(
            name,
            help,
            labels,
            || Instrument::Counter(Counter(Arc::new(AtomicU64::new(0)))),
            MetricKind::Counter,
        );
        match &*inst {
            Instrument::Counter(c) => c.clone(),
            _ => panic!("metric {name:?} is not an integer counter"),
        }
    }

    /// Registers (or retrieves) a floating-point counter series.
    ///
    /// # Panics
    /// Panics if `name` was previously registered with a different kind.
    pub fn float_counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> FloatCounter {
        let inst = self.register(
            name,
            help,
            labels,
            || Instrument::FloatCounter(FloatCounter(Arc::new(AtomicU64::new(0)))),
            MetricKind::Counter,
        );
        match &*inst {
            Instrument::FloatCounter(c) => c.clone(),
            _ => panic!("metric {name:?} is not a float counter"),
        }
    }

    /// Registers (or retrieves) an integer gauge series.
    ///
    /// # Panics
    /// Panics if `name` was previously registered with a different kind.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        let inst = self.register(
            name,
            help,
            labels,
            || Instrument::Gauge(Gauge(Arc::new(AtomicI64::new(0)))),
            MetricKind::Gauge,
        );
        match &*inst {
            Instrument::Gauge(g) => g.clone(),
            _ => panic!("metric {name:?} is not an integer gauge"),
        }
    }

    /// Registers (or retrieves) a floating-point gauge series.
    ///
    /// # Panics
    /// Panics if `name` was previously registered with a different kind.
    pub fn float_gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> FloatGauge {
        let inst = self.register(
            name,
            help,
            labels,
            || Instrument::FloatGauge(FloatGauge(Arc::new(AtomicU64::new(0)))),
            MetricKind::Gauge,
        );
        match &*inst {
            Instrument::FloatGauge(g) => g.clone(),
            _ => panic!("metric {name:?} is not a float gauge"),
        }
    }

    /// Registers (or retrieves) a power-of-two histogram series.
    ///
    /// # Panics
    /// Panics if `name` was previously registered with a different kind.
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> ObsHistogram {
        let inst = self.register(
            name,
            help,
            labels,
            || Instrument::Histogram(ObsHistogram(Arc::new(HistogramCore::new()))),
            MetricKind::Histogram,
        );
        match &*inst {
            Instrument::Histogram(h) => h.clone(),
            _ => panic!("metric {name:?} is not a histogram"),
        }
    }

    /// Registers (or retrieves) a duration histogram series (recorded
    /// in microseconds, exposed in seconds).
    ///
    /// # Panics
    /// Panics if `name` was previously registered with a different kind.
    pub fn time_histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> TimeHistogram {
        let inst = self.register(
            name,
            help,
            labels,
            || Instrument::TimeHistogram(TimeHistogram(Arc::new(HistogramCore::new()))),
            MetricKind::Histogram,
        );
        match &*inst {
            Instrument::TimeHistogram(h) => h.clone(),
            _ => panic!("metric {name:?} is not a time histogram"),
        }
    }

    /// Freezes the registry into a deterministically ordered [`Snapshot`].
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        let families = self.families.lock().expect("obs registry poisoned").clone();
        let mut samples = Vec::new();
        for shard in &self.shards {
            let map = shard.lock().expect("obs registry shard poisoned");
            for ((name, labels), inst) in map.iter() {
                samples.push(Sample {
                    name: name.clone(),
                    labels: labels.clone(),
                    value: inst.sample(),
                });
            }
        }
        samples.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        Snapshot { families, samples }
    }
}

/// Returns true if `s` is a valid Prometheus metric or label name
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`).
#[must_use]
pub fn valid_metric_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_roundtrip_and_idempotent_registration() {
        let reg = Registry::new();
        let a = reg.counter("t_total", "help", &[("scheme", "Horus")]);
        let b = reg.counter("t_total", "other help ignored", &[("scheme", "Horus")]);
        a.add(3);
        b.inc();
        assert_eq!(a.get(), 4);
        let other = reg.counter("t_total", "help", &[("scheme", "Base-LU")]);
        other.inc();
        assert_eq!(other.get(), 1);
        assert_eq!(a.get(), 4);
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let reg = Registry::new();
        reg.counter("z_total", "z", &[]).add(1);
        reg.gauge("a_depth", "a", &[]).set(-2);
        reg.counter("m_total", "m", &[("w", "1")]).add(5);
        reg.counter("m_total", "m", &[("w", "0")]).add(7);
        let snap = reg.snapshot();
        let names: Vec<_> = snap
            .samples
            .iter()
            .map(|s| (s.name.clone(), s.labels.clone()))
            .collect();
        assert_eq!(
            names,
            vec![
                ("a_depth".into(), vec![]),
                ("m_total".into(), vec![("w".into(), "0".into())]),
                ("m_total".into(), vec![("w".into(), "1".into())]),
                ("z_total".into(), vec![]),
            ]
        );
        assert_eq!(snap.samples[1].value, SampleValue::Uint(7));
    }

    #[test]
    #[should_panic(expected = "re-registered")]
    fn kind_conflict_panics() {
        let reg = Registry::new();
        reg.counter("dual", "h", &[]);
        reg.gauge("dual", "h", &[]);
    }

    #[test]
    fn float_counter_accumulates_and_ignores_negative() {
        let reg = Registry::new();
        let f = reg.float_counter("busy_seconds_total", "h", &[("worker", "0")]);
        f.add(0.5);
        f.add(0.25);
        f.add(-1.0);
        f.add(f64::NAN);
        assert!((f.get() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn histogram_buckets_power_of_two() {
        let reg = Registry::new();
        let h = reg.histogram("lat", "h", &[]);
        h.observe(1); // bucket 0 (<=1)
        h.observe(2); // bucket 1 (<=2)
        h.observe(3); // bucket 2 (<=4)
        h.observe(1u64 << 40); // overflow bucket
        let snap = reg.snapshot();
        match &snap.samples[0].value {
            SampleValue::Histogram(hs) => {
                assert_eq!(hs.count, 4);
                assert_eq!(hs.sum, 6 + (1u64 << 40));
                assert_eq!(hs.buckets[0], 1);
                assert_eq!(hs.buckets[1], 1);
                assert_eq!(hs.buckets[2], 1);
                assert_eq!(hs.buckets[HIST_BUCKETS], 1);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn time_histogram_buckets_microseconds_reports_seconds() {
        let reg = Registry::new();
        let h = reg.time_histogram("stage_seconds", "h", &[("stage", "queued")]);
        h.observe_seconds(0.000_001); // 1 us -> bucket 0
        h.observe_seconds(0.003); // 3000 us -> bucket 12 (<= 4096)
        h.observe_seconds(-1.0); // ignored
        h.observe_seconds(f64::NAN); // ignored
        assert_eq!(h.count(), 2);
        let snap = reg.snapshot();
        match &snap.samples[0].value {
            SampleValue::TimeHistogram(hs) => {
                assert_eq!(hs.count, 2);
                assert_eq!(hs.sum, 3001);
                assert!((hs.seconds_sum() - 0.003_001).abs() < 1e-12);
                assert_eq!(hs.buckets[0], 1);
                assert_eq!(hs.buckets[12], 1);
                assert!((HistogramSnapshot::seconds_bound(12) - 0.004_096).abs() < 1e-12);
            }
            other => panic!("expected time histogram, got {other:?}"),
        }
        assert_eq!(
            snap.families.get("stage_seconds").map(|f| f.1),
            Some(MetricKind::Histogram)
        );
    }

    #[test]
    fn traced_observations_store_last_exemplar_per_bucket() {
        let reg = Registry::new();
        let h = reg.time_histogram("req_seconds", "h", &[("route", "/v1/jobs")]);
        h.observe_seconds(0.001); // untraced: no exemplar vector yet
        let untraced = match &reg.snapshot().samples[0].value {
            SampleValue::TimeHistogram(hs) => hs.clone(),
            other => panic!("expected time histogram, got {other:?}"),
        };
        assert!(untraced.exemplars.is_empty(), "{untraced:?}");

        h.observe_seconds_traced(0.001, Some("aaaa"));
        h.observe_seconds_traced(0.001, Some("bbbb")); // same bucket: last wins
        h.observe_seconds_traced(2.0, Some("cccc"));
        h.observe_seconds_traced(2.0, None); // keeps cccc
        let snap = match &reg.snapshot().samples[0].value {
            SampleValue::TimeHistogram(hs) => hs.clone(),
            other => panic!("expected time histogram, got {other:?}"),
        };
        assert_eq!(snap.exemplars.len(), HIST_BUCKETS + 1);
        let placed: Vec<&(String, u64)> = snap.exemplars.iter().flatten().collect();
        assert_eq!(placed.len(), 2, "{placed:?}");
        assert_eq!(placed[0], &("bbbb".to_string(), 1000));
        assert_eq!(placed[1], &("cccc".to_string(), 2_000_000));
        assert_eq!(snap.count, 5);
    }

    #[test]
    fn name_validation() {
        assert!(valid_metric_name("horus_jobs_total"));
        assert!(valid_metric_name("_x:y"));
        assert!(!valid_metric_name("9lives"));
        assert!(!valid_metric_name("has space"));
        assert!(!valid_metric_name(""));
    }
}
