//! Prometheus/OpenMetrics text exposition (format version 0.0.4).
//!
//! [`render`] turns a [`Snapshot`] into the plain-text format every
//! Prometheus-compatible scraper understands:
//!
//! ```text
//! # HELP horus_harness_jobs_completed_total Jobs that ran to completion.
//! # TYPE horus_harness_jobs_completed_total counter
//! horus_harness_jobs_completed_total 5
//! ```
//!
//! Snapshots are already sorted by `(name, labels)` (see
//! [`crate::registry`]), so the rendered text is byte-deterministic for
//! identical recorded values.
//!
//! ## The determinism rule
//!
//! Some families are *host- or timing-dependent by construction* — wall
//! times, CPU seconds, RSS, allocation counts, live rates, per-worker
//! series — and legitimately differ between runs and between `--jobs`
//! levels. Golden tests and cross-run comparisons must exclude exactly
//! those. The rule is purely name-based so it can be re-implemented by any
//! consumer: a family is host/timing-dependent iff its name
//!
//! * starts with `horus_host_`, `horus_fleet_` (fleet scheduling —
//!   who leased what, when, and how often leases expired — is
//!   legitimately run-dependent even though the merged results are not),
//!   `horus_service_` (admission depends on client arrival order and
//!   wall-clock bucket refill, even though the results served are not),
//!   or `horus_http_` (request traffic is inherently run-dependent), or
//! * contains `_seconds`, `_bytes`, or `worker`, or
//! * ends with `_per_second`.
//!
//! [`is_deterministic_metric`] implements the rule and
//! [`deterministic_subset`] applies it to a snapshot.
//!
//! ## Exemplars
//!
//! Histogram buckets whose snapshot carries a trace-id exemplar render
//! with the OpenMetrics exemplar suffix:
//!
//! ```text
//! horus_http_request_seconds_bucket{route="/v1/jobs",le="0.004096"} 3 # {trace_id="9f8a6c2d01b4e37f"} 0.0031
//! ```
//!
//! Exemplars only exist on buckets that saw a *traced* observation
//! ([`crate::TimeHistogram::observe_seconds_traced`]), so untraced
//! registries render byte-identically to the pre-exemplar format.

use crate::registry::{HistogramSnapshot, Sample, SampleValue, Snapshot};

/// Returns true if the family `name` is expected to be identical across
/// runs and worker counts for the same plan (see the module docs for the
/// exact rule).
#[must_use]
pub fn is_deterministic_metric(name: &str) -> bool {
    !(name.starts_with("horus_host_")
        || name.starts_with("horus_fleet_")
        || name.starts_with("horus_service_")
        || name.starts_with("horus_http_")
        || name.contains("_seconds")
        || name.contains("_bytes")
        || name.contains("worker")
        || name.ends_with("_per_second"))
}

/// Returns a copy of `snap` restricted to deterministic families.
#[must_use]
pub fn deterministic_subset(snap: &Snapshot) -> Snapshot {
    Snapshot {
        families: snap
            .families
            .iter()
            .filter(|(name, _)| is_deterministic_metric(name))
            .map(|(name, fam)| (name.clone(), fam.clone()))
            .collect(),
        samples: snap
            .samples
            .iter()
            .filter(|s| is_deterministic_metric(&s.name))
            .cloned()
            .collect(),
    }
}

/// Renders a snapshot as Prometheus text exposition format 0.0.4.
#[must_use]
pub fn render(snap: &Snapshot) -> String {
    let mut out = String::new();
    let mut last_family: Option<&str> = None;
    for sample in &snap.samples {
        if last_family != Some(sample.name.as_str()) {
            if let Some((help, kind)) = snap.families.get(&sample.name) {
                out.push_str("# HELP ");
                out.push_str(&sample.name);
                out.push(' ');
                out.push_str(&escape_help(help));
                out.push('\n');
                out.push_str("# TYPE ");
                out.push_str(&sample.name);
                out.push(' ');
                out.push_str(kind.as_str());
                out.push('\n');
            }
            last_family = Some(sample.name.as_str());
        }
        render_sample(&mut out, sample);
    }
    out
}

fn render_sample(out: &mut String, sample: &Sample) {
    match &sample.value {
        SampleValue::Uint(v) => {
            render_series(
                out,
                &sample.name,
                &sample.labels,
                None,
                &v.to_string(),
                None,
            );
        }
        SampleValue::Int(v) => {
            render_series(
                out,
                &sample.name,
                &sample.labels,
                None,
                &v.to_string(),
                None,
            );
        }
        SampleValue::Float(v) => {
            render_series(
                out,
                &sample.name,
                &sample.labels,
                None,
                &fmt_float(*v),
                None,
            );
        }
        SampleValue::Histogram(h) => render_histogram(out, sample, h),
        SampleValue::TimeHistogram(h) => render_time_histogram(out, sample, h),
    }
}

/// The exemplar attached to bucket `i` of `h`, with its raw value
/// formatted by `fmt` — `(trace_id, formatted value)`.
fn bucket_exemplar(
    h: &HistogramSnapshot,
    i: usize,
    fmt: impl Fn(u64) -> String,
) -> Option<(String, String)> {
    h.exemplars
        .get(i)
        .and_then(Option::as_ref)
        .map(|(trace, raw)| (trace.clone(), fmt(*raw)))
}

fn render_histogram(out: &mut String, sample: &Sample, h: &HistogramSnapshot) {
    let bucket_name = format!("{}_bucket", sample.name);
    let mut cumulative = 0u64;
    for (i, count) in h.buckets.iter().enumerate() {
        cumulative += count;
        let le = if i < HistogramSnapshot::finite_buckets() {
            HistogramSnapshot::bound(i).to_string()
        } else {
            "+Inf".to_string()
        };
        render_series(
            out,
            &bucket_name,
            &sample.labels,
            Some(("le", &le)),
            &cumulative.to_string(),
            bucket_exemplar(h, i, |raw| raw.to_string()),
        );
    }
    render_series(
        out,
        &format!("{}_sum", sample.name),
        &sample.labels,
        None,
        &h.sum.to_string(),
        None,
    );
    render_series(
        out,
        &format!("{}_count", sample.name),
        &sample.labels,
        None,
        &h.count.to_string(),
        None,
    );
}

/// Like [`render_histogram`], but the buckets hold microseconds and the
/// family is named in seconds: `le` bounds, `_sum`, and exemplar values
/// convert to float seconds, `_count` stays an integer.
fn render_time_histogram(out: &mut String, sample: &Sample, h: &HistogramSnapshot) {
    let bucket_name = format!("{}_bucket", sample.name);
    let mut cumulative = 0u64;
    for (i, count) in h.buckets.iter().enumerate() {
        cumulative += count;
        let le = if i < HistogramSnapshot::finite_buckets() {
            fmt_float(HistogramSnapshot::seconds_bound(i))
        } else {
            "+Inf".to_string()
        };
        render_series(
            out,
            &bucket_name,
            &sample.labels,
            Some(("le", &le)),
            &cumulative.to_string(),
            bucket_exemplar(h, i, |raw| fmt_float(raw as f64 / 1e6)),
        );
    }
    render_series(
        out,
        &format!("{}_sum", sample.name),
        &sample.labels,
        None,
        &fmt_float(h.seconds_sum()),
        None,
    );
    render_series(
        out,
        &format!("{}_count", sample.name),
        &sample.labels,
        None,
        &h.count.to_string(),
        None,
    );
}

fn render_series(
    out: &mut String,
    name: &str,
    labels: &[(String, String)],
    extra: Option<(&str, &str)>,
    value: &str,
    exemplar: Option<(String, String)>,
) {
    out.push_str(name);
    if !labels.is_empty() || extra.is_some() {
        out.push('{');
        let mut first = true;
        for (k, v) in labels {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(k);
            out.push_str("=\"");
            out.push_str(&escape_label_value(v));
            out.push('"');
        }
        if let Some((k, v)) = extra {
            if !first {
                out.push(',');
            }
            out.push_str(k);
            out.push_str("=\"");
            out.push_str(&escape_label_value(v));
            out.push('"');
        }
        out.push('}');
    }
    out.push(' ');
    out.push_str(value);
    if let Some((trace, exemplar_value)) = exemplar {
        // OpenMetrics exemplar suffix. Trace ids are hex strings from
        // our own minter, but escape anyway so a hostile id cannot
        // corrupt the exposition.
        out.push_str(" # {trace_id=\"");
        out.push_str(&escape_label_value(&trace));
        out.push_str("\"} ");
        out.push_str(&exemplar_value);
    }
    out.push('\n');
}

/// Formats a float the way the exposition format expects (`Display`,
/// which prints integral values without a trailing `.0`).
#[must_use]
pub fn fmt_float(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

fn escape_label_value(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn renders_counter_gauge_and_labels() {
        let reg = Registry::new();
        reg.counter("jobs_total", "All jobs.", &[("scheme", "Horus")])
            .add(3);
        reg.gauge("queue_depth", "Jobs waiting.", &[]).set(2);
        let text = render(&reg.snapshot());
        assert_eq!(
            text,
            "# HELP jobs_total All jobs.\n\
             # TYPE jobs_total counter\n\
             jobs_total{scheme=\"Horus\"} 3\n\
             # HELP queue_depth Jobs waiting.\n\
             # TYPE queue_depth gauge\n\
             queue_depth 2\n"
        );
    }

    #[test]
    fn renders_histogram_cumulative_buckets() {
        let reg = Registry::new();
        let h = reg.histogram("lat", "Latency.", &[]);
        h.observe(1);
        h.observe(3);
        let text = render(&reg.snapshot());
        assert!(text.contains("lat_bucket{le=\"1\"} 1\n"));
        assert!(text.contains("lat_bucket{le=\"4\"} 2\n"));
        assert!(text.contains("lat_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("lat_sum 4\n"));
        assert!(text.contains("lat_count 2\n"));
        // Buckets are cumulative: every bucket after le=4 also reads 2.
        assert!(text.contains("lat_bucket{le=\"8\"} 2\n"));
    }

    #[test]
    fn renders_time_histogram_in_seconds() {
        let reg = Registry::new();
        let h = reg.time_histogram("stage_seconds", "Stage latency.", &[("stage", "queued")]);
        h.observe_seconds(0.000_001); // 1 us
        h.observe_seconds(0.000_002); // 2 us
        let text = render(&reg.snapshot());
        assert!(text.contains("# TYPE stage_seconds histogram\n"), "{text}");
        assert!(
            text.contains("stage_seconds_bucket{stage=\"queued\",le=\"0.000001\"} 1\n"),
            "{text}"
        );
        assert!(
            text.contains("stage_seconds_bucket{stage=\"queued\",le=\"0.000002\"} 2\n"),
            "{text}"
        );
        assert!(
            text.contains("stage_seconds_bucket{stage=\"queued\",le=\"+Inf\"} 2\n"),
            "{text}"
        );
        assert!(
            text.contains("stage_seconds_sum{stage=\"queued\"} 0.000003"),
            "{text}"
        );
        assert!(
            text.contains("stage_seconds_count{stage=\"queued\"} 2\n"),
            "{text}"
        );
    }

    #[test]
    fn determinism_rule() {
        assert!(is_deterministic_metric("horus_harness_jobs_total"));
        assert!(is_deterministic_metric("horus_scheme_memory_ops_total"));
        assert!(!is_deterministic_metric("horus_host_cpu_seconds_total"));
        assert!(!is_deterministic_metric(
            "horus_harness_worker_busy_seconds_total"
        ));
        assert!(!is_deterministic_metric("horus_harness_worker_threads"));
        assert!(!is_deterministic_metric(
            "horus_harness_episodes_per_second"
        ));
        assert!(!is_deterministic_metric("horus_host_peak_rss_bytes"));
        assert!(!is_deterministic_metric("horus_fleet_requeues_total"));
        assert!(!is_deterministic_metric("horus_fleet_leases_in_flight"));
        assert!(!is_deterministic_metric("horus_http_requests_total"));
        assert!(!is_deterministic_metric("horus_service_queue_age_seconds"));
    }

    #[test]
    fn exemplars_render_only_on_traced_buckets() {
        let reg = Registry::new();
        let h = reg.time_histogram("req_seconds", "Request latency.", &[("route", "/metrics")]);
        h.observe_seconds(0.000_001);
        let before = render(&reg.snapshot());
        assert!(!before.contains(" # {"), "{before}");

        h.observe_seconds_traced(0.000_002, Some("deadbeefcafe0123"));
        let after = render(&reg.snapshot());
        assert!(
            after.contains(
                "req_seconds_bucket{route=\"/metrics\",le=\"0.000002\"} 2 \
                 # {trace_id=\"deadbeefcafe0123\"} 0.000002\n"
            ),
            "{after}"
        );
        // Buckets without a traced observation stay suffix-free, and
        // the _sum/_count lines never carry exemplars.
        assert!(
            after.contains("req_seconds_bucket{route=\"/metrics\",le=\"0.000001\"} 1\n"),
            "{after}"
        );
        assert!(
            after.contains("req_seconds_sum{route=\"/metrics\"} 0.000003\n"),
            "{after}"
        );
        // Integer histograms format the exemplar value raw.
        let ih = reg.histogram("ops", "Ops.", &[]);
        ih.observe_traced(3, Some("aabb"));
        let text = render(&reg.snapshot());
        assert!(
            text.contains("ops_bucket{le=\"4\"} 1 # {trace_id=\"aabb\"} 3\n"),
            "{text}"
        );
    }

    #[test]
    fn escaping() {
        let reg = Registry::new();
        reg.counter("esc_total", "line1\nline2 \\ done", &[("p", "a\"b\\c")])
            .inc();
        let text = render(&reg.snapshot());
        assert!(text.contains("# HELP esc_total line1\\nline2 \\\\ done\n"));
        assert!(text.contains("esc_total{p=\"a\\\"b\\\\c\"} 1\n"));
    }
}
