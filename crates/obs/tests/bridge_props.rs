//! Property tests for the stats→metrics bridge (satellite S4).
//!
//! The bridge's contract is *observe-only*: mirroring a
//! `horus_sim::Stats` registry into an obs `Registry` must preserve
//! every counter (recoverable from the snapshot) and must never perturb
//! the `Stats` value itself — in particular its serialized `StatsRepr`
//! JSON, which the harness cache keys derive from. A bridge that
//! mutated stats would silently invalidate every memoized result.

use horus_sim::Stats;
use proptest::prelude::*;

/// A small closed key vocabulary, mirroring the simulator's interned
/// stat names (label-cardinality rule: never unbounded).
const KEYS: &[&str] = &[
    "mem.read.data",
    "mem.write.data",
    "mem.write.meta",
    "macop.verify",
    "macop.generate",
    "drain.flush",
    "cache.hit.l1",
    "cache.miss.llc",
];

/// Builds a `Stats` from generated counter and histogram-sample lists.
#[allow(dead_code)] // referenced only inside `proptest!` (a no-op offline)
fn build_stats(counters: &[(usize, u64)], samples: &[(usize, Vec<u64>)]) -> Stats {
    let mut stats = Stats::new();
    for &(key, value) in counters {
        stats.add(KEYS[key % KEYS.len()], value);
    }
    for (key, values) in samples {
        let key = format!("lat.{}", KEYS[key % KEYS.len()]);
        for &v in values {
            stats.record_sample(&key, v);
        }
    }
    stats
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every counter survives the registry round trip: mirror into a
    /// fresh registry, then fold the snapshot back into a `Stats`.
    #[test]
    fn mirror_preserves_every_counter(
        counters in prop::collection::vec((0usize..64, 0u64..1 << 48), 0..12),
        samples in prop::collection::vec(
            (0usize..64, prop::collection::vec(0u64..10_000, 1..20)), 0..4),
    ) {
        let stats = build_stats(&counters, &samples);
        let registry = horus_obs::Registry::shared();
        horus_obs::bridge::mirror_stats(&registry, &stats, &[]);
        let recovered = horus_obs::bridge::stats_from_snapshot(&registry.snapshot());
        let expected: Vec<(String, u64)> =
            stats.iter().map(|(k, v)| (k.to_owned(), v)).collect();
        let got: Vec<(String, u64)> =
            recovered.iter().map(|(k, v)| (k.to_owned(), v)).collect();
        prop_assert_eq!(got, expected);
    }

    /// Mirroring never perturbs the stats it reads: the serialized
    /// `StatsRepr` JSON is byte-identical before and after, so harness
    /// cache keys derived from it cannot change.
    #[test]
    fn mirror_never_perturbs_serialized_stats(
        counters in prop::collection::vec((0usize..64, 0u64..1 << 48), 0..12),
        samples in prop::collection::vec(
            (0usize..64, prop::collection::vec(0u64..10_000, 1..20)), 0..4),
    ) {
        let stats = build_stats(&counters, &samples);
        let before = serde_json::to_string(&stats)
            .map_err(|e| TestCaseError::fail(format!("serialize: {e}")))?;
        let registry = horus_obs::Registry::shared();
        horus_obs::bridge::mirror_stats(&registry, &stats, &[("scheme", "Horus-SLM")]);
        horus_obs::bridge::mirror_stats(&registry, &stats, &[("scheme", "Horus-DLM")]);
        let after = serde_json::to_string(&stats)
            .map_err(|e| TestCaseError::fail(format!("serialize: {e}")))?;
        prop_assert_eq!(before, after);
    }

    /// The bridge is additive: mirroring the same stats twice doubles
    /// every mirrored counter (fleet totals accumulate per job).
    #[test]
    fn mirror_accumulates(
        counters in prop::collection::vec((0usize..64, 0u64..1 << 48), 0..12),
    ) {
        let stats = build_stats(&counters, &[]);
        let registry = horus_obs::Registry::shared();
        horus_obs::bridge::mirror_stats(&registry, &stats, &[]);
        horus_obs::bridge::mirror_stats(&registry, &stats, &[]);
        let recovered = horus_obs::bridge::stats_from_snapshot(&registry.snapshot());
        for (key, value) in stats.iter() {
            prop_assert_eq!(recovered.get(key), value.saturating_mul(2), "{}", key);
        }
    }
}
