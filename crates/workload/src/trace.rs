//! Run-time access traces for examples and run-time experiments.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One memory operation in a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Store the given value pattern at the address.
    Write {
        /// Block-aligned physical address.
        addr: u64,
        /// Byte pattern filling the 64-byte block.
        value: u8,
    },
    /// Load the block at the address.
    Read {
        /// Block-aligned physical address.
        addr: u64,
    },
}

impl Op {
    /// The operation's address.
    #[must_use]
    pub fn addr(&self) -> u64 {
        match self {
            Op::Write { addr, .. } | Op::Read { addr } => *addr,
        }
    }
}

/// Parameters for synthetic run-time traces.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceConfig {
    /// Number of operations to generate.
    pub ops: usize,
    /// Fraction of writes in `[0, 1]`.
    pub write_fraction: f64,
    /// Size of the hot working set in blocks.
    pub working_set_blocks: u64,
    /// Probability that an access hits the hot set (temporal locality).
    pub locality: f64,
    /// Total addressable blocks.
    pub total_blocks: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self {
            ops: 10_000,
            write_fraction: 0.5,
            working_set_blocks: 1024,
            locality: 0.9,
            total_blocks: 1 << 20,
            seed: 42,
        }
    }
}

/// A generated trace of memory operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessTrace {
    ops: Vec<Op>,
}

impl AccessTrace {
    /// Generates a trace from `config`.
    ///
    /// # Panics
    ///
    /// Panics if fractions are outside `[0, 1]` or the block counts are
    /// zero.
    #[must_use]
    pub fn generate(config: &TraceConfig) -> Self {
        assert!(
            (0.0..=1.0).contains(&config.write_fraction),
            "write_fraction in [0,1]"
        );
        assert!((0.0..=1.0).contains(&config.locality), "locality in [0,1]");
        assert!(
            config.working_set_blocks > 0 && config.total_blocks > 0,
            "non-empty address space"
        );
        assert!(
            config.working_set_blocks <= config.total_blocks,
            "working set fits"
        );
        let mut rng = StdRng::seed_from_u64(config.seed);
        let ops = (0..config.ops)
            .map(|_| {
                let hot = rng.gen_bool(config.locality);
                let block = if hot {
                    rng.gen_range(0..config.working_set_blocks)
                } else {
                    rng.gen_range(0..config.total_blocks)
                };
                let addr = block * 64;
                if rng.gen_bool(config.write_fraction) {
                    Op::Write {
                        addr,
                        value: rng.gen(),
                    }
                } else {
                    Op::Read { addr }
                }
            })
            .collect();
        Self { ops }
    }

    /// The operations in order.
    #[must_use]
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Number of operations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the trace is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of write operations.
    #[must_use]
    pub fn writes(&self) -> usize {
        self.ops
            .iter()
            .filter(|o| matches!(o, Op::Write { .. }))
            .count()
    }
}

impl<'a> IntoIterator for &'a AccessTrace {
    type Item = &'a Op;
    type IntoIter = std::slice::Iter<'a, Op>;
    fn into_iter(self) -> Self::IntoIter {
        self.ops.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_generation() {
        let cfg = TraceConfig::default();
        assert_eq!(AccessTrace::generate(&cfg), AccessTrace::generate(&cfg));
    }

    #[test]
    fn respects_write_fraction_extremes() {
        let all_writes = AccessTrace::generate(&TraceConfig {
            write_fraction: 1.0,
            ops: 100,
            ..Default::default()
        });
        assert_eq!(all_writes.writes(), 100);
        let all_reads = AccessTrace::generate(&TraceConfig {
            write_fraction: 0.0,
            ops: 100,
            ..Default::default()
        });
        assert_eq!(all_reads.writes(), 0);
    }

    #[test]
    fn locality_concentrates_addresses() {
        let hot = AccessTrace::generate(&TraceConfig {
            locality: 1.0,
            working_set_blocks: 8,
            ops: 500,
            ..Default::default()
        });
        assert!(hot.ops().iter().all(|o| o.addr() < 8 * 64));
    }

    #[test]
    fn addresses_are_block_aligned() {
        let t = AccessTrace::generate(&TraceConfig::default());
        assert!(!t.is_empty());
        assert_eq!(t.len(), t.ops().len());
        assert!(t.ops().iter().all(|o| o.addr() % 64 == 0));
    }

    #[test]
    #[should_panic(expected = "write_fraction")]
    fn bad_fraction_rejected() {
        let _ = AccessTrace::generate(&TraceConfig {
            write_fraction: 1.5,
            ..Default::default()
        });
    }
}
