//! Crash-time cache-content generators.

use horus_cache::{Block, CacheHierarchy, BLOCK_SIZE};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// How the hierarchy is filled with dirty lines at crash time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FillPattern {
    /// The paper's worst case (§V-A): consecutive lines at least
    /// `min_stride` bytes apart in physical address. The generator uses
    /// the smallest odd block stride ≥ `min_stride`, so consecutive
    /// lines also cycle through all cache sets (a power-of-two stride
    /// would alias to a single set and could not fill the caches).
    StridedSparse {
        /// Minimum byte distance between consecutive lines (paper:
        /// 16 KiB).
        min_stride: u64,
    },
    /// Consecutive blocks from `base` — maximal metadata locality, the
    /// baseline's best case.
    DenseSequential {
        /// Starting physical address (block-aligned).
        base: u64,
    },
    /// Seeded uniform-random distinct block addresses.
    UniformRandom {
        /// RNG seed.
        seed: u64,
    },
}

/// Deterministic pseudo-random contents for the block at `addr`:
/// recovery tests recompute the expected bytes from `(seed, addr)` alone.
#[must_use]
pub fn block_data(seed: u64, addr: u64) -> Block {
    // splitmix64 per 8-byte lane.
    let mut out = [0u8; BLOCK_SIZE];
    for lane in 0..8u64 {
        let mut z = seed ^ addr.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ (lane << 56);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        out[lane as usize * 8..(lane as usize + 1) * 8].copy_from_slice(&z.to_le_bytes());
    }
    out
}

/// Fills **every line of every level** with a distinct dirty block — the
/// worst case the EPD hold-up budget must be provisioned for — and
/// returns the `(address, data)` pairs installed.
///
/// # Panics
///
/// Panics if `data_bytes` cannot host the pattern (e.g. the stride walks
/// past the data region), or if a strided/dense fill unexpectedly causes
/// an eviction (an internal invariant: these patterns are constructed to
/// fill sets exactly).
pub fn fill_hierarchy(
    hierarchy: &mut CacheHierarchy,
    pattern: FillPattern,
    data_bytes: u64,
    seed: u64,
) -> Vec<(u64, Block)> {
    let total: u64 = hierarchy.levels().iter().map(|c| c.capacity_lines()).sum();
    let mut installed = Vec::with_capacity(total as usize);

    match pattern {
        FillPattern::StridedSparse { min_stride } => {
            let mut k = min_stride.div_ceil(BLOCK_SIZE as u64) | 1; // odd block stride
            let max_k = (data_bytes / BLOCK_SIZE as u64) / total;
            assert!(
                max_k >= 1,
                "data region too small for {total} strided lines"
            );
            if k > max_k {
                // Shrink to fit the data region, keeping the stride odd
                // (the paper itself derives the stride as memory size /
                // hierarchy size).
                k = (max_k | 1).max(1);
                if k > max_k {
                    k -= 2;
                }
                assert!(k >= 1, "data region too small for a sparse fill");
            }
            let mut g = 0u64;
            for level in 0..3 {
                let cache = hierarchy.level_mut(level);
                for _ in 0..cache.capacity_lines() {
                    let addr = g * k * BLOCK_SIZE as u64;
                    assert!(addr < data_bytes, "stride walked out of the data region");
                    let data = block_data(seed, addr);
                    let evicted = cache.insert(addr, data, true);
                    assert!(evicted.is_none(), "strided fill must not evict (g={g})");
                    installed.push((addr, data));
                    g += 1;
                }
            }
        }
        FillPattern::DenseSequential { base } => {
            assert!(base % BLOCK_SIZE as u64 == 0, "base must be block-aligned");
            let mut g = 0u64;
            for level in 0..3 {
                let cache = hierarchy.level_mut(level);
                for _ in 0..cache.capacity_lines() {
                    let addr = base + g * BLOCK_SIZE as u64;
                    assert!(
                        addr < data_bytes,
                        "dense fill walked out of the data region"
                    );
                    let data = block_data(seed, addr);
                    let evicted = cache.insert(addr, data, true);
                    assert!(evicted.is_none(), "dense fill must not evict (g={g})");
                    installed.push((addr, data));
                    g += 1;
                }
            }
        }
        FillPattern::UniformRandom { seed: rseed } => {
            let mut rng = StdRng::seed_from_u64(rseed);
            let blocks = data_bytes / BLOCK_SIZE as u64;
            let mut used = std::collections::HashSet::new();
            for level in 0..3 {
                let cache = hierarchy.level_mut(level);
                let capacity = cache.capacity_lines();
                let ways = cache.geometry().ways() as u32;
                let mut set_fill = vec![0u32; cache.geometry().num_sets() as usize];
                let mut filled = 0u64;
                let mut attempts = 0u64;
                while filled < capacity {
                    attempts += 1;
                    assert!(
                        attempts < capacity * 1000,
                        "random fill could not place {capacity} lines"
                    );
                    let addr = rng.gen_range(0..blocks) * BLOCK_SIZE as u64;
                    if !used.insert(addr) {
                        continue;
                    }
                    // Rejection-sample full sets so the fill is exact.
                    let set = cache.geometry().set_of(addr) as usize;
                    if set_fill[set] >= ways {
                        used.remove(&addr);
                        continue;
                    }
                    set_fill[set] += 1;
                    let data = block_data(seed, addr);
                    let evicted = cache.insert(addr, data, true);
                    assert!(evicted.is_none(), "random fill must not evict");
                    installed.push((addr, data));
                    filled += 1;
                }
            }
        }
    }
    installed
}

#[cfg(test)]
mod tests {
    use super::*;
    use horus_cache::HierarchyConfig;

    fn tiny() -> CacheHierarchy {
        CacheHierarchy::new(&HierarchyConfig {
            l1_bytes: 8 * 64,
            l1_ways: 2,
            l2_bytes: 16 * 64,
            l2_ways: 2,
            llc_bytes: 64 * 64,
            llc_ways: 4,
        })
    }

    #[test]
    fn strided_fill_fills_everything() {
        let mut h = tiny();
        let lines = fill_hierarchy(
            &mut h,
            FillPattern::StridedSparse { min_stride: 16384 },
            32 << 20,
            1,
        );
        assert_eq!(lines.len(), 88);
        assert_eq!(h.dirty_unique(), 88);
        // All addresses distinct and >= 16 KB apart in generation order.
        for w in lines.windows(2) {
            assert!(w[1].0 - w[0].0 >= 16384, "{:#x} then {:#x}", w[0].0, w[1].0);
        }
    }

    #[test]
    fn strided_fill_shrinks_stride_to_fit() {
        let mut h = tiny();
        // 88 lines x 16 KiB would need 1.4 MB; give only 1 MB.
        let lines = fill_hierarchy(
            &mut h,
            FillPattern::StridedSparse { min_stride: 16384 },
            1 << 20,
            1,
        );
        assert_eq!(lines.len(), 88);
        assert!(lines.iter().all(|(a, _)| *a < (1 << 20)));
    }

    #[test]
    fn dense_fill_is_contiguous() {
        let mut h = tiny();
        let lines = fill_hierarchy(
            &mut h,
            FillPattern::DenseSequential { base: 4096 },
            1 << 20,
            2,
        );
        assert_eq!(lines.len(), 88);
        assert_eq!(lines[0].0, 4096);
        assert_eq!(lines[87].0, 4096 + 87 * 64);
    }

    #[test]
    fn random_fill_is_deterministic_and_exact() {
        let mut h1 = tiny();
        let a = fill_hierarchy(&mut h1, FillPattern::UniformRandom { seed: 7 }, 1 << 24, 3);
        let mut h2 = tiny();
        let b = fill_hierarchy(&mut h2, FillPattern::UniformRandom { seed: 7 }, 1 << 24, 3);
        assert_eq!(a, b);
        assert_eq!(a.len(), 88);
        let distinct: std::collections::HashSet<u64> = a.iter().map(|(x, _)| *x).collect();
        assert_eq!(distinct.len(), 88);
    }

    #[test]
    fn block_data_is_deterministic_and_addr_sensitive() {
        assert_eq!(block_data(1, 64), block_data(1, 64));
        assert_ne!(block_data(1, 64), block_data(1, 128));
        assert_ne!(block_data(1, 64), block_data(2, 64));
    }

    #[test]
    fn installed_matches_drain_order_contents() {
        let mut h = tiny();
        let lines = fill_hierarchy(
            &mut h,
            FillPattern::StridedSparse { min_stride: 16384 },
            32 << 20,
            9,
        );
        let drained: std::collections::HashMap<u64, Block> = h.drain_order().into_iter().collect();
        assert_eq!(drained.len(), lines.len());
        for (addr, data) in lines {
            assert_eq!(drained[&addr], data);
        }
    }
}
