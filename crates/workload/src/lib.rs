//! Workload generation for the Horus secure-EPD reproduction.
//!
//! The paper's evaluation does not run SPEC workloads: it studies the
//! *worst-case* drain, so what matters is the crash-time content of the
//! cache hierarchy. [`fill`] installs such snapshots:
//!
//! * [`FillPattern::StridedSparse`] — the paper's methodology (§V-A):
//!   dirty lines at least 16 KB apart, destroying all spatial locality
//!   in the security-metadata caches (the baseline's nightmare; Horus is
//!   oblivious to it);
//! * [`FillPattern::DenseSequential`] — maximal locality, the baseline's
//!   best case (used by the stride-sensitivity ablation);
//! * [`FillPattern::UniformRandom`] — seeded random block addresses.
//!
//! [`trace`] additionally generates run-time access traces for the
//! examples and run-time experiments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fill;
pub mod trace;
pub mod tracefile;

pub use fill::{block_data, fill_hierarchy, FillPattern};
pub use trace::{AccessTrace, Op, TraceConfig};
pub use tracefile::{parse_trace, render_trace, ParseTraceError, TraceOp};
