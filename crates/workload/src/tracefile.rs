//! A plain-text trace format, so externally generated workloads can
//! drive the simulator (`horus-cli trace --file …`).
//!
//! One operation per line:
//!
//! ```text
//! # comment (also after '#' on a line)
//! W <addr> <byte>     store <byte> repeated across the block
//! R <addr>            load
//! P <addr> <byte>     durable store (persist)
//! ```
//!
//! Addresses accept decimal or `0x…` hex and must be 64-byte aligned.

use crate::trace::Op;
use std::fmt::Write as _;

/// A trace operation including durable stores (the plain [`Op`] carries
/// only loads and stores).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceOp {
    /// A volatile store.
    Write {
        /// Block-aligned address.
        addr: u64,
        /// Fill byte.
        value: u8,
    },
    /// A load.
    Read {
        /// Block-aligned address.
        addr: u64,
    },
    /// A durable store (goes through the persistence domain).
    Persist {
        /// Block-aligned address.
        addr: u64,
        /// Fill byte.
        value: u8,
    },
}

impl From<Op> for TraceOp {
    fn from(op: Op) -> Self {
        match op {
            Op::Write { addr, value } => TraceOp::Write { addr, value },
            Op::Read { addr } => TraceOp::Read { addr },
        }
    }
}

/// A parse failure, with the 1-based line it occurred on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseTraceError {}

fn parse_u64(token: &str) -> Result<u64, String> {
    let parsed = if let Some(hex) = token
        .strip_prefix("0x")
        .or_else(|| token.strip_prefix("0X"))
    {
        u64::from_str_radix(hex, 16)
    } else {
        token.parse()
    };
    parsed.map_err(|_| format!("invalid number '{token}'"))
}

fn parse_addr(token: &str) -> Result<u64, String> {
    let addr = parse_u64(token)?;
    if addr % 64 != 0 {
        return Err(format!("address {addr:#x} is not 64-byte aligned"));
    }
    Ok(addr)
}

fn parse_byte(token: &str) -> Result<u8, String> {
    let v = parse_u64(token)?;
    u8::try_from(v).map_err(|_| format!("value {v} does not fit a byte"))
}

/// Parses a text trace.
///
/// # Errors
///
/// [`ParseTraceError`] naming the first malformed line.
///
/// ```
/// use horus_workload::tracefile::{parse_trace, TraceOp};
/// let ops = parse_trace("W 0x40 7\nR 64 # re-read it\n").unwrap();
/// assert_eq!(ops, vec![
///     TraceOp::Write { addr: 0x40, value: 7 },
///     TraceOp::Read { addr: 64 },
/// ]);
/// ```
pub fn parse_trace(text: &str) -> Result<Vec<TraceOp>, ParseTraceError> {
    let mut ops = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let content = raw.split('#').next().unwrap_or("").trim();
        if content.is_empty() {
            continue;
        }
        let mut tokens = content.split_whitespace();
        let op = tokens.next().expect("non-empty line has a token");
        let err = |message: String| ParseTraceError { line, message };
        let mut need = |what: &str| {
            tokens.next().ok_or_else(|| ParseTraceError {
                line,
                message: format!("missing {what}"),
            })
        };
        let parsed = match op {
            "W" | "w" => {
                let addr = parse_addr(need("address")?).map_err(err)?;
                let value = parse_byte(need("value")?).map_err(err)?;
                TraceOp::Write { addr, value }
            }
            "R" | "r" => TraceOp::Read {
                addr: parse_addr(need("address")?).map_err(err)?,
            },
            "P" | "p" => {
                let addr = parse_addr(need("address")?).map_err(err)?;
                let value = parse_byte(need("value")?).map_err(err)?;
                TraceOp::Persist { addr, value }
            }
            other => {
                return Err(ParseTraceError {
                    line,
                    message: format!("unknown op '{other}' (expected W, R or P)"),
                })
            }
        };
        if let Some(extra) = tokens.next() {
            return Err(ParseTraceError {
                line,
                message: format!("trailing token '{extra}'"),
            });
        }
        ops.push(parsed);
    }
    Ok(ops)
}

/// Renders operations in the text format parsed by [`parse_trace`].
#[must_use]
pub fn render_trace(ops: &[TraceOp]) -> String {
    let mut out = String::new();
    for op in ops {
        match op {
            TraceOp::Write { addr, value } => {
                let _ = writeln!(out, "W {addr:#x} {value}");
            }
            TraceOp::Read { addr } => {
                let _ = writeln!(out, "R {addr:#x}");
            }
            TraceOp::Persist { addr, value } => {
                let _ = writeln!(out, "P {addr:#x} {value}");
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{AccessTrace, TraceConfig};

    #[test]
    fn parses_all_ops_and_comments() {
        let ops = parse_trace("# header\nW 0x40 255\nR 128   # inline comment\nP 0x1000 0\n\n  \n")
            .expect("valid trace");
        assert_eq!(
            ops,
            vec![
                TraceOp::Write {
                    addr: 0x40,
                    value: 255
                },
                TraceOp::Read { addr: 128 },
                TraceOp::Persist {
                    addr: 0x1000,
                    value: 0
                },
            ]
        );
    }

    #[test]
    fn roundtrip_render_parse() {
        let trace = AccessTrace::generate(&TraceConfig {
            ops: 200,
            ..Default::default()
        });
        let ops: Vec<TraceOp> = trace.ops().iter().map(|o| TraceOp::from(*o)).collect();
        let text = render_trace(&ops);
        assert_eq!(parse_trace(&text).expect("roundtrip"), ops);
    }

    #[test]
    fn rejects_unaligned_address() {
        let err = parse_trace("W 65 1").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("aligned"), "{err}");
    }

    #[test]
    fn rejects_bad_value() {
        let err = parse_trace("R 64\nW 64 300").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("byte"), "{err}");
    }

    #[test]
    fn rejects_unknown_op_and_trailing_tokens() {
        assert!(parse_trace("X 64")
            .unwrap_err()
            .message
            .contains("unknown op"));
        assert!(parse_trace("R 64 7")
            .unwrap_err()
            .message
            .contains("trailing"));
        assert!(parse_trace("W 64")
            .unwrap_err()
            .message
            .contains("missing value"));
    }

    #[test]
    fn error_display_names_the_line() {
        let err = parse_trace("R 64\nR sixty-four").unwrap_err();
        assert_eq!(
            format!("{err}"),
            "trace line 2: invalid number 'sixty-four'"
        );
    }
}
