//! Microbenchmarks of the cryptographic substrate.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use horus_crypto::{otp, Aes128, Cmac};

fn bench_aes(c: &mut Criterion) {
    let aes = Aes128::new(&[0x2b; 16]);
    let block = [0x5a_u8; 16];
    let mut g = c.benchmark_group("aes128");
    g.throughput(Throughput::Bytes(16));
    g.bench_function("encrypt_block", |b| {
        b.iter(|| aes.encrypt_block(black_box(&block)))
    });
    g.bench_function("decrypt_block", |b| {
        let ct = aes.encrypt_block(&block);
        b.iter(|| aes.decrypt_block(black_box(&ct)))
    });
    g.bench_function("key_schedule", |b| {
        b.iter(|| Aes128::new(black_box(&[0x2b; 16])))
    });
    g.finish();
}

fn bench_cmac(c: &mut Criterion) {
    let cmac = Cmac::new(&[0x77; 16]);
    let mut g = c.benchmark_group("cmac");
    for len in [64usize, 80] {
        let msg = vec![0xab_u8; len];
        g.throughput(Throughput::Bytes(len as u64));
        g.bench_function(format!("mac64_{len}B"), |b| {
            b.iter(|| cmac.mac64(black_box(&msg)))
        });
    }
    g.finish();
}

fn bench_otp(c: &mut Criterion) {
    let aes = Aes128::new(&[0x11; 16]);
    let data = [0xcd_u8; 64];
    let mut g = c.benchmark_group("ctr_mode");
    g.throughput(Throughput::Bytes(64));
    g.bench_function("one_time_pad", |b| {
        b.iter(|| otp::one_time_pad(&aes, black_box(0x4000), 9))
    });
    g.bench_function("encrypt_block_ctr", |b| {
        b.iter(|| otp::encrypt_block_ctr(&aes, black_box(0x4000), 9, &data))
    });
    g.finish();
}

criterion_group!(benches, bench_aes, bench_cmac, bench_otp);
criterion_main!(benches);
