//! Hot-path microbenchmarks guarding the `horus-turbo` optimizations:
//! AES single-block vs batched 64 B line, CMAC over the two message
//! sizes the metadata engine produces, event-queue push/pop/cancel,
//! NVM device read/write/rewind, and the full smoke-plan episode the
//! bench gate times.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use horus_core::{DrainScheme, SystemConfig};
use horus_crypto::{otp, Aes128, Cmac};
use horus_harness::JobSpec;
use horus_nvm::NvmDevice;
use horus_sim::queue::EventQueue;
use horus_sim::{Cycles, EpisodeShards};
use horus_workload::FillPattern;

const BLOCK_SIZE: usize = 64;

fn bench_aes(c: &mut Criterion) {
    let aes = Aes128::new(&[0x2b; 16]);
    let block = [0x5a_u8; 16];
    let batch: [[u8; 16]; 4] = [[0x5a; 16], [0xa5; 16], [0x0f; 16], [0xf0; 16]];
    let mut g = c.benchmark_group("aes128");
    g.throughput(Throughput::Bytes(16));
    g.bench_function("encrypt_block", |b| {
        b.iter(|| aes.encrypt_block(black_box(&block)))
    });
    g.throughput(Throughput::Bytes(64));
    g.bench_function("encrypt_batch4", |b| {
        b.iter(|| aes.encrypt4(black_box(&batch)))
    });
    g.bench_function("one_time_pad", |b| {
        b.iter(|| otp::one_time_pad(&aes, black_box(0x4000), 9))
    });
    g.finish();
}

fn bench_cmac(c: &mut Criterion) {
    let cmac = Cmac::new(&[0x77; 16]);
    let mut g = c.benchmark_group("cmac");
    // 64 B: BMT node MACs; 80 B: CHV entry MACs. Both hit the
    // complete-block fast path after the overhaul.
    for len in [64usize, 80] {
        let msg = vec![0xab_u8; len];
        g.throughput(Throughput::Bytes(len as u64));
        g.bench_function(format!("mac64_{len}B"), |b| {
            b.iter(|| cmac.mac64(black_box(&msg)))
        });
    }
    g.finish();
}

/// Pseudo-random but deterministic event times: a splitmix64 stream
/// folded into a small window so buckets see realistic collisions.
fn event_times(n: u64) -> Vec<u64> {
    let mut state = 0x9e37_79b9_7f4a_7c15_u64;
    (0..n)
        .map(|_| {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            (z ^ (z >> 31)) % 4096
        })
        .collect()
}

fn bench_event_queue(c: &mut Criterion) {
    let times = event_times(4096);
    let mut g = c.benchmark_group("event_queue");
    g.throughput(Throughput::Elements(4096));
    g.bench_function("push_pop_4096", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.schedule(Cycles(t), i as u32);
            }
            let mut acc = 0u64;
            while let Some((t, e)) = q.pop() {
                acc = acc.wrapping_add(t.0).wrapping_add(u64::from(e));
            }
            acc
        })
    });
    g.bench_function("cancel_from_4096", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.schedule(Cycles(t), i as u32);
            }
            q.cancel_from(Cycles(2048)).len()
        })
    });
    g.finish();
}

fn bench_nvm(c: &mut Criterion) {
    // 4096 blocks strided 4 KiB apart: one block per page, the
    // worst case for page-grained storage, and the paper's
    // strided-sparse drain pattern.
    let addrs: Vec<u64> = (0..4096u64).map(|i| i * 4096).collect();
    let data = [0xee_u8; BLOCK_SIZE];
    let mut written = NvmDevice::new();
    for &a in &addrs {
        written.write_block(a, data);
    }
    let mut g = c.benchmark_group("nvm");
    g.throughput(Throughput::Elements(4096));
    g.bench_function("write_4096_strided", |b| {
        b.iter(|| {
            let mut d = NvmDevice::new();
            for &a in &addrs {
                d.write_block(a, data);
            }
            d
        })
    });
    g.bench_function("read_4096_strided", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &a in &addrs {
                acc = acc.wrapping_add(u64::from(written.read_block(a)[0]));
            }
            acc
        })
    });
    g.bench_function("written_addrs_sorted", |b| {
        b.iter(|| written.written_addrs_sorted().len())
    });
    // Crash rewind: walk the journaled writes backwards restoring
    // pre-images, exactly as `NvmSystem::fire_crash` does.
    g.bench_function("rewind_4096", |b| {
        b.iter_with_setup(
            || written.clone(),
            |mut d| {
                for &a in addrs.iter().rev() {
                    let pre = [0u8; BLOCK_SIZE];
                    d.write_block(a, pre);
                }
                d
            },
        )
    });
    g.finish();
}

fn bench_episode(c: &mut Criterion) {
    let cfg = SystemConfig::small_test();
    let pattern = FillPattern::StridedSparse { min_stride: 16384 };
    let mut g = c.benchmark_group("episode");
    g.sample_size(10);
    // One full smoke-plan scheme comparison: the unit of work the
    // bench gate's ops_per_sec section times.
    g.bench_function("smoke_plan_all_schemes", |b| {
        b.iter(|| {
            DrainScheme::ALL
                .iter()
                .map(|&s| JobSpec::drain(&cfg, s, pattern).execute().drain.cycles)
                .sum::<u64>()
        })
    });
    g.bench_function("horus_dlm_drain", |b| {
        b.iter(|| {
            JobSpec::drain(&cfg, DrainScheme::HorusDlm, pattern)
                .execute()
                .drain
                .cycles
        })
    });
    g.finish();
}

/// The sharded episode core: the same five-scheme smoke set as
/// `episode/smoke_plan_all_schemes`, fanned out over worker-thread
/// pools of increasing size. The 1-thread entry is the serial
/// reference; the speedup curve flattens once the pool exceeds the
/// five independent episodes.
fn bench_sharded_core(c: &mut Criterion) {
    let cfg = SystemConfig::small_test();
    let pattern = FillPattern::StridedSparse { min_stride: 16384 };
    let mut g = c.benchmark_group("sharded_core");
    g.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        let shards = EpisodeShards::new(threads);
        g.bench_function(format!("smoke_plan_{threads}_threads"), |b| {
            b.iter(|| {
                let episodes = DrainScheme::ALL
                    .iter()
                    .map(|&s| {
                        let spec = JobSpec::drain(&cfg, s, pattern);
                        move || spec.execute().drain.cycles
                    })
                    .collect();
                shards.run(episodes).into_iter().sum::<u64>()
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_aes,
    bench_cmac,
    bench_event_queue,
    bench_nvm,
    bench_episode,
    bench_sharded_core
);
criterion_main!(benches);
