//! Microbenchmarks of the metadata engine, including the lazy-vs-eager
//! ablation and the metadata-cache-size sensitivity that DESIGN.md calls
//! out.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use horus_metadata::{MetadataCacheConfig, MetadataEngine, Platform, UpdateScheme};
use horus_nvm::AddressMap;
use horus_sim::Cycles;

fn map() -> AddressMap {
    AddressMap::new(64 << 20, 1024, 256)
}

fn bench_counter_paths(c: &mut Criterion) {
    let mut g = c.benchmark_group("counter_path");
    for scheme in [UpdateScheme::Lazy, UpdateScheme::Eager] {
        g.bench_with_input(
            BenchmarkId::new("increment_hit", scheme),
            &scheme,
            |b, &s| {
                let mut e =
                    MetadataEngine::new(map(), s, MetadataCacheConfig::paper_default(), &[7; 16]);
                let mut p = Platform::paper_default();
                e.increment_counter(&mut p, 0, Cycles::ZERO).unwrap();
                b.iter(|| {
                    e.increment_counter(&mut p, black_box(64), Cycles::ZERO)
                        .unwrap()
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("increment_miss_stream", scheme),
            &scheme,
            |b, &s| {
                let mut e =
                    MetadataEngine::new(map(), s, MetadataCacheConfig::paper_default(), &[7; 16]);
                let mut p = Platform::paper_default();
                let mut i = 0u64;
                b.iter(|| {
                    i += 1;
                    let addr = (i * 4096) % (64 << 20);
                    e.increment_counter(&mut p, black_box(addr), Cycles::ZERO)
                        .unwrap()
                })
            },
        );
    }
    g.finish();
}

fn bench_cache_size_sensitivity(c: &mut Criterion) {
    // Smaller metadata caches -> more misses and cascades per op.
    let mut g = c.benchmark_group("metadata_cache_size");
    g.sample_size(20);
    for kb in [16u64, 64, 256] {
        let caches = MetadataCacheConfig {
            counter_cache_bytes: kb * 1024,
            mac_cache_bytes: kb * 1024,
            tree_cache_bytes: kb * 1024,
            ways: 8,
            policy: horus_cache::ReplacementPolicy::Lru,
        };
        g.bench_function(BenchmarkId::from_parameter(format!("{kb}KB")), |b| {
            let mut e = MetadataEngine::new(map(), UpdateScheme::Lazy, caches, &[7; 16]);
            let mut p = Platform::paper_default();
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                let addr = (i * 4096) % (64 << 20);
                e.increment_counter(&mut p, black_box(addr), Cycles::ZERO)
                    .unwrap()
            })
        });
    }
    g.finish();
}

fn bench_flush(c: &mut Criterion) {
    let mut g = c.benchmark_group("flush_after_drain");
    g.sample_size(10);
    for scheme in [UpdateScheme::Lazy, UpdateScheme::Eager] {
        g.bench_with_input(BenchmarkId::from_parameter(scheme), &scheme, |b, &s| {
            b.iter_with_setup(
                || {
                    let mut e = MetadataEngine::new(
                        map(),
                        s,
                        MetadataCacheConfig {
                            counter_cache_bytes: 32 * 1024,
                            mac_cache_bytes: 32 * 1024,
                            tree_cache_bytes: 32 * 1024,
                            ways: 8,
                            policy: horus_cache::ReplacementPolicy::Lru,
                        },
                        &[7; 16],
                    );
                    let mut p = Platform::paper_default();
                    for i in 0..512u64 {
                        e.increment_counter(&mut p, i * 4096, Cycles::ZERO).unwrap();
                    }
                    (e, p)
                },
                |(mut e, mut p)| e.flush_after_drain(&mut p, Cycles::ZERO),
            )
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_counter_paths,
    bench_cache_size_sensitivity,
    bench_flush
);
criterion_main!(benches);
