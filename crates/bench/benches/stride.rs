//! Stride-sensitivity ablation (DESIGN.md #4): the baseline's drain cost
//! grows with crash-content sparsity while Horus is oblivious to it.
//! Criterion measures harness wall time; the interesting *simulated*
//! metrics are asserted as invariants so a regression in obliviousness
//! fails the bench run loudly.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use horus_bench::bench_config;
use horus_core::{DrainScheme, SecureEpdSystem};
use horus_workload::{fill_hierarchy, FillPattern};

fn drain_requests(scheme: DrainScheme, stride: u64) -> u64 {
    let cfg = bench_config();
    let mut sys = SecureEpdSystem::for_scheme(cfg.clone(), scheme);
    fill_hierarchy(
        sys.hierarchy_mut(),
        FillPattern::StridedSparse { min_stride: stride },
        cfg.data_bytes,
        cfg.seed,
    );
    let r = sys.crash_and_drain(scheme);
    r.reads + r.writes
}

fn bench_stride_sweep(c: &mut Criterion) {
    // Invariant check before timing anything.
    let strides = [256u64, 4 * 1024, 64 * 1024];
    let horus: Vec<u64> = strides
        .iter()
        .map(|s| drain_requests(DrainScheme::HorusSlm, *s))
        .collect();
    assert!(
        horus.windows(2).all(|w| w[0] == w[1]),
        "Horus must be stride-oblivious: {horus:?}"
    );
    let lazy: Vec<u64> = strides
        .iter()
        .map(|s| drain_requests(DrainScheme::BaseLazy, *s))
        .collect();
    assert!(
        lazy.windows(2).all(|w| w[0] <= w[1]),
        "baseline requests must grow with stride: {lazy:?}"
    );

    let cfg = bench_config();
    let mut g = c.benchmark_group("stride_sweep");
    g.sample_size(10);
    for stride in strides {
        for scheme in [DrainScheme::BaseLazy, DrainScheme::HorusSlm] {
            g.bench_with_input(
                BenchmarkId::new(scheme.name(), format!("{stride}B")),
                &(scheme, stride),
                |b, &(s, st)| {
                    b.iter_with_setup(
                        || {
                            let mut sys = SecureEpdSystem::for_scheme(cfg.clone(), s);
                            fill_hierarchy(
                                sys.hierarchy_mut(),
                                FillPattern::StridedSparse { min_stride: st },
                                cfg.data_bytes,
                                cfg.seed,
                            );
                            sys
                        },
                        |mut sys| sys.crash_and_drain(s),
                    )
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_stride_sweep);
criterion_main!(benches);
