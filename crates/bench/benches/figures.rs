//! End-to-end figure pipelines at bench scale: how long the whole
//! experiment harness takes per figure (the repro binaries run the same
//! code at the paper's Table I scale).

use criterion::{criterion_group, criterion_main, Criterion};
use horus_bench::{bench_config, figures, paper_fill, run_all_schemes};
use horus_energy::DrainEnergyModel;

fn bench_scheme_comparison(c: &mut Criterion) {
    let cfg = bench_config();
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig11_13_all_schemes", |b| {
        b.iter(|| run_all_schemes(&cfg, paper_fill()))
    });
    g.bench_function("tab2_energy", |b| {
        let model = DrainEnergyModel::paper_default();
        b.iter(|| {
            run_all_schemes(&cfg, paper_fill())
                .iter()
                .map(|r| model.drain_energy(r).total_j)
                .sum::<f64>()
        })
    });
    g.bench_function("table1_render", |b| {
        b.iter(|| figures::table1(&cfg).render())
    });
    g.finish();
}

criterion_group!(benches, bench_scheme_comparison);
criterion_main!(benches);
