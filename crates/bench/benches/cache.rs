//! Microbenchmarks of the cache models.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use horus_cache::{CacheGeometry, CacheHierarchy, HierarchyConfig, SetAssocCache};

fn bench_set_assoc(c: &mut Criterion) {
    let mut g = c.benchmark_group("set_assoc");
    g.bench_function("insert_evict_stream", |b| {
        let mut cache = SetAssocCache::new(CacheGeometry::new("b", 256 * 1024, 8));
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            cache.insert(black_box(i * 64), [i as u8; 64], true)
        })
    });
    g.bench_function("lookup_hit", |b| {
        let mut cache = SetAssocCache::new(CacheGeometry::new("b", 256 * 1024, 8));
        for i in 0..4096u64 {
            cache.insert(i * 64, [0; 64], false);
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 4096;
            cache.lookup(black_box(i * 64)).copied()
        })
    });
    g.bench_function("lookup_miss", |b| {
        let mut cache = SetAssocCache::new(CacheGeometry::new("b", 256 * 1024, 8));
        let mut i = 1u64 << 32;
        b.iter(|| {
            i += 64;
            cache.lookup(black_box(i)).is_some()
        })
    });
    g.finish();
}

fn bench_hierarchy(c: &mut Criterion) {
    let cfg = HierarchyConfig {
        l1_bytes: 16 * 1024,
        l1_ways: 2,
        l2_bytes: 64 * 1024,
        l2_ways: 4,
        llc_bytes: 256 * 1024,
        llc_ways: 8,
    };
    let mut g = c.benchmark_group("hierarchy");
    g.bench_function("write_spill_chain", |b| {
        let mut h = CacheHierarchy::new(&cfg);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            h.write(black_box(((i * 16448) % (1 << 30)) & !63), [i as u8; 64])
        })
    });
    g.bench_function("drain_order_5k_lines", |b| {
        let mut h = CacheHierarchy::new(&cfg);
        for i in 0..cfg.total_lines() {
            h.level_mut(2).insert((i * 257) << 6, [1; 64], true);
        }
        b.iter(|| black_box(h.drain_order()).len())
    });
    g.finish();
}

criterion_group!(benches, bench_set_assoc, bench_hierarchy);
criterion_main!(benches);
