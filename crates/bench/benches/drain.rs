//! End-to-end drain benchmarks: one full worst-case drain per scheme on
//! the scaled-down bench configuration, plus the MAC-coalescing ablation
//! (Horus-SLM vs Horus-DLM).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use horus_bench::{bench_config, paper_fill};
use horus_core::{DrainScheme, SecureEpdSystem};
use horus_workload::fill_hierarchy;

fn bench_drain_schemes(c: &mut Criterion) {
    let cfg = bench_config();
    let mut g = c.benchmark_group("drain");
    g.sample_size(10);
    for scheme in DrainScheme::ALL {
        g.bench_with_input(BenchmarkId::from_parameter(scheme), &scheme, |b, &s| {
            b.iter_with_setup(
                || {
                    let mut sys = SecureEpdSystem::for_scheme(cfg.clone(), s);
                    fill_hierarchy(sys.hierarchy_mut(), paper_fill(), cfg.data_bytes, cfg.seed);
                    sys
                },
                |mut sys| sys.crash_and_drain(s),
            )
        });
    }
    g.finish();
}

fn bench_drain_and_recover(c: &mut Criterion) {
    let cfg = bench_config();
    let mut g = c.benchmark_group("drain_recover_cycle");
    g.sample_size(10);
    for scheme in [DrainScheme::HorusSlm, DrainScheme::HorusDlm] {
        g.bench_with_input(BenchmarkId::from_parameter(scheme), &scheme, |b, &s| {
            b.iter_with_setup(
                || {
                    let mut sys = SecureEpdSystem::for_scheme(cfg.clone(), s);
                    fill_hierarchy(sys.hierarchy_mut(), paper_fill(), cfg.data_bytes, cfg.seed);
                    sys
                },
                |mut sys| {
                    sys.crash_and_drain(s);
                    sys.recover().expect("clean vault")
                },
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench_drain_schemes, bench_drain_and_recover);
criterion_main!(benches);
