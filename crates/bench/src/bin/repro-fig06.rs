//! Reproduces Figure 6: breakdown of memory requests for flushing the
//! cache hierarchy (non-secure vs the two secure baselines).

use horus_bench::cli::HarnessArgs;
use horus_bench::figures;
use horus_core::{DrainScheme, SystemConfig};

fn main() {
    let args = HarnessArgs::parse_or_exit();
    let obs = args.obs_or_exit();
    let harness = args.harness_with(&obs);
    let cfg = SystemConfig::paper_default();
    println!("Figure 6 — memory requests to flush the hierarchy (paper: 10.3x lazy, 9.5x eager)\n");
    println!("{}", figures::figure6(&harness, &cfg).render());
    args.trace_or_exit(&cfg, DrainScheme::BaseLazy);
    obs.finish_or_exit(&harness);
}
