//! Ablation: PCM wear by address-map region per drain scheme.
//!
//! Not a paper figure, but the paper's §II-D argues metadata updates
//! cause "premature wear-out"; this shows where each scheme concentrates
//! its drain writes. Note the flip side of Horus: it writes 8-10x fewer
//! blocks, but always into the *same* CHV region, so repeated episodes
//! wear those cells — the practical argument for rotating the CHV base
//! (cheap, since the region is indexed from an on-chip register).

use horus_bench::cli::HarnessArgs;
use horus_bench::{paper_fill, table};
use horus_core::{DrainScheme, SecureEpdSystem, SystemConfig};
use horus_workload::fill_hierarchy;

fn main() {
    let args = HarnessArgs::parse_or_exit();
    let cfg = SystemConfig::with_llc_bytes(8 << 20);
    println!(
        "PCM wear by region after one worst-case drain ({} MB LLC)\n",
        8
    );
    let mut rows = Vec::new();
    for scheme in DrainScheme::ALL {
        let mut sys = SecureEpdSystem::for_scheme(cfg.clone(), scheme);
        fill_hierarchy(sys.hierarchy_mut(), paper_fill(), cfg.data_bytes, cfg.seed);
        sys.crash_and_drain(scheme);
        let map = sys.map().clone();
        let wear = sys.platform().nvm.wear();
        let data = wear.writes_in_range(0, map.data_blocks());
        let counters = wear.writes_in_range(map.counter_block_addr(0), map.counter_blocks());
        let macs = wear.writes_in_range(map.mac_block_addr(0), map.data_blocks() / 8);
        let tree: u64 = (0..map.bmt_levels())
            .map(|l| wear.writes_in_range(map.bmt_node_addr(l, 0), map.bmt_level_nodes(l)))
            .sum();
        let chv = wear.writes_in_range(map.chv_base(), map.chv_blocks());
        let shadow = wear.writes_in_range(map.shadow_base(), map.shadow_blocks());
        rows.push(vec![
            scheme.name().to_owned(),
            data.to_string(),
            counters.to_string(),
            macs.to_string(),
            tree.to_string(),
            chv.to_string(),
            shadow.to_string(),
            wear.max_wear().to_string(),
            format!("{:.2}", wear.mean_wear()),
        ]);
    }
    println!(
        "{}",
        table::render(
            &[
                "scheme",
                "data",
                "counters",
                "MACs",
                "tree",
                "CHV",
                "shadow",
                "max/block",
                "mean/block"
            ],
            &rows,
        )
    );
    args.trace_or_exit(&cfg, DrainScheme::HorusSlm);
}
