//! Fault-injection campaign: random single-bit flips across the vault
//! and the run-time metadata, with detection statistics.
//!
//! The security tests prove *specific* attacks are caught; this campaign
//! samples the space randomly (seeded) — every injected corruption of
//! protected state must surface as a verification failure, never as
//! silently wrong data.

use horus_bench::table;
use horus_core::{DrainScheme, SecureEpdSystem, SystemConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Flips one random bit in one random block of `[base, base+blocks)`.
fn flip_random(sys: &mut SecureEpdSystem, rng: &mut StdRng, base: u64, blocks: u64) -> u64 {
    let addr = base + rng.gen_range(0..blocks) * 64;
    let byte = rng.gen_range(0..64);
    let bit = rng.gen_range(0..8u8);
    let mut b = sys.attacker_nvm().read_block(addr);
    b[byte] ^= 1 << bit;
    sys.attacker_nvm().write_block(addr, b);
    addr
}

fn drained_system(scheme: DrainScheme) -> SecureEpdSystem {
    let mut sys = SecureEpdSystem::new(SystemConfig::small_test());
    for i in 0..64u64 {
        sys.write(i * 16448, [(i as u8).wrapping_mul(7).wrapping_add(3); 64])
            .expect("write");
    }
    sys.crash_and_drain(scheme);
    sys
}

fn chv_campaign(scheme: DrainScheme, trials: u32, seed: u64) -> (u32, u32) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut detected = 0;
    let mut benign = 0;
    for _ in 0..trials {
        let mut sys = drained_system(scheme);
        let layout = sys.chv_layout().expect("layout");
        let n = sys.episode().expect("episode").blocks;
        let used = layout.blocks_used(n);
        let base = sys.map().chv_base();
        flip_random(&mut sys, &mut rng, base, used);
        match sys.recover() {
            Err(_) => detected += 1,
            Ok(_) => {
                // A flip can land in the unused tail of a partially
                // filled address/MAC block — bits no entry depends on.
                // That is benign by construction, not a miss; verify the
                // restored data to prove it.
                let ok = (0..64u64).all(|i| {
                    sys.read(i * 16448)
                        .map(|b| b[0] == (i as u8).wrapping_mul(7).wrapping_add(3))
                        == Ok(true)
                });
                assert!(
                    ok,
                    "undetected corruption changed restored data — a real miss"
                );
                benign += 1;
            }
        }
    }
    (detected, benign)
}

fn runtime_campaign(trials: u32, seed: u64) -> (u32, u32) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut detected = 0;
    let mut benign = 0;
    for _ in 0..trials {
        let mut sys = SecureEpdSystem::new(SystemConfig::small_test());
        for i in 0..256u64 {
            sys.write(i * 4096, [9; 64]).expect("write");
        }
        // Corrupt one written data block that lives only in NVM.
        let candidates: Vec<u64> = (0..256u64)
            .map(|i| i * 4096)
            .filter(|a| {
                sys.platform().nvm.device().is_written(*a)
                    && sys.hierarchy().llc().peek(*a).is_none()
            })
            .collect();
        let victim = candidates[rng.gen_range(0..candidates.len())];
        let byte = rng.gen_range(0..64);
        let bit = rng.gen_range(0..8u8);
        let mut b = sys.attacker_nvm().read_block(victim);
        b[byte] ^= 1 << bit;
        sys.attacker_nvm().write_block(victim, b);
        match sys.read(victim) {
            Err(_) => detected += 1,
            Ok(data) => {
                assert_eq!(data, [9; 64], "undetected corruption returned wrong data");
                benign += 1;
            }
        }
    }
    (detected, benign)
}

fn main() {
    let trials = 200;
    println!("random single-bit fault injection, {trials} trials per target:\n");
    let mut rows = Vec::new();
    for (name, (detected, benign)) in [
        (
            "CHV after Horus-SLM drain",
            chv_campaign(DrainScheme::HorusSlm, trials, 1),
        ),
        (
            "CHV after Horus-DLM drain",
            chv_campaign(DrainScheme::HorusDlm, trials, 2),
        ),
        ("run-time data in NVM", runtime_campaign(trials, 3)),
    ] {
        rows.push(vec![
            name.to_owned(),
            detected.to_string(),
            benign.to_string(),
            format!(
                "{:.1}%",
                100.0 * f64::from(detected) / f64::from(detected + benign)
            ),
        ]);
    }
    println!(
        "{}",
        table::render(
            &["target", "detected", "benign (unused bits)", "detection"],
            &rows
        )
    );
    println!("every flip was either detected or provably benign (landed in bits no");
    println!("verified entry depends on); no trial ever returned corrupted data.");
}
