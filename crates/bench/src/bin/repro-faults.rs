//! Fault-injection campaign: random single-bit flips across the vault
//! and the run-time metadata, with detection statistics.
//!
//! The security tests prove *specific* attacks are caught; this campaign
//! samples the space randomly (seeded) — every injected corruption of
//! protected state must surface as a verification failure, never as
//! silently wrong data.
//!
//! Trials are independent, so they run on the `horus-harness` worker
//! pool (`--jobs N`); each trial derives its own RNG seed from the
//! campaign seed and its trial index, making the statistics identical
//! for any worker count. A trial whose invariant check fails is caught
//! by the pool's panic isolation and fails the campaign at the end
//! instead of killing the run mid-way.
//!
//! Usage: `cargo run --release -p horus-bench --bin repro-faults --
//! [--jobs N] [--progress]`

use horus_bench::cli::HarnessArgs;
use horus_bench::table;
use horus_core::{DrainScheme, SecureEpdSystem, SystemConfig};
use horus_harness::Harness;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// What one injection trial observed.
enum Trial {
    /// Recovery/read failed verification — the flip was caught.
    Detected,
    /// The flip landed in bits no verified entry depends on; the trial
    /// proved the restored/read data is still correct.
    Benign,
}

/// Per-trial RNG seed: campaign seed and trial index mixed through a
/// splitmix64-style finalizer so neighbouring trials get unrelated
/// streams regardless of which worker runs them.
fn trial_seed(campaign: u64, trial: usize) -> u64 {
    let mut z = campaign
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(trial as u64 + 1);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Flips one random bit in one random block of `[base, base+blocks)`.
fn flip_random(sys: &mut SecureEpdSystem, rng: &mut StdRng, base: u64, blocks: u64) -> u64 {
    let addr = base + rng.gen_range(0..blocks) * 64;
    let byte = rng.gen_range(0..64);
    let bit = rng.gen_range(0..8u8);
    let mut b = sys.attacker_nvm().read_block(addr);
    b[byte] ^= 1 << bit;
    sys.attacker_nvm().write_block(addr, b);
    addr
}

fn drained_system(scheme: DrainScheme) -> SecureEpdSystem {
    let mut sys = SecureEpdSystem::new(SystemConfig::small_test());
    for i in 0..64u64 {
        sys.write(i * 16448, [(i as u8).wrapping_mul(7).wrapping_add(3); 64])
            .expect("write");
    }
    sys.crash_and_drain(scheme);
    sys
}

/// One CHV-corruption trial: drain, flip a random vault bit, recover.
fn chv_trial(scheme: DrainScheme, seed: u64) -> Trial {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sys = drained_system(scheme);
    let layout = sys.chv_layout().expect("layout");
    let n = sys.episode().expect("episode").blocks;
    let used = layout.blocks_used(n);
    let base = sys.map().chv_base();
    flip_random(&mut sys, &mut rng, base, used);
    match sys.recover() {
        Err(_) => Trial::Detected,
        Ok(_) => {
            // A flip can land in the unused tail of a partially filled
            // address/MAC block — bits no entry depends on. That is
            // benign by construction, not a miss; verify the restored
            // data to prove it.
            let ok = (0..64u64).all(|i| {
                sys.read(i * 16448)
                    .map(|b| b[0] == (i as u8).wrapping_mul(7).wrapping_add(3))
                    == Ok(true)
            });
            assert!(
                ok,
                "undetected corruption changed restored data — a real miss"
            );
            Trial::Benign
        }
    }
}

/// One run-time corruption trial: flip a bit of a data block resident
/// only in NVM, then read it back through the secure path.
fn runtime_trial(seed: u64) -> Trial {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sys = SecureEpdSystem::new(SystemConfig::small_test());
    for i in 0..256u64 {
        sys.write(i * 4096, [9; 64]).expect("write");
    }
    let candidates: Vec<u64> = (0..256u64)
        .map(|i| i * 4096)
        .filter(|a| {
            sys.platform().nvm.device().is_written(*a) && sys.hierarchy().llc().peek(*a).is_none()
        })
        .collect();
    let victim = candidates[rng.gen_range(0..candidates.len())];
    let byte = rng.gen_range(0..64);
    let bit = rng.gen_range(0..8u8);
    let mut b = sys.attacker_nvm().read_block(victim);
    b[byte] ^= 1 << bit;
    sys.attacker_nvm().write_block(victim, b);
    match sys.read(victim) {
        Err(_) => Trial::Detected,
        Ok(data) => {
            assert_eq!(data, [9; 64], "undetected corruption returned wrong data");
            Trial::Benign
        }
    }
}

/// Runs one campaign on the pool; returns `(detected, benign)` and
/// prints any trial failures. Deterministic for any `--jobs`.
fn campaign(
    harness: &Harness,
    name: &str,
    trials: u32,
    seed: u64,
    trial: impl Fn(u64) -> Trial + Sync,
    failures: &mut u32,
) -> (u32, u32) {
    let outcomes = harness.run_tasks(trials as usize, |i| trial(trial_seed(seed, i)));
    let mut detected = 0;
    let mut benign = 0;
    for (i, outcome) in outcomes.into_iter().enumerate() {
        match outcome {
            Ok(Trial::Detected) => detected += 1,
            Ok(Trial::Benign) => benign += 1,
            Err(message) => {
                eprintln!("{name}: trial {i} FAILED: {message}");
                *failures += 1;
            }
        }
    }
    (detected, benign)
}

fn main() {
    let args = HarnessArgs::parse_or_exit();
    args.trace_or_exit(&SystemConfig::small_test(), DrainScheme::HorusSlm);
    let obs = args.obs_or_exit();
    let harness = args.harness_with(&obs);
    let trials = 200;
    println!(
        "random single-bit fault injection, {trials} trials per target ({} workers):\n",
        harness.jobs()
    );
    let mut failures = 0;
    let campaigns: [(&str, &(dyn Fn(u64) -> Trial + Sync)); 3] = [
        ("CHV after Horus-SLM drain", &|s| {
            chv_trial(DrainScheme::HorusSlm, s)
        }),
        ("CHV after Horus-DLM drain", &|s| {
            chv_trial(DrainScheme::HorusDlm, s)
        }),
        ("run-time data in NVM", &runtime_trial),
    ];
    let mut rows = Vec::new();
    for (seed, (name, trial)) in campaigns.into_iter().enumerate() {
        let (detected, benign) = campaign(
            &harness,
            name,
            trials,
            seed as u64 + 1,
            trial,
            &mut failures,
        );
        rows.push(vec![
            name.to_owned(),
            detected.to_string(),
            benign.to_string(),
            format!(
                "{:.1}%",
                100.0 * f64::from(detected) / f64::from((detected + benign).max(1))
            ),
        ]);
    }
    println!(
        "{}",
        table::render(
            &["target", "detected", "benign (unused bits)", "detection"],
            &rows
        )
    );
    obs.finish_or_exit(&harness);
    if failures > 0 {
        eprintln!("{failures} trial(s) returned corrupted data or failed an invariant");
        std::process::exit(1);
    }
    println!("every flip was either detected or provably benign (landed in bits no");
    println!("verified entry depends on); no trial ever returned corrupted data.");
}
