//! Crash-point fault-injection sweep: interrupt every scheme's drain at
//! sampled cycles (phase boundaries ±1 plus even coverage), recover from
//! exactly the persistent state a real machine would hold, and classify
//! each point as recovered / detected / SILENT-CORRUPTION.
//!
//! The contract: the Horus schemes must never land in the silent column
//! — an interrupted drain either restores a verified prefix or reports
//! the loss. The baselines show their documented vulnerability windows.
//!
//! Usage: `cargo run --release -p horus-bench --bin repro-crash --
//! [--quick] [--jobs N] [--progress] [--metrics-addr ADDR]
//! [--dashboard] [--obs-out FILE]`
//!
//! With `--metrics-addr`, a mid-run scrape shows
//! `horus_crash_verdicts_total{scheme, verdict}` filling in live.

use horus_bench::cli::HarnessArgs;
use horus_bench::crash_sweep::{self, CrashSweepPlan};
use horus_core::{DrainScheme, SystemConfig};

fn main() {
    let args = HarnessArgs::parse_or_exit();
    args.trace_or_exit(&SystemConfig::small_test(), DrainScheme::HorusSlm);
    let obs = args.obs_or_exit();
    let harness = args.harness_with(&obs);
    let plan = if args.quick {
        CrashSweepPlan::quick()
    } else {
        CrashSweepPlan::full()
    };
    println!(
        "crash-point sweep: ~{} interruption cycles per scheme, torn-write model \"{}\" ({} workers):\n",
        plan.points_per_scheme,
        plan.model,
        harness.jobs()
    );
    let matrix = crash_sweep::run(&harness, &plan);
    obs.finish_or_exit(&harness);
    println!("{}", matrix.render());
    if matrix.failures() > 0 {
        eprintln!(
            "{} Horus silent corruption(s), {} panicked trial(s) — the sweep FAILED",
            matrix.horus_silent_corruptions(),
            matrix.panics
        );
        std::process::exit(1);
    }
    println!("Horus recovered or detected every sampled crash point — zero silent");
    println!("corruption — and salvaged verified prefixes inside the loss windows.");
    if matrix.silent_corruptions() > 0 {
        println!(
            "the baselines' {} silent-loss point(s) are the documented vulnerability",
            matrix.silent_corruptions()
        );
        println!("window the paper motivates Horus with (expected, not a failure).");
    }
}
