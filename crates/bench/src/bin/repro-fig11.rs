//! Reproduces Figure 11: normalized draining cycles across schemes.

use horus_bench::cli::HarnessArgs;
use horus_bench::figures;
use horus_core::{DrainScheme, SystemConfig};

fn main() {
    let args = HarnessArgs::parse_or_exit();
    let obs = args.obs_or_exit();
    let harness = args.harness_with(&obs);
    let cfg = SystemConfig::paper_default();
    let cmp = figures::scheme_comparison(&harness, &cfg);
    println!("Figure 11 — draining time (paper: Base-LU 4.5x, Base-EU 5.1x vs Horus; Horus 1.7x non-secure)\n");
    println!("{}", cmp.render_fig11());
    args.trace_or_exit(&cfg, DrainScheme::HorusSlm);
    obs.finish_or_exit(&harness);
}
