//! Runs every experiment and writes `EXPERIMENTS.md` (paper-vs-measured
//! for each table and figure).
//!
//! Usage: `cargo run --release -p horus-bench --bin repro-all --
//! [--jobs N] [--cache-dir DIR] [--no-cache] [--progress] [--quick]
//! [--trace-out FILE] [--metrics-addr ADDR] [--dashboard]
//! [--obs-out FILE]`
//!
//! Experiment points run on the `horus-harness` worker pool and are
//! memoized in the result cache, so a repeated invocation is pure cache
//! hits and completes in seconds. `--quick` shrinks the LLC sweeps
//! (useful while iterating); a cold full run takes a few minutes.
//!
//! Exits non-zero when any headline claim's measured value deviates
//! from the paper's value beyond its stated tolerance.

use horus_bench::cli::HarnessArgs;
use horus_bench::repro_all::{self, ReproPlan};
use horus_core::{DrainScheme, SystemConfig};

fn main() {
    let args = HarnessArgs::parse_or_exit();
    args.trace_or_exit(&SystemConfig::paper_default(), DrainScheme::HorusSlm);
    let obs = args.obs_or_exit();
    let harness = args.harness_with(&obs);
    let plan = if args.quick {
        ReproPlan::quick()
    } else {
        ReproPlan::full()
    };
    let started = std::time::Instant::now();

    let out = repro_all::run(&harness, &plan);
    std::fs::write("EXPERIMENTS.md", &out.markdown).expect("write EXPERIMENTS.md");
    println!("{}", out.markdown);

    let (executed, cache_hits) = harness.totals();
    eprintln!(
        "wrote EXPERIMENTS.md: {executed} simulations executed, {cache_hits} cache hits, \
         {:.1} s wall clock ({} workers)",
        started.elapsed().as_secs_f64(),
        harness.jobs()
    );

    obs.finish_or_exit(&harness);

    let failures = out.failures();
    if !failures.is_empty() {
        for c in &failures {
            eprintln!(
                "TOLERANCE FAILURE: {} — paper {:.prec$}x, measured {:.prec$}x, allowed ±{:.0}%",
                c.claim,
                c.paper,
                c.measured,
                c.tolerance * 100.0,
                prec = c.precision,
            );
        }
        std::process::exit(1);
    }
}
