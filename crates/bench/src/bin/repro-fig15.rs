//! Reproduces Figure 15: MAC calculations vs LLC size, normalized to
//! Base-LU.

use horus_bench::cli::HarnessArgs;
use horus_bench::figures;
use horus_core::{DrainScheme, SystemConfig};

fn main() {
    let args = HarnessArgs::parse_or_exit();
    let obs = args.obs_or_exit();
    let harness = args.harness_with(&obs);
    let sizes: &[u64] = if args.quick {
        &[8 << 20, 16 << 20]
    } else {
        &[8 << 20, 16 << 20, 32 << 20]
    };
    let sweep = figures::llc_sweep(&harness, &SystemConfig::paper_default(), sizes);
    println!("Figure 15 — MAC calculations vs LLC size (paper: >=5.8x reduction)\n");
    println!("{}", sweep.render_fig15());
    args.trace_or_exit(&SystemConfig::paper_default(), DrainScheme::HorusSlm);
    obs.finish_or_exit(&harness);
}
