//! Reproduces Figure 15: MAC calculations vs LLC size, normalized to
//! Base-LU.

use horus_bench::figures;

fn main() {
    let sweep = figures::llc_sweep(&[8, 16, 32]);
    println!("Figure 15 — MAC calculations vs LLC size (paper: >=5.8x reduction)\n");
    println!("{}", sweep.render_fig15());
}
