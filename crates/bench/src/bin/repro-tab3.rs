//! Reproduces Table III: hold-up battery volume.

use horus_bench::figures;
use horus_core::SystemConfig;

fn main() {
    let cfg = SystemConfig::paper_default();
    let t = figures::energy_tables(&cfg);
    println!("Table III — battery volume (paper: >=4.4x reduction)\n");
    println!("{}", t.render_table3());
}
