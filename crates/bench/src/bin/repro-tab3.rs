//! Reproduces Table III: hold-up battery volume.

use horus_bench::cli::HarnessArgs;
use horus_bench::figures;
use horus_core::{DrainScheme, SystemConfig};

fn main() {
    let args = HarnessArgs::parse_or_exit();
    let obs = args.obs_or_exit();
    let harness = args.harness_with(&obs);
    let cfg = SystemConfig::paper_default();
    let t = figures::energy_tables(&harness, &cfg);
    println!("Table III — battery volume (paper: >=4.4x reduction)\n");
    println!("{}", t.render_table3());
    args.trace_or_exit(&cfg, DrainScheme::HorusSlm);
    obs.finish_or_exit(&harness);
}
