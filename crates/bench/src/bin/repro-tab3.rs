//! Reproduces Table III: hold-up battery volume.

use horus_bench::cli::HarnessArgs;
use horus_bench::figures;
use horus_core::{DrainScheme, SystemConfig};

fn main() {
    let args = HarnessArgs::parse_or_exit();
    let cfg = SystemConfig::paper_default();
    let t = figures::energy_tables(&args.harness(), &cfg);
    println!("Table III — battery volume (paper: >=4.4x reduction)\n");
    println!("{}", t.render_table3());
    args.trace_or_exit(&cfg, DrainScheme::HorusSlm);
}
