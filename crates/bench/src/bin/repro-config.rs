//! Reproduces Table I: the simulated system configuration.

use horus_bench::figures;
use horus_core::SystemConfig;

fn main() {
    let cfg = SystemConfig::paper_default();
    println!("Table I — simulation configuration\n");
    println!("{}", figures::table1(&cfg).render());
}
