//! Reproduces Table I: the simulated system configuration.

use horus_bench::cli::HarnessArgs;
use horus_bench::figures;
use horus_core::{DrainScheme, SystemConfig};

fn main() {
    let args = HarnessArgs::parse_or_exit();
    let cfg = SystemConfig::paper_default();
    println!("Table I — simulation configuration\n");
    println!("{}", figures::table1(&cfg).render());
    args.trace_or_exit(&cfg, DrainScheme::HorusSlm);
}
