//! Reproduces Figure 16: Horus recovery time vs LLC size.

use horus_bench::figures;

fn main() {
    let f = figures::figure16(&[8, 16, 32, 64, 128]);
    println!("Figure 16 — recovery time (paper: 0.51 s SLM / 0.48 s DLM at 128 MB)\n");
    println!("{}", f.render());
}
