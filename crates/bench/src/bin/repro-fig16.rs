//! Reproduces Figure 16: Horus recovery time vs LLC size.

use horus_bench::cli::HarnessArgs;
use horus_bench::figures;
use horus_core::{DrainScheme, SystemConfig};

fn main() {
    let args = HarnessArgs::parse_or_exit();
    let obs = args.obs_or_exit();
    let harness = args.harness_with(&obs);
    let sizes: &[u64] = if args.quick {
        &[8 << 20, 16 << 20]
    } else {
        &[8 << 20, 16 << 20, 32 << 20, 64 << 20, 128 << 20]
    };
    let f = figures::figure16(&harness, &SystemConfig::paper_default(), sizes);
    println!("Figure 16 — recovery time (paper: 0.51 s SLM / 0.48 s DLM at 128 MB)\n");
    println!("{}", f.render());
    args.trace_or_exit(&SystemConfig::paper_default(), DrainScheme::HorusSlm);
    obs.finish_or_exit(&harness);
}
