//! Reproduces Figure 12: breakdown of memory writes during the drain.

use horus_bench::cli::HarnessArgs;
use horus_bench::figures;
use horus_core::{DrainScheme, SystemConfig};

fn main() {
    let args = HarnessArgs::parse_or_exit();
    let obs = args.obs_or_exit();
    let harness = args.harness_with(&obs);
    let cfg = SystemConfig::paper_default();
    let cmp = figures::scheme_comparison(&harness, &cfg);
    println!("Figure 12 — breakdown of memory writes\n");
    println!("{}", cmp.render_fig12());
    args.trace_or_exit(&cfg, DrainScheme::HorusSlm);
    obs.finish_or_exit(&harness);
}
