//! Ablation: run-time cost of the lazy vs eager update schemes.
//!
//! The paper's premise (§II-C, §IV-B) is that EPD systems run the
//! *recovery-oblivious lazy* scheme at run time because it is faster —
//! eager pays a full tree-path update (one MAC per level, all the way to
//! the root) on every NVM write. This harness measures both schemes on
//! the same write-back stream and prints the per-write cost, plus how the
//! metadata caches absorbed it.

use horus_bench::cli::HarnessArgs;
use horus_bench::table;
use horus_core::{DrainScheme, SecureEpdSystem, SystemConfig};
use horus_metadata::UpdateScheme;
use horus_workload::{AccessTrace, Op, TraceConfig};

fn run(scheme: UpdateScheme, trace: &AccessTrace) -> Vec<String> {
    let mut cfg = SystemConfig::with_llc_bytes(1 << 20);
    cfg.scheme = scheme;
    let mut sys = SecureEpdSystem::new(cfg);
    for op in trace {
        match *op {
            Op::Write { addr, value } => sys.write(addr, [value; 64]).expect("write"),
            Op::Read { addr } => {
                sys.read(addr).expect("read");
            }
        }
    }
    let stats = sys.platform().merged_stats();
    let nvm_writes = stats.get("mem.write.data");
    let cycles = sys.platform().busy_until().0;
    vec![
        scheme.to_string(),
        nvm_writes.to_string(),
        stats.sum_prefix("macop.").to_string(),
        format!(
            "{:.1}",
            stats.sum_prefix("macop.") as f64 / nvm_writes.max(1) as f64
        ),
        stats.get("macop.update_tree").to_string(),
        stats.sum_prefix("mem.read.").to_string(),
        format!(
            "{:.1}%",
            100.0 * sys.metadata().counter_cache().hits() as f64
                / (sys.metadata().counter_cache().hits() + sys.metadata().counter_cache().misses())
                    .max(1) as f64
        ),
        cycles.to_string(),
    ]
}

fn main() {
    let args = HarnessArgs::parse_or_exit();
    // A cache-hostile stream: mostly-cold writes so a large fraction of
    // stores become NVM write-backs.
    let trace = AccessTrace::generate(&TraceConfig {
        ops: 400_000,
        write_fraction: 0.7,
        working_set_blocks: 4096,
        locality: 0.3,
        total_blocks: 4 << 20, // 256 MB of the protected space
        seed: 7,
    });
    println!(
        "run-time update-scheme ablation over {} ops ({} writes):\n",
        trace.len(),
        trace.writes()
    );
    let rows = vec![
        run(UpdateScheme::Lazy, &trace),
        run(UpdateScheme::Eager, &trace),
    ];
    println!(
        "{}",
        table::render(
            &[
                "scheme",
                "NVM data writes",
                "MAC ops",
                "MACs/write",
                "tree updates",
                "metadata reads",
                "ctr$ hit rate",
                "busy cycles",
            ],
            &rows,
        )
    );
    println!("the eager scheme pays a full path of tree-update MACs per write-back,");
    println!("which is exactly why EPD systems run lazy at run time — and why the");
    println!("baseline EPD drain then explodes (the tree is stale at crash time).");
    args.trace_or_exit(&SystemConfig::small_test(), DrainScheme::HorusSlm);
}
