//! Reproduces Table II: estimated energy cost of draining.

use horus_bench::cli::HarnessArgs;
use horus_bench::figures;
use horus_core::{DrainScheme, SystemConfig};

fn main() {
    let args = HarnessArgs::parse_or_exit();
    let obs = args.obs_or_exit();
    let harness = args.harness_with(&obs);
    let cfg = SystemConfig::paper_default();
    let t = figures::energy_tables(&harness, &cfg);
    println!("Table II — drain energy (paper: Base-LU 11.07 J, Base-EU 12.39 J, Horus ~2.4 J)\n");
    println!("{}", t.render_table2());
    args.trace_or_exit(&cfg, DrainScheme::HorusSlm);
    obs.finish_or_exit(&harness);
}
