//! Ablation: how metadata-cache capacity shapes the baseline drain.
//!
//! The §III blow-up is a *miss-rate* phenomenon: the worst-case sparse
//! hierarchy defeats the metadata caches, so every flushed line fetches
//! and evicts metadata. Growing the caches barely helps (the working set
//! is the whole flushed footprint), which is the deeper argument for
//! Horus's approach of not touching the metadata at all.

use horus_bench::cli::HarnessArgs;
use horus_bench::{paper_fill, table};
use horus_core::{DrainScheme, SecureEpdSystem, SystemConfig};
use horus_metadata::MetadataCacheConfig;
use horus_workload::fill_hierarchy;

fn main() {
    let args = HarnessArgs::parse_or_exit();
    println!("Base-LU drain vs metadata-cache capacity (8 MB LLC, worst-case fill)\n");
    let mut rows = Vec::new();
    for scale in [1u64, 4, 16] {
        let mut cfg = SystemConfig::with_llc_bytes(8 << 20);
        cfg.metadata_caches = MetadataCacheConfig {
            counter_cache_bytes: scale * 256 * 1024,
            mac_cache_bytes: scale * 512 * 1024,
            tree_cache_bytes: scale * 256 * 1024,
            ..MetadataCacheConfig::paper_default()
        };
        let mut sys = SecureEpdSystem::for_scheme(cfg.clone(), DrainScheme::BaseLazy);
        fill_hierarchy(sys.hierarchy_mut(), paper_fill(), cfg.data_bytes, cfg.seed);
        let horus_writes = {
            let mut h = SecureEpdSystem::for_scheme(cfg.clone(), DrainScheme::HorusSlm);
            fill_hierarchy(h.hierarchy_mut(), paper_fill(), cfg.data_bytes, cfg.seed);
            h.crash_and_drain(DrainScheme::HorusSlm).writes
        };
        let r = sys.crash_and_drain(DrainScheme::BaseLazy);
        rows.push(vec![
            format!("{}x (={} KB ctr$)", scale, scale * 256),
            r.memory_requests().to_string(),
            format!("{:.2} ms", r.seconds * 1e3),
            horus_writes.to_string(),
            format!("{:.1}x", r.memory_requests() as f64 / horus_writes as f64),
        ]);
    }
    println!(
        "{}",
        table::render(
            &[
                "metadata caches",
                "Base-LU requests",
                "Base-LU time",
                "Horus writes",
                "gap"
            ],
            &rows,
        )
    );
    println!("even 16x larger metadata caches leave the baseline several times more");
    println!("expensive than Horus: the sparse worst case defeats caching by design.");
    args.trace_or_exit(
        &SystemConfig::with_llc_bytes(8 << 20),
        DrainScheme::BaseLazy,
    );
}
