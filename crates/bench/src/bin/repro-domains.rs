//! Ablation: the persistence-domain design space the paper situates
//! itself in (§I, §II-A, §VI related work).
//!
//! Compares, for the same durable-store workload:
//!
//! * **ADR** — every persist pays the full secure write path plus strict
//!   metadata persistence (the Dolos problem);
//! * **BBB** — a small battery-backed buffer absorbs bursts;
//! * **EPD** — persists are free, but the crash drain is the whole
//!   hierarchy — priced here with both the Base-LU and Horus-SLM drain.
//!
//! The pay-off matrix is the paper's thesis: EPD gives DRAM-like
//! persists, and Horus is what makes its battery affordable.

use horus_bench::cli::HarnessArgs;
use horus_bench::table;
use horus_core::{DrainScheme, PersistenceDomain, SecureEpdSystem, SystemConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct Row {
    name: String,
    mean_persist: f64,
    stalls: u64,
    crash_writes: u64,
    crash_ms: f64,
}

fn persist_workload(sys: &mut SecureEpdSystem, n: u64) {
    let mut rng = StdRng::seed_from_u64(99);
    for _ in 0..n {
        let addr = rng.gen_range(0..1u64 << 17) * 64; // 8 MB hot region
        sys.persist(addr, [0xAB; 64]).expect("persist");
    }
}

fn run(domain: PersistenceDomain, drain: Option<DrainScheme>, n: u64) -> Row {
    let cfg = SystemConfig {
        domain,
        ..SystemConfig::with_llc_bytes(4 << 20)
    };
    let mut sys = match drain {
        Some(s) => SecureEpdSystem::for_scheme(cfg, s),
        None => SecureEpdSystem::new(cfg),
    };
    persist_workload(&mut sys, n);
    let stats = sys.persist_stats();
    let (crash_writes, crash_ms) = match drain {
        Some(scheme) => {
            let r = sys.crash_and_drain(scheme);
            (r.writes, r.seconds * 1e3)
        }
        None => {
            let before = sys.platform().nvm.total_writes();
            let residual = sys.crash_power_loss();
            (
                sys.platform().nvm.total_writes() - before,
                residual.0 as f64 / 4e6, // cycles -> ms at 4 GHz
            )
        }
    };
    Row {
        name: match drain {
            Some(s) => format!("{domain}+{s}"),
            None => domain.to_string(),
        },
        mean_persist: stats.mean_latency(),
        stalls: stats.buffer_stalls,
        crash_writes,
        crash_ms,
    }
}

fn main() {
    let args = HarnessArgs::parse_or_exit();
    let n = 20_000;
    println!("persistence-domain design space over {n} durable stores:\n");
    let rows = [
        run(PersistenceDomain::AdrOnly, None, n),
        run(PersistenceDomain::Bbb { buffer_lines: 64 }, None, n),
        run(PersistenceDomain::Bbb { buffer_lines: 1024 }, None, n),
        run(PersistenceDomain::Epd, Some(DrainScheme::BaseLazy), n),
        run(PersistenceDomain::Epd, Some(DrainScheme::HorusSlm), n),
    ];
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                format!("{:.0}", r.mean_persist),
                r.stalls.to_string(),
                r.crash_writes.to_string(),
                format!("{:.2}", r.crash_ms),
            ]
        })
        .collect();
    println!(
        "{}",
        table::render(
            &[
                "system",
                "persist latency (cyc)",
                "buffer stalls",
                "crash writes",
                "hold-up (ms)"
            ],
            &table_rows,
        )
    );
    println!("ADR pays per store; BBB pays a small battery and stalls under bursts;");
    println!("EPD pays only at crash time — and the gap between the baseline drain and");
    println!("Horus widens to ~10x on the provisioning-relevant worst case (repro-fig06),");
    println!("where the hierarchy is full of metadata-unfriendly sparse dirty lines.");
    args.trace_or_exit(&SystemConfig::small_test(), DrainScheme::HorusSlm);
}
