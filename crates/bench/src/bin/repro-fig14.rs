//! Reproduces Figure 14: memory requests vs LLC size, normalized to
//! Base-LU.

use horus_bench::figures;

fn main() {
    let sweep = figures::llc_sweep(&[8, 16, 32]);
    println!("Figure 14 — memory requests vs LLC size (paper: >=7.0x reduction)\n");
    println!("{}", sweep.render_fig14());
}
