//! Bench-regression gate: measure the smoke-plan headline numbers and
//! diff them against the committed `BENCH_smoke.json` baseline.
//!
//! The simulator is deterministic, so the op counts and claim ratios in
//! the snapshot reproduce exactly run-to-run; the tolerance exists to
//! absorb *intentional* model refinements small enough not to change any
//! conclusion. Larger drift fails the gate — either fix the regression
//! or refresh the baseline with `--update` and justify it in the PR.
//!
//! Usage: `cargo run --release -p horus-bench --bin bench-gate --
//! [--update] [--baseline PATH] [--out PATH] [--tolerance FRACTION]
//! [--jobs N] [--no-cache]`

use horus_bench::bench_gate::{self, BenchSnapshot};
use horus_harness::{Harness, HarnessOptions};
use std::path::PathBuf;
use std::process::exit;

struct Args {
    update: bool,
    baseline: PathBuf,
    out: Option<PathBuf>,
    tolerance: f64,
    jobs: Option<usize>,
    no_cache: bool,
}

const USAGE: &str = "usage: bench-gate [--update] [--baseline PATH] [--out PATH] \
[--tolerance FRACTION] [--jobs N] [--no-cache]";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        update: false,
        baseline: PathBuf::from("BENCH_smoke.json"),
        out: None,
        tolerance: 0.02,
        jobs: None,
        no_cache: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--update" => args.update = true,
            "--no-cache" => args.no_cache = true,
            "--baseline" => {
                args.baseline = PathBuf::from(it.next().ok_or("--baseline requires a value")?);
            }
            "--out" => args.out = Some(PathBuf::from(it.next().ok_or("--out requires a value")?)),
            "--tolerance" => {
                let v = it.next().ok_or("--tolerance requires a value")?;
                args.tolerance = v
                    .parse::<f64>()
                    .map_err(|e| format!("--tolerance {v}: {e}"))?;
                if !(0.0..1.0).contains(&args.tolerance) {
                    return Err(format!("--tolerance {v}: want a fraction in [0, 1)"));
                }
            }
            "--jobs" => {
                let v = it.next().ok_or("--jobs requires a value")?;
                args.jobs = Some(v.parse::<usize>().map_err(|e| format!("--jobs {v}: {e}"))?);
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            exit(2);
        }
    };
    let harness = Harness::new(HarnessOptions {
        jobs: args.jobs,
        no_cache: args.no_cache,
        ..HarnessOptions::default()
    });
    let snapshot = bench_gate::measure(&harness);
    println!(
        "smoke-plan headline op counts ({:.2}s wall, {} workers):\n\n{}",
        snapshot.wall_seconds,
        harness.jobs(),
        snapshot.render()
    );
    if let Some(out) = &args.out {
        if let Err(e) = std::fs::write(out, snapshot.to_json()) {
            eprintln!("error: writing {}: {e}", out.display());
            exit(1);
        }
        println!("snapshot written to {}", out.display());
    }
    if args.update {
        if let Err(e) = std::fs::write(&args.baseline, snapshot.to_json()) {
            eprintln!("error: writing {}: {e}", args.baseline.display());
            exit(1);
        }
        println!("baseline refreshed at {}", args.baseline.display());
        return;
    }
    let text = match std::fs::read_to_string(&args.baseline) {
        Ok(t) => t,
        Err(e) => {
            eprintln!(
                "error: reading baseline {}: {e}\n(run with --update to create it)",
                args.baseline.display()
            );
            exit(1);
        }
    };
    let baseline = match BenchSnapshot::parse(&text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: baseline {}: {e}", args.baseline.display());
            exit(1);
        }
    };
    let deviations = bench_gate::compare(&snapshot, &baseline, args.tolerance);
    if deviations.is_empty() {
        println!(
            "bench gate PASSED: every headline number within {:.1}% of {} \
             (baseline wall {:.2}s, this run {:.2}s — informational)",
            args.tolerance * 100.0,
            args.baseline.display(),
            baseline.wall_seconds,
            snapshot.wall_seconds
        );
    } else {
        eprintln!(
            "bench gate FAILED: {} deviation(s) beyond {:.1}% of {}:",
            deviations.len(),
            args.tolerance * 100.0,
            args.baseline.display()
        );
        for d in &deviations {
            eprintln!("  - {d}");
        }
        eprintln!("fix the regression, or refresh with --update and justify the change");
        exit(1);
    }
}
