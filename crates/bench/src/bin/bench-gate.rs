//! Bench-regression gate: measure the smoke-plan headline numbers and
//! diff them against the committed `BENCH_smoke.json` baseline.
//!
//! The simulator is deterministic, so the op counts and claim ratios in
//! the snapshot reproduce exactly run-to-run; the tolerance exists to
//! absorb *intentional* model refinements small enough not to change any
//! conclusion. Larger drift fails the gate — either fix the regression
//! or refresh the baseline with `--update` and justify it in the PR.
//!
//! Usage: `cargo run --release -p horus-bench --bin bench-gate --
//! [--update] [--baseline PATH] [--out PATH] [--tolerance FRACTION]
//! [--throughput-tolerance FRACTION] [--host-profile-tolerance FRACTION]
//! [--gate-host-profile]` plus the shared `repro-*` flags
//! (`--jobs`, `--cache-dir`, `--no-cache`, `--progress`). Here `--out`
//! is the snapshot output path, claimed before the shared parser's
//! `--out`/`--trace-out` alias.
//!
//! The deterministic op counts are gated tight (default 2%); the
//! `ops_per_sec` throughput section is gated loose (default 25%,
//! regressions only) because wall-clock rates depend on the runner.
//! The `host_profile` section (wall/CPU seconds, peak RSS, allocation
//! totals) is looser still — default 50%, regressions only — and runs
//! *informationally* unless `--gate-host-profile` is given: deviations
//! print but do not fail the gate, so the section can ride along until
//! the committed baseline has been refreshed on the CI runner class.

use horus_bench::bench_gate::{self, BenchSnapshot};
use horus_bench::cli::HarnessArgs;
use horus_sim::EpisodeShards;
use std::path::PathBuf;
use std::process::exit;

#[derive(Debug)]
struct GateArgs {
    update: bool,
    baseline: PathBuf,
    out: Option<PathBuf>,
    tolerance: f64,
    throughput_tolerance: f64,
    host_profile_tolerance: f64,
    gate_host_profile: bool,
}

const GATE_USAGE: &str = "bench-gate [--update] [--baseline PATH] [--out PATH] \
[--tolerance FRACTION] [--throughput-tolerance FRACTION] \
[--host-profile-tolerance FRACTION] [--gate-host-profile]";

fn fraction(flag: &str, v: &str) -> Result<f64, String> {
    let f = v.parse::<f64>().map_err(|e| format!("{flag} {v}: {e}"))?;
    if !(0.0..1.0).contains(&f) {
        return Err(format!("{flag} {v}: want a fraction in [0, 1)"));
    }
    Ok(f)
}

fn main() {
    let mut args = GateArgs {
        update: false,
        baseline: PathBuf::from("BENCH_smoke.json"),
        out: None,
        tolerance: 0.02,
        throughput_tolerance: 0.25,
        host_profile_tolerance: 0.5,
        gate_host_profile: false,
    };
    let shared = HarnessArgs::parse_or_exit_with(GATE_USAGE, |flag, it| match flag {
        "--update" => {
            args.update = true;
            Ok(true)
        }
        "--baseline" => {
            args.baseline = PathBuf::from(it.next().ok_or("--baseline requires a value")?);
            Ok(true)
        }
        "--out" => {
            args.out = Some(PathBuf::from(it.next().ok_or("--out requires a value")?));
            Ok(true)
        }
        "--tolerance" => {
            let v = it.next().ok_or("--tolerance requires a value")?;
            args.tolerance = fraction("--tolerance", &v)?;
            Ok(true)
        }
        "--throughput-tolerance" => {
            let v = it.next().ok_or("--throughput-tolerance requires a value")?;
            args.throughput_tolerance = fraction("--throughput-tolerance", &v)?;
            Ok(true)
        }
        "--host-profile-tolerance" => {
            let v = it
                .next()
                .ok_or("--host-profile-tolerance requires a value")?;
            args.host_profile_tolerance = fraction("--host-profile-tolerance", &v)?;
            Ok(true)
        }
        "--gate-host-profile" => {
            args.gate_host_profile = true;
            Ok(true)
        }
        _ => Ok(false),
    });
    let obs = shared.obs_or_exit();
    let harness = shared.harness_with(&obs);
    // Throughput rating defaults to a host-sized episode pool (the
    // committed baseline is measured that way); `--sim-threads N` pins
    // it, e.g. `--sim-threads 1` for the serial reference rate.
    let shards = shared
        .sim_threads
        .map_or_else(EpisodeShards::available, EpisodeShards::new);
    let snapshot = bench_gate::measure_with(&harness, &shards);
    obs.finish_or_exit(&harness);
    println!(
        "smoke-plan headline op counts ({:.2}s wall, {} workers, {} sim threads):\n\n{}",
        snapshot.wall_seconds,
        harness.jobs(),
        shards.threads(),
        snapshot.render()
    );
    println!("ops_per_sec: {}", snapshot.render_throughput());
    if let Some(host) = &snapshot.host_profile {
        println!(
            "host_profile: cpu {} s, peak rss {}, allocs {}",
            host.cpu_seconds
                .map_or_else(|| "n/a".to_owned(), |v| format!("{v:.2}")),
            host.peak_rss_bytes
                .map_or_else(|| "n/a".to_owned(), |v| format!("{} MiB", v >> 20)),
            host.allocations.map_or_else(
                || "n/a (build with --features alloc-profile)".to_owned(),
                |v| v.to_string()
            ),
        );
    }
    if let Some(out) = &args.out {
        if let Err(e) = std::fs::write(out, snapshot.to_json()) {
            eprintln!("error: writing {}: {e}", out.display());
            exit(1);
        }
        println!("snapshot written to {}", out.display());
    }
    if args.update {
        if let Err(e) = std::fs::write(&args.baseline, snapshot.to_json()) {
            eprintln!("error: writing {}: {e}", args.baseline.display());
            exit(1);
        }
        println!("baseline refreshed at {}", args.baseline.display());
        return;
    }
    let text = match std::fs::read_to_string(&args.baseline) {
        Ok(t) => t,
        Err(e) => {
            eprintln!(
                "error: reading baseline {}: {e}\n(run with --update to create it)",
                args.baseline.display()
            );
            exit(1);
        }
    };
    let baseline = match BenchSnapshot::parse(&text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: baseline {}: {e}", args.baseline.display());
            exit(1);
        }
    };
    let mut deviations = bench_gate::compare(&snapshot, &baseline, args.tolerance);
    deviations.extend(bench_gate::compare_throughput(
        &snapshot,
        &baseline,
        args.throughput_tolerance,
    ));
    let host_deviations =
        bench_gate::compare_host_profile(&snapshot, &baseline, args.host_profile_tolerance);
    if args.gate_host_profile {
        deviations.extend(host_deviations);
    } else if !host_deviations.is_empty() {
        eprintln!(
            "host-profile note ({} finding(s), informational — pass --gate-host-profile to gate):",
            host_deviations.len()
        );
        for d in &host_deviations {
            eprintln!("  - {d}");
        }
    }
    if deviations.is_empty() {
        println!(
            "bench gate PASSED: headline numbers within {:.1}%, throughput within \
             {:.0}% of {} (baseline wall {:.2}s, this run {:.2}s — informational)",
            args.tolerance * 100.0,
            args.throughput_tolerance * 100.0,
            args.baseline.display(),
            baseline.wall_seconds,
            snapshot.wall_seconds
        );
    } else {
        eprintln!(
            "bench gate FAILED: {} deviation(s) beyond {:.1}% (counts) / {:.0}% \
             (throughput) of {}:",
            deviations.len(),
            args.tolerance * 100.0,
            args.throughput_tolerance * 100.0,
            args.baseline.display()
        );
        for d in &deviations {
            eprintln!("  - {d}");
        }
        eprintln!("fix the regression, or refresh with --update and justify the change");
        exit(1);
    }
}
