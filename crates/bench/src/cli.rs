//! Shared command-line plumbing for the `repro-*` binaries.
//!
//! Every reproduction binary accepts the same orchestration flags:
//!
//! ```text
//! --jobs N          worker threads (default: available parallelism)
//! --cache-dir DIR   result-cache directory (default: target/horus-cache)
//! --no-cache        bypass the result cache (always re-simulate)
//! --progress        stream JSON-lines progress events to stderr
//! --quick           shrink the sweeps (binaries that sweep)
//! ```

use horus_harness::{Harness, HarnessOptions, ProgressMode};
use std::path::PathBuf;

/// The harness-related flags common to all `repro-*` binaries.
#[derive(Debug, Clone, Default)]
pub struct HarnessArgs {
    /// `--jobs N`.
    pub jobs: Option<usize>,
    /// `--cache-dir DIR`.
    pub cache_dir: Option<PathBuf>,
    /// `--no-cache`.
    pub no_cache: bool,
    /// `--progress`.
    pub progress: bool,
    /// `--quick`.
    pub quick: bool,
}

/// The usage string fragment for the shared flags.
pub const HARNESS_USAGE: &str = "[--jobs N] [--cache-dir DIR] [--no-cache] [--progress] [--quick]";

impl HarnessArgs {
    /// Parses the process arguments; unknown flags are an error.
    pub fn parse() -> Result<Self, String> {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parses an explicit argument iterator (testable).
    pub fn parse_from(argv: impl Iterator<Item = String>) -> Result<Self, String> {
        let mut args = Self::default();
        let mut it = argv.peekable();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--jobs" => {
                    let v = it.next().ok_or("--jobs requires a value")?;
                    args.jobs = Some(
                        v.parse::<usize>()
                            .map_err(|e| format!("--jobs {v}: {e}"))?
                            .max(1),
                    );
                }
                "--cache-dir" => {
                    let v = it.next().ok_or("--cache-dir requires a value")?;
                    args.cache_dir = Some(PathBuf::from(v));
                }
                "--no-cache" => args.no_cache = true,
                "--progress" => args.progress = true,
                "--quick" => args.quick = true,
                other => return Err(format!("unknown flag '{other}' ({HARNESS_USAGE})")),
            }
        }
        Ok(args)
    }

    /// Builds the harness these flags describe.
    #[must_use]
    pub fn harness(&self) -> Harness {
        Harness::new(HarnessOptions {
            jobs: self.jobs,
            cache_dir: self.cache_dir.clone(),
            no_cache: self.no_cache,
            progress: if self.progress {
                ProgressMode::JsonLines
            } else {
                ProgressMode::Silent
            },
        })
    }

    /// Parses the process arguments and exits with usage on error.
    #[must_use]
    pub fn parse_or_exit() -> Self {
        match Self::parse() {
            Ok(args) => args,
            Err(e) => {
                eprintln!("error: {e}\nusage: {HARNESS_USAGE}");
                std::process::exit(2);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<HarnessArgs, String> {
        HarnessArgs::parse_from(args.iter().map(|s| (*s).to_owned()))
    }

    #[test]
    fn parses_all_flags() {
        let a = parse(&[
            "--jobs",
            "8",
            "--cache-dir",
            "/tmp/x",
            "--no-cache",
            "--progress",
            "--quick",
        ])
        .expect("valid");
        assert_eq!(a.jobs, Some(8));
        assert_eq!(a.cache_dir, Some(PathBuf::from("/tmp/x")));
        assert!(a.no_cache && a.progress && a.quick);
        assert_eq!(a.harness().jobs(), 8);
    }

    #[test]
    fn zero_jobs_clamps_to_one() {
        assert_eq!(parse(&["--jobs", "0"]).expect("valid").jobs, Some(1));
    }

    #[test]
    fn rejects_unknown_and_valueless_flags() {
        assert!(parse(&["--frobnicate"]).is_err());
        assert!(parse(&["--jobs"]).is_err());
        assert!(parse(&["--jobs", "many"]).is_err());
    }

    #[test]
    fn defaults_are_cache_on_silent() {
        let a = parse(&[]).expect("valid");
        assert!(!a.no_cache && !a.progress && !a.quick);
        let h = a.harness();
        assert!(h.cache().is_some());
        assert!(h.jobs() >= 1);
    }
}
