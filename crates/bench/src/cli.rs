//! Shared command-line plumbing for the `repro-*` binaries.
//!
//! Every reproduction binary accepts the same orchestration flags:
//!
//! ```text
//! --jobs N          worker threads (default: available parallelism)
//! --cache-dir DIR   result-cache directory (default: target/horus-cache)
//! --no-cache        bypass the result cache (always re-simulate)
//! --progress        stream JSON-lines progress events to stderr
//! --quick           shrink the sweeps (binaries that sweep)
//! --trace-out FILE  also write a Chrome-trace JSON of one probed drain
//! --metrics-addr A  serve live Prometheus text on A (e.g. 127.0.0.1:9464)
//! --dashboard       render the live TTY telemetry panel on stderr
//! --obs-out FILE    write the end-of-run obs summary JSON to FILE
//! --fleet ADDR      submit sweeps to the fleet coordinator at ADDR instead
//!                   of the local pool (output stays byte-identical)
//! --span-out FILE   write a Chrome-trace JSON of per-job lifecycle spans
//!                   (queued → leased → executing → pushed → committed)
//! --sim-threads N   shard independent episodes over N simulation worker
//!                   threads (default 1; output is byte-identical for any N)
//! --log-level LVL   structured-log threshold: debug|info|warn|error
//! --log-json        emit structured log lines as NDJSON on stderr
//! ```
//!
//! The three `--metrics-addr`/`--dashboard`/`--obs-out` flags together
//! drive an [`ObsRuntime`]: build it once with
//! [`HarnessArgs::obs_or_exit`], construct the harness through
//! [`HarnessArgs::harness_with`] so sweep metrics land in the session's
//! registry, and call [`ObsRuntime::finish_or_exit`] after the run to
//! drain per-job profiles and write the summary artifact. With none of
//! the flags given the runtime is inert and the binary's outputs are
//! byte-identical to the uninstrumented ones.
//!
//! `--out` is accepted as an alias for `--trace-out` (one binary
//! historically spelled it that way; both now work everywhere). A
//! binary with flags of its own composes them onto the shared set via
//! [`HarnessArgs::parse_from_with`] — its handler sees every flag
//! first, so it may claim a shared spelling (e.g. `bench-gate` keeps
//! `--out` for its snapshot path) without forking the parser.

use horus_core::{DrainScheme, SystemConfig};
use horus_fleet::FleetBackend;
use horus_harness::{Harness, HarnessOptions, JobSpec, ProgressMode, SweepBackend};
use horus_obs::{log, ObsOptions, ObsSession};
use horus_service::ServiceBackend;
use horus_sim::chrome_trace_json;
use horus_workload::FillPattern;
use std::path::PathBuf;
use std::sync::Arc;

/// The harness-related flags common to all `repro-*` binaries.
#[derive(Debug, Clone, Default)]
pub struct HarnessArgs {
    /// `--jobs N`.
    pub jobs: Option<usize>,
    /// `--cache-dir DIR`.
    pub cache_dir: Option<PathBuf>,
    /// `--no-cache`.
    pub no_cache: bool,
    /// `--progress`.
    pub progress: bool,
    /// `--quick`.
    pub quick: bool,
    /// `--trace-out FILE`.
    pub trace_out: Option<PathBuf>,
    /// `--metrics-addr ADDR`.
    pub metrics_addr: Option<String>,
    /// `--dashboard`.
    pub dashboard: bool,
    /// `--obs-out FILE`.
    pub obs_out: Option<PathBuf>,
    /// `--fleet ADDR`.
    pub fleet: Option<String>,
    /// `--service ADDR`.
    pub service: Option<String>,
    /// `--service-tenant NAME`.
    pub service_tenant: Option<String>,
    /// `--span-out FILE`.
    pub span_out: Option<PathBuf>,
    /// `--sim-threads N`.
    pub sim_threads: Option<usize>,
    /// `--log-level LVL`.
    pub log_level: Option<log::Level>,
    /// `--log-json`.
    pub log_json: bool,
}

/// The usage string fragment for the shared flags.
pub const HARNESS_USAGE: &str = "[--jobs N] [--cache-dir DIR] [--no-cache] [--progress] \
     [--quick] [--trace-out FILE] [--metrics-addr ADDR] [--dashboard] [--obs-out FILE] \
     [--fleet ADDR] [--service ADDR] [--service-tenant NAME] [--span-out FILE] \
     [--sim-threads N] [--log-level LVL] [--log-json]";

impl HarnessArgs {
    /// Parses the process arguments; unknown flags are an error.
    pub fn parse() -> Result<Self, String> {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parses an explicit argument iterator (testable).
    pub fn parse_from(argv: impl Iterator<Item = String>) -> Result<Self, String> {
        Self::parse_from_with(argv, |_, _| Ok(false))
    }

    /// [`parse_from`](Self::parse_from) with binary-specific flags
    /// composed in. `extra` is offered every flag *before* the shared
    /// parser; it returns `Ok(true)` after consuming one (pulling any
    /// value from the iterator itself), `Ok(false)` to pass it through
    /// to the shared set, or `Err` to reject its value. Because `extra`
    /// runs first, a binary may claim a shared spelling for itself.
    pub fn parse_from_with(
        argv: impl Iterator<Item = String>,
        mut extra: impl FnMut(&str, &mut dyn Iterator<Item = String>) -> Result<bool, String>,
    ) -> Result<Self, String> {
        let mut args = Self::default();
        let mut it = argv;
        while let Some(a) = it.next() {
            if extra(a.as_str(), &mut it)? {
                continue;
            }
            match a.as_str() {
                "--jobs" => {
                    let v = it.next().ok_or("--jobs requires a value")?;
                    args.jobs = Some(
                        v.parse::<usize>()
                            .map_err(|e| format!("--jobs {v}: {e}"))?
                            .max(1),
                    );
                }
                "--cache-dir" => {
                    let v = it.next().ok_or("--cache-dir requires a value")?;
                    args.cache_dir = Some(PathBuf::from(v));
                }
                "--no-cache" => args.no_cache = true,
                "--progress" => args.progress = true,
                "--quick" => args.quick = true,
                "--trace-out" | "--out" => {
                    let v = it.next().ok_or(format!("{a} requires a value"))?;
                    args.trace_out = Some(PathBuf::from(v));
                }
                "--metrics-addr" => {
                    let v = it.next().ok_or("--metrics-addr requires a value")?;
                    args.metrics_addr = Some(v);
                }
                "--dashboard" => args.dashboard = true,
                "--obs-out" => {
                    let v = it.next().ok_or("--obs-out requires a value")?;
                    args.obs_out = Some(PathBuf::from(v));
                }
                "--fleet" => {
                    let v = it.next().ok_or("--fleet requires a value")?;
                    args.fleet = Some(v);
                }
                "--service" => {
                    let v = it.next().ok_or("--service requires a value")?;
                    args.service = Some(v);
                }
                "--service-tenant" => {
                    let v = it.next().ok_or("--service-tenant requires a value")?;
                    args.service_tenant = Some(v);
                }
                "--span-out" => {
                    let v = it.next().ok_or("--span-out requires a value")?;
                    args.span_out = Some(PathBuf::from(v));
                }
                "--sim-threads" => {
                    let v = it.next().ok_or("--sim-threads requires a value")?;
                    args.sim_threads = Some(
                        v.parse::<usize>()
                            .map_err(|e| format!("--sim-threads {v}: {e}"))?
                            .max(1),
                    );
                }
                "--log-level" => {
                    let v = it.next().ok_or("--log-level requires a value")?;
                    args.log_level = Some(
                        log::Level::parse(&v)
                            .ok_or(format!("--log-level {v}: expected debug|info|warn|error"))?,
                    );
                }
                "--log-json" => args.log_json = true,
                other => return Err(format!("unknown flag '{other}' ({HARNESS_USAGE})")),
            }
        }
        if args.fleet.is_some() && args.service.is_some() {
            return Err("--fleet and --service are mutually exclusive backends".to_string());
        }
        if args.service_tenant.is_some() && args.service.is_none() {
            return Err("--service-tenant requires --service".to_string());
        }
        Ok(args)
    }

    /// Builds the harness these flags describe, with no telemetry
    /// attached. Binaries that honor the obs flags should use
    /// [`Self::harness_with`] instead.
    #[must_use]
    pub fn harness(&self) -> Harness {
        self.harness_with(&ObsRuntime { session: None })
    }

    /// Builds the harness with `obs`'s registry attached (when a session
    /// is running), so sweep metrics stream to the scrape endpoint,
    /// dashboard, and summary artifact.
    ///
    /// Progress-mode resolution: `--progress` always streams JSON
    /// lines; a `--dashboard` request that could not become a live
    /// panel (stderr is not a TTY) *degrades* to the JSON-lines stream
    /// rather than going dark; a live dashboard keeps line progress off
    /// so the two don't fight over stderr.
    #[must_use]
    pub fn harness_with(&self, obs: &ObsRuntime) -> Harness {
        let dashboard_live = obs
            .session
            .as_ref()
            .is_some_and(ObsSession::dashboard_active);
        let progress = if self.progress || (self.dashboard && !dashboard_live) {
            ProgressMode::JsonLines
        } else {
            ProgressMode::Silent
        };
        Harness::new(HarnessOptions {
            jobs: self.jobs,
            cache_dir: self.cache_dir.clone(),
            no_cache: self.no_cache,
            progress,
            metrics: obs.session.as_ref().map(ObsSession::registry),
            backend: self.backend(),
            spans: obs.session.as_ref().and_then(ObsSession::span_book),
        })
    }

    /// The remote execution backend these flags select: a fleet
    /// coordinator (`--fleet`), a `horus-cli serve` daemon
    /// (`--service`, optionally submitting as `--service-tenant`), or
    /// none — the local pool. Both backends keep the harness's
    /// determinism contract, so a binary's output is byte-identical
    /// wherever its sweeps ran.
    #[must_use]
    pub fn backend(&self) -> Option<Arc<dyn SweepBackend>> {
        if let Some(addr) = &self.fleet {
            return Some(Arc::new(FleetBackend::new(addr.clone())));
        }
        self.service.as_ref().map(|addr| {
            let mut backend = ServiceBackend::new(addr.clone());
            if let Some(tenant) = &self.service_tenant {
                backend = backend.with_tenant(tenant.clone());
            }
            Arc::new(backend) as Arc<dyn SweepBackend>
        })
    }

    /// The simulation-episode worker pool `--sim-threads` describes.
    /// Defaults to the single-thread reference configuration, whose
    /// output every other thread count must reproduce byte-for-byte.
    #[must_use]
    pub fn episode_shards(&self) -> horus_sim::EpisodeShards {
        horus_sim::EpisodeShards::new(self.sim_threads.unwrap_or(1))
    }

    /// The [`ObsOptions`] these flags describe. When telemetry was
    /// requested but no `--obs-out` path given, the summary defaults to
    /// `obs-summary.json` in the working directory (gitignored).
    #[must_use]
    pub fn obs_options(&self) -> ObsOptions {
        let summary_out = self.obs_out.clone().or_else(|| {
            (self.metrics_addr.is_some() || self.dashboard)
                .then(|| PathBuf::from("obs-summary.json"))
        });
        ObsOptions {
            metrics_addr: self.metrics_addr.clone(),
            dashboard: self.dashboard,
            summary_out,
            span_out: self.span_out.clone(),
        }
    }

    /// Starts the telemetry session these flags describe (inert when no
    /// obs flag was given), exiting the process when the metrics address
    /// cannot be bound. Announces the scrape URL on stderr so an
    /// operator can curl it mid-run.
    /// Applies `--log-level` / `--log-json` to the process-wide
    /// structured logger. Idempotent; a no-op when neither flag was
    /// given (so the logger keeps its defaults).
    pub fn apply_log_flags(&self) {
        if let Some(level) = self.log_level {
            log::set_level(level);
        }
        if self.log_json {
            log::set_json_stderr(true);
        }
    }

    #[must_use]
    pub fn obs_or_exit(&self) -> ObsRuntime {
        self.apply_log_flags();
        let opts = self.obs_options();
        if !opts.is_active() {
            return ObsRuntime { session: None };
        }
        match ObsSession::start(&opts) {
            Ok(session) => {
                if let Some(addr) = session.metrics_addr() {
                    eprintln!("metrics: serving Prometheus text on http://{addr}/metrics");
                }
                ObsRuntime {
                    session: Some(session),
                }
            }
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    }

    /// When `--trace-out FILE` was given, runs one probed worst-case
    /// drain of `scheme` under `cfg` (shrunk to a 2 MB LLC under
    /// `--quick`) and writes its Chrome-trace-event JSON to FILE —
    /// loadable in Perfetto / `chrome://tracing`. A no-op otherwise.
    ///
    /// # Errors
    ///
    /// Returns an error when FILE cannot be written.
    pub fn write_trace_if_requested(
        &self,
        cfg: &SystemConfig,
        scheme: DrainScheme,
    ) -> Result<(), String> {
        let Some(path) = &self.trace_out else {
            return Ok(());
        };
        let cfg = if self.quick {
            SystemConfig::with_llc_bytes(2 << 20)
        } else {
            cfg.clone()
        };
        let spec = JobSpec::drain(
            &cfg,
            scheme,
            FillPattern::StridedSparse { min_stride: 16384 },
        );
        let (result, trace) = spec.execute_traced();
        let json = chrome_trace_json(&trace);
        std::fs::write(path, json.as_bytes()).map_err(|e| format!("{}: {e}", path.display()))?;
        let bounding = result
            .drain
            .critical_path
            .as_ref()
            .map_or("unknown", |cp| cp.bounding_resource.as_str());
        eprintln!(
            "trace: {} events from one {} drain -> {} (critical path bounded by {bounding})",
            trace.len(),
            result.drain.scheme,
            path.display()
        );
        Ok(())
    }

    /// [`write_trace_if_requested`](Self::write_trace_if_requested),
    /// exiting the process on I/O failure (for binary `main`s).
    pub fn trace_or_exit(&self, cfg: &SystemConfig, scheme: DrainScheme) {
        if let Err(e) = self.write_trace_if_requested(cfg, scheme) {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }

    /// Parses the process arguments and exits with usage on error.
    #[must_use]
    pub fn parse_or_exit() -> Self {
        match Self::parse() {
            Ok(args) => args,
            Err(e) => {
                eprintln!("error: {e}\nusage: {HARNESS_USAGE}");
                std::process::exit(2);
            }
        }
    }

    /// [`parse_from_with`](Self::parse_from_with) over the process
    /// arguments, exiting with the combined usage (`extra_usage` then
    /// the shared flags) on error.
    #[must_use]
    pub fn parse_or_exit_with(
        extra_usage: &str,
        extra: impl FnMut(&str, &mut dyn Iterator<Item = String>) -> Result<bool, String>,
    ) -> Self {
        match Self::parse_from_with(std::env::args().skip(1), extra) {
            Ok(args) => args,
            Err(e) => {
                eprintln!("error: {e}\nusage: {extra_usage} {HARNESS_USAGE}");
                std::process::exit(2);
            }
        }
    }
}

/// One run's telemetry, as requested on the command line: an
/// [`ObsSession`] when any obs flag was given, inert otherwise.
///
/// Lifecycle in a binary's `main`:
///
/// ```no_run
/// # use horus_bench::cli::HarnessArgs;
/// let args = HarnessArgs::parse_or_exit();
/// let obs = args.obs_or_exit();
/// let harness = args.harness_with(&obs);
/// // ... run the sweep ...
/// obs.finish_or_exit(&harness);
/// ```
pub struct ObsRuntime {
    session: Option<ObsSession>,
}

impl ObsRuntime {
    /// True when a telemetry session is running.
    #[must_use]
    pub fn active(&self) -> bool {
        self.session.is_some()
    }

    /// Drains the harness's per-job profiles, writes the summary
    /// artifact, and stops the endpoint/dashboard; exits the process if
    /// the summary cannot be written. A no-op for an inert runtime.
    pub fn finish_or_exit(self, harness: &Harness) {
        let Some(session) = self.session else {
            return;
        };
        match session.finish(harness.take_job_profiles()) {
            Ok(Some(path)) => eprintln!("obs: wrote run summary -> {}", path.display()),
            Ok(None) => {}
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<HarnessArgs, String> {
        HarnessArgs::parse_from(args.iter().map(|s| (*s).to_owned()))
    }

    #[test]
    fn parses_all_flags() {
        let a = parse(&[
            "--jobs",
            "8",
            "--cache-dir",
            "/tmp/x",
            "--no-cache",
            "--progress",
            "--quick",
        ])
        .expect("valid");
        assert_eq!(a.jobs, Some(8));
        assert_eq!(a.cache_dir, Some(PathBuf::from("/tmp/x")));
        assert!(a.no_cache && a.progress && a.quick);
        assert_eq!(a.harness().jobs(), 8);
    }

    #[test]
    fn backend_flags_are_exclusive_and_select_correctly() {
        assert!(parse(&["--fleet", "h:1", "--service", "h:2"]).is_err());
        assert!(parse(&["--service-tenant", "team-a"]).is_err());
        let a =
            parse(&["--service", "127.0.0.1:9900", "--service-tenant", "team-a"]).expect("valid");
        let backend = a.backend().expect("service backend");
        assert_eq!(
            backend.describe(),
            "service at 127.0.0.1:9900 (tenant team-a)"
        );
        let a = parse(&["--fleet", "127.0.0.1:9470"]).expect("valid");
        assert!(a
            .backend()
            .expect("fleet backend")
            .describe()
            .contains("fleet"));
        assert!(parse(&[]).expect("empty").backend().is_none());
    }

    #[test]
    fn trace_out_parses_and_writes_chrome_json() {
        let a = parse(&["--trace-out", "/tmp/t.json", "--quick"]).expect("valid");
        assert_eq!(a.trace_out, Some(PathBuf::from("/tmp/t.json")));
        assert!(parse(&["--trace-out"]).is_err());

        let dir = std::env::temp_dir().join("horus-trace-out-test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("drain.json");
        let args = HarnessArgs {
            trace_out: Some(path.clone()),
            quick: true,
            ..HarnessArgs::default()
        };
        args.write_trace_if_requested(&SystemConfig::small_test(), DrainScheme::HorusSlm)
            .expect("trace written");
        let json = std::fs::read_to_string(&path).expect("read back");
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("pcm-bank"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn no_trace_out_is_a_no_op() {
        let args = parse(&[]).expect("valid");
        args.write_trace_if_requested(&SystemConfig::small_test(), DrainScheme::NonSecure)
            .expect("no-op");
    }

    #[test]
    fn zero_jobs_clamps_to_one() {
        assert_eq!(parse(&["--jobs", "0"]).expect("valid").jobs, Some(1));
    }

    #[test]
    fn sim_threads_parses_and_defaults_to_one() {
        let a = parse(&["--sim-threads", "8"]).expect("valid");
        assert_eq!(a.sim_threads, Some(8));
        assert_eq!(a.episode_shards().threads(), 8);
        // Default is the single-thread reference configuration.
        assert_eq!(parse(&[]).expect("valid").episode_shards().threads(), 1);
        // Zero clamps rather than erroring, like --jobs.
        assert_eq!(
            parse(&["--sim-threads", "0"]).expect("valid").sim_threads,
            Some(1)
        );
        assert!(parse(&["--sim-threads"]).is_err());
        assert!(parse(&["--sim-threads", "lots"]).is_err());
    }

    #[test]
    fn rejects_unknown_and_valueless_flags() {
        assert!(parse(&["--frobnicate"]).is_err());
        assert!(parse(&["--jobs"]).is_err());
        assert!(parse(&["--jobs", "many"]).is_err());
    }

    #[test]
    fn out_is_an_alias_for_trace_out() {
        let a = parse(&["--out", "/tmp/t.json"]).expect("valid");
        assert_eq!(a.trace_out, Some(PathBuf::from("/tmp/t.json")));
        assert!(parse(&["--out"]).is_err());
    }

    #[test]
    fn extra_flags_compose_with_the_shared_set() {
        let mut threshold = None;
        let a = HarnessArgs::parse_from_with(
            ["--threshold", "7", "--jobs", "2"]
                .iter()
                .map(|s| (*s).to_owned()),
            |flag, it| match flag {
                "--threshold" => {
                    let v = it.next().ok_or("--threshold requires a value")?;
                    threshold = Some(v.parse::<u32>().map_err(|e| e.to_string())?);
                    Ok(true)
                }
                _ => Ok(false),
            },
        )
        .expect("valid");
        assert_eq!(threshold, Some(7));
        assert_eq!(a.jobs, Some(2));
    }

    #[test]
    fn extra_handler_can_claim_a_shared_spelling() {
        // A binary that owns `--out` (like bench-gate's snapshot path)
        // sees it before the shared alias does.
        let mut snapshot_out = None;
        let a = HarnessArgs::parse_from_with(
            ["--out", "snap.json", "--trace-out", "t.json"]
                .iter()
                .map(|s| (*s).to_owned()),
            |flag, it| match flag {
                "--out" => {
                    snapshot_out = it.next();
                    Ok(true)
                }
                _ => Ok(false),
            },
        )
        .expect("valid");
        assert_eq!(snapshot_out.as_deref(), Some("snap.json"));
        assert_eq!(a.trace_out, Some(PathBuf::from("t.json")));
    }

    #[test]
    fn extra_handler_errors_propagate() {
        let r = HarnessArgs::parse_from_with(
            ["--threshold"].iter().map(|s| (*s).to_owned()),
            |flag, it| match flag {
                "--threshold" => {
                    it.next().ok_or("--threshold requires a value")?;
                    Ok(true)
                }
                _ => Ok(false),
            },
        );
        assert_eq!(r.unwrap_err(), "--threshold requires a value");
    }

    #[test]
    fn defaults_are_cache_on_silent() {
        let a = parse(&[]).expect("valid");
        assert!(!a.no_cache && !a.progress && !a.quick);
        let h = a.harness();
        assert!(h.cache().is_some());
        assert!(h.jobs() >= 1);
    }

    #[test]
    fn fleet_flag_parses_and_attaches_the_backend() {
        let a = parse(&["--fleet", "127.0.0.1:9470"]).expect("valid");
        assert_eq!(a.fleet.as_deref(), Some("127.0.0.1:9470"));
        assert!(parse(&["--fleet"]).is_err());
        // The backend is attached but untouched until a sweep runs, so
        // building the harness needs no live coordinator.
        let h = a.harness();
        assert!(format!("{h:?}").contains("fleet coordinator at 127.0.0.1:9470"));
        assert!(parse(&[]).expect("valid").fleet.is_none());
    }

    #[test]
    fn obs_flags_parse() {
        let a = parse(&[
            "--metrics-addr",
            "127.0.0.1:0",
            "--dashboard",
            "--obs-out",
            "/tmp/summary.json",
        ])
        .expect("valid");
        assert_eq!(a.metrics_addr.as_deref(), Some("127.0.0.1:0"));
        assert!(a.dashboard);
        assert_eq!(a.obs_out, Some(PathBuf::from("/tmp/summary.json")));
        assert!(parse(&["--metrics-addr"]).is_err());
        assert!(parse(&["--obs-out"]).is_err());
    }

    #[test]
    fn span_and_log_flags_parse() {
        let a = parse(&[
            "--span-out",
            "/tmp/spans.json",
            "--log-level",
            "warn",
            "--log-json",
        ])
        .expect("valid");
        assert_eq!(a.span_out, Some(PathBuf::from("/tmp/spans.json")));
        assert_eq!(a.log_level, Some(log::Level::Warn));
        assert!(a.log_json);
        // --span-out alone activates the obs session (so the book gets
        // created and drained even with no other telemetry flag).
        assert!(a.obs_options().is_active());
        assert!(parse(&["--span-out"]).is_err());
        assert!(parse(&["--log-level"]).is_err());
        assert!(parse(&["--log-level", "loud"]).is_err());
    }

    #[test]
    fn span_out_threads_a_book_into_local_sweeps() {
        let dir = std::env::temp_dir().join(format!("horus-cli-span-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let out = dir.join("spans.json");
        let a = parse(&[
            "--span-out",
            out.to_str().expect("utf8 temp path"),
            "--no-cache",
            "--jobs",
            "2",
            "--quick",
        ])
        .expect("valid");
        let obs = a.obs_or_exit();
        assert!(obs.active());
        let h = a.harness_with(&obs);
        let cfg = SystemConfig::small_test();
        let specs = vec![JobSpec::drain(
            &cfg,
            DrainScheme::NonSecure,
            FillPattern::StridedSparse { min_stride: 16384 },
        )];
        let report = h.run(&specs);
        assert_eq!(report.executed, 1);
        obs.finish_or_exit(&h);
        let json = std::fs::read_to_string(&out).expect("span trace written");
        assert!(json.starts_with("{\"traceEvents\":["), "{json}");
        assert!(json.contains("\"name\":\"queued\""), "{json}");
        assert!(json.contains("\"name\":\"committed\""), "{json}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn no_obs_flags_mean_an_inert_runtime_and_no_metrics() {
        let a = parse(&[]).expect("valid");
        assert!(!a.obs_options().is_active());
        let obs = a.obs_or_exit();
        assert!(!obs.active());
        let h = a.harness_with(&obs);
        assert!(h.metrics().is_none());
        obs.finish_or_exit(&h); // no-op, no file written
    }

    #[test]
    fn obs_summary_path_defaults_when_telemetry_is_on() {
        let a = parse(&["--metrics-addr", "127.0.0.1:0"]).expect("valid");
        let opts = a.obs_options();
        assert_eq!(opts.summary_out, Some(PathBuf::from("obs-summary.json")));
        // An explicit --obs-out wins.
        let a = parse(&["--obs-out", "/tmp/s.json"]).expect("valid");
        assert_eq!(
            a.obs_options().summary_out,
            Some(PathBuf::from("/tmp/s.json"))
        );
    }

    #[test]
    fn obs_session_attaches_a_registry_to_the_harness() {
        let dir = std::env::temp_dir().join(format!("horus-cli-obs-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let out = dir.join("summary.json");
        let a = parse(&[
            "--metrics-addr",
            "127.0.0.1:0",
            "--obs-out",
            out.to_str().expect("utf8 temp path"),
            "--no-cache",
            "--jobs",
            "1",
        ])
        .expect("valid");
        let obs = a.obs_or_exit();
        assert!(obs.active());
        let h = a.harness_with(&obs);
        assert!(h.metrics().is_some());
        h.run_tasks(1, |_| 7u32);
        obs.finish_or_exit(&h);
        let json = std::fs::read_to_string(&out).expect("summary written");
        assert!(
            json.contains("horus_harness_jobs_completed_total"),
            "{json}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
