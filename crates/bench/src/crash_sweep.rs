//! The crash-point verification sweep behind `horus-cli crash-sweep`
//! and `repro-crash`.
//!
//! For each scheme, one probed reference drain measures the episode's
//! planned length and its phase boundaries (`drain.data` →
//! `drain.metadata` → `drain.finish`, or the baselines'
//! `drain.metadata_flush`) from the trace layer's phase track. Crash
//! cycles are then sampled evenly across `[0, planned]` *plus* an
//! exhaustive ±1-cycle neighbourhood around every phase boundary — the
//! cycles where in-flight state changes shape and bugs hide. Each
//! sampled cycle runs one full [`run_crash_point`] experiment (drain,
//! cut, recover, read back, classify) as an independent task on the
//! `horus-harness` worker pool; results are order-deterministic for any
//! `--jobs` count.
//!
//! The sweep's contract, enforced by the CI `crash-sweep` job: the
//! Horus schemes must classify every sampled cycle as `Recovered` or
//! `Detected` — zero silent corruption, because the persistent
//! drain-open register always knows an episode was interrupted. The
//! baselines show their documented vulnerability windows, *including*
//! silent loss: a Base-EU drain cut before any line reached NVM leaves
//! reads returning fresh-memory contents with no indication anything
//! was lost. Those rows are the finding, not a failure.

use crate::table;
use horus_core::crash::{run_crash_point, CrashPointReport, CrashSpec, CrashVerdict};
use horus_core::{DrainScheme, RecoveryMode, SecureEpdSystem, SystemConfig, TornWriteModel};
use horus_harness::Harness;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// What to sweep: which schemes, how many crash points per scheme, and
/// how interrupted writes land.
#[derive(Debug, Clone)]
pub struct CrashSweepPlan {
    /// Schemes to interrupt (default: the four secure schemes).
    pub schemes: Vec<DrainScheme>,
    /// Evenly spaced crash points per scheme; the phase-boundary
    /// neighbourhoods are sampled on top of this budget.
    pub points_per_scheme: usize,
    /// The torn-write model for in-flight blocks.
    pub model: TornWriteModel,
    /// Where recovered blocks go.
    pub mode: RecoveryMode,
}

impl CrashSweepPlan {
    /// The CI-sized sweep: ~64 crash points per secure scheme.
    #[must_use]
    pub fn quick() -> Self {
        Self {
            schemes: DrainScheme::SECURE.to_vec(),
            points_per_scheme: 64,
            model: TornWriteModel::default(),
            mode: RecoveryMode::RefillLlc,
        }
    }

    /// The thorough sweep: 256 points per scheme.
    #[must_use]
    pub fn full() -> Self {
        Self {
            points_per_scheme: 256,
            ..Self::quick()
        }
    }
}

/// One scheme's row of the crash matrix.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchemeCrashRow {
    /// The scheme's paper name.
    pub scheme: String,
    /// Crash points sampled.
    pub points: u64,
    /// Points classified [`CrashVerdict::Recovered`].
    pub recovered: u64,
    /// Points classified [`CrashVerdict::Detected`].
    pub detected: u64,
    /// Points classified [`CrashVerdict::SilentCorruption`] — must be 0
    /// for the Horus schemes; nonzero rows on the baselines are their
    /// documented vulnerability window.
    pub silent: u64,
    /// The crash-cycle range where data was lost (verdict not
    /// `Recovered`), if any.
    pub loss_window: Option<(u64, u64)>,
    /// The most pre-crash dirty lines any non-`Recovered` point still
    /// read back correctly — the schemes' salvage ability inside their
    /// loss window (Horus's prefix recovery vs. the baselines' zero).
    pub best_salvage: u64,
}

/// The full crash matrix: per-scheme rows plus every sampled point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrashMatrix {
    /// Per-scheme summaries, in plan order.
    pub rows: Vec<SchemeCrashRow>,
    /// Every sampled crash point, grouped by scheme in plan order and
    /// sorted by crash cycle within a scheme.
    pub points: Vec<CrashPointReport>,
    /// Worker-pool tasks that panicked (isolation caught them); any
    /// panic fails the sweep.
    pub panics: u64,
}

impl CrashMatrix {
    /// Total silent-corruption classifications across all schemes.
    #[must_use]
    pub fn silent_corruptions(&self) -> u64 {
        self.rows.iter().map(|r| r.silent).sum()
    }

    /// Silent corruptions on the Horus schemes — the acceptance gate.
    #[must_use]
    pub fn horus_silent_corruptions(&self) -> u64 {
        self.rows
            .iter()
            .filter(|r| r.scheme.starts_with("Horus"))
            .map(|r| r.silent)
            .sum()
    }

    /// What fails the sweep: any silent corruption on a scheme that
    /// claims crash consistency (the Horus schemes), or any panicked
    /// trial. Baseline silent-loss windows are reported, not gated —
    /// they are the vulnerability the paper motivates Horus with.
    #[must_use]
    pub fn failures(&self) -> u64 {
        self.horus_silent_corruptions() + self.panics
    }

    /// The fixed-width report table (the `repro-tab2` style).
    #[must_use]
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.scheme.clone(),
                    r.points.to_string(),
                    r.recovered.to_string(),
                    r.detected.to_string(),
                    r.silent.to_string(),
                    r.loss_window.map_or_else(
                        || "none".to_owned(),
                        |(lo, hi)| format!("cycles {lo}..{hi}"),
                    ),
                    r.best_salvage.to_string(),
                ]
            })
            .collect();
        table::render(
            &[
                "scheme",
                "points",
                "recovered",
                "detected",
                "SILENT",
                "loss window",
                "best salvage",
            ],
            &rows,
        )
    }
}

/// The canonical dirty system every crash point starts from: the
/// repro-faults fill (64 sparse lines) over [`SystemConfig::small_test`].
fn prepared_system(scheme: DrainScheme) -> SecureEpdSystem {
    let mut sys = SecureEpdSystem::for_scheme(SystemConfig::small_test(), scheme);
    for i in 0..64u64 {
        sys.write(i * 16448, [(i as u8).wrapping_mul(7).wrapping_add(3); 64])
            .expect("write");
    }
    sys
}

/// One probed reference drain: the planned episode length and the phase
/// boundary cycles from the `phase` track.
fn reference_drain(scheme: DrainScheme) -> (u64, Vec<u64>) {
    let mut sys = prepared_system(scheme);
    sys.enable_probe();
    let report = sys.crash_and_drain(scheme);
    let mut boundaries = BTreeSet::new();
    if let Some(trace) = sys.take_episode_trace() {
        for e in trace
            .iter()
            .filter(|e| e.track == "phase" && e.name.starts_with("drain."))
        {
            boundaries.insert(e.start);
            boundaries.insert(e.end);
        }
    }
    (report.cycles, boundaries.into_iter().collect())
}

/// The sampled crash cycles: `budget` evenly spaced points across
/// `[0, planned]`, plus the ±1-cycle neighbourhood of every phase
/// boundary. Sorted, deduped.
#[must_use]
pub fn crash_points(planned: u64, boundaries: &[u64], budget: usize) -> Vec<u64> {
    let mut set = BTreeSet::new();
    for &b in boundaries {
        set.insert(b.saturating_sub(1));
        set.insert(b);
        set.insert(b.saturating_add(1).min(planned + 1));
    }
    let even = budget.max(2) as u64;
    for i in 0..even {
        set.insert(i * planned / (even - 1));
    }
    set.into_iter().collect()
}

/// The metric label for a crash-point classification.
fn verdict_label(verdict: CrashVerdict) -> &'static str {
    match verdict {
        CrashVerdict::Recovered => "recovered",
        CrashVerdict::Detected => "detected",
        CrashVerdict::SilentCorruption => "silent_corruption",
    }
}

/// Runs the sweep on the worker pool and builds the matrix. When the
/// harness carries a metrics registry, every classification also
/// increments `horus_crash_verdicts_total{scheme, verdict}`, so a
/// mid-run scrape shows the verdict matrix filling in live.
#[must_use]
pub fn run(harness: &Harness, plan: &CrashSweepPlan) -> CrashMatrix {
    let mut rows = Vec::new();
    let mut points = Vec::new();
    let mut panics = 0u64;
    for &scheme in &plan.schemes {
        let (planned, boundaries) = reference_drain(scheme);
        let cuts = crash_points(planned, &boundaries, plan.points_per_scheme);
        eprintln!(
            "crash-sweep: {} — {} points over {} cycles ({} phase boundaries)",
            scheme.name(),
            cuts.len(),
            planned,
            boundaries.len()
        );
        let model = plan.model;
        let mode = plan.mode;
        let outcomes = harness.run_tasks(cuts.len(), |i| {
            let mut sys = prepared_system(scheme);
            run_crash_point(&mut sys, scheme, CrashSpec { at: cuts[i], model }, mode)
        });
        let mut row = SchemeCrashRow {
            scheme: scheme.name().to_owned(),
            points: 0,
            recovered: 0,
            detected: 0,
            silent: 0,
            loss_window: None,
            best_salvage: 0,
        };
        for (i, outcome) in outcomes.into_iter().enumerate() {
            match outcome {
                Ok(report) => {
                    row.points += 1;
                    match report.verdict {
                        CrashVerdict::Recovered => row.recovered += 1,
                        CrashVerdict::Detected => row.detected += 1,
                        CrashVerdict::SilentCorruption => row.silent += 1,
                    }
                    if let Some(registry) = harness.metrics() {
                        registry
                            .counter(
                                horus_obs::names::CRASH_VERDICTS,
                                "Crash-sweep classifications by scheme and verdict.",
                                &[
                                    ("scheme", scheme.name()),
                                    ("verdict", verdict_label(report.verdict)),
                                ],
                            )
                            .inc();
                    }
                    if report.verdict != CrashVerdict::Recovered {
                        row.best_salvage = row.best_salvage.max(report.reads_matched);
                        row.loss_window = Some(match row.loss_window {
                            None => (report.at, report.at),
                            Some((lo, hi)) => (lo.min(report.at), hi.max(report.at)),
                        });
                    }
                    points.push(report);
                }
                Err(message) => {
                    eprintln!(
                        "crash-sweep: {} point {i} (cycle {}) PANICKED: {message}",
                        scheme.name(),
                        cuts[i]
                    );
                    panics += 1;
                }
            }
        }
        rows.push(row);
    }
    CrashMatrix {
        rows,
        points,
        panics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mini_plan() -> CrashSweepPlan {
        CrashSweepPlan {
            points_per_scheme: 10,
            ..CrashSweepPlan::quick()
        }
    }

    #[test]
    fn crash_points_cover_boundaries_and_span() {
        let pts = crash_points(10_000, &[0, 4_000, 10_000], 16);
        assert!(pts.contains(&0));
        assert!(pts.contains(&3_999) && pts.contains(&4_000) && pts.contains(&4_001));
        assert!(pts.contains(&10_000));
        assert!(pts.windows(2).all(|w| w[0] < w[1]), "sorted, deduped");
        assert!(pts.len() >= 10);
    }

    #[test]
    fn mini_sweep_horus_is_never_silent_and_baselines_show_their_window() {
        let matrix = run(&Harness::serial(), &mini_plan());
        assert_eq!(matrix.panics, 0);
        assert_eq!(matrix.horus_silent_corruptions(), 0, "{}", matrix.render());
        assert_eq!(matrix.failures(), 0, "{}", matrix.render());
        assert_eq!(matrix.rows.len(), 4);
        for row in &matrix.rows {
            assert!(row.points >= 10, "{}: {} points", row.scheme, row.points);
            assert!(
                row.recovered > 0,
                "{}: the at/after-planned cuts recover",
                row.scheme
            );
            assert!(row.detected > 0, "{}: mid-drain cuts lose data", row.scheme);
        }
        // Base-EU cut before any line reached NVM: reads return
        // fresh-memory contents with recovery reporting success — the
        // silent-loss window the paper motivates Horus with.
        let eu = matrix.rows.iter().find(|r| r.scheme == "Base-EU").unwrap();
        assert!(eu.silent > 0, "{}", matrix.render());
        assert!(matrix.silent_corruptions() >= eu.silent);
    }

    #[test]
    fn horus_salvages_inside_the_loss_window_and_baselines_do_not() {
        let matrix = run(&Harness::serial(), &mini_plan());
        let by = |name: &str| {
            matrix
                .rows
                .iter()
                .find(|r| r.scheme == name)
                .expect("row present")
        };
        assert!(by("Horus-SLM").best_salvage > 0);
        assert!(by("Horus-DLM").best_salvage > 0);
        assert_eq!(by("Base-LU").best_salvage, 0);
        assert_eq!(by("Base-EU").best_salvage, 0);
        assert!(by("Base-LU").loss_window.is_some());
    }

    #[test]
    fn sweep_is_deterministic_for_any_worker_count() {
        let serial = run(&Harness::serial(), &mini_plan());
        let parallel = run(&Harness::with_jobs(4), &mini_plan());
        assert_eq!(serial, parallel);
    }

    #[test]
    fn verdict_counters_match_the_matrix() {
        use horus_harness::{HarnessOptions, ProgressMode};
        let registry = horus_obs::Registry::shared();
        let harness = Harness::new(HarnessOptions {
            jobs: Some(2),
            no_cache: true,
            progress: ProgressMode::Silent,
            metrics: Some(std::sync::Arc::clone(&registry)),
            ..HarnessOptions::default()
        });
        let matrix = run(&harness, &mini_plan());
        let snapshot = registry.snapshot();
        let count = |scheme: &str, verdict: &str| -> u64 {
            snapshot
                .samples
                .iter()
                .find(|s| {
                    s.name == horus_obs::names::CRASH_VERDICTS
                        && s.labels
                            == vec![
                                ("scheme".to_owned(), scheme.to_owned()),
                                ("verdict".to_owned(), verdict.to_owned()),
                            ]
                })
                .map_or(0, |s| match s.value {
                    horus_obs::SampleValue::Uint(v) => v,
                    _ => panic!("verdict counter is a counter"),
                })
        };
        for row in &matrix.rows {
            assert_eq!(
                count(&row.scheme, "recovered"),
                row.recovered,
                "{}",
                row.scheme
            );
            assert_eq!(
                count(&row.scheme, "detected"),
                row.detected,
                "{}",
                row.scheme
            );
            assert_eq!(
                count(&row.scheme, "silent_corruption"),
                row.silent,
                "{}",
                row.scheme
            );
        }
    }
}
