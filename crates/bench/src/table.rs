//! Minimal fixed-width text tables for the repro binaries.

/// Renders rows as a fixed-width table with a header row.
#[must_use]
pub fn render(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, c) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{c:>width$}", width = widths[i]));
        }
        line
    };
    let head: Vec<String> = headers.iter().map(|s| (*s).to_owned()).collect();
    out.push_str(&fmt_row(&head, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn renders_aligned() {
        let s = super::render(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer".into(), "200".into()],
            ],
        );
        assert!(s.contains("longer"));
        assert!(s.lines().count() == 4);
    }
}
