//! One driver per table/figure of the paper's evaluation.
//!
//! Each function submits its experiment points to a
//! [`horus_harness::Harness`] as [`JobSpec`]s — so every driver gets
//! parallelism, panic isolation, and result memoization for free — and
//! returns a result struct that knows how to render itself as the
//! rows/series the paper reports. The `repro-*` binaries are thin
//! wrappers; `repro-all` composes everything into `EXPERIMENTS.md`.
//!
//! Drivers that sweep the LLC take sizes in **bytes** and derive each
//! point from a base configuration, so the same pipeline runs at the
//! paper's Table I scale and at test scale.

use crate::experiments::{config_at_llc, paper_fill};
use crate::table;
use horus_core::config::ConfigSummary;
use horus_core::{DrainReport, DrainScheme, SystemConfig};
use horus_energy::{Battery, DrainEnergyModel, EnergyBreakdown};
use horus_harness::{Harness, JobSpec};
use serde::Serialize;

fn ratio(a: u64, b: u64) -> f64 {
    a as f64 / b.max(1) as f64
}

fn find(reports: &[DrainReport], scheme: DrainScheme) -> &DrainReport {
    reports
        .iter()
        .find(|r| r.scheme == scheme.name())
        .expect("scheme present in report set")
}

/// "8 MB" / "512 KB" — the paper quotes LLC sizes in MB; test-scale
/// sweeps use sub-MB sizes.
fn size_label(bytes: u64) -> String {
    if bytes >= 1 << 20 {
        format!("{} MB", bytes >> 20)
    } else {
        format!("{} KB", bytes >> 10)
    }
}

/// Table I: the simulated configuration.
#[derive(Debug, Clone, Serialize)]
pub struct Table1 {
    /// Structured summary.
    pub summary: ConfigSummary,
}

/// Runs the Table I reproduction (a configuration dump).
#[must_use]
pub fn table1(cfg: &SystemConfig) -> Table1 {
    Table1 {
        summary: ConfigSummary::of(cfg),
    }
}

impl Table1 {
    /// Renders the configuration table.
    #[must_use]
    pub fn render(&self) -> String {
        let s = &self.summary;
        let rows = vec![
            vec![
                "L1 cache".into(),
                format!("{} KB", s.hierarchy_bytes.0 / 1024),
            ],
            vec![
                "L2 cache".into(),
                format!("{} MB", s.hierarchy_bytes.1 >> 20),
            ],
            vec![
                "Inclusive LLC".into(),
                format!("{} MB", s.hierarchy_bytes.2 >> 20),
            ],
            vec!["Total drainable lines".into(), s.total_lines.to_string()],
            vec!["PCM size".into(), format!("{} GB", s.data_bytes >> 30)],
            vec![
                "PCM latency (rd/wr)".into(),
                format!(
                    "{:.0} ns / {:.0} ns",
                    s.nvm_latency_ns.0, s.nvm_latency_ns.1
                ),
            ],
            vec![
                "AES / hash latency".into(),
                format!(
                    "{} / {} cycles",
                    s.engine_latency_cycles.0, s.engine_latency_cycles.1
                ),
            ],
            vec![
                "Counter / MAC / tree caches".into(),
                format!(
                    "{} KB / {} KB / {} KB",
                    s.metadata_cache_bytes.0 / 1024,
                    s.metadata_cache_bytes.1 / 1024,
                    s.metadata_cache_bytes.2 / 1024
                ),
            ],
            vec![
                "Merkle-tree levels over NVM".into(),
                s.bmt_levels.to_string(),
            ],
        ];
        table::render(&["parameter", "value"], &rows)
    }
}

/// Figure 6: memory requests for flushing the hierarchy, no-security vs
/// the two secure baselines.
#[derive(Debug, Clone, Serialize)]
pub struct Figure6 {
    /// Non-Secure, Base-EU, Base-LU reports.
    pub reports: Vec<DrainReport>,
}

/// Runs Figure 6 (shares §III's motivation numbers).
#[must_use]
pub fn figure6(harness: &Harness, cfg: &SystemConfig) -> Figure6 {
    let specs: Vec<JobSpec> = [
        DrainScheme::NonSecure,
        DrainScheme::BaseEager,
        DrainScheme::BaseLazy,
    ]
    .iter()
    .map(|s| JobSpec::drain(cfg, *s, paper_fill()))
    .collect();
    Figure6 {
        reports: harness
            .run(&specs)
            .drains()
            .expect("Figure 6 drain panicked"),
    }
}

impl Figure6 {
    /// Renders the request breakdown and blow-up ratios.
    #[must_use]
    pub fn render(&self) -> String {
        let ns = find(&self.reports, DrainScheme::NonSecure);
        let mut rows = Vec::new();
        for r in &self.reports {
            let wb = r.write_breakdown();
            rows.push(vec![
                r.scheme.clone(),
                r.flushed_blocks.to_string(),
                r.reads.to_string(),
                wb.data.to_string(),
                wb.metadata_evictions.to_string(),
                wb.metadata_flush.to_string(),
                r.memory_requests().to_string(),
                format!("{:.2}x", ratio(r.memory_requests(), ns.memory_requests())),
            ]);
        }
        table::render(
            &[
                "scheme",
                "flushed",
                "metadata reads",
                "data writes",
                "metadata evict writes",
                "metadata flush",
                "total requests",
                "vs non-secure",
            ],
            &rows,
        )
    }
}

/// Figures 11–13: the four secure schemes plus non-secure over the
/// paper-default configuration.
#[derive(Debug, Clone, Serialize)]
pub struct SchemeComparison {
    /// All five drain reports, in `DrainScheme::ALL` order.
    pub reports: Vec<DrainReport>,
}

/// Runs the five-scheme comparison used by Figures 11, 12 and 13.
#[must_use]
pub fn scheme_comparison(harness: &Harness, cfg: &SystemConfig) -> SchemeComparison {
    let specs: Vec<JobSpec> = DrainScheme::ALL
        .iter()
        .map(|s| JobSpec::drain(cfg, *s, paper_fill()))
        .collect();
    SchemeComparison {
        reports: harness
            .run(&specs)
            .drains()
            .expect("scheme-comparison drain panicked"),
    }
}

impl SchemeComparison {
    /// Figure 11: normalized draining cycles.
    #[must_use]
    pub fn render_fig11(&self) -> String {
        let ns = find(&self.reports, DrainScheme::NonSecure);
        let slm = find(&self.reports, DrainScheme::HorusSlm);
        let rows = self
            .reports
            .iter()
            .map(|r| {
                vec![
                    r.scheme.clone(),
                    r.cycles.to_string(),
                    format!("{:.2} ms", r.seconds * 1e3),
                    format!("{:.2}x", ratio(r.cycles, ns.cycles)),
                    format!("{:.2}x", ratio(r.cycles, slm.cycles)),
                ]
            })
            .collect::<Vec<_>>();
        let bars: Vec<(&str, f64)> = self
            .reports
            .iter()
            .map(|r| (r.scheme.as_str(), ratio(r.cycles, ns.cycles)))
            .collect();
        format!(
            "{}
{}",
            table::render(
                &[
                    "scheme",
                    "cycles",
                    "drain time",
                    "vs non-secure",
                    "vs Horus-SLM"
                ],
                &rows
            ),
            crate::chart::bars_with(&bars, 48, |v| format!("{v:.2}x"))
        )
    }

    /// Figure 12: breakdown of memory writes.
    #[must_use]
    pub fn render_fig12(&self) -> String {
        let rows = self
            .reports
            .iter()
            .map(|r| {
                let wb = r.write_breakdown();
                vec![
                    r.scheme.clone(),
                    wb.data.to_string(),
                    wb.metadata_evictions.to_string(),
                    wb.chv_protection.to_string(),
                    wb.metadata_flush.to_string(),
                    wb.total().to_string(),
                ]
            })
            .collect::<Vec<_>>();
        let stacked: Vec<(&str, Vec<u64>)> = self
            .reports
            .iter()
            .map(|r| {
                let wb = r.write_breakdown();
                (
                    r.scheme.as_str(),
                    vec![
                        wb.data,
                        wb.metadata_evictions,
                        wb.chv_protection,
                        wb.metadata_flush,
                    ],
                )
            })
            .collect();
        format!(
            "{}
{}",
            table::render(
                &[
                    "scheme",
                    "data",
                    "tree/counter/MAC evict",
                    "CHV MAC+addr",
                    "metadata flush",
                    "total writes"
                ],
                &rows,
            ),
            crate::chart::stacked_bars(
                &["data", "metadata evict", "CHV MAC+addr", "metadata flush"],
                &stacked,
                48,
            )
        )
    }

    /// Figure 13: breakdown of MAC computations.
    #[must_use]
    pub fn render_fig13(&self) -> String {
        let slm = find(&self.reports, DrainScheme::HorusSlm);
        let rows = self
            .reports
            .iter()
            .map(|r| {
                let mb = r.mac_breakdown();
                vec![
                    r.scheme.clone(),
                    mb.verify.to_string(),
                    mb.tree_update.to_string(),
                    mb.data.to_string(),
                    mb.protect.to_string(),
                    mb.total().to_string(),
                    format!("{:.3}x", ratio(mb.total(), slm.mac_breakdown().total())),
                ]
            })
            .collect::<Vec<_>>();
        let stacked: Vec<(&str, Vec<u64>)> = self
            .reports
            .iter()
            .map(|r| {
                let mb = r.mac_breakdown();
                (
                    r.scheme.as_str(),
                    vec![mb.verify, mb.tree_update, mb.data, mb.protect],
                )
            })
            .collect();
        format!(
            "{}
{}",
            table::render(
                &[
                    "scheme",
                    "verify",
                    "tree update",
                    "data MAC",
                    "protect",
                    "total MACs",
                    "vs Horus-SLM"
                ],
                &rows,
            ),
            crate::chart::stacked_bars(
                &["verify", "tree update", "data MAC", "protect"],
                &stacked,
                48
            )
        )
    }
}

/// Figures 14 and 15: LLC-size sensitivity.
#[derive(Debug, Clone, Serialize)]
pub struct LlcSweep {
    /// `(llc_bytes, reports for all schemes)` per swept size.
    pub points: Vec<(u64, Vec<DrainReport>)>,
}

/// Runs the LLC sweep (paper: 8, 16, 32 MB): one job per
/// `(size, scheme)` point, all submitted in a single sweep.
#[must_use]
pub fn llc_sweep(harness: &Harness, base: &SystemConfig, llc_bytes: &[u64]) -> LlcSweep {
    let specs: Vec<JobSpec> = llc_bytes
        .iter()
        .flat_map(|bytes| {
            let cfg = config_at_llc(base, *bytes);
            DrainScheme::ALL
                .iter()
                .map(move |s| JobSpec::drain(&cfg, *s, paper_fill()))
                .collect::<Vec<_>>()
        })
        .collect();
    let drains = harness
        .run(&specs)
        .drains()
        .expect("LLC-sweep drain panicked");
    LlcSweep {
        points: llc_bytes
            .iter()
            .zip(drains.chunks(DrainScheme::ALL.len()))
            .map(|(bytes, chunk)| (*bytes, chunk.to_vec()))
            .collect(),
    }
}

impl LlcSweep {
    /// Figure 14: memory requests normalized to Base-LU at each size.
    #[must_use]
    pub fn render_fig14(&self) -> String {
        self.render_metric("memory requests", |r| r.memory_requests())
    }

    /// Figure 15: MAC computations normalized to Base-LU at each size.
    #[must_use]
    pub fn render_fig15(&self) -> String {
        self.render_metric("MAC computations", |r| r.mac_ops)
    }

    fn render_metric(&self, what: &str, metric: impl Fn(&DrainReport) -> u64) -> String {
        let mut rows = Vec::new();
        for (bytes, reports) in &self.points {
            let lu = find(reports, DrainScheme::BaseLazy);
            for r in reports
                .iter()
                .filter(|r| r.scheme != DrainScheme::NonSecure.name())
            {
                rows.push(vec![
                    size_label(*bytes),
                    r.scheme.clone(),
                    metric(r).to_string(),
                    format!("{:.3}", ratio(metric(r), metric(lu))),
                ]);
            }
        }
        table::render(&["LLC", "scheme", what, "normalized to Base-LU"], &rows)
    }
}

/// Figure 16: recovery time vs LLC size for the Horus schemes.
#[derive(Debug, Clone, Serialize)]
pub struct Figure16 {
    /// `(llc_bytes, scheme name, recovery seconds, restored blocks)`.
    pub points: Vec<(u64, String, f64, u64)>,
}

/// Runs the recovery-time sweep (paper: 8–128 MB): one drain+recover
/// job per `(size, scheme)` point.
#[must_use]
pub fn figure16(harness: &Harness, base: &SystemConfig, llc_bytes: &[u64]) -> Figure16 {
    let pairs: Vec<(u64, DrainScheme)> = llc_bytes
        .iter()
        .flat_map(|bytes| {
            [DrainScheme::HorusSlm, DrainScheme::HorusDlm].map(|scheme| (*bytes, scheme))
        })
        .collect();
    let specs: Vec<JobSpec> = pairs
        .iter()
        .map(|(bytes, scheme)| {
            JobSpec::drain_recover(&config_at_llc(base, *bytes), *scheme, paper_fill())
        })
        .collect();
    let report = harness.run(&specs);
    let results = report.results().expect("recovery point panicked");
    Figure16 {
        points: pairs
            .iter()
            .zip(results)
            .map(|((bytes, scheme), result)| {
                let rec = result
                    .recovery
                    .as_ref()
                    .expect("drain_recover jobs carry a recovery report");
                (
                    *bytes,
                    scheme.name().to_owned(),
                    rec.seconds,
                    rec.restored_blocks,
                )
            })
            .collect(),
    }
}

impl Figure16 {
    /// Renders the recovery-time series.
    #[must_use]
    pub fn render(&self) -> String {
        let rows = self
            .points
            .iter()
            .map(|(bytes, scheme, secs, blocks)| {
                vec![
                    size_label(*bytes),
                    scheme.clone(),
                    format!("{:.4} s", secs),
                    blocks.to_string(),
                ]
            })
            .collect::<Vec<_>>();
        table::render(
            &["LLC", "scheme", "recovery time", "restored blocks"],
            &rows,
        )
    }
}

/// Tables II and III: energy and battery sizing.
#[derive(Debug, Clone, Serialize)]
pub struct EnergyTables {
    /// Table II rows (four secure schemes).
    pub energy: Vec<EnergyBreakdown>,
}

/// Runs the drain-energy estimation over the four secure schemes. The
/// drain specs are identical to the scheme comparison's, so with a
/// result cache enabled these jobs are pure cache hits.
#[must_use]
pub fn energy_tables(harness: &Harness, cfg: &SystemConfig) -> EnergyTables {
    let specs: Vec<JobSpec> = DrainScheme::SECURE
        .iter()
        .map(|s| JobSpec::drain(cfg, *s, paper_fill()))
        .collect();
    let model = DrainEnergyModel::paper_default();
    let energy = harness
        .run(&specs)
        .drains()
        .expect("energy drain panicked")
        .iter()
        .map(|r| model.drain_energy(r))
        .collect();
    EnergyTables { energy }
}

impl EnergyTables {
    /// Table II: energy breakdown.
    #[must_use]
    pub fn render_table2(&self) -> String {
        let rows = self
            .energy
            .iter()
            .map(|e| {
                vec![
                    e.scheme.clone(),
                    format!("{:.2}", e.processor_j),
                    format!("{:.3}", e.write_j),
                    format!("{:.4}", e.read_j),
                    format!("{:.2}", e.total_j),
                ]
            })
            .collect::<Vec<_>>();
        table::render(
            &[
                "scheme",
                "processor (J)",
                "NVM writes (J)",
                "NVM reads (J)",
                "total (J)",
            ],
            &rows,
        )
    }

    /// Table III: battery volume for both technologies.
    #[must_use]
    pub fn render_table3(&self) -> String {
        let sc = Battery::super_capacitor();
        let li = Battery::lithium_thin_film();
        let rows = self
            .energy
            .iter()
            .map(|e| {
                vec![
                    e.scheme.clone(),
                    format!("{:.2}", sc.volume_cm3(e.total_j)),
                    format!("{:.4}", li.volume_cm3(e.total_j)),
                ]
            })
            .collect::<Vec<_>>();
        table::render(&["scheme", "SuperCap (cm^3)", "Li-thin (cm^3)"], &rows)
    }
}
