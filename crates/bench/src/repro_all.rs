//! The full-reproduction pipeline behind the `repro-all` binary.
//!
//! Living in the library (rather than the binary) so the integration
//! tests can drive it: the acceptance contract is that the generated
//! `EXPERIMENTS.md` markdown is **byte-identical** for any `--jobs`
//! count, and that an immediately repeated invocation against a warm
//! result cache re-executes zero simulations. To keep that true,
//! nothing nondeterministic — wall-clock time, worker counts, cache-hit
//! ratios — may be rendered into the markdown; such accounting goes to
//! stderr in the binary instead.

use crate::figures;
use horus_core::{DrainScheme, SystemConfig};
use horus_harness::Harness;
use std::fmt::Write as _;

/// Which experiment points to run: the paper's Table I scale for the
/// binary, a miniature scale for tests exercising the same pipeline.
#[derive(Debug, Clone)]
pub struct ReproPlan {
    /// Base configuration every experiment derives from.
    pub base: SystemConfig,
    /// LLC sizes (bytes) for the Figure 14/15 sweep.
    pub sweep_llc: Vec<u64>,
    /// LLC sizes (bytes) for the Figure 16 recovery sweep.
    pub recovery_llc: Vec<u64>,
    /// Suffix for the generated header (e.g. " (--quick)").
    pub label: &'static str,
}

impl ReproPlan {
    /// The paper's full evaluation: Table I base, 8–32 MB LLC sweep,
    /// 8–128 MB recovery sweep.
    #[must_use]
    pub fn full() -> Self {
        Self {
            base: SystemConfig::paper_default(),
            sweep_llc: vec![8 << 20, 16 << 20, 32 << 20],
            recovery_llc: vec![8 << 20, 16 << 20, 32 << 20, 64 << 20, 128 << 20],
            label: "",
        }
    }

    /// `--quick`: same base, shrunken sweeps (useful while iterating).
    #[must_use]
    pub fn quick() -> Self {
        Self {
            sweep_llc: vec![8 << 20, 16 << 20],
            recovery_llc: vec![8 << 20, 16 << 20],
            label: " (--quick)",
            ..Self::full()
        }
    }

    /// Test scale: the same pipeline over [`SystemConfig::small_test`]
    /// so a full run takes milliseconds. The measured values are *not*
    /// expected to match the paper's claims at this scale.
    #[must_use]
    pub fn smoke() -> Self {
        Self {
            base: SystemConfig::small_test(),
            sweep_llc: vec![4 << 10, 8 << 10],
            recovery_llc: vec![4 << 10, 8 << 10],
            label: " (smoke plan)",
        }
    }
}

/// One headline claim with its reproduction tolerance.
///
/// Tolerances are deliberately claim-specific: request/MAC *counts* are
/// structural (the simulator flushes the same block population the
/// paper does, so they reproduce tightly), while drain-*time* ratios
/// also fold in the timing model's divergence from the paper's gem5
/// testbed and get more slack.
#[derive(Debug, Clone)]
pub struct ClaimCheck {
    /// Human-readable claim, as worded in the headline table.
    pub claim: &'static str,
    /// The paper's value.
    pub paper: f64,
    /// This run's measured value.
    pub measured: f64,
    /// Maximum allowed relative deviation, e.g. `0.20` for ±20%.
    pub tolerance: f64,
    /// Decimal places when rendering the values.
    pub precision: usize,
}

impl ClaimCheck {
    /// Whether the measured value is within the stated tolerance of the
    /// paper's value.
    #[must_use]
    pub fn within_tolerance(&self) -> bool {
        ((self.measured - self.paper) / self.paper).abs() <= self.tolerance
    }
}

/// Computes the headline-claim checks from the five-scheme comparison.
#[must_use]
pub fn claim_checks(cmp: &figures::SchemeComparison) -> Vec<ClaimCheck> {
    let by = |scheme: DrainScheme| {
        cmp.reports
            .iter()
            .find(|r| r.scheme == scheme.name())
            .expect("scheme present in comparison")
    };
    let ns = by(DrainScheme::NonSecure);
    let lu = by(DrainScheme::BaseLazy);
    let eu = by(DrainScheme::BaseEager);
    let slm = by(DrainScheme::HorusSlm);
    let dlm = by(DrainScheme::HorusDlm);
    let r = |a: u64, b: u64| a as f64 / b.max(1) as f64;
    vec![
        ClaimCheck {
            claim: "Base-LU memory accesses vs non-secure",
            paper: 10.3,
            measured: r(lu.memory_requests(), ns.memory_requests()),
            tolerance: 0.20,
            precision: 1,
        },
        ClaimCheck {
            claim: "Base-EU memory accesses vs non-secure",
            paper: 9.5,
            measured: r(eu.memory_requests(), ns.memory_requests()),
            tolerance: 0.20,
            precision: 1,
        },
        ClaimCheck {
            claim: "Horus memory-request reduction vs Base-LU",
            paper: 8.0,
            measured: r(lu.memory_requests(), slm.memory_requests()),
            tolerance: 0.20,
            precision: 1,
        },
        ClaimCheck {
            claim: "Horus MAC-calculation reduction vs Base-LU",
            paper: 7.8,
            measured: r(lu.mac_ops, slm.mac_ops),
            tolerance: 0.20,
            precision: 1,
        },
        ClaimCheck {
            claim: "Base-LU drain time vs Horus",
            paper: 4.5,
            measured: r(lu.cycles, slm.cycles),
            tolerance: 0.45,
            precision: 1,
        },
        ClaimCheck {
            claim: "Base-EU drain time vs Horus",
            paper: 5.1,
            measured: r(eu.cycles, slm.cycles),
            tolerance: 0.45,
            precision: 1,
        },
        ClaimCheck {
            claim: "Horus drain time vs non-secure",
            paper: 1.7,
            measured: r(slm.cycles, ns.cycles),
            tolerance: 0.45,
            precision: 1,
        },
        ClaimCheck {
            claim: "Horus-DLM MACs vs Horus-SLM",
            paper: 1.125,
            measured: r(dlm.mac_ops, slm.mac_ops),
            tolerance: 0.05,
            precision: 3,
        },
    ]
}

/// Everything a full reproduction produced.
#[derive(Debug, Clone)]
pub struct ReproAll {
    /// The `EXPERIMENTS.md` content (deterministic — identical for any
    /// worker count and for cached vs fresh runs).
    pub markdown: String,
    /// The headline-claim checks (rendered in the markdown; the binary
    /// exits non-zero when any is out of tolerance).
    pub checks: Vec<ClaimCheck>,
}

impl ReproAll {
    /// The checks whose measured value is out of tolerance.
    #[must_use]
    pub fn failures(&self) -> Vec<&ClaimCheck> {
        self.checks
            .iter()
            .filter(|c| !c.within_tolerance())
            .collect()
    }
}

/// Runs every experiment of the plan on the harness and renders the
/// `EXPERIMENTS.md` markdown. Phase progress goes to stderr; execution
/// accounting is available from [`Harness::totals`] afterwards.
#[must_use]
pub fn run(harness: &Harness, plan: &ReproPlan) -> ReproAll {
    let cfg = &plan.base;
    let mut md = String::new();
    let _ = writeln!(
        md,
        "# EXPERIMENTS — paper vs. measured\n\n\
         Generated by `cargo run --release -p horus-bench --bin repro-all`{}.\n\n\
         Every table/figure of the Horus paper (MICRO 2022) reproduced on this\n\
         repository's from-scratch simulator. Absolute numbers differ from the\n\
         paper (gem5 + McPAT testbed vs. this discrete-event model); the claims\n\
         are about *shape*: who wins, by roughly what factor, and where the\n\
         crossovers are. Paper claims are quoted inline.\n",
        plan.label
    );

    eprintln!("[1/7] Table I…");
    let _ = writeln!(md, "## Table I — simulation configuration\n");
    let _ = writeln!(md, "```\n{}```\n", figures::table1(cfg).render());

    eprintln!("[2/7] Figure 6 (motivation)…");
    let f6 = figures::figure6(harness, cfg);
    let _ = writeln!(
        md,
        "## Figure 6 — memory requests to flush the hierarchy\n\n\
         **Paper:** secure EPD needs **10.3x** (lazy) / **9.5x** (eager) more\n\
         memory accesses than non-secure EPD for 295 936 flushed blocks.\n\n\
         **Measured:**\n\n```\n{}```\n",
        f6.render()
    );

    eprintln!("[3/7] Figures 11-13 (scheme comparison)…");
    let cmp = figures::scheme_comparison(harness, cfg);
    let _ = writeln!(
        md,
        "## Figure 11 — normalized draining time\n\n\
         **Paper:** Base-LU/EU take 4.5x/5.1x longer than Horus; secure\n\
         baselines are 8.6x non-secure, Horus only 1.7x.\n\n\
         **Measured:**\n\n```\n{}```\n",
        cmp.render_fig11()
    );
    let _ = writeln!(
        md,
        "## Figure 12 — breakdown of memory writes\n\n\
         **Paper:** baseline writes are dominated by integrity-tree metadata\n\
         evictions; Horus-DLM writes 8x fewer CHV MAC blocks than Horus-SLM;\n\
         the final metadata flush is negligible everywhere.\n\n\
         **Measured:**\n\n```\n{}```\n",
        cmp.render_fig12()
    );
    let _ = writeln!(
        md,
        "## Figure 13 — breakdown of MAC calculations\n\n\
         **Paper:** Base-EU computes the most MACs (tree updates); Base-LU's\n\
         are dominated by verification; Horus reduces MACs 7.8x, and\n\
         Horus-DLM computes 1.125x Horus-SLM.\n\n\
         **Measured:**\n\n```\n{}```\n",
        cmp.render_fig13()
    );

    eprintln!(
        "[4/7] Figures 14-15 (LLC sweep, {} sizes)…",
        plan.sweep_llc.len()
    );
    let sweep = figures::llc_sweep(harness, cfg, &plan.sweep_llc);
    let _ = writeln!(
        md,
        "## Figure 14 — memory requests vs LLC size (normalized to Base-LU)\n\n\
         **Paper:** both Horus schemes achieve at least a **7.0x** reduction\n\
         in memory requests vs Base-LU at 8/16/32 MB.\n\n\
         **Measured:**\n\n```\n{}```\n",
        sweep.render_fig14()
    );
    let _ = writeln!(
        md,
        "## Figure 15 — MAC calculations vs LLC size (normalized to Base-LU)\n\n\
         **Paper:** at least a **5.8x** reduction vs Base-LU.\n\n\
         **Measured:**\n\n```\n{}```\n",
        sweep.render_fig15()
    );

    eprintln!(
        "[5/7] Figure 16 (recovery sweep, {} sizes)…",
        plan.recovery_llc.len()
    );
    let f16 = figures::figure16(harness, cfg, &plan.recovery_llc);
    let _ = writeln!(
        md,
        "## Figure 16 — recovery time\n\n\
         **Paper:** recovery stays small even at 128 MB LLC: **0.51 s**\n\
         (Horus-SLM) and **0.48 s** (Horus-DLM); linear in LLC size; DLM\n\
         slightly faster (fewer MAC-block reads).\n\n\
         **Measured** (serial read-back, as the paper's estimate assumes):\n\n```\n{}```\n",
        f16.render()
    );

    eprintln!("[6/7] Tables II-III (energy & battery)…");
    let energy = figures::energy_tables(harness, cfg);
    let _ = writeln!(
        md,
        "## Table II — drain energy\n\n\
         **Paper:** Base-LU 11.07 J, Base-EU 12.39 J, Horus-SLM 2.45 J,\n\
         Horus-DLM 2.38 J; processor energy dominates.\n\n\
         **Measured** (constant 170 W platform power substituting McPAT):\n\n```\n{}```\n",
        energy.render_table2()
    );
    let _ = writeln!(
        md,
        "## Table III — hold-up battery volume\n\n\
         **Paper:** Base-LU 30.7 / Base-EU 34.4 vs Horus 6.6-6.8 cm^3\n\
         SuperCap (>=4.4x smaller); Li-thin 0.31-0.34 vs 0.07 cm^3.\n\n\
         **Measured:**\n\n```\n{}```\n",
        energy.render_table3()
    );

    eprintln!("[7/7] headline summary…");
    let checks = claim_checks(&cmp);
    let _ = writeln!(
        md,
        "## Headline claims\n\n\
         `repro-all` exits non-zero when a measured value leaves its\n\
         tolerance band.\n\n\
         | claim | paper | measured | tolerance | within |\n|---|---|---|---|---|"
    );
    for c in &checks {
        let _ = writeln!(
            md,
            "| {} | {:.prec$}x | {:.prec$}x | ±{:.0}% | {} |",
            c.claim,
            c.paper,
            c.measured,
            c.tolerance * 100.0,
            if c.within_tolerance() {
                "yes"
            } else {
                "**NO**"
            },
            prec = c.precision,
        );
    }

    let _ = writeln!(
        md,
        "\n## Where the cycles go — tracing a drain in Perfetto\n\n\
         Every number above can be opened up into a per-resource\n\
         timeline. Record one probed drain episode:\n\n\
         ```\n\
         cargo run --release --bin horus-cli -- trace horus --llc-mb 8 --out drain-trace.json\n\
         ```\n\n\
         The command prints a utilization table (busy fraction and\n\
         queueing-delay percentiles per AES engine, hash engine, and\n\
         PCM bank) plus a critical-path attribution naming the\n\
         bounding resource, and writes `drain-trace.json` in Chrome\n\
         trace-event format. Open <https://ui.perfetto.dev> (or\n\
         `chrome://tracing`), load the file, and you get one track per\n\
         hardware resource (`pcm-bank[0..15]`, `hash`, `aes`) and one\n\
         `phase` track with the drain phases (`drain.data`,\n\
         `drain.metadata`, `drain.finish`) and hierarchy-walk markers.\n\
         Timestamps and durations are simulated cycles; each slice\n\
         carries its `ready` time and queueing `wait` in its args.\n\n\
         Every `repro-*` binary accepts `--trace-out FILE` to record\n\
         the drain behind its headline number the same way. In this\n\
         model every scheme is ultimately PCM-bank-bound — Horus\n\
         because 16-way bank parallelism is the only wall left, the\n\
         baselines because their metadata traffic piles onto the same\n\
         banks (bank 0, home of the counter region, saturates first);\n\
         the hash engine runs hot (~70-80% busy) on the baselines but\n\
         hides behind the 2000-cycle PCM writes."
    );

    md.push_str(EPILOGUE);

    ReproAll {
        markdown: md,
        checks,
    }
}

/// Hand-written epilogue sections of `EXPERIMENTS.md`. They live here,
/// not only in the committed file, so a `repro-all` regeneration
/// preserves them instead of truncating the document at the generated
/// tables.
const EPILOGUE: &str = r#"
## Crash-point fault sweep — proving recovery at every cycle

The tables above measure complete drains. `crash-sweep` asks the
harder question: what if the backup power *itself* fails mid-drain?

```
cargo run --release --bin horus-cli -- crash-sweep --quick --out crash-matrix.json
```

For every secure scheme the sweep first runs one probed reference
drain and reads the `phase` track of its episode trace: the
`drain.data` → `drain.metadata` → `drain.finish` (or the baselines'
`drain.metadata_flush`) span edges are exactly the cycles where the
machine's in-flight state changes shape. Crash points are the ±1-cycle
neighbourhood of every such boundary plus ~64 evenly spaced cycles
across `[0, planned]` (`--points N` to change; drop `--quick` for 256).
Each point is an independent task on the worker pool (`--jobs N`;
results are order-deterministic): prepare a dirty hierarchy, start the
drain, cut it at the sampled cycle with torn in-flight NVM writes
(`--model torn|stale|garbled`), recover from the truncated state, and
re-read every pre-crash dirty line. A typical matrix:

```
   scheme  points  recovered  detected  SILENT       loss window  best salvage
------------------------------------------------------------------------------
  Base-LU      70          2        68       0  cycles 0..149199             0
  Base-EU      70          2        66       2  cycles 0..165599             0
Horus-SLM      67          2        65       0   cycles 0..19799            63
Horus-DLM      67          2        65       0   cycles 0..21399            56
```

Three things to read off it. First, the **SILENT column is zero for
Horus at every sampled cycle** — the persistent drain-open register
means an interrupted episode is always announced; the command (and the
CI `crash-sweep` job, which uploads `crash-matrix.json` as an
artifact) exits nonzero otherwise. Second, Base-EU's silent points are
real: cut its drain before any line reaches NVM and reads come back as
fresh memory with recovery reporting success — the vulnerability
window the paper motivates Horus with. Third, **best salvage**: inside
the loss window Horus still restores a verified prefix of the vault
(63 of 64 lines at the best sampled cut above) where the baselines
restore nothing.

The companion `repro-crash` binary runs the same sweep with the shared
`repro-*` flags, and `bench-gate` (CI: `bench regression gate`)
re-measures the smoke plan's headline op counts against the committed
`BENCH_smoke.json` baseline with 2% tolerance — refresh it with
`cargo run --release -p horus-bench --bin bench-gate -- --update` when
a model change legitimately moves the numbers.

## Watching the fleet live — Prometheus scrape and dashboard

Every `repro-*` binary and `horus-cli sweep`/`crash-sweep` can export
fleet telemetry while it runs (`horus-obs`; see ARCHITECTURE.md,
"Fleet observability"). Start the crash sweep with a metrics
endpoint:

```
cargo run --release -p horus-bench --bin repro-crash -- \
    --metrics-addr 127.0.0.1:9464
```

and scrape it mid-run from another terminal:

```
$ curl -s http://127.0.0.1:9464/metrics | grep -v '^#' | head
horus_crash_verdicts_total{scheme="Base-LU",verdict="detected"} 31
horus_crash_verdicts_total{scheme="Base-LU",verdict="recovered"} 2
horus_harness_cache_hits_total 0
horus_harness_jobs_completed_total 96
horus_harness_jobs_planned 274
horus_harness_jobs_started_total 98
horus_harness_queue_depth 2
horus_harness_worker_busy_seconds_total{worker="0"} 3.41
...
```

The endpoint speaks Prometheus/OpenMetrics text, so `curl | grep` is
already a usable dashboard and a real Prometheus needs no
configuration beyond the address. Queue depth and per-worker busy
seconds say whether the pool is starved; the per-scheme op totals and
live `*_per_second` gauges say what it is chewing through; and
`horus_crash_verdicts_total` above is the sweep's verdict matrix
accumulating scheme by scheme while it runs.

Prefer a terminal view? `--dashboard` renders the same registry as a
live in-place TTY panel — completion bar, queue depth and ETA, worker
occupancy, cache-hit rate, episodes/s / sim-cycles/s / mem-ops/s —
and degrades to the `--progress` JSON-lines stream when stdout is not
a TTY, so redirecting to a file never captures control codes.

Either flag (or an explicit `--obs-out PATH`) also makes the run
write `obs-summary.json` at exit: the final registry snapshot plus a
per-job host profile (wall vs CPU seconds, peak RSS; allocation
totals too when built with `--features horus-obs/alloc-profile`). The
summary's counters match the final scrape, and the deterministic
subset of the scrape — everything except host/timing families — is
byte-identical whatever `--jobs` was. With none of these flags given,
no thread, socket, or file is created and all output is byte-for-byte
what a telemetry-free build prints.

`horus-cli serve-metrics [--addr 127.0.0.1:9464] [--for-seconds N]`
serves a standalone host-metrics endpoint (CPU seconds, peak RSS,
uptime) when you want a scrape target without a sweep. In CI the
`obs-smoke` job runs a quick sweep with `--metrics-addr`, curls the
endpoint mid-run, asserts the scrape is well-formed non-empty
exposition text, and uploads `obs-summary.json` as an artifact; the
`bench regression gate` diffs the `host_profile` section of
`BENCH_smoke.json` informationally (pass `--gate-host-profile` to
fail on >50% regressions).

## Distributing a sweep — coordinator plus two local workers

`--jobs N` scales a sweep to one machine's cores; `--fleet ADDR`
scales it to as many machines as will connect, with the merged output
still byte-identical to the local run (see ARCHITECTURE.md, "Fleet").
Terminal 1, the coordinator — it owns the job queue, the plan journal,
and the authoritative result cache:

```
cargo run --release --bin horus-cli -- fleet-coordinator \
    --addr 127.0.0.1:9470 --cache-dir fleet-cache
# fleet: coordinator listening on 127.0.0.1:9470 (lease 30.0s)
```

Terminals 2 and 3, one worker each. A worker registers, leases job
batches up to its pool width, executes them on the same panic-isolated
harness pool a local sweep uses, and pushes each outcome (plus its
host profile) back:

```
cargo run --release --bin horus-cli -- fleet-worker \
    --connect 127.0.0.1:9470 --jobs 2 --name worker-a
```

Terminal 4, the submitter — any harness caller with `--fleet`:

```
cargo run --release --bin horus-cli -- sweep --llc 8,16,32 --json \
    --fleet 127.0.0.1:9470
```

The submitter blocks until the coordinator has merged the whole plan,
then renders exactly what the local command would have: `diff` the
output of `sweep --llc 8,16,32 --json --jobs 2` against the fleet run
and you get zero bytes of difference (the CI `fleet-smoke` job does
precisely this on every push). Re-submit the same sweep and the
coordinator answers from its cache at submit time — `0 executed, 15
cache hits` — without any worker seeing a job. The same `--fleet`
flag works on every `repro-*` binary, so `repro-all --fleet ADDR`
distributes the paper's full figure set.

Fault tolerance is the point of the lease machinery: kill a worker
mid-sweep (Ctrl-C it) and its leased jobs requeue after the lease
expires (default 30 s, tune with `--lease-secs`), the surviving
worker finishes them, and the merged output is still byte-identical.
A live worker never trips this: it heartbeats lease renewals from a
side connection while its pool is busy, so jobs longer than the lease
are safe and `--lease-secs` only bounds how fast a *dead* worker's
jobs come back — `crates/fleet/tests/fleet_e2e.rs` enforces exactly
this scenario, plus coordinator restart via the plan journal
(`fleet-coordinator --resume`). With `--metrics-addr` on the
coordinator, the `horus_fleet_workers`,
`horus_fleet_leases_in_flight`, and `horus_fleet_requeues_total`
families make the whole lifecycle visible on the dashboard or a
Prometheus scrape.

## Tracing the fleet — job lifecycle spans and structured logs

The drain-episode probe above traces *inside* one simulated episode;
`horus-span` traces the *job around it* as it moves through the fleet:
queued → leased → executing → pushed → committed, one timeline across
every host (see ARCHITECTURE.md, "Fleet tracing & logging"). Run the
2-worker fleet from the previous section, but give the coordinator a
metrics endpoint and a span artifact:

```
cargo run --release --bin horus-cli -- fleet-coordinator \
    --addr 127.0.0.1:9470 --cache-dir fleet-cache \
    --metrics-addr 127.0.0.1:9464 --span-out fleet-spans.json
```

start the two workers and submit `sweep --llc 8,16 --json --fleet
127.0.0.1:9470` exactly as before, then pull the assembled timeline
from any terminal:

```
cargo run --release --bin horus-cli -- fleet-trace \
    --connect 127.0.0.1:9470 --out fleet-trace.json
# fleet-trace: 10 span(s) from 127.0.0.1:9470 (10 complete)
```

`fleet-trace.json` is Chrome-trace JSON in the same shape as the drain
probe's export: drop it on [Perfetto](https://ui.perfetto.dev) (or
`chrome://tracing`) and each worker is a track, each job five spans —
queue wait, lease-to-execute gap, execution, push, commit. Worker
clocks are normalized to the coordinator's clock from the
`Hello`/`Welcome` round trip, so cross-host spans line up on one
timeline; stamps are clamped per-job-monotonic at render. The same
stage durations feed `horus_fleet_job_stage_seconds{stage=...}`
histograms on the scrape, the dashboard's `stage mean` line, and
`obs-summary.json`.

The fleet's diagnostics are structured now, too: every coordinator and
worker event (registration, plan submit/resume, journal failures,
drain) goes through `horus_obs::log` — leveled, with typed fields, the
last 1024 lines served as NDJSON at the endpoint's `/logs` route
(liveness at `/healthz`, readiness at `/readyz`):

```
$ curl -s http://127.0.0.1:9464/logs | head -2
{"ts_ms":…,"seq":0,"level":"info","target":"fleet","msg":"worker registered","fields":{"worker":"0","name":"worker-a","jobs":"2"}}
{"ts_ms":…,"seq":1,"level":"info","target":"fleet","msg":"plan submitted","fields":{"plan":"0","jobs":"10","cached":"0"}}
```

`--log-level debug|info|warn|error` sets the threshold and `--log-json`
mirrors the NDJSON to stderr (the human-readable form is the default).
Local sweeps trace the same way without any fleet: `--span-out` on any
`repro-*` binary or `horus-cli sweep` stamps the five stages on the
local pool (workers named `local-N`) and writes the same Perfetto
timeline at exit. Spans are observe-only: with the flags off, outputs
are byte-identical to a span-free build, and the stage histograms are
excluded from the deterministic scrape subset by name. The CI
`fleet-smoke` job runs this exact 2-worker recipe, asserts every
committed job carries all five stages monotonically, probes `/healthz`
and `/logs`, and uploads `fleet-trace.json` as an artifact.

## Benchmarking the simulator itself — criterion walkthrough

The experiments above measure the *simulated machine*; this section is
about the *simulator*. The criterion suite in
`crates/bench/benches/hotpath.rs` times every layer of the per-flushed-
line hot path in isolation, plus the full smoke-plan episode:

```
cargo bench -p horus-bench --bench hotpath
```

Benchmark groups, bottom of the stack first:

- `aes128/*` — single-block and 4-way batched encryption plus
  one-time-pad generation (a 64-byte line is four AES blocks).
- `cmac/*` — MACs over line-sized and metadata-sized messages.
- `event_queue/*` — calendar-queue push/pop and `cancel_from` at a
  4096-event population.
- `nvm/*` — paged-device write/read streams, sorted-address iteration,
  and crash-rewind cloning.
- `episode/*` — one full five-scheme smoke-plan comparison
  (`smoke_plan_all_schemes`) — the number the bench gate's
  `ops_per_sec` section tracks — and a single Horus-DLM drain.

To compare a change against the tree you started from:

```
git stash                    # or check out the base commit
cargo bench -p horus-bench --bench hotpath -- --save-baseline before
git stash pop
cargo bench -p horus-bench --bench hotpath -- --baseline before
```

Criterion prints the delta per benchmark; the CI `bench` job runs the
same suite with `--save-baseline ci` and uploads `target/criterion` as
the `criterion-report` artifact, so you can also download that into
your own `target/criterion` and diff locally against the runner's
numbers.

Two gates sit on top of the suite. The bench gate's `ops_per_sec`
section (measured by timing un-memoized smoke episodes, gated at 25%,
regressions only) catches sustained throughput drops; refresh it
together with the op-count baseline:

```
cargo run --release -p horus-bench --bin bench-gate -- --update
```

— the refreshed `BENCH_smoke.json` bakes in *your machine's* rate, so
expect the committed number to move whenever the baseline is refreshed
on different hardware; the 25% band plus regressions-only comparison
is what makes that safe. And `tests/perf_floor.rs` (release-only,
ignored in debug) asserts the simulator retires at least 2e7 simulated
cycles per wall second — a floor more than 10x below a healthy release
build, so it only trips on catastrophic regressions like an accidental
debug-profile bench job or a quadratic hot path.
"#;
