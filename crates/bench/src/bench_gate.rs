//! The bench-regression gate behind the `bench-gate` binary and CI job.
//!
//! [`measure`] runs the smoke-scale [`crate::repro_all`] plan and distils
//! it into a [`BenchSnapshot`]: the per-scheme headline op counts
//! (memory requests, MAC operations, drain cycles) from the five-scheme
//! comparison, every headline-claim measurement, and the wall time. The
//! snapshot serializes to `BENCH_smoke.json` committed at the repo root;
//! [`compare`] diffs a fresh measurement against that baseline with a
//! relative tolerance and reports every deviation. Wall time is recorded
//! for trend-watching but never compared — it depends on the runner.
//!
//! The snapshot also carries an `ops_per_sec` section: simulator
//! throughput measured by timing un-memoized smoke episodes directly.
//! Unlike the op counts it is *not* deterministic, so it gets its own
//! gate, [`compare_throughput`], which flags only regressions (a faster
//! runner never fails) at a generous tolerance (the CI job uses 25%) to
//! absorb runner noise. A real hot-path regression — an allocation on
//! the per-op path, a hash-map swap, an accidental debug build — shows
//! up as a multiple, not a percentage, so the wide band still catches
//! what matters.
//!
//! A `host_profile` section records the measuring run's own resource
//! usage — CPU seconds, peak RSS, and (under the `alloc-profile`
//! feature) allocation totals — via `horus_obs::profile`. It gets the
//! same regressions-only treatment as throughput through
//! [`compare_host_profile`], at an even wider default tolerance (50%),
//! and the CI job runs it informationally until the committed baseline
//! carries the section.
//!
//! The JSON codec is hand-rolled (the snapshot is a small flat document
//! we fully control) so the gate has no dependency on a JSON crate's
//! availability or formatting stability: the committed baseline parses
//! identically everywhere.

use crate::repro_all::{self, ReproPlan};
use crate::{figures, table};
use horus_harness::Harness;
use horus_sim::EpisodeShards;
use std::time::Instant;

/// One scheme's headline op counts at smoke scale.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemeOps {
    /// The scheme's paper name.
    pub scheme: String,
    /// NVM requests issued by the drain.
    pub memory_requests: u64,
    /// MAC computations performed by the drain.
    pub mac_ops: u64,
    /// Drain latency in cycles.
    pub cycles: u64,
}

/// One headline claim's measured value.
#[derive(Debug, Clone, PartialEq)]
pub struct HeadlineValue {
    /// The claim, as worded in the `repro-all` headline table.
    pub claim: String,
    /// The measured value at smoke scale.
    pub measured: f64,
}

/// One throughput metric: units of simulated work retired per wall
/// second, from timing un-memoized smoke episodes.
#[derive(Debug, Clone, PartialEq)]
pub struct Throughput {
    /// What is being rated (e.g. `sim_cycles`, `episodes`).
    pub metric: String,
    /// Units per wall second.
    pub per_sec: f64,
}

/// Host-side resource usage of the measuring run: the `host_profile`
/// snapshot section.
///
/// Like `ops_per_sec` this is machine-dependent, so it is gated
/// separately ([`compare_host_profile`], regressions only, wide
/// tolerance) and never by [`compare`]. Fields are `None` when the probe
/// is unavailable (non-Linux `/proc`, or the `alloc-profile` feature off
/// for the allocation counters); absent values are skipped by the gate on
/// either side, so a Linux-recorded baseline still parses and gates
/// everywhere.
#[derive(Debug, Clone, PartialEq)]
pub struct HostProfileSection {
    /// Process CPU seconds (user + system) consumed by the measuring run.
    pub cpu_seconds: Option<f64>,
    /// Peak resident set size in bytes.
    pub peak_rss_bytes: Option<u64>,
    /// Total allocations (requires `alloc-profile`).
    pub allocations: Option<u64>,
    /// Total allocated bytes (requires `alloc-profile`).
    pub allocated_bytes: Option<u64>,
}

impl HostProfileSection {
    /// Captures the current process's resource usage via `horus_obs`.
    /// CPU seconds are measured as a delta from `started` going forward;
    /// here we report the process totals, which is what a whole-run
    /// measuring process wants.
    #[must_use]
    pub fn capture() -> Self {
        let allocs = horus_obs::profile::alloc_counts();
        HostProfileSection {
            cpu_seconds: horus_obs::profile::process_cpu_seconds(),
            peak_rss_bytes: horus_obs::profile::peak_rss_bytes(),
            allocations: allocs.map(|(n, _)| n),
            allocated_bytes: allocs.map(|(_, b)| b),
        }
    }
}

/// Everything the gate compares (plus the informational wall time).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchSnapshot {
    /// Per-scheme op counts, in `DrainScheme::ALL` order.
    pub schemes: Vec<SchemeOps>,
    /// Headline-claim measurements, in `repro-all` order.
    pub checks: Vec<HeadlineValue>,
    /// Simulator throughput, gated (regressions only) by
    /// [`compare_throughput`] — never by [`compare`].
    pub ops_per_sec: Vec<Throughput>,
    /// Host resource usage of the measuring run, gated (regressions
    /// only) by [`compare_host_profile`] — never by [`compare`].
    /// `None` for baselines recorded before the section existed.
    pub host_profile: Option<HostProfileSection>,
    /// Wall time of the measuring run, seconds. Informational via
    /// [`compare`], gated (regressions only) by [`compare_host_profile`].
    pub wall_seconds: f64,
}

impl BenchSnapshot {
    /// Serializes the snapshot. Stable format: field order fixed, floats
    /// via Rust's shortest round-trip `Display`, one entity per line.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"wall_seconds\": {},\n", self.wall_seconds));
        if let Some(host) = &self.host_profile {
            out.push_str(&format!(
                "  \"host_profile\": {{\"cpu_seconds\": {}, \"peak_rss_bytes\": {}, \
                 \"allocations\": {}, \"allocated_bytes\": {}}},\n",
                opt_f64_json(host.cpu_seconds),
                opt_u64_json(host.peak_rss_bytes),
                opt_u64_json(host.allocations),
                opt_u64_json(host.allocated_bytes),
            ));
        }
        out.push_str("  \"schemes\": [\n");
        for (i, s) in self.schemes.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"scheme\": \"{}\", \"memory_requests\": {}, \"mac_ops\": {}, \"cycles\": {}}}{}\n",
                escape(&s.scheme),
                s.memory_requests,
                s.mac_ops,
                s.cycles,
                if i + 1 < self.schemes.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n  \"checks\": [\n");
        for (i, c) in self.checks.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"claim\": \"{}\", \"measured\": {}}}{}\n",
                escape(&c.claim),
                c.measured,
                if i + 1 < self.checks.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n  \"ops_per_sec\": [\n");
        for (i, t) in self.ops_per_sec.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"metric\": \"{}\", \"per_sec\": {}}}{}\n",
                escape(&t.metric),
                t.per_sec,
                if i + 1 < self.ops_per_sec.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parses a snapshot previously produced by [`Self::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut snapshot = Self {
            schemes: Vec::new(),
            checks: Vec::new(),
            ops_per_sec: Vec::new(),
            host_profile: None,
            wall_seconds: 0.0,
        };
        for line in text.lines() {
            let line = line.trim().trim_end_matches(',');
            if let Some(rest) = line.strip_prefix("\"wall_seconds\":") {
                snapshot.wall_seconds = rest
                    .trim()
                    .parse::<f64>()
                    .map_err(|e| format!("bad wall_seconds: {e}"))?;
            } else if line.contains("\"host_profile\":") {
                snapshot.host_profile = Some(HostProfileSection {
                    cpu_seconds: opt_f64_field(line, "cpu_seconds")?,
                    peak_rss_bytes: opt_u64_field(line, "peak_rss_bytes")?,
                    allocations: opt_u64_field(line, "allocations")?,
                    allocated_bytes: opt_u64_field(line, "allocated_bytes")?,
                });
            } else if line.contains("\"scheme\":") {
                snapshot.schemes.push(SchemeOps {
                    scheme: str_field(line, "scheme")?,
                    memory_requests: u64_field(line, "memory_requests")?,
                    mac_ops: u64_field(line, "mac_ops")?,
                    cycles: u64_field(line, "cycles")?,
                });
            } else if line.contains("\"claim\":") {
                snapshot.checks.push(HeadlineValue {
                    claim: str_field(line, "claim")?,
                    measured: f64_field(line, "measured")?,
                });
            } else if line.contains("\"metric\":") {
                snapshot.ops_per_sec.push(Throughput {
                    metric: str_field(line, "metric")?,
                    per_sec: f64_field(line, "per_sec")?,
                });
            }
        }
        if snapshot.schemes.is_empty() || snapshot.checks.is_empty() {
            return Err("baseline has no scheme or check entries".to_owned());
        }
        Ok(snapshot)
    }

    /// The human-readable summary table.
    #[must_use]
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .schemes
            .iter()
            .map(|s| {
                vec![
                    s.scheme.clone(),
                    s.memory_requests.to_string(),
                    s.mac_ops.to_string(),
                    s.cycles.to_string(),
                ]
            })
            .collect();
        table::render(&["scheme", "mem requests", "MAC ops", "cycles"], &rows)
    }

    /// One line per throughput metric, e.g. `sim_cycles: 2.81e8/s` —
    /// also the line the CI job summary surfaces.
    #[must_use]
    pub fn render_throughput(&self) -> String {
        self.ops_per_sec
            .iter()
            .map(|t| format!("{}: {:.3e}/s", t.metric, t.per_sec))
            .collect::<Vec<_>>()
            .join("  ")
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn unescape(s: &str) -> String {
    s.replace("\\\"", "\"").replace("\\\\", "\\")
}

fn str_field(line: &str, key: &str) -> Result<String, String> {
    let tag = format!("\"{key}\": \"");
    let start = line
        .find(&tag)
        .ok_or_else(|| format!("missing field {key}: {line}"))?
        + tag.len();
    let end = line[start..]
        .find("\", \"")
        .or_else(|| line[start..].find("\"}"))
        .ok_or_else(|| format!("unterminated field {key}: {line}"))?;
    Ok(unescape(&line[start..start + end]))
}

fn raw_field<'a>(line: &'a str, key: &str) -> Result<&'a str, String> {
    let tag = format!("\"{key}\":");
    let start = line
        .find(&tag)
        .ok_or_else(|| format!("missing field {key}: {line}"))?
        + tag.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Ok(rest[..end].trim())
}

fn u64_field(line: &str, key: &str) -> Result<u64, String> {
    raw_field(line, key)?
        .parse()
        .map_err(|e| format!("bad {key}: {e}"))
}

fn f64_field(line: &str, key: &str) -> Result<f64, String> {
    raw_field(line, key)?
        .parse()
        .map_err(|e| format!("bad {key}: {e}"))
}

fn opt_u64_field(line: &str, key: &str) -> Result<Option<u64>, String> {
    let raw = raw_field(line, key)?;
    if raw == "null" {
        return Ok(None);
    }
    raw.parse().map(Some).map_err(|e| format!("bad {key}: {e}"))
}

fn opt_f64_field(line: &str, key: &str) -> Result<Option<f64>, String> {
    let raw = raw_field(line, key)?;
    if raw == "null" {
        return Ok(None);
    }
    raw.parse().map(Some).map_err(|e| format!("bad {key}: {e}"))
}

fn opt_u64_json(v: Option<u64>) -> String {
    v.map_or_else(|| "null".to_owned(), |v| v.to_string())
}

fn opt_f64_json(v: Option<f64>) -> String {
    match v {
        Some(v) if v.is_finite() => v.to_string(),
        _ => "null".to_owned(),
    }
}

/// Times `sets` un-memoized five-scheme smoke episodes and rates the
/// fastest set — simulated cycles retired and scheme episodes completed
/// per wall second. Direct [`horus_harness::JobSpec::execute`] calls, bypassing the
/// harness cache, so the rate reflects real simulation work.
///
/// The five scheme episodes of one set are independent, so they fan out
/// over `shards` ([`EpisodeShards`] is deterministic-merge, so the cycle
/// totals are identical for any worker count); the wall clock then covers
/// the *slowest* episode rather than the sum, which is where the sharded
/// core's throughput headroom comes from.
#[must_use]
pub fn measure_throughput(plan: &ReproPlan, sets: u32, shards: &EpisodeShards) -> Vec<Throughput> {
    use horus_core::DrainScheme;
    let pattern = crate::experiments::paper_fill();
    let mut best = f64::INFINITY;
    let mut cycles_per_set = 0u64;
    for _ in 0..sets.max(1) {
        let started = Instant::now();
        let episodes = DrainScheme::ALL
            .iter()
            .map(|&s| {
                let spec = horus_harness::JobSpec::drain(&plan.base, s, pattern);
                move || spec.execute().drain.cycles
            })
            .collect();
        cycles_per_set = shards.run(episodes).into_iter().sum();
        best = best.min(started.elapsed().as_secs_f64());
    }
    let best = best.max(1e-9);
    vec![
        Throughput {
            metric: "sim_cycles".to_owned(),
            per_sec: cycles_per_set as f64 / best,
        },
        Throughput {
            metric: "episodes".to_owned(),
            per_sec: DrainScheme::ALL.len() as f64 / best,
        },
    ]
}

/// Runs the smoke plan and snapshots its headline numbers, rating
/// throughput over `shards`.
#[must_use]
pub fn measure_with(harness: &Harness, shards: &EpisodeShards) -> BenchSnapshot {
    let started = Instant::now();
    let plan = ReproPlan::smoke();
    let all = repro_all::run(harness, &plan);
    let cmp = figures::scheme_comparison(harness, &plan.base);
    let ops_per_sec = measure_throughput(&plan, 3, shards);
    BenchSnapshot {
        schemes: cmp
            .reports
            .iter()
            .map(|r| SchemeOps {
                scheme: r.scheme.clone(),
                memory_requests: r.memory_requests(),
                mac_ops: r.mac_ops,
                cycles: r.cycles,
            })
            .collect(),
        checks: all
            .checks
            .iter()
            .map(|c| HeadlineValue {
                claim: c.claim.to_owned(),
                measured: c.measured,
            })
            .collect(),
        ops_per_sec,
        host_profile: Some(HostProfileSection::capture()),
        wall_seconds: started.elapsed().as_secs_f64(),
    }
}

/// [`measure_with`] over a host-sized shard pool — what the `bench-gate`
/// binary and the committed baseline use by default.
#[must_use]
pub fn measure(harness: &Harness) -> BenchSnapshot {
    measure_with(harness, &EpisodeShards::available())
}

/// Diffs `current` against the committed `baseline`; every string in the
/// returned list is one deviation beyond `tolerance` (relative, e.g.
/// `0.02` = 2%). Empty means the gate passes. Wall time is never
/// compared.
#[must_use]
pub fn compare(current: &BenchSnapshot, baseline: &BenchSnapshot, tolerance: f64) -> Vec<String> {
    let mut deviations = Vec::new();
    let drifted = |now: f64, then: f64| {
        let scale = then.abs().max(1e-12);
        ((now - then) / scale).abs() > tolerance
    };
    for base in &baseline.schemes {
        match current.schemes.iter().find(|s| s.scheme == base.scheme) {
            None => deviations.push(format!("scheme {} missing from current run", base.scheme)),
            Some(now) => {
                for (what, now_v, then_v) in [
                    ("memory requests", now.memory_requests, base.memory_requests),
                    ("MAC ops", now.mac_ops, base.mac_ops),
                    ("cycles", now.cycles, base.cycles),
                ] {
                    if drifted(now_v as f64, then_v as f64) {
                        deviations.push(format!(
                            "{} {what}: {now_v} vs baseline {then_v}",
                            base.scheme
                        ));
                    }
                }
            }
        }
    }
    for scheme in &current.schemes {
        if !baseline.schemes.iter().any(|s| s.scheme == scheme.scheme) {
            deviations.push(format!(
                "scheme {} absent from baseline — refresh it",
                scheme.scheme
            ));
        }
    }
    for base in &baseline.checks {
        match current.checks.iter().find(|c| c.claim == base.claim) {
            None => deviations.push(format!("claim \"{}\" missing from current run", base.claim)),
            Some(now) => {
                if drifted(now.measured, base.measured) {
                    deviations.push(format!(
                        "claim \"{}\": {} vs baseline {}",
                        base.claim, now.measured, base.measured
                    ));
                }
            }
        }
    }
    deviations
}

/// Gates the `ops_per_sec` section: flags every metric that fell more
/// than `tolerance` (relative, e.g. `0.25` = 25%) *below* its baseline.
/// Running faster than the baseline never fails — only regressions do.
/// A baseline without the section is itself flagged (refresh with
/// `--update`). Empty means the throughput gate passes.
#[must_use]
pub fn compare_throughput(
    current: &BenchSnapshot,
    baseline: &BenchSnapshot,
    tolerance: f64,
) -> Vec<String> {
    if baseline.ops_per_sec.is_empty() {
        return vec!["baseline has no ops_per_sec section — refresh it with --update".to_owned()];
    }
    let mut deviations = Vec::new();
    for base in &baseline.ops_per_sec {
        match current.ops_per_sec.iter().find(|t| t.metric == base.metric) {
            None => deviations.push(format!(
                "throughput {} missing from current run",
                base.metric
            )),
            Some(now) => {
                let floor = base.per_sec * (1.0 - tolerance);
                if now.per_sec < floor {
                    deviations.push(format!(
                        "throughput {}: {:.3e}/s is {:.0}% below baseline {:.3e}/s \
                         (floor {:.3e}/s)",
                        base.metric,
                        now.per_sec,
                        (1.0 - now.per_sec / base.per_sec) * 100.0,
                        base.per_sec,
                        floor
                    ));
                }
            }
        }
    }
    deviations
}

/// Gates the `host_profile` section: flags every host metric that grew
/// more than `tolerance` (relative, e.g. `0.5` = 50%) *above* its
/// baseline. Using fewer resources than the baseline never fails — only
/// regressions do. Host metrics are far noisier than op counts (CPU time
/// depends on runner contention, RSS on allocator arena geometry), so
/// the CI job uses a wide 50% band and runs this gate informationally
/// until the committed baseline carries the section; a real regression
/// — a leak, an accidental clone on the per-job path — shows up as a
/// multiple, not a percentage.
///
/// Wall time is gated here too (same regressions-only rule), since it is
/// exactly as machine-dependent as CPU time. Metrics absent on *either*
/// side (feature off, non-Linux) are skipped, never flagged. A baseline
/// without the section is itself flagged (refresh with `--update`).
#[must_use]
pub fn compare_host_profile(
    current: &BenchSnapshot,
    baseline: &BenchSnapshot,
    tolerance: f64,
) -> Vec<String> {
    let Some(base) = &baseline.host_profile else {
        return vec!["baseline has no host_profile section — refresh it with --update".to_owned()];
    };
    let now = current.host_profile.clone().unwrap_or(HostProfileSection {
        cpu_seconds: None,
        peak_rss_bytes: None,
        allocations: None,
        allocated_bytes: None,
    });
    let mut deviations = Vec::new();
    let mut check = |what: &str, now_v: Option<f64>, then_v: Option<f64>, unit: &str| {
        let (Some(now_v), Some(then_v)) = (now_v, then_v) else {
            return;
        };
        let ceiling = then_v * (1.0 + tolerance);
        if then_v > 0.0 && now_v > ceiling {
            deviations.push(format!(
                "host {what}: {now_v:.3}{unit} is {:.0}% above baseline {then_v:.3}{unit} \
                 (ceiling {ceiling:.3}{unit})",
                (now_v / then_v - 1.0) * 100.0,
            ));
        }
    };
    check(
        "wall_seconds",
        Some(current.wall_seconds),
        Some(baseline.wall_seconds),
        "s",
    );
    check("cpu_seconds", now.cpu_seconds, base.cpu_seconds, "s");
    check(
        "peak_rss_bytes",
        now.peak_rss_bytes.map(|v| v as f64),
        base.peak_rss_bytes.map(|v| v as f64),
        "B",
    );
    check(
        "allocations",
        now.allocations.map(|v| v as f64),
        base.allocations.map(|v| v as f64),
        "",
    );
    check(
        "allocated_bytes",
        now.allocated_bytes.map(|v| v as f64),
        base.allocated_bytes.map(|v| v as f64),
        "B",
    );
    deviations
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchSnapshot {
        BenchSnapshot {
            schemes: vec![
                SchemeOps {
                    scheme: "Base-LU".to_owned(),
                    memory_requests: 1000,
                    mac_ops: 400,
                    cycles: 90_000,
                },
                SchemeOps {
                    scheme: "Horus-SLM".to_owned(),
                    memory_requests: 120,
                    mac_ops: 64,
                    cycles: 9_000,
                },
            ],
            checks: vec![HeadlineValue {
                claim: "Base-LU drain ops vs Horus-SLM (x)".to_owned(),
                measured: 8.333_333,
            }],
            ops_per_sec: vec![
                Throughput {
                    metric: "sim_cycles".to_owned(),
                    per_sec: 2.0e8,
                },
                Throughput {
                    metric: "episodes".to_owned(),
                    per_sec: 1500.0,
                },
            ],
            host_profile: Some(HostProfileSection {
                cpu_seconds: Some(2.5),
                peak_rss_bytes: Some(64 * 1024 * 1024),
                allocations: None,
                allocated_bytes: None,
            }),
            wall_seconds: 1.25,
        }
    }

    #[test]
    fn json_round_trips() {
        let snap = sample();
        let parsed = BenchSnapshot::parse(&snap.to_json()).expect("parses");
        assert_eq!(parsed, snap);
    }

    #[test]
    fn quotes_in_claims_survive_the_codec() {
        let mut snap = sample();
        snap.checks[0].claim = "a \"quoted\" claim \\ with backslash".to_owned();
        let parsed = BenchSnapshot::parse(&snap.to_json()).expect("parses");
        assert_eq!(parsed.checks[0].claim, snap.checks[0].claim);
    }

    #[test]
    fn identical_snapshots_pass_the_gate() {
        let snap = sample();
        assert!(compare(&snap, &snap, 0.0).is_empty());
    }

    #[test]
    fn wall_time_is_never_compared() {
        let base = sample();
        let mut now = base.clone();
        now.wall_seconds = base.wall_seconds * 100.0;
        assert!(compare(&now, &base, 0.01).is_empty());
    }

    #[test]
    fn count_drift_beyond_tolerance_is_flagged() {
        let base = sample();
        let mut now = base.clone();
        now.schemes[1].mac_ops = 80;
        let deviations = compare(&now, &base, 0.02);
        assert_eq!(deviations.len(), 1);
        assert!(
            deviations[0].contains("Horus-SLM MAC ops"),
            "{deviations:?}"
        );
        assert!(compare(&now, &base, 0.5).is_empty(), "inside 50% tolerance");
    }

    #[test]
    fn missing_and_extra_schemes_are_flagged() {
        let base = sample();
        let mut now = base.clone();
        now.schemes[0].scheme = "Base-EU".to_owned();
        let deviations = compare(&now, &base, 0.02);
        assert!(deviations
            .iter()
            .any(|d| d.contains("Base-LU missing") || d.contains("scheme Base-LU missing")));
        assert!(deviations.iter().any(|d| d.contains("Base-EU absent")));
    }

    #[test]
    fn claim_drift_is_flagged() {
        let base = sample();
        let mut now = base.clone();
        now.checks[0].measured = 12.0;
        let deviations = compare(&now, &base, 0.02);
        assert_eq!(deviations.len(), 1);
        assert!(deviations[0].starts_with("claim"));
    }

    #[test]
    fn throughput_is_never_gated_by_compare() {
        let base = sample();
        let mut now = base.clone();
        now.ops_per_sec[0].per_sec = 1.0; // catastrophic slowdown
        assert!(compare(&now, &base, 0.0).is_empty());
    }

    #[test]
    fn throughput_gate_flags_only_regressions() {
        let base = sample();
        let mut now = base.clone();
        // 10x faster: passes at any tolerance.
        now.ops_per_sec[0].per_sec = base.ops_per_sec[0].per_sec * 10.0;
        assert!(compare_throughput(&now, &base, 0.25).is_empty());
        // 20% slower: inside the 25% band.
        now.ops_per_sec[0].per_sec = base.ops_per_sec[0].per_sec * 0.8;
        assert!(compare_throughput(&now, &base, 0.25).is_empty());
        // 40% slower: flagged.
        now.ops_per_sec[0].per_sec = base.ops_per_sec[0].per_sec * 0.6;
        let deviations = compare_throughput(&now, &base, 0.25);
        assert_eq!(deviations.len(), 1);
        assert!(deviations[0].contains("sim_cycles"), "{deviations:?}");
    }

    #[test]
    fn throughput_gate_requires_a_baseline_section() {
        let now = sample();
        let mut base = now.clone();
        base.ops_per_sec.clear();
        let deviations = compare_throughput(&now, &base, 0.25);
        assert_eq!(deviations.len(), 1);
        assert!(deviations[0].contains("--update"), "{deviations:?}");
        let mut missing = now.clone();
        missing.ops_per_sec.remove(0);
        let deviations = compare_throughput(&missing, &now, 0.25);
        assert!(
            deviations.iter().any(|d| d.contains("missing")),
            "{deviations:?}"
        );
    }

    #[test]
    fn legacy_baseline_without_throughput_still_parses() {
        let mut snap = sample();
        snap.ops_per_sec.clear();
        snap.host_profile = None;
        let parsed = BenchSnapshot::parse(&snap.to_json()).expect("parses");
        assert_eq!(parsed, snap);
    }

    #[test]
    fn host_profile_round_trips_including_nulls() {
        let snap = sample();
        let json = snap.to_json();
        assert!(json.contains("\"allocations\": null"), "{json}");
        let parsed = BenchSnapshot::parse(&json).expect("parses");
        assert_eq!(parsed.host_profile, snap.host_profile);
    }

    #[test]
    fn host_profile_is_never_gated_by_compare() {
        let base = sample();
        let mut now = base.clone();
        now.host_profile.as_mut().unwrap().cpu_seconds = Some(9999.0);
        assert!(compare(&now, &base, 0.0).is_empty());
    }

    #[test]
    fn host_profile_gate_flags_only_regressions() {
        let base = sample();
        let mut now = base.clone();
        // Half the CPU and RSS: passes at any tolerance.
        now.host_profile.as_mut().unwrap().cpu_seconds = Some(1.25);
        now.host_profile.as_mut().unwrap().peak_rss_bytes = Some(32 * 1024 * 1024);
        assert!(compare_host_profile(&now, &base, 0.5).is_empty());
        // 40% more CPU: inside the 50% band.
        now.host_profile.as_mut().unwrap().cpu_seconds = Some(3.5);
        assert!(compare_host_profile(&now, &base, 0.5).is_empty());
        // 3x the CPU: flagged.
        now.host_profile.as_mut().unwrap().cpu_seconds = Some(7.5);
        let deviations = compare_host_profile(&now, &base, 0.5);
        assert_eq!(deviations.len(), 1, "{deviations:?}");
        assert!(deviations[0].contains("cpu_seconds"), "{deviations:?}");
    }

    #[test]
    fn host_profile_gate_covers_wall_time_and_skips_absent_metrics() {
        let base = sample();
        let mut now = base.clone();
        // Wall-time blowup is a host regression even though compare()
        // ignores it.
        now.wall_seconds = base.wall_seconds * 10.0;
        let deviations = compare_host_profile(&now, &base, 0.5);
        assert!(
            deviations.iter().any(|d| d.contains("wall_seconds")),
            "{deviations:?}"
        );
        // Metrics the current run could not measure are skipped, not
        // flagged (e.g. alloc-profile off, non-Linux host).
        let mut dark = base.clone();
        dark.host_profile = None;
        assert!(compare_host_profile(&dark, &base, 0.5).is_empty());
    }

    #[test]
    fn host_profile_gate_requires_a_baseline_section() {
        let now = sample();
        let mut base = now.clone();
        base.host_profile = None;
        let deviations = compare_host_profile(&now, &base, 0.5);
        assert_eq!(deviations.len(), 1);
        assert!(deviations[0].contains("--update"), "{deviations:?}");
    }

    #[test]
    fn measured_smoke_snapshot_is_stable_and_self_consistent() {
        let harness = Harness::serial();
        let snap = measure(&harness);
        assert_eq!(snap.schemes.len(), 5, "one row per scheme");
        assert!(!snap.checks.is_empty());
        assert!(snap.wall_seconds > 0.0);
        assert_eq!(snap.ops_per_sec.len(), 2);
        assert!(snap.ops_per_sec.iter().all(|t| t.per_sec > 0.0));
        let again = measure(&harness);
        assert!(compare(&snap, &again, 0.0).is_empty(), "deterministic");
        let parsed = BenchSnapshot::parse(&snap.to_json()).expect("parses");
        assert!(compare(&parsed, &snap, 0.0).is_empty(), "codec faithful");
    }
}
