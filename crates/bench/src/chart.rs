//! ASCII bar charts, so the `repro-*` binaries can render the paper's
//! figures (which are all bar charts) directly in the terminal.

/// Renders horizontal bars for `(label, value)` pairs, scaled to
/// `width` characters, with the numeric value appended.
///
/// ```
/// let s = horus_bench::chart::bars(&[("a", 2.0), ("b", 4.0)], 8);
/// assert!(s.contains("a  ████     2.00"));
/// assert!(s.contains("b  ████████ 4.00"));
/// ```
#[must_use]
pub fn bars(data: &[(&str, f64)], width: usize) -> String {
    bars_with(data, width, |v| format!("{v:.2}"))
}

/// [`bars`] with a custom value formatter.
#[must_use]
pub fn bars_with(data: &[(&str, f64)], width: usize, fmt: impl Fn(f64) -> String) -> String {
    let label_w = data.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let max = data.iter().map(|(_, v)| *v).fold(0.0_f64, f64::max);
    let mut out = String::new();
    for (label, value) in data {
        let filled = if max > 0.0 {
            ((value / max) * width as f64).round() as usize
        } else {
            0
        };
        out.push_str(&format!(
            "{label:<label_w$}  {}{} {}\n",
            "█".repeat(filled),
            " ".repeat(width - filled.min(width)),
            fmt(*value)
        ));
    }
    out
}

/// Renders grouped stacked bars: each row is `(label, segments)` where
/// segments share the `segment_names` legend. Used for the paper's
/// breakdown figures (12 and 13).
#[must_use]
pub fn stacked_bars(segment_names: &[&str], rows: &[(&str, Vec<u64>)], width: usize) -> String {
    const GLYPHS: [char; 6] = ['█', '▓', '▒', '░', '▪', '·'];
    let label_w = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let max: u64 = rows
        .iter()
        .map(|(_, segs)| segs.iter().sum::<u64>())
        .max()
        .unwrap_or(0);
    let mut out = String::new();
    for (label, segs) in rows {
        let total: u64 = segs.iter().sum();
        out.push_str(&format!("{label:<label_w$}  "));
        let mut drawn = 0usize;
        let bar_total = if max > 0 {
            ((total as f64 / max as f64) * width as f64).round() as usize
        } else {
            0
        };
        for (i, seg) in segs.iter().enumerate() {
            let seg_w = if total > 0 {
                ((*seg as f64 / total as f64) * bar_total as f64).round() as usize
            } else {
                0
            };
            let seg_w = seg_w.min(bar_total - drawn.min(bar_total));
            out.push_str(&GLYPHS[i % GLYPHS.len()].to_string().repeat(seg_w));
            drawn += seg_w;
        }
        out.push_str(&" ".repeat(width.saturating_sub(drawn)));
        out.push_str(&format!(" {total}\n"));
    }
    out.push_str("legend: ");
    for (i, name) in segment_names.iter().enumerate() {
        if i > 0 {
            out.push_str("  ");
        }
        out.push(GLYPHS[i % GLYPHS.len()]);
        out.push(' ');
        out.push_str(name);
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bars_scale_to_max() {
        let s = bars(&[("x", 1.0), ("yy", 2.0)], 10);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("█████ "), "{s}");
        assert!(lines[1].contains("██████████ "), "{s}");
        // Labels aligned.
        assert!(lines[0].starts_with("x "));
        assert!(lines[1].starts_with("yy"));
    }

    #[test]
    fn bars_handle_zero_max() {
        let s = bars(&[("a", 0.0)], 5);
        assert!(s.contains("a  "));
        assert!(!s.contains('█'));
    }

    #[test]
    fn stacked_bars_sum_and_legend() {
        let s = stacked_bars(
            &["data", "meta"],
            &[("A", vec![5, 5]), ("B", vec![20, 0])],
            20,
        );
        assert!(s.contains("A"));
        assert!(s.contains(" 10\n"), "{s}");
        assert!(s.contains(" 20\n"), "{s}");
        assert!(s.contains("legend: █ data  ▓ meta"));
        // B's bar is twice A's total.
        let a_line = s.lines().next().unwrap();
        let b_line = s.lines().nth(1).unwrap();
        let count = |l: &str, c: char| l.chars().filter(|x| *x == c).count();
        assert_eq!(count(b_line, '█'), 20);
        assert_eq!(count(a_line, '█') + count(a_line, '▓'), 10);
    }

    #[test]
    fn custom_formatter() {
        let s = bars_with(&[("t", 1234.0)], 4, |v| format!("{v:.0} cyc"));
        assert!(s.contains("1234 cyc"));
    }
}
