//! Shared experiment drivers.
//!
//! [`drain_once`] and [`drain_and_recover`] are the *serial reference
//! path*: they run one simulation inline on the calling thread, with no
//! pool and no cache. The harness's [`horus_harness::JobSpec::execute`]
//! does exactly the same thing, which is what the determinism proptests
//! pin down; Criterion benchmarks use these directly so iteration
//! timing measures the simulator, not the orchestration.

use horus_core::{DrainReport, DrainScheme, RecoveryReport, SecureEpdSystem, SystemConfig};
use horus_harness::{Harness, JobSpec};
use horus_workload::{fill_hierarchy, FillPattern};

/// The paper's worst-case fill (§V-A): dirty lines at least 16 KiB
/// apart.
#[must_use]
pub fn paper_fill() -> FillPattern {
    FillPattern::StridedSparse {
        min_stride: 16 * 1024,
    }
}

/// A scaled-down configuration for Criterion benchmarks: the same
/// semantics as Table I with a ~5 K-line hierarchy so a full drain fits
/// in a bench iteration.
#[must_use]
pub fn bench_config() -> SystemConfig {
    let mut cfg = SystemConfig::paper_default();
    cfg.hierarchy = horus_cache::HierarchyConfig {
        l1_bytes: 16 * 1024,
        l1_ways: 2,
        l2_bytes: 64 * 1024,
        l2_ways: 4,
        llc_bytes: 256 * 1024,
        llc_ways: 8,
    };
    cfg.metadata_caches = horus_metadata::MetadataCacheConfig {
        counter_cache_bytes: 32 * 1024,
        mac_cache_bytes: 32 * 1024,
        tree_cache_bytes: 32 * 1024,
        ways: 8,
        policy: horus_cache::ReplacementPolicy::Lru,
    };
    cfg.data_bytes = 1 << 30;
    cfg
}

/// `base` with a different LLC size. For the Table I base this equals
/// [`SystemConfig::with_llc_bytes`], so sweep points share cache keys
/// with every other binary that touches the same configuration.
#[must_use]
pub fn config_at_llc(base: &SystemConfig, llc_bytes: u64) -> SystemConfig {
    let mut cfg = base.clone();
    cfg.hierarchy.llc_bytes = llc_bytes;
    cfg
}

/// Builds a system for `scheme`, installs the crash-time snapshot, and
/// drains. Returns the drain report.
#[must_use]
pub fn drain_once(cfg: &SystemConfig, scheme: DrainScheme, pattern: FillPattern) -> DrainReport {
    let mut sys = SecureEpdSystem::for_scheme(cfg.clone(), scheme);
    fill_hierarchy(sys.hierarchy_mut(), pattern, cfg.data_bytes, cfg.seed);
    sys.crash_and_drain(scheme)
}

/// Drains and then recovers, returning both reports.
#[must_use]
pub fn drain_and_recover(
    cfg: &SystemConfig,
    scheme: DrainScheme,
    pattern: FillPattern,
) -> (DrainReport, RecoveryReport) {
    let mut sys = SecureEpdSystem::for_scheme(cfg.clone(), scheme);
    fill_hierarchy(sys.hierarchy_mut(), pattern, cfg.data_bytes, cfg.seed);
    let dr = sys.crash_and_drain(scheme);
    let rec = sys.recover().expect("untampered CHV must verify");
    (dr, rec)
}

/// Runs all five schemes over the same crash snapshot pattern as one
/// harness sweep, one worker per scheme (systems are fully
/// independent). Uncached — callers that want memoization submit the
/// specs to their own harness.
#[must_use]
pub fn run_all_schemes(cfg: &SystemConfig, pattern: FillPattern) -> Vec<DrainReport> {
    let specs: Vec<JobSpec> = DrainScheme::ALL
        .iter()
        .map(|s| JobSpec::drain(cfg, *s, pattern))
        .collect();
    Harness::with_jobs(specs.len())
        .run(&specs)
        .drains()
        .expect("scheme run panicked")
}
