//! Experiment harness regenerating every table and figure of the Horus
//! paper. See `DESIGN.md` for the experiment index and `EXPERIMENTS.md`
//! for paper-vs-measured results.

#![forbid(unsafe_code)]

pub mod bench_gate;
pub mod chart;
pub mod cli;
pub mod crash_sweep;
pub mod experiments;
pub mod figures;
pub mod repro_all;
pub mod table;

pub use experiments::*;
