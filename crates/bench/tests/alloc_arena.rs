//! Measures the per-episode scratch-arena win with the `alloc-profile`
//! counting allocator.
//!
//! The drain loops recycle their `(addr, block)` scratch vectors through
//! a thread-local `ScratchArena` (see `horus-core`'s `drain.rs`), so a
//! *warm* episode — same thread, same working-set size — should allocate
//! strictly less than the cold first episode that grew the buffers. The
//! results themselves must be identical either way: recycling only
//! changes where the bytes live, never what they hold.
//!
//! Run with:
//!
//! ```text
//! cargo test -p horus-bench --features alloc-profile --test alloc_arena
//! ```
//!
//! Without the feature the counting allocator is absent
//! (`alloc_counts()` is `None`) and the test skips with a visible
//! notice rather than pretending to have measured something.

use horus_core::{DrainScheme, SystemConfig};
use horus_harness::JobSpec;
use horus_workload::FillPattern;

fn episode() -> horus_harness::JobResult {
    let spec = JobSpec::drain(
        &SystemConfig::small_test(),
        DrainScheme::HorusDlm,
        FillPattern::StridedSparse { min_stride: 16384 },
    );
    spec.execute()
}

/// Allocations performed by `f`, when the counting allocator is
/// compiled in.
fn allocs_during<T>(f: impl FnOnce() -> T) -> Option<(u64, T)> {
    let (before, _) = horus_obs::profile::alloc_counts()?;
    let out = f();
    let (after, _) = horus_obs::profile::alloc_counts()?;
    Some((after - before, out))
}

#[test]
fn warm_episodes_allocate_less_than_cold_and_match_exactly() {
    if horus_obs::profile::alloc_counts().is_none() {
        eprintln!(
            "SKIPPED: warm_episodes_allocate_less_than_cold_and_match_exactly \
             (build with --features alloc-profile to measure allocations)"
        );
        return;
    }
    // Cold: first episode on this thread grows the scratch buffers.
    let (cold_allocs, cold) = allocs_during(episode).expect("probe active");
    // Warm: the arena hands the grown buffers back.
    let (warm_allocs, warm) = allocs_during(episode).expect("probe active");
    assert!(
        warm_allocs < cold_allocs,
        "recycling should save allocations: warm {warm_allocs} vs cold {cold_allocs}"
    );
    // Value-transparency: recycled buffers must not change any result.
    let cold_json = serde_json::to_string(&cold).expect("serializes");
    let warm_json = serde_json::to_string(&warm).expect("serializes");
    assert_eq!(cold_json, warm_json, "episode results must be identical");
}
