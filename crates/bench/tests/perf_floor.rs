//! Release-mode throughput floor: the smoke-plan episode must retire
//! simulated cycles at a rate no optimized build should ever miss.
//!
//! The floor is deliberately conservative — a release build on the
//! slowest CI runner clears it by more than an order of magnitude — so
//! it never flakes on runner noise. What it catches is the
//! catastrophic class of regression: an accidental `O(n²)` on the
//! per-op path, a debug build smuggled into the bench job, a hot-path
//! allocation loop. Fine-grained drift is the bench gate's 25%
//! `ops_per_sec` band; this is the tripwire underneath it.
//!
//! Ignored in debug builds (debug is routinely 30x slower and the
//! floor would either flake or mean nothing). The CI bench job runs it
//! with `cargo test --release -p horus-bench --test perf_floor`.

use horus_bench::bench_gate;
use horus_bench::repro_all::ReproPlan;
use horus_sim::EpisodeShards;

/// Simulated cycles retired per wall second that any release build
/// must exceed. With AES-NI crypto and the sharded episode core,
/// release builds measure ~1e9/s on multi-core hosts (and ~4-6e8/s
/// single-threaded); debug builds ~1e7/s. The floor sits at the old
/// *pre-speedup* release rate, so even a host throttled to one core
/// clears it by 2x+ while any catastrophic regression still trips.
const SIM_CYCLES_PER_SEC_FLOOR: f64 = 2.0e8;

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "throughput floor is only meaningful in release builds"
)]
fn smoke_episode_clears_the_simulated_cycles_floor() {
    let plan = ReproPlan::smoke();
    let rates = bench_gate::measure_throughput(&plan, 5, &EpisodeShards::available());
    let cycles = rates
        .iter()
        .find(|t| t.metric == "sim_cycles")
        .expect("measure_throughput reports sim_cycles");
    assert!(
        cycles.per_sec > SIM_CYCLES_PER_SEC_FLOOR,
        "simulator throughput collapsed: {:.3e} sim cycles/s is below the \
         {SIM_CYCLES_PER_SEC_FLOOR:.1e}/s floor — profile the per-op hot path \
         (crates/sim schedule/stats, crates/crypto AES/CMAC, crates/nvm device)",
        cycles.per_sec
    );
}
