//! Parallel, cache-aware experiment orchestration.
//!
//! Every experiment point of the Horus evaluation — one (scheme,
//! workload, configuration) tuple — is an independent, deterministic
//! simulation. This crate turns each point into a serializable
//! [`JobSpec`], hashes it into a stable content key, executes jobs on a
//! [`std::thread`] worker pool with panic isolation (one diverging
//! configuration cannot kill a sweep), and memoizes finished results in
//! an on-disk JSON cache so re-runs and resumed sweeps skip completed
//! work entirely.
//!
//! The layering:
//!
//! ```text
//!   Harness          front end: jobs, cache dir, progress mode
//!     │
//!     ├── job        JobSpec (scheme + workload + config) → JobResult
//!     ├── cache      target/horus-cache/<content-key>.json memoization
//!     ├── pool       ordered worker pool, catch_unwind isolation
//!     └── progress   JSON-lines progress events with ETA
//! ```
//!
//! # Determinism contract
//!
//! A [`SweepReport`] is a pure function of the submitted job list: job
//! outcomes are returned in submission order regardless of worker count
//! or completion order, cached results are byte-identical to freshly
//! executed ones, and [`SweepReport::merged_stats`] folds per-job
//! registries with the saturating, order-insensitive
//! [`horus_sim::Stats::merge`] — so `--jobs 32` and `--jobs 1` produce
//! identical reports. `tests/props.rs` at the workspace root asserts
//! this property over arbitrary job sets.
//!
//! # Example
//!
//! ```
//! use horus_core::{DrainScheme, SystemConfig};
//! use horus_harness::{Harness, JobSpec};
//! use horus_workload::FillPattern;
//!
//! let cfg = SystemConfig::small_test();
//! let pattern = FillPattern::StridedSparse { min_stride: 16384 };
//! let specs: Vec<JobSpec> = DrainScheme::ALL
//!     .iter()
//!     .map(|s| JobSpec::drain(&cfg, *s, pattern))
//!     .collect();
//!
//! // Two workers, no on-disk cache, no progress output.
//! let report = Harness::with_jobs(2).run(&specs);
//! let drains = report.drains().expect("no job panicked");
//! assert_eq!(drains.len(), 5);
//! // Submission order is preserved.
//! assert_eq!(drains[0].scheme, "Non-Secure");
//! ```

#![forbid(unsafe_code)]

pub mod cache;
pub mod job;
mod metrics;
pub mod pool;
pub mod progress;
mod sweep;

pub use cache::ResultCache;
pub use job::{JobResult, JobSpec};
pub use pool::{run_indexed, run_indexed_workers};
pub use progress::{ProgressEvent, ProgressMode};
pub use sweep::{
    Harness, HarnessError, HarnessOptions, JobOutcome, Submission, SweepBackend, SweepReport,
};
