//! The on-disk result cache.
//!
//! One JSON file per finished job, named by the spec's content key:
//! `<dir>/<key>.json`. Each file embeds the full spec alongside the
//! result, so a (vanishingly unlikely) 64-bit key collision — or a
//! hand-edited file — is detected at load time and treated as a miss
//! rather than returning the wrong experiment's numbers.
//!
//! Writes go through a temp file and an atomic rename, so concurrent
//! sweeps sharing a cache directory never observe half-written entries.
//! All I/O errors degrade to cache misses: a broken cache can cost
//! time, never correctness.

use crate::job::{JobResult, JobSpec, FORMAT_VERSION};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// The default cache directory, relative to the working directory.
pub const DEFAULT_CACHE_DIR: &str = "target/horus-cache";

/// What one cache file holds.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct CacheEntry {
    /// The result-format version the entry was written with.
    format: u32,
    /// The spec that produced the result (collision guard).
    spec: JobSpec,
    /// The memoized result.
    result: JobResult,
}

/// A content-keyed store of finished job results.
#[derive(Debug, Clone)]
pub struct ResultCache {
    dir: PathBuf,
}

impl ResultCache {
    /// A cache rooted at `dir` (created lazily on first store).
    #[must_use]
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self { dir: dir.into() }
    }

    /// The cache rooted at [`DEFAULT_CACHE_DIR`].
    #[must_use]
    pub fn default_location() -> Self {
        Self::new(DEFAULT_CACHE_DIR)
    }

    /// The cache directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_for(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{key}.json"))
    }

    /// Looks up the memoized result for `spec`, verifying that the
    /// stored spec actually matches (not just the key).
    #[must_use]
    pub fn load(&self, spec: &JobSpec) -> Option<JobResult> {
        let text = std::fs::read_to_string(self.path_for(&spec.key())).ok()?;
        let entry: CacheEntry = serde_json::from_str(&text).ok()?;
        (entry.format == FORMAT_VERSION && entry.spec == *spec).then_some(entry.result)
    }

    /// Memoizes `result` for `spec`. Best-effort: failures (read-only
    /// disk, full disk) are reported but do not fail the job.
    pub fn store(&self, spec: &JobSpec, result: &JobResult) {
        if let Err(e) = self.try_store(spec, result) {
            eprintln!(
                "horus-harness: cache store failed for {} in {}: {e}",
                spec.key(),
                self.dir.display()
            );
        }
    }

    fn try_store(&self, spec: &JobSpec, result: &JobResult) -> std::io::Result<()> {
        std::fs::create_dir_all(&self.dir)?;
        let entry = CacheEntry {
            format: FORMAT_VERSION,
            spec: spec.clone(),
            result: result.clone(),
        };
        let json = serde_json::to_string(&entry)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        let key = spec.key();
        // The temp name must be unique per *writer*, not just per
        // process: two worker threads computing the same uncached key
        // would otherwise interleave writes into one temp file and could
        // rename a torn entry into place. A process-wide nonce makes
        // every attempt its own file; the rename stays atomic.
        static STORE_NONCE: AtomicU64 = AtomicU64::new(0);
        let nonce = STORE_NONCE.fetch_add(1, Ordering::Relaxed);
        let tmp = self
            .dir
            .join(format!("{key}.json.tmp-{}-{nonce}", std::process::id()));
        std::fs::write(&tmp, json)?;
        std::fs::rename(&tmp, self.path_for(&key))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use horus_core::{DrainScheme, SystemConfig};
    use horus_workload::FillPattern;

    fn scratch_dir(tag: &str) -> PathBuf {
        static SERIAL: AtomicU64 = AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "horus-cache-test-{tag}-{}-{}",
            std::process::id(),
            SERIAL.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn spec() -> JobSpec {
        JobSpec::drain(
            &SystemConfig::small_test(),
            DrainScheme::NonSecure,
            FillPattern::DenseSequential { base: 0 },
        )
    }

    #[test]
    fn store_then_load_roundtrips() {
        let dir = scratch_dir("roundtrip");
        let cache = ResultCache::new(&dir);
        let spec = spec();
        assert!(cache.load(&spec).is_none(), "empty cache must miss");
        let result = spec.execute();
        cache.store(&spec, &result);
        assert_eq!(cache.load(&spec), Some(result));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn different_spec_misses_even_with_populated_dir() {
        let dir = scratch_dir("miss");
        let cache = ResultCache::new(&dir);
        let spec = spec();
        cache.store(&spec, &spec.execute());
        let mut other = self::spec();
        other.scheme = DrainScheme::HorusSlm;
        assert!(cache.load(&other).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Many threads storing the same key at once must leave exactly one
    /// readable entry and no stray temp files — the regression this
    /// guards is the pid-only temp suffix, under which concurrent
    /// writers in one process shared (and interleaved within) one temp
    /// file.
    #[test]
    fn concurrent_stores_of_same_key_never_tear() {
        let dir = scratch_dir("concurrent");
        let spec = spec();
        let result = spec.execute();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    let cache = ResultCache::new(&dir);
                    for _ in 0..16 {
                        cache.store(&spec, &result);
                    }
                });
            }
        });
        let cache = ResultCache::new(&dir);
        assert_eq!(cache.load(&spec), Some(result), "entry must parse cleanly");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .expect("cache dir exists")
            .map(|e| {
                e.expect("dir entry")
                    .file_name()
                    .into_string()
                    .expect("utf-8")
            })
            .filter(|name| name.contains(".tmp-"))
            .collect();
        assert!(leftovers.is_empty(), "stray temp files: {leftovers:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entries_read_as_misses() {
        let dir = scratch_dir("corrupt");
        let cache = ResultCache::new(&dir);
        let spec = spec();
        cache.store(&spec, &spec.execute());
        let path = dir.join(format!("{}.json", spec.key()));
        std::fs::write(&path, "{not json").expect("overwrite entry");
        assert!(cache.load(&spec).is_none());
        // A wrong-spec entry under the right key is also a miss.
        let mut other = self::spec();
        other.config.seed ^= 7;
        let entry = CacheEntry {
            format: FORMAT_VERSION,
            spec: other,
            result: spec.execute(),
        };
        std::fs::write(&path, serde_json::to_string(&entry).unwrap()).unwrap();
        assert!(cache.load(&spec).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
