//! The ordered, panic-isolated worker pool.
//!
//! [`run_indexed`] runs `total` tasks on `threads` OS threads and
//! returns one slot per task, *in task order* — the caller never sees
//! completion-order nondeterminism. Each task runs under
//! [`std::panic::catch_unwind`], so a diverging configuration (an
//! assertion tripping deep in the simulator) surfaces as that task's
//! `Err` while every other task still completes. This is the scheduler
//! shape the whole harness is built on; the memoizing job layer in
//! `sweep` is a thin wrapper over it.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs `total` tasks on a pool of `threads` workers, returning results
/// in task order. A panicking task yields `Err(panic message)`.
///
/// Work is distributed by an atomic ticket counter, so workers
/// self-balance: a worker that draws a long job simply claims fewer
/// tickets. `threads` is clamped to `1..=total` (zero asks for one
/// worker; more workers than tasks would only idle).
///
/// ```
/// use horus_harness::run_indexed;
/// let out = run_indexed(8, 4, |i| {
///     assert!(i != 5, "task 5 diverges");
///     i * i
/// });
/// assert_eq!(out.len(), 8);
/// assert_eq!(out[4], Ok(16));
/// assert!(out[5].as_ref().unwrap_err().contains("diverges"));
/// assert_eq!(out[7], Ok(49));
/// ```
pub fn run_indexed<T, F>(total: usize, threads: usize, task: F) -> Vec<Result<T, String>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_indexed_workers(total, threads, |_, i| task(i))
}

/// Like [`run_indexed`], but the task also receives the index of the
/// worker thread running it (`0..threads` after clamping).
///
/// This is the instrumentation hook: per-worker busy-time accounting needs
/// to know *which* worker drew the ticket, and threading a thread-local
/// through `catch_unwind` would be far more invasive. Scheduling is
/// unchanged — `run_indexed` is a thin wrapper over this.
///
/// ```
/// use horus_harness::run_indexed_workers;
/// let out = run_indexed_workers(4, 2, |worker, i| {
///     assert!(worker < 2);
///     i * 10
/// });
/// assert_eq!(out[3], Ok(30));
/// ```
pub fn run_indexed_workers<T, F>(total: usize, threads: usize, task: F) -> Vec<Result<T, String>>
where
    T: Send,
    F: Fn(usize, usize) -> T + Sync,
{
    if total == 0 {
        return Vec::new();
    }
    let threads = threads.clamp(1, total);
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<T, String>>>> =
        (0..total).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        let task = &task;
        let next = &next;
        let slots = &slots;
        for worker in 0..threads {
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= total {
                    break;
                }
                // `p.as_ref()`, not `&p`: a `&Box<dyn Any>` coerces to
                // `&dyn Any` *as the Box*, which defeats the downcasts.
                let outcome = catch_unwind(AssertUnwindSafe(|| task(worker, i)))
                    .map_err(|p| panic_message(p.as_ref()));
                *slots[i].lock().expect("result slot poisoned") = Some(outcome);
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("scope joined: every ticket was drawn and filled")
        })
        .collect()
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_come_back_in_task_order() {
        // Tasks finish in scrambled order (later tasks are quicker), but
        // the output is indexed by task.
        let out = run_indexed(16, 4, |i| {
            std::thread::sleep(std::time::Duration::from_micros(((16 - i) * 50) as u64));
            i
        });
        assert_eq!(out, (0..16).map(Ok).collect::<Vec<_>>());
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let hits = AtomicU64::new(0);
        let out = run_indexed(100, 7, |i| {
            hits.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(hits.load(Ordering::Relaxed), 100);
        let distinct: HashSet<_> = out.into_iter().map(Result::unwrap).collect();
        assert_eq!(distinct.len(), 100);
    }

    #[test]
    fn a_panicking_task_does_not_kill_the_sweep() {
        let out = run_indexed(10, 3, |i| {
            assert!(i % 4 != 2, "task {i} diverged");
            i + 1
        });
        for (i, r) in out.iter().enumerate() {
            if i % 4 == 2 {
                assert!(r.as_ref().unwrap_err().contains("diverged"), "task {i}");
            } else {
                assert_eq!(*r, Ok(i + 1));
            }
        }
    }

    #[test]
    fn string_panics_are_captured() {
        let out = run_indexed(1, 1, |_| -> usize { panic!("formatted {}", 42) });
        assert_eq!(out[0].as_ref().unwrap_err(), "formatted 42");
    }

    #[test]
    fn degenerate_shapes() {
        assert!(run_indexed(0, 8, |i| i).is_empty());
        assert_eq!(run_indexed(3, 0, |i| i), vec![Ok(0), Ok(1), Ok(2)]);
        assert_eq!(run_indexed(2, 64, |i| i), vec![Ok(0), Ok(1)]);
    }

    #[test]
    fn worker_indices_are_in_range_and_cover_the_clamped_pool() {
        let seen = Mutex::new(HashSet::new());
        let out = run_indexed_workers(64, 4, |worker, i| {
            assert!(worker < 4, "worker {worker} out of range");
            seen.lock().unwrap().insert(worker);
            std::thread::sleep(std::time::Duration::from_micros(200));
            i
        });
        assert_eq!(out.len(), 64);
        // With 64 sleepy tasks on 4 workers, every worker draws at least
        // one ticket.
        assert_eq!(seen.into_inner().unwrap().len(), 4);
        // Clamping: a single task never sees a worker index above 0.
        let out = run_indexed_workers(1, 8, |worker, i| {
            assert_eq!(worker, 0);
            i
        });
        assert_eq!(out, vec![Ok(0)]);
    }
}
