//! The harness front end: memoized, parallel sweep execution.

use crate::cache::ResultCache;
use crate::job::{JobResult, JobSpec};
use crate::metrics::SweepMetrics;
use crate::pool::run_indexed_workers;
use crate::progress::{Progress, ProgressEvent, ProgressMode};
use horus_obs::profile::{JobProfile, JobProfiler};
use horus_obs::span::{SpanBook, Stage};
use horus_obs::Registry;
use horus_sim::Stats;
use serde::{Deserialize, Serialize};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// A remote executor for whole sweeps.
///
/// When a backend is attached (via [`HarnessOptions::backend`]),
/// [`Harness::run`] hands the complete spec list to it instead of the
/// local worker pool; the backend must return one [`JobOutcome`] per
/// spec *in submission order*. The determinism contract carries over
/// unchanged: a correct backend produces outcomes byte-identical to a
/// local run of the same specs, so callers cannot tell (from the
/// report) where the simulations happened.
///
/// `horus-fleet` provides the TCP coordinator/worker implementation;
/// the trait lives here so the harness does not depend on it.
pub trait SweepBackend: Send + Sync {
    /// Executes `specs` remotely, returning one outcome per spec in
    /// submission order.
    ///
    /// # Errors
    ///
    /// Returns a message describing why the sweep could not be
    /// dispatched (unreachable coordinator, protocol error). The
    /// harness converts a backend error into one `Panicked` outcome
    /// per job so reports keep their shape.
    fn run_specs(&self, specs: &[JobSpec]) -> Result<Vec<JobOutcome>, String>;

    /// [`SweepBackend::run_specs`] with a correlation trace id the
    /// backend may attach to its own telemetry (spans, logs, wire
    /// frames). The default implementation drops the trace and
    /// delegates, so backends that predate correlation keep working
    /// unchanged — and an absent trace must never change outcomes.
    fn run_specs_traced(
        &self,
        specs: &[JobSpec],
        trace: Option<&str>,
    ) -> Result<Vec<JobOutcome>, String> {
        let _ = trace;
        self.run_specs(specs)
    }

    /// Human-readable destination, for logs.
    fn describe(&self) -> String {
        "remote backend".to_owned()
    }
}

/// How a sweep should execute.
#[derive(Clone, Default)]
pub struct HarnessOptions {
    /// Worker threads; `None` uses [`std::thread::available_parallelism`].
    pub jobs: Option<usize>,
    /// Result-cache directory; `None` uses
    /// [`crate::cache::DEFAULT_CACHE_DIR`].
    pub cache_dir: Option<PathBuf>,
    /// Disables the result cache entirely (always re-execute).
    pub no_cache: bool,
    /// Progress-event output mode.
    pub progress: ProgressMode,
    /// Metrics registry to record fleet telemetry into; `None` (the
    /// default) records nothing and leaves the sweep path untouched.
    pub metrics: Option<Arc<Registry>>,
    /// Remote sweep executor. When set, [`Harness::run`] dispatches
    /// specs through it instead of the local pool (the local result
    /// cache is not consulted — the backend owns memoization).
    pub backend: Option<Arc<dyn SweepBackend>>,
    /// Span collector for per-job lifecycle traces. Local sweeps stamp
    /// all five stages (each `run` call is one plan, workers named
    /// `local-N`); remote sweeps stamp nothing — the fleet coordinator
    /// owns the cross-host timeline. `None` (the default) stamps
    /// nothing.
    pub spans: Option<Arc<SpanBook>>,
}

impl std::fmt::Debug for HarnessOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HarnessOptions")
            .field("jobs", &self.jobs)
            .field("cache_dir", &self.cache_dir)
            .field("no_cache", &self.no_cache)
            .field("progress", &self.progress)
            .field("metrics", &self.metrics.is_some())
            .field("backend", &self.backend.as_ref().map(|b| b.describe()))
            .field("spans", &self.spans.is_some())
            .finish()
    }
}

/// The orchestrator: owns the worker count, the result cache, and the
/// progress sink. Cheap to build; every [`Harness::run`] call is an
/// independent sweep.
pub struct Harness {
    jobs: usize,
    cache: Option<ResultCache>,
    progress: ProgressMode,
    metrics: Option<Arc<Registry>>,
    backend: Option<Arc<dyn SweepBackend>>,
    spans: Option<Arc<SpanBook>>,
    /// Each local `run` call stamps its spans under a fresh plan id.
    span_plan_seq: AtomicU64,
    profiles: Mutex<Vec<JobProfile>>,
    executed_total: AtomicUsize,
    cache_hits_total: AtomicUsize,
}

impl std::fmt::Debug for Harness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Harness")
            .field("jobs", &self.jobs)
            .field("cache", &self.cache)
            .field("progress", &self.progress)
            .field("metrics", &self.metrics.is_some())
            .field("backend", &self.backend.as_ref().map(|b| b.describe()))
            .finish()
    }
}

impl Harness {
    /// Builds a harness from options.
    #[must_use]
    pub fn new(options: HarnessOptions) -> Self {
        let jobs = options.jobs.unwrap_or_else(default_parallelism).max(1);
        let cache = if options.no_cache {
            None
        } else {
            Some(match options.cache_dir {
                Some(dir) => ResultCache::new(dir),
                None => ResultCache::default_location(),
            })
        };
        Self {
            jobs,
            cache,
            progress: options.progress,
            metrics: options.metrics,
            backend: options.backend,
            spans: options.spans,
            span_plan_seq: AtomicU64::new(0),
            profiles: Mutex::new(Vec::new()),
            executed_total: AtomicUsize::new(0),
            cache_hits_total: AtomicUsize::new(0),
        }
    }

    /// A harness with `jobs` workers, no result cache, and silent
    /// progress — the configuration tests and doctests want.
    #[must_use]
    pub fn with_jobs(jobs: usize) -> Self {
        Self::new(HarnessOptions {
            jobs: Some(jobs),
            no_cache: true,
            ..HarnessOptions::default()
        })
    }

    /// The serial reference configuration: one worker, no cache.
    /// `harness.run(specs)` with any worker count must equal
    /// `Harness::serial().run(specs)` byte for byte.
    #[must_use]
    pub fn serial() -> Self {
        Self::with_jobs(1)
    }

    /// Worker-thread count.
    #[must_use]
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// The result cache, when enabled.
    #[must_use]
    pub fn cache(&self) -> Option<&ResultCache> {
        self.cache.as_ref()
    }

    /// The metrics registry this harness records into, when telemetry is
    /// enabled.
    #[must_use]
    pub fn metrics(&self) -> Option<&Arc<Registry>> {
        self.metrics.as_ref()
    }

    /// Drains the per-job host profiles collected so far (empty unless a
    /// metrics registry is attached). Profiles accumulate across sweeps
    /// in completion-record order until drained.
    #[must_use]
    pub fn take_job_profiles(&self) -> Vec<JobProfile> {
        std::mem::take(&mut *self.profiles.lock().expect("profiles poisoned"))
    }

    /// Lifetime accounting across every sweep this harness has run:
    /// `(simulations executed, cache hits)`. A fully memoized session —
    /// the repeat-invocation fast path — shows `executed == 0`.
    #[must_use]
    pub fn totals(&self) -> (usize, usize) {
        (
            self.executed_total.load(Ordering::Relaxed),
            self.cache_hits_total.load(Ordering::Relaxed),
        )
    }

    /// Runs a sweep: every spec becomes one pool task; results are
    /// memoized (when the cache is enabled) and returned in submission
    /// order. With a [`SweepBackend`] attached, the whole spec list is
    /// dispatched remotely instead; outcomes (and therefore the report)
    /// are byte-identical either way.
    #[must_use]
    pub fn run(&self, specs: &[JobSpec]) -> SweepReport {
        self.run_counted(specs, None, None)
    }

    /// [`Harness::run`] under a caller-supplied correlation trace id:
    /// spans, job profiles, and the remote wire submission all carry
    /// it, so `horus-cli insight` can join this sweep's signals back to
    /// the request (or batch invocation) that caused it. With telemetry
    /// attached (spans or metrics) but no trace given, the harness
    /// mints one per sweep so batch runs self-correlate; with no
    /// telemetry attached the sweep stays completely untraced.
    #[must_use]
    pub fn run_traced(&self, specs: &[JobSpec], trace: Option<&str>) -> SweepReport {
        self.run_counted(specs, None, trace)
    }

    /// Starts a sweep on a background thread and returns a handle for
    /// polling its progress — the async shape `horus-service` needs to
    /// answer status requests while a plan executes. The submission
    /// runs through exactly the same path as [`Harness::run`], so its
    /// report (and the cache it fills) is byte-identical to a blocking
    /// run of the same specs.
    #[must_use]
    pub fn submit(self: &Arc<Self>, specs: Vec<JobSpec>) -> Arc<Submission> {
        self.submit_traced(specs, None)
    }

    /// [`Harness::submit`] under a caller-supplied correlation trace id
    /// — the async twin of [`Harness::run_traced`]. `horus-service`
    /// uses this so the trace minted at admission follows the plan into
    /// spans, profiles, and (with a fleet backend) the wire protocol.
    #[must_use]
    pub fn submit_traced(
        self: &Arc<Self>,
        specs: Vec<JobSpec>,
        trace: Option<String>,
    ) -> Arc<Submission> {
        let submission = Arc::new(Submission {
            total: specs.len(),
            done: AtomicUsize::new(0),
            report: Mutex::new(None),
            finished: Condvar::new(),
        });
        let harness = Arc::clone(self);
        let handle = Arc::clone(&submission);
        std::thread::Builder::new()
            .name("horus-submission".to_string())
            .spawn(move || {
                let report = harness.run_counted(&specs, Some(&handle.done), trace.as_deref());
                let mut slot = handle.report.lock().expect("submission poisoned");
                *slot = Some(report);
                handle.finished.notify_all();
            })
            .expect("spawn submission thread");
        submission
    }

    /// [`Harness::run`] with an optional live progress counter that the
    /// pool bumps per finished job (and pins to `specs.len()` once the
    /// report exists, whichever path executed).
    fn run_counted(
        &self,
        specs: &[JobSpec],
        live_done: Option<&AtomicUsize>,
        trace: Option<&str>,
    ) -> SweepReport {
        // Auto-mint a per-sweep trace when telemetry is attached but the
        // caller supplied none, so batch invocations self-correlate.
        // Without telemetry there is nothing to correlate — stay
        // untraced so the observe-only contract holds trivially.
        let minted;
        let trace = match trace {
            Some(t) if !t.is_empty() => Some(t),
            _ if self.spans.is_some() || self.metrics.is_some() => {
                minted = horus_obs::span::mint_trace_id();
                Some(minted.as_str())
            }
            _ => None,
        };
        let report = if let Some(backend) = self.backend.clone() {
            self.run_remote(&*backend, specs, trace)
        } else {
            self.run_local(specs, live_done, trace)
        };
        if let Some(counter) = live_done {
            counter.store(specs.len(), Ordering::Relaxed);
        }
        report
    }

    fn run_local(
        &self,
        specs: &[JobSpec],
        live_done: Option<&AtomicUsize>,
        trace: Option<&str>,
    ) -> SweepReport {
        let progress = Progress::start(self.progress);
        let mut start = ProgressEvent::new("sweep_start", specs.len());
        start.workers = Some(self.jobs);
        progress.emit(start);

        let metrics = self
            .metrics
            .as_ref()
            .map(|r| SweepMetrics::new(Arc::clone(r)));
        if let Some(m) = &metrics {
            m.sweep_begin(specs.len(), self.jobs.clamp(1, specs.len().max(1)));
        }

        let done = AtomicUsize::new(0);
        let cached = AtomicUsize::new(0);
        let panicked = AtomicUsize::new(0);
        // Cumulative simulated work, for live throughput reporting.
        let cum_cycles = AtomicU64::new(0);
        let cum_memory_ops = AtomicU64::new(0);

        // Each run call is one trace plan: every spec is queued up
        // front, then stamped through the remaining stages as the pool
        // picks it up and finishes it.
        let span_plan = self.span_plan_seq.fetch_add(1, Ordering::Relaxed);
        if let Some(book) = &self.spans {
            for (i, spec) in specs.iter().enumerate() {
                book.stamp_traced(
                    span_plan,
                    i as u64,
                    &spec.key(),
                    Stage::Queued,
                    book.now_ms(),
                    None,
                    trace,
                );
            }
        }

        let raw = run_indexed_workers(specs.len(), self.jobs, |worker, i| {
            let spec = &specs[i];
            if let Some(book) = &self.spans {
                let track = format!("local-{worker}");
                let now = book.now_ms();
                book.stamp_traced(
                    span_plan,
                    i as u64,
                    &spec.key(),
                    Stage::Leased,
                    now,
                    Some(&track),
                    trace,
                );
                book.stamp_traced(
                    span_plan,
                    i as u64,
                    &spec.key(),
                    Stage::Executing,
                    book.now_ms(),
                    Some(&track),
                    trace,
                );
            }
            let profiler = metrics.as_ref().map(|m| {
                m.started.inc();
                JobProfiler::start(spec.key(), Some(spec.scheme.name().to_owned()))
                    .with_trace(trace)
            });
            let (result, hit) = match self.cache.as_ref().and_then(|c| c.load(spec)) {
                Some(result) => (result, true),
                None => {
                    let result = spec.execute();
                    if let Some(cache) = &self.cache {
                        cache.store(spec, &result);
                    }
                    (result, false)
                }
            };
            if hit {
                cached.fetch_add(1, Ordering::Relaxed);
            }
            let now_done = done.fetch_add(1, Ordering::Relaxed) + 1;
            if let Some(counter) = live_done {
                counter.fetch_add(1, Ordering::Relaxed);
            }
            let mut event = ProgressEvent::new("job", specs.len());
            event.done = now_done;
            event.cached = cached.load(Ordering::Relaxed);
            event.panicked = panicked.load(Ordering::Relaxed);
            event.eta_s = progress.eta_s(now_done, specs.len());
            event.job = Some(i);
            event.key = Some(spec.key());
            event.scheme = Some(spec.scheme.name().to_owned());
            event.hit = Some(hit);
            event.cycles = Some(result.drain.cycles);
            event.memory_ops = Some(result.memory_ops());
            event.mac_ops = Some(result.drain.mac_ops);
            let total_cycles =
                cum_cycles.fetch_add(result.drain.cycles, Ordering::Relaxed) + result.drain.cycles;
            let total_memory_ops = cum_memory_ops.fetch_add(result.memory_ops(), Ordering::Relaxed)
                + result.memory_ops();
            event.total_cycles = Some(total_cycles);
            event.total_memory_ops = Some(total_memory_ops);
            let elapsed = progress.elapsed_s();
            if elapsed > 0.0 {
                event.cycles_per_s = Some(total_cycles as f64 / elapsed);
                event.memory_ops_per_s = Some(total_memory_ops as f64 / elapsed);
            }
            progress.emit(event);
            if let (Some(m), Some(profiler)) = (&metrics, profiler) {
                m.completed.inc();
                if hit {
                    m.cache_hits.inc();
                }
                m.queue.add(-1);
                m.episodes.inc();
                m.cycles.add(result.drain.cycles);
                m.scheme_ops(
                    spec.scheme.name(),
                    result.memory_ops(),
                    result.drain.mac_ops,
                );
                horus_obs::bridge::mirror_stats(
                    &m.registry,
                    &result.drain.stats,
                    &[("scheme", spec.scheme.name())],
                );
                m.throughput(now_done as u64, total_cycles, total_memory_ops, elapsed);
                let profile = profiler.finish(hit);
                m.worker_busy(worker).add(profile.wall_seconds);
                self.profiles
                    .lock()
                    .expect("profiles poisoned")
                    .push(profile);
            }
            if let Some(book) = &self.spans {
                // The local pool pushes and commits in one motion — the
                // two stamps land on the same instant, so the fleet's
                // push/commit gap reads as zero for local sweeps.
                let now = book.now_ms();
                book.stamp_traced(
                    span_plan,
                    i as u64,
                    &spec.key(),
                    Stage::Pushed,
                    now,
                    None,
                    trace,
                );
                book.stamp_traced(
                    span_plan,
                    i as u64,
                    &spec.key(),
                    Stage::Committed,
                    now,
                    None,
                    trace,
                );
            }
            (result, hit)
        });

        let outcomes: Vec<JobOutcome> = raw
            .into_iter()
            .enumerate()
            .map(|(i, r)| match r {
                Ok((result, cached)) => JobOutcome::Completed { result, cached },
                Err(message) => {
                    panicked.fetch_add(1, Ordering::Relaxed);
                    if let Some(m) = &metrics {
                        m.panicked.inc();
                        m.queue.add(-1);
                    }
                    let mut event = ProgressEvent::new("job_panic", specs.len());
                    event.done = done.fetch_add(1, Ordering::Relaxed) + 1;
                    event.panicked = panicked.load(Ordering::Relaxed);
                    event.job = Some(i);
                    event.key = Some(specs[i].key());
                    event.scheme = Some(specs[i].scheme.name().to_owned());
                    event.message = Some(message.clone());
                    progress.emit(event);
                    JobOutcome::Panicked { message }
                }
            })
            .collect();

        let report = SweepReport {
            cache_hits: outcomes
                .iter()
                .filter(|o| matches!(o, JobOutcome::Completed { cached: true, .. }))
                .count(),
            executed: outcomes
                .iter()
                .filter(|o| matches!(o, JobOutcome::Completed { cached: false, .. }))
                .count(),
            panicked: outcomes
                .iter()
                .filter(|o| matches!(o, JobOutcome::Panicked { .. }))
                .count(),
            elapsed: Duration::from_secs_f64(progress.elapsed_s()),
            outcomes,
        };
        self.executed_total
            .fetch_add(report.executed, Ordering::Relaxed);
        self.cache_hits_total
            .fetch_add(report.cache_hits, Ordering::Relaxed);

        let mut end = ProgressEvent::new("sweep_end", specs.len());
        end.done = specs.len();
        end.cached = report.cache_hits;
        end.panicked = report.panicked;
        progress.emit(end);
        report
    }

    /// The remote path of [`Harness::run`]: dispatch the whole spec
    /// list to the attached [`SweepBackend`] and account the returned
    /// outcomes exactly as the local path would. Per-job progress
    /// events are synthesized after the results arrive (the remote
    /// executor owns live progress); a backend failure becomes one
    /// `Panicked` outcome per job so the report keeps its shape.
    fn run_remote(
        &self,
        backend: &dyn SweepBackend,
        specs: &[JobSpec],
        trace: Option<&str>,
    ) -> SweepReport {
        let progress = Progress::start(self.progress);
        progress.emit(ProgressEvent::new("sweep_start", specs.len()));

        let metrics = self
            .metrics
            .as_ref()
            .map(|r| SweepMetrics::new(Arc::clone(r)));
        if let Some(m) = &metrics {
            m.sweep_begin(specs.len(), 0);
        }

        let outcomes = match backend.run_specs_traced(specs, trace) {
            Ok(outcomes) if outcomes.len() == specs.len() => outcomes,
            Ok(outcomes) => {
                let message = format!(
                    "{}: returned {} outcomes for {} specs",
                    backend.describe(),
                    outcomes.len(),
                    specs.len()
                );
                specs
                    .iter()
                    .map(|_| JobOutcome::Panicked {
                        message: message.clone(),
                    })
                    .collect()
            }
            Err(message) => {
                let message = format!("{}: {message}", backend.describe());
                specs
                    .iter()
                    .map(|_| JobOutcome::Panicked {
                        message: message.clone(),
                    })
                    .collect()
            }
        };

        let mut cached_so_far = 0;
        let mut panicked_so_far = 0;
        for (i, (spec, outcome)) in specs.iter().zip(&outcomes).enumerate() {
            match outcome {
                JobOutcome::Completed { result, cached } => {
                    if *cached {
                        cached_so_far += 1;
                    }
                    let mut event = ProgressEvent::new("job", specs.len());
                    event.done = i + 1;
                    event.cached = cached_so_far;
                    event.panicked = panicked_so_far;
                    event.job = Some(i);
                    event.key = Some(spec.key());
                    event.scheme = Some(spec.scheme.name().to_owned());
                    event.hit = Some(*cached);
                    event.cycles = Some(result.drain.cycles);
                    event.memory_ops = Some(result.memory_ops());
                    event.mac_ops = Some(result.drain.mac_ops);
                    progress.emit(event);
                    if let Some(m) = &metrics {
                        m.started.inc();
                        m.completed.inc();
                        if *cached {
                            m.cache_hits.inc();
                        }
                        m.queue.add(-1);
                        m.episodes.inc();
                        m.cycles.add(result.drain.cycles);
                        m.scheme_ops(
                            spec.scheme.name(),
                            result.memory_ops(),
                            result.drain.mac_ops,
                        );
                        horus_obs::bridge::mirror_stats(
                            &m.registry,
                            &result.drain.stats,
                            &[("scheme", spec.scheme.name())],
                        );
                    }
                }
                JobOutcome::Panicked { message } => {
                    panicked_so_far += 1;
                    let mut event = ProgressEvent::new("job_panic", specs.len());
                    event.done = i + 1;
                    event.cached = cached_so_far;
                    event.panicked = panicked_so_far;
                    event.job = Some(i);
                    event.key = Some(spec.key());
                    event.scheme = Some(spec.scheme.name().to_owned());
                    event.message = Some(message.clone());
                    progress.emit(event);
                    if let Some(m) = &metrics {
                        m.started.inc();
                        m.panicked.inc();
                        m.queue.add(-1);
                    }
                }
            }
        }

        let report = SweepReport {
            cache_hits: cached_so_far,
            executed: outcomes
                .iter()
                .filter(|o| matches!(o, JobOutcome::Completed { cached: false, .. }))
                .count(),
            panicked: panicked_so_far,
            elapsed: Duration::from_secs_f64(progress.elapsed_s()),
            outcomes,
        };
        self.executed_total
            .fetch_add(report.executed, Ordering::Relaxed);
        self.cache_hits_total
            .fetch_add(report.cache_hits, Ordering::Relaxed);

        let mut end = ProgressEvent::new("sweep_end", specs.len());
        end.done = specs.len();
        end.cached = report.cache_hits;
        end.panicked = report.panicked;
        progress.emit(end);
        report
    }

    /// Runs `total` arbitrary tasks on this harness's worker pool with
    /// the same panic isolation as [`Harness::run`], but no memoization
    /// — for experiment shapes that are not drain jobs (fault-injection
    /// campaigns, wear sweeps).
    ///
    /// When a metrics registry is attached, tasks still feed the job
    /// lifecycle counters, queue depth, and per-worker busy time; the
    /// simulation-specific families (episodes, cycles, per-scheme ops)
    /// stay untouched because the task payload is opaque here.
    pub fn run_tasks<T, F>(&self, total: usize, task: F) -> Vec<Result<T, String>>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let metrics = self
            .metrics
            .as_ref()
            .map(|r| SweepMetrics::new(Arc::clone(r)));
        if let Some(m) = &metrics {
            m.sweep_begin(total, self.jobs.clamp(1, total.max(1)));
        }
        let out = run_indexed_workers(total, self.jobs, |worker, i| {
            let profiler = metrics.as_ref().map(|m| {
                m.started.inc();
                JobProfiler::start(format!("task-{i}"), None)
            });
            let value = task(i);
            if let (Some(m), Some(profiler)) = (&metrics, profiler) {
                m.completed.inc();
                m.queue.add(-1);
                let profile = profiler.finish(false);
                m.worker_busy(worker).add(profile.wall_seconds);
                self.profiles
                    .lock()
                    .expect("profiles poisoned")
                    .push(profile);
            }
            value
        });
        if let Some(m) = &metrics {
            for r in &out {
                if r.is_err() {
                    m.panicked.inc();
                    m.queue.add(-1);
                }
            }
        }
        out
    }
}

impl Default for Harness {
    fn default() -> Self {
        Self::new(HarnessOptions::default())
    }
}

fn default_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// What happened to one submitted job.
///
/// Nearly every outcome in a sweep is `Completed`, so boxing the
/// result to shrink the rare `Panicked` variant would buy nothing.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JobOutcome {
    /// The job finished and produced a result.
    Completed {
        /// The measured (or memoized) result.
        result: JobResult,
        /// Whether it was served from the result cache.
        cached: bool,
    },
    /// The job panicked; the rest of the sweep was unaffected.
    Panicked {
        /// The panic payload's message.
        message: String,
    },
}

/// A handle to an asynchronously running sweep, from
/// [`Harness::submit`]. Poll [`Submission::done`] for live progress,
/// [`Submission::report`] for a non-blocking result check, or
/// [`Submission::wait`] to block until the sweep finishes.
#[derive(Debug)]
pub struct Submission {
    total: usize,
    done: AtomicUsize,
    report: Mutex<Option<SweepReport>>,
    finished: Condvar,
}

impl Submission {
    /// Number of specs submitted.
    #[must_use]
    pub fn total(&self) -> usize {
        self.total
    }

    /// Jobs finished so far (monotonic; equals [`Submission::total`]
    /// once the report is available).
    #[must_use]
    pub fn done(&self) -> usize {
        self.done.load(Ordering::Relaxed)
    }

    /// True once the report is available.
    #[must_use]
    pub fn is_finished(&self) -> bool {
        self.report.lock().expect("submission poisoned").is_some()
    }

    /// The finished report, or `None` while the sweep is still running.
    #[must_use]
    pub fn report(&self) -> Option<SweepReport> {
        self.report.lock().expect("submission poisoned").clone()
    }

    /// Blocks until the sweep finishes and returns its report.
    #[must_use]
    pub fn wait(&self) -> SweepReport {
        let mut slot = self.report.lock().expect("submission poisoned");
        loop {
            if let Some(report) = slot.as_ref() {
                return report.clone();
            }
            slot = self.finished.wait(slot).expect("submission poisoned");
        }
    }
}

/// A sweep's outcomes plus its execution accounting.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Per-job outcomes, in submission order.
    pub outcomes: Vec<JobOutcome>,
    /// Jobs that actually ran a simulation.
    pub executed: usize,
    /// Jobs served from the result cache.
    pub cache_hits: usize,
    /// Jobs that panicked.
    pub panicked: usize,
    /// Wall-clock time of the sweep (not part of the deterministic
    /// surface — never render it into reproducible artifacts).
    pub elapsed: Duration,
}

impl SweepReport {
    /// Number of submitted jobs.
    #[must_use]
    pub fn total(&self) -> usize {
        self.outcomes.len()
    }

    /// All results in submission order, or the first panic.
    pub fn results(&self) -> Result<Vec<&JobResult>, HarnessError> {
        self.outcomes
            .iter()
            .enumerate()
            .map(|(i, o)| match o {
                JobOutcome::Completed { result, .. } => Ok(result),
                JobOutcome::Panicked { message } => Err(HarnessError::JobPanicked {
                    job: i,
                    message: message.clone(),
                }),
            })
            .collect()
    }

    /// Cloned drain reports in submission order, or the first panic —
    /// the shape the figure renderers consume.
    pub fn drains(&self) -> Result<Vec<horus_core::DrainReport>, HarnessError> {
        Ok(self
            .results()?
            .into_iter()
            .map(|r| r.drain.clone())
            .collect())
    }

    /// Folds every completed job's drain counter registry into one
    /// total via the saturating [`Stats::merge`] (recovery reports
    /// carry pre-reduced scalars, not a registry). Panicked jobs
    /// contribute nothing. Deterministic for any worker count: merging
    /// is order-insensitive and the fold runs in submission order
    /// anyway.
    #[must_use]
    pub fn merged_stats(&self) -> Stats {
        let mut total = Stats::new();
        for outcome in &self.outcomes {
            if let JobOutcome::Completed { result, .. } = outcome {
                total.merge(&result.drain.stats);
            }
        }
        total
    }
}

/// Sweep-level failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HarnessError {
    /// A job panicked and its result was required.
    JobPanicked {
        /// Submission index of the failed job.
        job: usize,
        /// The panic message.
        message: String,
    },
}

impl std::fmt::Display for HarnessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HarnessError::JobPanicked { job, message } => {
                write!(f, "job {job} panicked: {message}")
            }
        }
    }
}

impl std::error::Error for HarnessError {}

#[cfg(test)]
mod tests {
    use super::*;
    use horus_core::{DrainScheme, SystemConfig};
    use horus_workload::FillPattern;

    fn specs() -> Vec<JobSpec> {
        let cfg = SystemConfig::small_test();
        DrainScheme::ALL
            .iter()
            .map(|s| JobSpec::drain(&cfg, *s, FillPattern::StridedSparse { min_stride: 16384 }))
            .collect()
    }

    #[test]
    fn parallel_run_matches_serial_run() {
        let specs = specs();
        let serial = Harness::serial().run(&specs);
        let harness = Harness::with_jobs(4);
        let parallel = harness.run(&specs);
        assert_eq!(serial.outcomes, parallel.outcomes);
        assert_eq!(serial.merged_stats(), parallel.merged_stats());
        assert_eq!(parallel.executed, specs.len());
        assert_eq!(parallel.cache_hits, 0);
        assert_eq!(harness.totals(), (specs.len(), 0));
        let _ = harness.run(&specs);
        assert_eq!(
            harness.totals(),
            (2 * specs.len(), 0),
            "totals accumulate across sweeps"
        );
    }

    #[test]
    fn submission_matches_blocking_run_and_counts_up() {
        let specs = specs();
        let blocking = Harness::serial().run(&specs);
        let harness = Arc::new(Harness::with_jobs(2));
        let submission = harness.submit(specs.clone());
        assert_eq!(submission.total(), specs.len());
        let report = submission.wait();
        assert!(submission.is_finished());
        assert_eq!(submission.done(), specs.len());
        assert_eq!(report.outcomes, blocking.outcomes);
        assert_eq!(
            submission.report().expect("finished").outcomes,
            report.outcomes
        );
    }

    #[test]
    fn drains_preserve_submission_order() {
        let report = Harness::with_jobs(3).run(&specs());
        let drains = report.drains().expect("no panics");
        let names: Vec<_> = drains.iter().map(|d| d.scheme.as_str()).collect();
        assert_eq!(
            names,
            ["Non-Secure", "Base-LU", "Base-EU", "Horus-SLM", "Horus-DLM"]
        );
    }

    #[test]
    fn merged_stats_equal_manual_fold() {
        let report = Harness::with_jobs(2).run(&specs());
        let mut manual = Stats::new();
        for r in report.results().expect("no panics") {
            manual.merge(&r.drain.stats);
        }
        assert_eq!(report.merged_stats(), manual);
    }

    #[test]
    fn local_sweeps_stamp_all_five_span_stages() {
        let book = SpanBook::shared();
        let harness = Harness::new(HarnessOptions {
            jobs: Some(2),
            no_cache: true,
            progress: ProgressMode::Silent,
            spans: Some(Arc::clone(&book)),
            ..HarnessOptions::default()
        });
        let specs = specs();
        let report = harness.run(&specs);
        assert_eq!(report.executed, specs.len());
        let spans = book.spans();
        assert_eq!(spans.len(), specs.len());
        for span in &spans {
            assert_eq!(span.plan, 0, "first run call is plan 0");
            assert!(span.is_complete(), "all five stages stamped: {span:?}");
            assert!(
                span.worker.starts_with("local-"),
                "worker {:?}",
                span.worker
            );
            let stamps: Vec<f64> = span.stamps.iter().map(|s| s.unwrap()).collect();
            assert!(
                stamps.windows(2).all(|w| w[0] <= w[1]),
                "stamps monotone: {stamps:?}"
            );
        }
        // A second run on the same harness lands under the next plan id,
        // so job indices never collide across runs.
        let _ = harness.run(&specs[..1]);
        assert_eq!(book.spans().len(), specs.len() + 1);
        assert!(book.spans().iter().any(|s| s.plan == 1));
    }

    #[test]
    fn traced_sweeps_tag_spans_and_profiles() {
        use horus_obs::Registry;
        let book = SpanBook::shared();
        let registry = Registry::shared();
        let harness = Harness::new(HarnessOptions {
            jobs: Some(2),
            no_cache: true,
            progress: ProgressMode::Silent,
            spans: Some(Arc::clone(&book)),
            metrics: Some(Arc::clone(&registry)),
            ..HarnessOptions::default()
        });
        let specs = specs();
        let _ = harness.run_traced(&specs, Some("9f8a6c2d01b4e37f"));
        let spans = book.spans();
        assert_eq!(spans.len(), specs.len());
        assert!(
            spans.iter().all(|s| s.trace == "9f8a6c2d01b4e37f"),
            "every span carries the caller's trace"
        );
        let profiles = harness.take_job_profiles();
        assert_eq!(profiles.len(), specs.len());
        assert!(profiles
            .iter()
            .all(|p| p.trace.as_deref() == Some("9f8a6c2d01b4e37f")));

        // With telemetry attached but no caller trace, the harness
        // mints one per sweep — and each sweep gets its own.
        let _ = harness.run(&specs[..1]);
        let _ = harness.run(&specs[..1]);
        let minted: Vec<String> = harness
            .take_job_profiles()
            .into_iter()
            .map(|p| p.trace.expect("auto-minted"))
            .collect();
        assert_eq!(minted.len(), 2);
        assert_ne!(minted[0], minted[1], "one trace per sweep");
        assert!(minted.iter().all(|t| t.len() == 16));
    }

    /// A backend that records the trace it was handed.
    struct TraceRecordingBackend(Mutex<Vec<Option<String>>>);

    impl SweepBackend for TraceRecordingBackend {
        fn run_specs(&self, specs: &[JobSpec]) -> Result<Vec<JobOutcome>, String> {
            self.run_specs_traced(specs, None)
        }

        fn run_specs_traced(
            &self,
            specs: &[JobSpec],
            trace: Option<&str>,
        ) -> Result<Vec<JobOutcome>, String> {
            self.0
                .lock()
                .expect("poisoned")
                .push(trace.map(str::to_string));
            SerialBackend.run_specs(specs)
        }
    }

    #[test]
    fn remote_sweeps_hand_the_trace_to_the_backend() {
        let specs = specs();
        let backend = Arc::new(TraceRecordingBackend(Mutex::new(Vec::new())));
        let harness = Harness::new(HarnessOptions {
            no_cache: true,
            backend: Some(Arc::clone(&backend) as Arc<dyn SweepBackend>),
            ..HarnessOptions::default()
        });
        let _ = harness.run_traced(&specs[..1], Some("abcd1234abcd1234"));
        // Untraced run with no telemetry: the backend sees no trace, so
        // its wire frames stay byte-identical to the pre-trace shape.
        let _ = harness.run(&specs[..1]);
        let seen = backend.0.lock().expect("poisoned").clone();
        assert_eq!(
            seen,
            vec![Some("abcd1234abcd1234".to_string()), None],
            "explicit trace forwarded; untraced run stays untraced"
        );
    }

    #[test]
    fn empty_sweep_is_a_noop() {
        let report = Harness::default().run(&[]);
        assert_eq!(report.total(), 0);
        assert_eq!(report.executed, 0);
        assert!(report.merged_stats().is_empty());
    }

    #[test]
    fn metrics_registry_records_the_sweep() {
        use horus_obs::{names, Registry, SampleValue};
        let registry = Registry::shared();
        let harness = Harness::new(HarnessOptions {
            jobs: Some(2),
            no_cache: true,
            metrics: Some(std::sync::Arc::clone(&registry)),
            ..HarnessOptions::default()
        });
        let specs = specs();
        let report = harness.run(&specs);
        assert_eq!(report.executed, specs.len());

        let snap = registry.snapshot();
        let get = |name: &str| {
            snap.samples
                .iter()
                .find(|s| s.name == name)
                .unwrap_or_else(|| panic!("missing {name}"))
                .value
                .clone()
        };
        assert_eq!(get(names::JOBS_STARTED), SampleValue::Uint(5));
        assert_eq!(get(names::JOBS_COMPLETED), SampleValue::Uint(5));
        assert_eq!(get(names::JOBS_PANICKED), SampleValue::Uint(0));
        assert_eq!(get(names::CACHE_HITS), SampleValue::Uint(0));
        assert_eq!(get(names::EPISODES_TOTAL), SampleValue::Uint(5));
        assert_eq!(get(names::QUEUE_DEPTH), SampleValue::Int(0));
        assert_eq!(get(names::JOBS_PLANNED), SampleValue::Int(5));

        // Per-scheme memory-op totals match the reports.
        let drains = report.drains().expect("no panics");
        for drain in &drains {
            let want = report
                .results()
                .expect("no panics")
                .iter()
                .filter(|r| r.drain.scheme == drain.scheme)
                .map(|r| r.memory_ops())
                .sum::<u64>();
            let sample = snap
                .samples
                .iter()
                .find(|s| {
                    s.name == names::SCHEME_MEMORY_OPS
                        && s.labels
                            .iter()
                            .any(|(k, v)| k == "scheme" && *v == drain.scheme)
                })
                .expect("scheme series");
            assert_eq!(sample.value, SampleValue::Uint(want), "{}", drain.scheme);
        }

        // Worker busy time was attributed to at least one worker.
        let busy: f64 = snap
            .samples
            .iter()
            .filter(|s| s.name == names::WORKER_BUSY_SECONDS)
            .map(|s| match s.value {
                SampleValue::Float(v) => v,
                _ => 0.0,
            })
            .sum();
        assert!(busy > 0.0, "busy time recorded");

        // Per-job profiles were collected and drain once.
        let profiles = harness.take_job_profiles();
        assert_eq!(profiles.len(), 5);
        assert!(profiles.iter().all(|p| !p.cached));
        assert!(harness.take_job_profiles().is_empty());
    }

    #[test]
    fn without_metrics_no_profiles_are_collected() {
        let harness = Harness::with_jobs(2);
        let _ = harness.run(&specs());
        assert!(harness.take_job_profiles().is_empty());
    }

    /// A backend that executes in-process, serially — the reference
    /// against which the delegation path is checked.
    struct SerialBackend;

    impl SweepBackend for SerialBackend {
        fn run_specs(&self, specs: &[JobSpec]) -> Result<Vec<JobOutcome>, String> {
            Ok(specs
                .iter()
                .map(|s| JobOutcome::Completed {
                    result: s.execute(),
                    cached: false,
                })
                .collect())
        }

        fn describe(&self) -> String {
            "serial test backend".to_owned()
        }
    }

    struct FailingBackend;

    impl SweepBackend for FailingBackend {
        fn run_specs(&self, _specs: &[JobSpec]) -> Result<Vec<JobOutcome>, String> {
            Err("coordinator unreachable".to_owned())
        }
    }

    #[test]
    fn backend_run_is_byte_identical_to_local() {
        let specs = specs();
        let local = Harness::with_jobs(2).run(&specs);
        let harness = Harness::new(HarnessOptions {
            no_cache: true,
            backend: Some(std::sync::Arc::new(SerialBackend)),
            ..HarnessOptions::default()
        });
        let remote = harness.run(&specs);
        assert_eq!(local.outcomes, remote.outcomes);
        assert_eq!(remote.executed, specs.len());
        assert_eq!(remote.cache_hits, 0);
        assert_eq!(harness.totals(), (specs.len(), 0));
    }

    #[test]
    fn backend_failure_panics_every_job() {
        let specs = specs();
        let harness = Harness::new(HarnessOptions {
            no_cache: true,
            backend: Some(std::sync::Arc::new(FailingBackend)),
            ..HarnessOptions::default()
        });
        let report = harness.run(&specs);
        assert_eq!(report.panicked, specs.len());
        assert_eq!(report.executed, 0);
        let err = report.results().unwrap_err();
        let HarnessError::JobPanicked { job, message } = err;
        assert_eq!(job, 0);
        assert!(message.contains("coordinator unreachable"), "{message}");
    }

    #[test]
    fn run_tasks_feeds_lifecycle_metrics() {
        use horus_obs::{names, Registry, SampleValue};
        let registry = Registry::shared();
        let harness = Harness::new(HarnessOptions {
            jobs: Some(3),
            no_cache: true,
            metrics: Some(std::sync::Arc::clone(&registry)),
            ..HarnessOptions::default()
        });
        let out = harness.run_tasks(7, |i| {
            assert!(i != 4, "task 4 diverges");
            i
        });
        assert_eq!(out.len(), 7);
        let snap = registry.snapshot();
        let get = |name: &str| {
            snap.samples
                .iter()
                .find(|s| s.name == name)
                .unwrap_or_else(|| panic!("missing {name}"))
                .value
                .clone()
        };
        assert_eq!(get(names::JOBS_COMPLETED), SampleValue::Uint(6));
        assert_eq!(get(names::JOBS_PANICKED), SampleValue::Uint(1));
        assert_eq!(get(names::QUEUE_DEPTH), SampleValue::Int(0));
        assert_eq!(harness.take_job_profiles().len(), 6);
    }
}
