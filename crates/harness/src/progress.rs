//! Structured progress reporting.
//!
//! The harness streams one JSON object per line to stderr (stdout stays
//! clean for experiment output), so sweeps can be watched by humans or
//! piped into `jq`/dashboards. Events carry jobs done/total, an ETA
//! extrapolated from executed jobs, and per-job cycle and memory-op
//! counts.

use serde::Serialize;
use std::io::Write;
use std::time::Instant;

/// How the harness reports progress.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProgressMode {
    /// No progress output (the default; right for tests and libraries).
    #[default]
    Silent,
    /// One JSON object per line on stderr.
    JsonLines,
}

/// One progress event, serialized as a JSON line.
///
/// `event` is one of `sweep_start`, `job`, `job_panic`, `sweep_end`.
#[derive(Debug, Clone, Serialize)]
pub struct ProgressEvent {
    /// Event kind.
    pub event: &'static str,
    /// Jobs finished so far (including this one).
    pub done: usize,
    /// Jobs submitted.
    pub total: usize,
    /// Finished jobs served from the result cache so far.
    pub cached: usize,
    /// Jobs that panicked so far.
    pub panicked: usize,
    /// Estimated seconds to completion (absent before any job
    /// finishes and on terminal events).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub eta_s: Option<f64>,
    /// Worker-thread count (on `sweep_start`).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub workers: Option<usize>,
    /// Submission index of the job this event is about.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub job: Option<usize>,
    /// The job's content key.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub key: Option<String>,
    /// The job's scheme display name.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub scheme: Option<String>,
    /// Whether the job was served from the cache.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub hit: Option<bool>,
    /// Drain cycles the job measured.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub cycles: Option<u64>,
    /// NVM requests the job measured.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub memory_ops: Option<u64>,
    /// MAC computations the job measured.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub mac_ops: Option<u64>,
    /// Simulated cycles accumulated across the sweep so far.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub total_cycles: Option<u64>,
    /// NVM requests accumulated across the sweep so far.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub total_memory_ops: Option<u64>,
    /// Live throughput: simulated cycles per wall-clock second.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub cycles_per_s: Option<f64>,
    /// Live throughput: simulated NVM requests per wall-clock second.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub memory_ops_per_s: Option<f64>,
    /// Panic message, for `job_panic` events.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub message: Option<String>,
    /// Wall-clock seconds since the sweep started.
    pub elapsed_s: f64,
    /// Monotonic per-emitter sequence number, starting at 0. Consecutive
    /// lines from one sweep have consecutive numbers, so a consumer can
    /// detect dropped lines. (Appended field: absent in pre-PR-5 streams.)
    pub seq: u64,
    /// Wall-clock timestamp of emission, milliseconds since the Unix
    /// epoch. (Appended field: absent in pre-PR-5 streams.)
    pub unix_ms: u64,
}

impl ProgressEvent {
    /// A bare event with every optional field empty.
    #[must_use]
    pub fn new(event: &'static str, total: usize) -> Self {
        Self {
            event,
            done: 0,
            total,
            cached: 0,
            panicked: 0,
            eta_s: None,
            workers: None,
            job: None,
            key: None,
            scheme: None,
            hit: None,
            cycles: None,
            memory_ops: None,
            mac_ops: None,
            total_cycles: None,
            total_memory_ops: None,
            cycles_per_s: None,
            memory_ops_per_s: None,
            message: None,
            elapsed_s: 0.0,
            seq: 0,
            unix_ms: 0,
        }
    }
}

/// The emitter: counts, timing, and the output mode.
#[derive(Debug)]
pub struct Progress {
    mode: ProgressMode,
    started: Instant,
    seq: std::sync::atomic::AtomicU64,
}

impl Progress {
    /// Starts the sweep clock.
    #[must_use]
    pub fn start(mode: ProgressMode) -> Self {
        Self {
            mode,
            started: Instant::now(),
            seq: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Number of events emitted so far (equals the next `seq` value).
    #[must_use]
    pub fn emitted(&self) -> u64 {
        self.seq.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Wall-clock seconds since [`Progress::start`].
    #[must_use]
    pub fn elapsed_s(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Extrapolated seconds remaining, from jobs done vs. total.
    #[must_use]
    pub fn eta_s(&self, done: usize, total: usize) -> Option<f64> {
        if done == 0 || done >= total {
            return None;
        }
        let per_job = self.elapsed_s() / done as f64;
        Some(per_job * (total - done) as f64)
    }

    /// Emits one event (a no-op when silent).
    ///
    /// The line is written with a single `write_all`, so concurrent
    /// workers never interleave partial lines. The sequence number is
    /// assigned *under the stderr lock*, so line order on the stream
    /// always matches `seq` order — a consumer seeing `seq` jump by more
    /// than one knows lines were dropped, not reordered.
    pub fn emit(&self, mut event: ProgressEvent) {
        if self.mode == ProgressMode::Silent {
            return;
        }
        event.elapsed_s = self.elapsed_s();
        event.unix_ms = unix_ms_now();
        let mut err = std::io::stderr().lock();
        event.seq = self.seq.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        if let Ok(mut line) = serde_json::to_string(&event) {
            line.push('\n');
            let _ = err.write_all(line.as_bytes());
        }
    }
}

/// Milliseconds since the Unix epoch (0 if the system clock predates it).
fn unix_ms_now() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eta_extrapolates_linearly() {
        let p = Progress::start(ProgressMode::Silent);
        // No signal before the first completion or after the last.
        assert_eq!(p.eta_s(0, 10), None);
        assert_eq!(p.eta_s(10, 10), None);
        // Halfway through, the remainder costs about what the first
        // half did.
        std::thread::sleep(std::time::Duration::from_millis(20));
        let eta = p.eta_s(5, 10).expect("mid-sweep ETA");
        let elapsed = p.elapsed_s();
        assert!(
            (eta - elapsed).abs() < elapsed * 0.5,
            "eta {eta} vs {elapsed}"
        );
    }

    #[test]
    fn events_serialize_compactly() {
        let mut e = ProgressEvent::new("job", 8);
        e.done = 3;
        e.job = Some(2);
        e.cycles = Some(1234);
        let json = serde_json::to_string(&e).expect("serialize");
        assert!(json.contains("\"event\":\"job\""));
        assert!(json.contains("\"cycles\":1234"));
        // Empty optionals are skipped, not nulled.
        assert!(!json.contains("message"));
        assert!(!json.contains("null"));
    }

    #[test]
    fn silent_mode_emits_nothing_and_never_panics() {
        let p = Progress::start(ProgressMode::Silent);
        p.emit(ProgressEvent::new("sweep_start", 4));
        assert_eq!(p.emitted(), 0, "silent events consume no sequence numbers");
    }

    #[test]
    fn sequence_numbers_are_consecutive_per_emitter() {
        let p = Progress::start(ProgressMode::JsonLines);
        assert_eq!(p.emitted(), 0);
        p.emit(ProgressEvent::new("sweep_start", 2));
        p.emit(ProgressEvent::new("sweep_end", 2));
        assert_eq!(p.emitted(), 2);
    }

    #[test]
    fn wall_clock_stamp_is_plausible() {
        // 2020-01-01 in Unix milliseconds; any sane clock is after it.
        assert!(unix_ms_now() > 1_577_836_800_000);
    }
}
