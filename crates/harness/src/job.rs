//! Job specifications and their content keys.
//!
//! A [`JobSpec`] is the complete, serializable description of one
//! experiment point. Executing the same spec always produces the same
//! [`JobResult`] (the simulator is deterministic and all randomness is
//! seeded from the config), which is what makes content-keyed
//! memoization sound: the key is a hash of the spec's canonical JSON
//! encoding, so any change to any knob — scheme, fill pattern, LLC
//! size, seed — yields a different key, while re-submitting the same
//! point hits the cache.

use horus_core::{DrainReport, DrainScheme, RecoveryReport, SecureEpdSystem, SystemConfig};
use horus_workload::{fill_hierarchy, FillPattern};
use serde::{Deserialize, Serialize};

/// Bump when the meaning of a cached result changes (simulator model
/// changes that keep the spec encoding identical). Mixed into the
/// content key, so stale cache files are simply never looked up.
pub const FORMAT_VERSION: u32 = 1;

/// One experiment point: drain (and optionally recover) one scheme over
/// one crash snapshot of one configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// The drain scheme under test.
    pub scheme: DrainScheme,
    /// How the hierarchy is filled at crash time.
    pub pattern: FillPattern,
    /// The full system configuration (includes the reproducibility
    /// seed, so it fully determines the workload too).
    pub config: SystemConfig,
    /// Whether to run recovery after the drain and include its report.
    pub recover: bool,
}

impl JobSpec {
    /// A drain-only job.
    #[must_use]
    pub fn drain(config: &SystemConfig, scheme: DrainScheme, pattern: FillPattern) -> Self {
        Self {
            scheme,
            pattern,
            config: config.clone(),
            recover: false,
        }
    }

    /// A drain-then-recover job.
    #[must_use]
    pub fn drain_recover(config: &SystemConfig, scheme: DrainScheme, pattern: FillPattern) -> Self {
        Self {
            recover: true,
            ..Self::drain(config, scheme, pattern)
        }
    }

    /// The stable content key: FNV-1a over the canonical JSON encoding
    /// of `(FORMAT_VERSION, spec)`, rendered as 16 hex digits.
    ///
    /// Struct fields serialize in declaration order and every config
    /// type is plain data, so the encoding — and therefore the key —
    /// is stable across runs and platforms. Key collisions are guarded
    /// against at cache-load time by comparing the embedded spec.
    #[must_use]
    pub fn key(&self) -> String {
        let encoded =
            serde_json::to_string(&(FORMAT_VERSION, self)).expect("job specs always serialize");
        format!("{:016x}", fnv1a_64(encoded.as_bytes()))
    }

    /// Runs the job: build the system, install the crash snapshot,
    /// drain, and optionally recover.
    ///
    /// # Panics
    ///
    /// Panics if recovery of the untampered vault fails — that is a
    /// simulator bug, and the worker pool's panic isolation turns it
    /// into a per-job failure rather than a dead sweep.
    #[must_use]
    pub fn execute(&self) -> JobResult {
        let mut sys = SecureEpdSystem::for_scheme(self.config.clone(), self.scheme);
        fill_hierarchy(
            sys.hierarchy_mut(),
            self.pattern,
            self.config.data_bytes,
            self.config.seed,
        );
        let drain = sys.crash_and_drain(self.scheme);
        let recovery = if self.recover {
            Some(sys.recover().expect("untampered vault must verify"))
        } else {
            None
        };
        JobResult { drain, recovery }
    }
}

/// Everything a job measured.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobResult {
    /// The draining episode's report.
    pub drain: DrainReport,
    /// The recovery report, when the spec asked for one.
    pub recovery: Option<RecoveryReport>,
}

impl JobResult {
    /// Total NVM requests across drain (the progress-stream metric).
    #[must_use]
    pub fn memory_ops(&self) -> u64 {
        self.drain.memory_requests()
    }
}

/// 64-bit FNV-1a: tiny, dependency-free, and stable across platforms.
fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in bytes {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> JobSpec {
        JobSpec::drain(
            &SystemConfig::small_test(),
            DrainScheme::HorusSlm,
            FillPattern::StridedSparse { min_stride: 16384 },
        )
    }

    #[test]
    fn keys_are_stable_and_spec_sensitive() {
        let a = spec();
        assert_eq!(a.key(), a.key());
        assert_eq!(a.key(), a.clone().key());
        assert_eq!(a.key().len(), 16);

        let mut other_scheme = spec();
        other_scheme.scheme = DrainScheme::HorusDlm;
        assert_ne!(a.key(), other_scheme.key());

        let mut other_seed = spec();
        other_seed.config.seed ^= 1;
        assert_ne!(a.key(), other_seed.key());

        let mut other_pattern = spec();
        other_pattern.pattern = FillPattern::DenseSequential { base: 0 };
        assert_ne!(a.key(), other_pattern.key());

        let mut with_recovery = spec();
        with_recovery.recover = true;
        assert_ne!(a.key(), with_recovery.key());
    }

    #[test]
    fn specs_roundtrip_through_json() {
        let a = spec();
        let json = serde_json::to_string(&a).expect("serialize");
        let back: JobSpec = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, a);
        assert_eq!(back.key(), a.key());
    }

    #[test]
    fn execute_is_deterministic() {
        let a = spec().execute();
        let b = spec().execute();
        assert_eq!(a, b);
        assert!(a.drain.flushed_blocks > 0);
        assert!(a.recovery.is_none());
    }

    #[test]
    fn recover_jobs_carry_a_recovery_report() {
        let mut s = spec();
        s.recover = true;
        let r = s.execute();
        let rec = r.recovery.expect("recovery requested");
        assert_eq!(rec.restored_blocks, r.drain.flushed_blocks);
    }
}
