//! Job specifications and their content keys.
//!
//! A [`JobSpec`] is the complete, serializable description of one
//! experiment point. Executing the same spec always produces the same
//! [`JobResult`] (the simulator is deterministic and all randomness is
//! seeded from the config), which is what makes content-keyed
//! memoization sound: the key is a hash of the spec's canonical JSON
//! encoding, so any change to any knob — scheme, fill pattern, LLC
//! size, seed — yields a different key, while re-submitting the same
//! point hits the cache.

use horus_core::{DrainReport, DrainScheme, RecoveryReport, SecureEpdSystem, SystemConfig};
use horus_sim::TraceEvent;
use horus_workload::{fill_hierarchy, FillPattern};
use serde::{Deserialize, Serialize};

/// Bump when the meaning of a cached result changes (simulator model
/// changes that keep the spec encoding identical). Mixed into the
/// content key, so stale cache files are simply never looked up.
pub const FORMAT_VERSION: u32 = 1;

/// One experiment point: drain (and optionally recover) one scheme over
/// one crash snapshot of one configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// The drain scheme under test.
    pub scheme: DrainScheme,
    /// How the hierarchy is filled at crash time.
    pub pattern: FillPattern,
    /// The full system configuration (includes the reproducibility
    /// seed, so it fully determines the workload too).
    pub config: SystemConfig,
    /// Whether to run recovery after the drain and include its report.
    pub recover: bool,
    /// Whether to run with the observability probe enabled, attaching
    /// utilization / critical-path data (and `queue.*` histograms) to
    /// the reports. Skipped from the encoding when `false`, so plain
    /// jobs keep their pre-probe content keys and cache entries.
    #[serde(default, skip_serializing_if = "is_false")]
    pub probe: bool,
}

// Referenced from the serde attribute; the offline stub's derive drops
// the reference, so keep the lint quiet there.
#[allow(dead_code)]
fn is_false(b: &bool) -> bool {
    !*b
}

impl JobSpec {
    /// A drain-only job.
    #[must_use]
    pub fn drain(config: &SystemConfig, scheme: DrainScheme, pattern: FillPattern) -> Self {
        Self {
            scheme,
            pattern,
            config: config.clone(),
            recover: false,
            probe: false,
        }
    }

    /// A drain-then-recover job.
    #[must_use]
    pub fn drain_recover(config: &SystemConfig, scheme: DrainScheme, pattern: FillPattern) -> Self {
        Self {
            recover: true,
            ..Self::drain(config, scheme, pattern)
        }
    }

    /// The same job with the observability probe enabled.
    #[must_use]
    pub fn probed(mut self) -> Self {
        self.probe = true;
        self
    }

    /// The stable content key: FNV-1a over the canonical JSON encoding
    /// of `(FORMAT_VERSION, spec)`, rendered as 16 hex digits.
    ///
    /// Struct fields serialize in declaration order and every config
    /// type is plain data, so the encoding — and therefore the key —
    /// is stable across runs and platforms. Key collisions are guarded
    /// against at cache-load time by comparing the embedded spec.
    #[must_use]
    pub fn key(&self) -> String {
        let encoded =
            serde_json::to_string(&(FORMAT_VERSION, self)).expect("job specs always serialize");
        format!("{:016x}", fnv1a_64(encoded.as_bytes()))
    }

    /// Runs the job: build the system, install the crash snapshot,
    /// drain, and optionally recover.
    ///
    /// # Panics
    ///
    /// Panics if recovery of the untampered vault fails — that is a
    /// simulator bug, and the worker pool's panic isolation turns it
    /// into a per-job failure rather than a dead sweep.
    #[must_use]
    pub fn execute(&self) -> JobResult {
        self.run().0
    }

    /// Runs the job with the probe forced on and also returns the drain
    /// episode's full event trace (for Chrome-trace export). The result
    /// carries utilization/critical-path data exactly as a probed
    /// [`execute`](Self::execute) would produce.
    #[must_use]
    pub fn execute_traced(&self) -> (JobResult, Vec<TraceEvent>) {
        let mut probed = self.clone();
        probed.probe = true;
        let (result, trace) = probed.run();
        (result, trace.unwrap_or_default())
    }

    fn run(&self) -> (JobResult, Option<Vec<TraceEvent>>) {
        let mut sys = SecureEpdSystem::for_scheme(self.config.clone(), self.scheme);
        if self.probe {
            sys.enable_probe();
        }
        fill_hierarchy(
            sys.hierarchy_mut(),
            self.pattern,
            self.config.data_bytes,
            self.config.seed,
        );
        let drain = sys.crash_and_drain(self.scheme);
        // Take the drain trace *before* recovery: recovery resets the
        // platform's timing (and with it the probe buffers).
        let trace = sys.take_episode_trace();
        let recovery = if self.recover {
            Some(sys.recover().expect("untampered vault must verify"))
        } else {
            None
        };
        (JobResult { drain, recovery }, trace)
    }
}

/// Everything a job measured.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobResult {
    /// The draining episode's report.
    pub drain: DrainReport,
    /// The recovery report, when the spec asked for one.
    pub recovery: Option<RecoveryReport>,
}

impl JobResult {
    /// Total NVM requests across drain (the progress-stream metric).
    #[must_use]
    pub fn memory_ops(&self) -> u64 {
        self.drain.memory_requests()
    }
}

/// 64-bit FNV-1a: tiny, dependency-free, and stable across platforms.
fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in bytes {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> JobSpec {
        JobSpec::drain(
            &SystemConfig::small_test(),
            DrainScheme::HorusSlm,
            FillPattern::StridedSparse { min_stride: 16384 },
        )
    }

    #[test]
    fn keys_are_stable_and_spec_sensitive() {
        let a = spec();
        assert_eq!(a.key(), a.key());
        assert_eq!(a.key(), a.clone().key());
        assert_eq!(a.key().len(), 16);

        let mut other_scheme = spec();
        other_scheme.scheme = DrainScheme::HorusDlm;
        assert_ne!(a.key(), other_scheme.key());

        let mut other_seed = spec();
        other_seed.config.seed ^= 1;
        assert_ne!(a.key(), other_seed.key());

        let mut other_pattern = spec();
        other_pattern.pattern = FillPattern::DenseSequential { base: 0 };
        assert_ne!(a.key(), other_pattern.key());

        let mut with_recovery = spec();
        with_recovery.recover = true;
        assert_ne!(a.key(), with_recovery.key());

        let probed = spec().probed();
        assert_ne!(a.key(), probed.key(), "probe flag is part of the key");
    }

    #[test]
    fn unprobed_specs_keep_pre_probe_encoding() {
        // The probe field must not appear in canonical JSON when false,
        // so keys of existing cached results are unchanged. The offline
        // serde_json stub renders via Debug and ignores
        // `skip_serializing_if`; only assert the real-JSON shape when
        // the serializer actually honors it.
        let honors_skip = !serde_json::to_string(&ProbeOnly { probe: false })
            .expect("serialize")
            .contains("probe");
        if honors_skip {
            let json = serde_json::to_string(&spec()).expect("serialize");
            assert!(!json.contains("probe"));
            let probed_json = serde_json::to_string(&spec().probed()).expect("serialize");
            assert!(probed_json.contains("\"probe\":true"));
        }
        // Either way, the probed encoding (and thus the key) differs.
        assert_ne!(
            serde_json::to_string(&spec()).expect("serialize"),
            serde_json::to_string(&spec().probed()).expect("serialize"),
        );
    }

    #[derive(Debug, Serialize)]
    struct ProbeOnly {
        #[serde(skip_serializing_if = "is_false")]
        probe: bool,
    }

    #[test]
    fn execute_traced_returns_probe_products() {
        let (result, trace) = spec().execute_traced();
        assert!(!trace.is_empty());
        assert!(result.drain.utilization.is_some());
        assert!(result.drain.critical_path.is_some());
        // Counters agree with the unprobed run.
        let plain = spec().execute();
        assert_eq!(result.drain.cycles, plain.drain.cycles);
        assert_eq!(result.drain.writes, plain.drain.writes);
        assert!(plain.drain.utilization.is_none());
    }

    #[test]
    fn specs_roundtrip_through_json() {
        let a = spec();
        let json = serde_json::to_string(&a).expect("serialize");
        let back: JobSpec = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, a);
        assert_eq!(back.key(), a.key());
    }

    #[test]
    fn execute_is_deterministic() {
        let a = spec().execute();
        let b = spec().execute();
        assert_eq!(a, b);
        assert!(a.drain.flushed_blocks > 0);
        assert!(a.recovery.is_none());
    }

    #[test]
    fn recover_jobs_carry_a_recovery_report() {
        let mut s = spec();
        s.recover = true;
        let r = s.execute();
        let rec = r.recovery.expect("recovery requested");
        assert_eq!(rec.restored_blocks, r.drain.flushed_blocks);
    }
}
