//! Registry instrumentation for sweeps.
//!
//! When a caller hands the harness a `horus_obs` registry (via
//! [`crate::HarnessOptions::metrics`]), every sweep records fleet-level
//! telemetry into it: job lifecycle counters, live queue depth, per-worker
//! busy time, per-scheme op totals, live throughput gauges, and a mirror
//! of each completed job's simulator stats. Without a registry none of
//! this code runs — the sweep path is unchanged, which is what keeps
//! un-instrumented outputs byte-identical.

use horus_obs::{names, Counter, FloatCounter, FloatGauge, Gauge, Registry};
use std::sync::Arc;

/// Pre-registered handles for the per-sweep metric families.
pub(crate) struct SweepMetrics {
    pub registry: Arc<Registry>,
    pub started: Counter,
    pub completed: Counter,
    pub panicked: Counter,
    pub cache_hits: Counter,
    pub queue: Gauge,
    pub planned: Gauge,
    pub workers: Gauge,
    pub episodes: Counter,
    pub cycles: Counter,
    pub episodes_per_s: FloatGauge,
    pub cycles_per_s: FloatGauge,
    pub memory_ops_per_s: FloatGauge,
}

impl SweepMetrics {
    pub(crate) fn new(registry: Arc<Registry>) -> Self {
        let r = &registry;
        SweepMetrics {
            started: r.counter(
                names::JOBS_STARTED,
                "Jobs handed to the worker pool (includes cache hits).",
                &[],
            ),
            completed: r.counter(
                names::JOBS_COMPLETED,
                "Jobs that ran to completion (includes cache hits).",
                &[],
            ),
            panicked: r.counter(names::JOBS_PANICKED, "Jobs whose worker panicked.", &[]),
            cache_hits: r.counter(
                names::CACHE_HITS,
                "Jobs answered from the on-disk result cache.",
                &[],
            ),
            queue: r.gauge(
                names::QUEUE_DEPTH,
                "Jobs accepted but not yet finished.",
                &[],
            ),
            planned: r.gauge(
                names::JOBS_PLANNED,
                "Jobs the current plan will run in total.",
                &[],
            ),
            workers: r.gauge(names::WORKER_THREADS, "Size of the worker pool.", &[]),
            episodes: r.counter(
                names::EPISODES_TOTAL,
                "Simulated drain episodes completed.",
                &[],
            ),
            cycles: r.counter(
                names::SIM_CYCLES_TOTAL,
                "Total simulated cycles across completed jobs.",
                &[],
            ),
            episodes_per_s: r.float_gauge(
                names::EPISODES_PER_SECOND,
                "Live episodes per wall-clock second over the current sweep.",
                &[],
            ),
            cycles_per_s: r.float_gauge(
                names::SIM_CYCLES_PER_SECOND,
                "Live simulated cycles per wall-clock second over the current sweep.",
                &[],
            ),
            memory_ops_per_s: r.float_gauge(
                names::MEMORY_OPS_PER_SECOND,
                "Live simulated NVM requests per wall-clock second over the current sweep.",
                &[],
            ),
            registry,
        }
    }

    /// Announces a sweep of `total` jobs on `workers` pool threads.
    pub(crate) fn sweep_begin(&self, total: usize, workers: usize) {
        self.planned.add(total as i64);
        self.queue.add(total as i64);
        self.workers.set(workers as i64);
    }

    /// The busy-seconds counter for one worker thread.
    pub(crate) fn worker_busy(&self, worker: usize) -> FloatCounter {
        self.registry.float_counter(
            names::WORKER_BUSY_SECONDS,
            "Seconds each worker spent running jobs.",
            &[("worker", &worker.to_string())],
        )
    }

    /// Adds one completed job's per-scheme op totals.
    pub(crate) fn scheme_ops(&self, scheme: &str, memory_ops: u64, mac_ops: u64) {
        self.registry
            .counter(
                names::SCHEME_MEMORY_OPS,
                "NVM memory operations per drain scheme.",
                &[("scheme", scheme)],
            )
            .add(memory_ops);
        self.registry
            .counter(
                names::SCHEME_MAC_OPS,
                "MAC operations per drain scheme.",
                &[("scheme", scheme)],
            )
            .add(mac_ops);
    }

    /// Refreshes the live throughput gauges from per-sweep cumulative
    /// totals.
    pub(crate) fn throughput(&self, episodes: u64, cycles: u64, memory_ops: u64, elapsed_s: f64) {
        if elapsed_s > 0.0 {
            self.episodes_per_s.set(episodes as f64 / elapsed_s);
            self.cycles_per_s.set(cycles as f64 / elapsed_s);
            self.memory_ops_per_s.set(memory_ops as f64 / elapsed_s);
        }
    }
}
