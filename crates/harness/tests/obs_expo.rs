//! Golden test for the Prometheus exposition endpoint (satellite S3).
//!
//! A hand-rolled parser (no JSON / Prometheus crate involved) checks the
//! scrape text is well-formed, and the *deterministic subset* of the
//! registry — everything except host/timing families, per
//! `horus_obs::expo::is_deterministic_metric` — must render
//! byte-identically whether the sweep ran with 1 worker or 8. The
//! mid-run scrape happens from inside a pool task, while other jobs are
//! genuinely in flight.

use horus_core::{DrainScheme, SystemConfig};
use horus_harness::{Harness, HarnessOptions, JobSpec, ProgressMode};
use horus_obs::expo;
use horus_obs::{MetricsServer, Registry};
use horus_workload::FillPattern;
use std::collections::BTreeMap;
use std::sync::Arc;

fn sweep_specs() -> Vec<JobSpec> {
    let mut specs = Vec::new();
    for seed in [1u64, 2] {
        let mut cfg = SystemConfig::small_test();
        cfg.seed = seed;
        for scheme in DrainScheme::ALL {
            specs.push(JobSpec::drain(
                &cfg,
                scheme,
                FillPattern::StridedSparse { min_stride: 16384 },
            ));
        }
    }
    specs
}

/// Runs the spec sweep on `jobs` workers with a fresh registry attached,
/// bypassing the cache so both worker counts execute every job.
fn instrumented_sweep(jobs: usize) -> Arc<Registry> {
    let registry = Registry::shared();
    let harness = Harness::new(HarnessOptions {
        jobs: Some(jobs),
        no_cache: true,
        progress: ProgressMode::Silent,
        metrics: Some(Arc::clone(&registry)),
        ..HarnessOptions::default()
    });
    let report = harness.run(&sweep_specs());
    assert_eq!(report.panicked, 0);
    registry
}

/// One parsed metric family from Prometheus exposition text.
#[derive(Debug, Default, PartialEq)]
struct Family {
    help: String,
    kind: String,
    /// `(label-part-of-line, value)` pairs, in exposition order.
    samples: Vec<(String, f64)>,
}

/// A deliberately strict hand-rolled parser for the subset of the
/// Prometheus text format the renderer emits: `# HELP`/`# TYPE` headers
/// followed by that family's samples, buckets optionally carrying an
/// OpenMetrics exemplar suffix (` # {trace_id="..."} value`). Panics
/// (failing the test) on anything malformed — unknown line shapes,
/// samples without a family, unparsable values, exemplars anywhere but
/// on a `_bucket` series or with a non-hex trace id.
fn parse_exposition(text: &str) -> BTreeMap<String, Family> {
    let mut families: BTreeMap<String, Family> = BTreeMap::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let (name, help) = rest.split_once(' ').expect("HELP has name and text");
            families.entry(name.to_owned()).or_default().help = help.to_owned();
        } else if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, kind) = rest.split_once(' ').expect("TYPE has name and kind");
            assert!(
                matches!(kind, "counter" | "gauge" | "histogram"),
                "unknown TYPE {kind}"
            );
            families.entry(name.to_owned()).or_default().kind = kind.to_owned();
        } else {
            assert!(!line.starts_with('#'), "unknown comment line: {line}");
            // Strip and validate an exemplar suffix before the
            // series/value split (its payload also ends in a number).
            let series_and_value = match line.split_once(" # ") {
                Some((head, exemplar)) => {
                    let rest = exemplar
                        .strip_prefix("{trace_id=\"")
                        .unwrap_or_else(|| panic!("malformed exemplar in {line:?}"));
                    let (trace, value) = rest
                        .split_once("\"} ")
                        .unwrap_or_else(|| panic!("unterminated exemplar in {line:?}"));
                    assert!(
                        !trace.is_empty() && trace.chars().all(|c| c.is_ascii_hexdigit()),
                        "non-hex exemplar trace id in {line:?}"
                    );
                    let _: f64 = value.parse().unwrap_or_else(|e| {
                        panic!("unparsable exemplar value in {line:?}: {e}");
                    });
                    assert!(
                        head.contains("_bucket"),
                        "exemplar on a non-bucket series: {line}"
                    );
                    head
                }
                None => line,
            };
            let (series, value) = series_and_value
                .rsplit_once(' ')
                .expect("sample has a value");
            let value: f64 = value.parse().unwrap_or_else(|e| {
                panic!("unparsable sample value in {line:?}: {e}");
            });
            let (name, labels) = match series.split_once('{') {
                Some((name, rest)) => {
                    assert!(rest.ends_with('}'), "unterminated label set: {line}");
                    (name, format!("{{{rest}"))
                }
                None => (series, String::new()),
            };
            // Histogram series (`_bucket`/`_sum`/`_count`) belong to the
            // base family; everything else names its family directly.
            let family = families
                .keys()
                .find(|f| {
                    name == f.as_str()
                        || (name
                            .strip_prefix(f.as_str())
                            .is_some_and(|suffix| matches!(suffix, "_bucket" | "_sum" | "_count")))
                })
                .unwrap_or_else(|| panic!("sample {name} has no preceding family"))
                .clone();
            families
                .get_mut(&family)
                .expect("family exists")
                .samples
                .push((format!("{name}{labels}"), value));
        }
    }
    families
}

#[test]
fn exposition_text_is_well_formed_and_complete() {
    let registry = instrumented_sweep(2);
    let text = expo::render(&registry.snapshot());
    let families = parse_exposition(&text);

    for name in [
        horus_obs::names::JOBS_STARTED,
        horus_obs::names::JOBS_COMPLETED,
        horus_obs::names::CACHE_HITS,
        horus_obs::names::QUEUE_DEPTH,
        horus_obs::names::JOBS_PLANNED,
        horus_obs::names::WORKER_THREADS,
        horus_obs::names::WORKER_BUSY_SECONDS,
        horus_obs::names::EPISODES_TOTAL,
        horus_obs::names::SIM_CYCLES_TOTAL,
        horus_obs::names::SCHEME_MEMORY_OPS,
        horus_obs::names::SCHEME_MAC_OPS,
        horus_obs::names::SIM_STAT,
    ] {
        let family = families
            .get(name)
            .unwrap_or_else(|| panic!("family {name} missing from scrape"));
        assert!(!family.help.is_empty(), "{name} has HELP text");
        assert!(!family.kind.is_empty(), "{name} has a TYPE");
        assert!(!family.samples.is_empty(), "{name} has samples");
    }

    let sample = |family: &str, series: &str| -> f64 {
        families[family]
            .samples
            .iter()
            .find(|(s, _)| s == series)
            .unwrap_or_else(|| panic!("no series {series}"))
            .1
    };
    // 2 seeds x 5 schemes, every one executed and completed.
    assert_eq!(
        sample(
            horus_obs::names::JOBS_STARTED,
            horus_obs::names::JOBS_STARTED
        ),
        10.0
    );
    assert_eq!(
        sample(
            horus_obs::names::JOBS_COMPLETED,
            horus_obs::names::JOBS_COMPLETED
        ),
        10.0
    );
    assert_eq!(
        sample(
            horus_obs::names::EPISODES_TOTAL,
            horus_obs::names::EPISODES_TOTAL
        ),
        10.0
    );
    assert_eq!(
        sample(horus_obs::names::QUEUE_DEPTH, horus_obs::names::QUEUE_DEPTH),
        0.0
    );
    // One memory-op series per scheme, all positive.
    let mem = &families[horus_obs::names::SCHEME_MEMORY_OPS];
    assert_eq!(mem.samples.len(), DrainScheme::ALL.len());
    assert!(mem.samples.iter().all(|&(_, v)| v > 0.0), "{mem:?}");
}

#[test]
fn deterministic_subset_is_identical_across_worker_counts() {
    let one = instrumented_sweep(1);
    let eight = instrumented_sweep(8);
    let render = |r: &Registry| expo::render(&expo::deterministic_subset(&r.snapshot()));
    let text_one = render(&one);
    let text_eight = render(&eight);
    assert!(
        !text_one.is_empty() && text_one.contains(horus_obs::names::SCHEME_MEMORY_OPS),
        "{text_one}"
    );
    assert_eq!(
        text_one, text_eight,
        "deterministic scrape subset must not depend on --jobs"
    );
    // The full scrape, by contrast, legitimately differs (worker count,
    // busy seconds, rates) — if it didn't, the subset would be pointless.
    assert_ne!(
        expo::render(&one.snapshot()),
        expo::render(&eight.snapshot())
    );
}

/// The spans-off golden: collecting lifecycle spans must not perturb
/// any deterministic artifact. The same sweep with and without a
/// [`SpanBook`] attached produces byte-identical outcomes and a
/// byte-identical deterministic exposition subset — and the span
/// histograms themselves are classified non-deterministic, so they can
/// never leak into a golden scrape.
#[test]
fn span_collection_never_perturbs_deterministic_output() {
    use horus_obs::SpanBook;

    let specs = sweep_specs();
    let run = |spans: Option<Arc<SpanBook>>| {
        let registry = Registry::shared();
        let harness = Harness::new(HarnessOptions {
            jobs: Some(2),
            no_cache: true,
            progress: ProgressMode::Silent,
            metrics: Some(Arc::clone(&registry)),
            spans,
            ..HarnessOptions::default()
        });
        let report = harness.run(&specs);
        let outcomes = serde_json::to_string(&report.outcomes).expect("outcomes serialize");
        let subset = expo::render(&expo::deterministic_subset(&registry.snapshot()));
        (outcomes, subset)
    };

    let book = SpanBook::shared();
    let (traced_outcomes, traced_subset) = run(Some(Arc::clone(&book)));
    let (plain_outcomes, plain_subset) = run(None);
    assert_eq!(traced_outcomes, plain_outcomes, "plan outcomes identical");
    assert_eq!(
        traced_subset, plain_subset,
        "deterministic scrape identical"
    );
    assert!(
        !traced_subset.contains(horus_obs::names::FLEET_JOB_STAGE_SECONDS),
        "stage latencies never enter the golden subset"
    );
    assert!(
        !expo::is_deterministic_metric(horus_obs::names::FLEET_JOB_STAGE_SECONDS),
        "stage histograms are wall-clock, not simulation output"
    );
    // The traced run did collect a full timeline on the side.
    assert_eq!(book.len(), specs.len());
    assert!(book.spans().iter().all(horus_obs::JobSpan::is_complete));
}

/// The exemplar on/off golden: a run with no traced observations
/// renders byte-for-byte in the pre-exemplar format (no ` # {`
/// anywhere), and the first traced observation grows exactly one
/// bucket suffix that the strict parser strips back out — so exemplar
/// support cannot perturb any existing scrape consumer or recorded
/// fixture.
#[test]
fn exemplars_are_strictly_additive_to_the_exposition() {
    let registry = instrumented_sweep(2);
    let plain = expo::render(&registry.snapshot());
    assert!(!plain.contains(" # {"), "untraced scrape is exemplar-free");
    let untraced = parse_exposition(&plain);

    let hist = registry.time_histogram(
        horus_obs::names::HTTP_REQUEST_SECONDS,
        "Wall-clock request latency by route and status.",
        &[("route", "/v1/jobs"), ("status", "202")],
    );
    hist.observe_seconds_traced(0.003, Some("feedfacecafef00d"));
    let traced_text = expo::render(&registry.snapshot());
    assert!(
        traced_text.contains("# {trace_id=\"feedfacecafef00d\"}"),
        "{traced_text}"
    );
    let traced = parse_exposition(&traced_text);
    // Every pre-existing family parses to identical values: the
    // exemplar is exposition decoration, never data.
    for (name, family) in &untraced {
        assert_eq!(&traced[name], family, "family {name} perturbed");
    }
    assert!(traced.contains_key(horus_obs::names::HTTP_REQUEST_SECONDS));
}

mod exemplar_properties {
    use super::*;
    use proptest::prelude::*;

    /// A microsecond-scale latency with an optional 16-hex trace id.
    fn arb_obs() -> impl Strategy<Value = (u64, Option<String>)> {
        (1u64..10_000_000, any::<bool>(), any::<u64>())
            .prop_map(|(us, traced, bits)| (us, traced.then(|| format!("{bits:016x}"))))
    }

    proptest! {
        /// Any mix of traced and untraced observations renders an
        /// exposition the strict parser accepts; the count line tallies
        /// every observation; exemplar suffixes appear iff something
        /// was traced; and the deterministic golden subset never
        /// carries an exemplar (trace ids are run-local by nature, and
        /// the RED families that hold them are classified
        /// non-deterministic by name).
        #[test]
        fn any_traced_mix_renders_a_parsable_exposition(
            obs in prop::collection::vec(arb_obs(), 0..40),
        ) {
            let reg = Registry::new();
            let hist = reg.time_histogram(
                "horus_http_prop_seconds",
                "Proptest latency.",
                &[("route", "/v1/jobs")],
            );
            let traced = obs.iter().filter(|(_, t)| t.is_some()).count();
            for (us, trace) in &obs {
                #[allow(clippy::cast_precision_loss)]
                hist.observe_seconds_traced(*us as f64 / 1e6, trace.as_deref());
            }
            let text = expo::render(&reg.snapshot());
            let families = parse_exposition(&text);
            let fam = &families["horus_http_prop_seconds"];
            let count = fam
                .samples
                .iter()
                .find(|(s, _)| s.starts_with("horus_http_prop_seconds_count"))
                .expect("count line")
                .1;
            prop_assert_eq!(count as usize, obs.len());
            prop_assert_eq!(text.contains(" # {trace_id="), traced > 0);
            let subset = expo::render(&expo::deterministic_subset(&reg.snapshot()));
            prop_assert!(!subset.contains("horus_http_prop_seconds"));
            prop_assert!(!subset.contains(" # {"));
        }
    }
}

#[test]
fn mid_run_scrape_serves_live_values() {
    let registry = Registry::shared();
    let server = MetricsServer::bind("127.0.0.1:0", Arc::clone(&registry)).expect("bind");
    let addr = server.local_addr();
    let harness = Harness::new(HarnessOptions {
        jobs: Some(2),
        no_cache: true,
        progress: ProgressMode::Silent,
        metrics: Some(Arc::clone(&registry)),
        ..HarnessOptions::default()
    });
    // Task 3 scrapes the endpoint *from inside the pool*, while the
    // sweep is demonstrably mid-run (jobs started, queue non-empty).
    let outcomes = harness.run_tasks(6, |i| {
        if i == 3 {
            let (status, body) = horus_obs::http::http_get(addr, "/metrics").expect("scrape");
            assert!(status.contains("200 OK"), "{status}");
            return body;
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
        String::new()
    });
    server.shutdown();
    let body = outcomes[3].as_ref().expect("scrape task succeeded");
    let families = parse_exposition(body);
    let planned = &families[horus_obs::names::JOBS_PLANNED].samples[0].1;
    assert_eq!(*planned, 6.0, "mid-run scrape sees the live plan gauge");
    assert!(
        families.contains_key(horus_obs::names::QUEUE_DEPTH),
        "queue depth family present mid-run"
    );
    let started = &families[horus_obs::names::JOBS_STARTED].samples[0].1;
    assert!(*started >= 1.0, "at least the scraping task started");
}
