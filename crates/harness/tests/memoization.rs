//! Integration tests for the memoizing sweep path: a repeated sweep
//! must be 100% cache hits with zero re-executed simulations, and the
//! memoized results must be byte-identical to fresh ones.

use horus_core::{DrainScheme, SystemConfig};
use horus_harness::{Harness, HarnessOptions, JobSpec, ProgressMode};
use horus_workload::FillPattern;
use std::path::{Path, PathBuf};

fn scratch_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("horus-harness-it-{tag}-{}", std::process::id()))
}

fn cached_harness(dir: &Path, jobs: usize) -> Harness {
    Harness::new(HarnessOptions {
        jobs: Some(jobs),
        cache_dir: Some(dir.to_path_buf()),
        no_cache: false,
        progress: ProgressMode::Silent,
        ..HarnessOptions::default()
    })
}

fn sweep_specs() -> Vec<JobSpec> {
    let mut specs = Vec::new();
    for seed in [1u64, 2, 3] {
        let mut cfg = SystemConfig::small_test();
        cfg.seed = seed;
        for scheme in DrainScheme::ALL {
            specs.push(JobSpec::drain(
                &cfg,
                scheme,
                FillPattern::StridedSparse { min_stride: 16384 },
            ));
        }
    }
    specs
}

#[test]
fn repeated_sweep_is_all_cache_hits_and_identical() {
    let dir = scratch_dir("repeat");
    let _ = std::fs::remove_dir_all(&dir);
    let specs = sweep_specs();

    let first = cached_harness(&dir, 4).run(&specs);
    assert_eq!(
        first.executed,
        specs.len(),
        "cold cache executes everything"
    );
    assert_eq!(first.cache_hits, 0);
    assert_eq!(first.panicked, 0);

    let second = cached_harness(&dir, 4).run(&specs);
    assert_eq!(second.executed, 0, "warm cache re-executes nothing");
    assert_eq!(second.cache_hits, specs.len());

    // Memoized results are identical to fresh ones, and to a serial,
    // cache-less reference run.
    let reference = Harness::serial().run(&specs);
    assert_eq!(
        first.results().unwrap(),
        second.results().unwrap(),
        "cache round-trip changed a result"
    );
    assert_eq!(reference.results().unwrap(), second.results().unwrap());
    assert_eq!(reference.merged_stats(), second.merged_stats());

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn partial_cache_fills_in_only_the_gaps() {
    let dir = scratch_dir("partial");
    let _ = std::fs::remove_dir_all(&dir);
    let specs = sweep_specs();

    // Warm the cache with a prefix of the sweep (a resumed sweep).
    let prefix = &specs[..4];
    let warm = cached_harness(&dir, 2).run(prefix);
    assert_eq!(warm.executed, 4);

    let full = cached_harness(&dir, 4).run(&specs);
    assert_eq!(full.cache_hits, 4, "the warmed prefix is reused");
    assert_eq!(full.executed, specs.len() - 4);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn no_cache_mode_always_executes() {
    let dir = scratch_dir("nocache");
    let _ = std::fs::remove_dir_all(&dir);
    let specs = sweep_specs();
    let warm = cached_harness(&dir, 2).run(&specs);
    assert_eq!(warm.executed, specs.len());

    let bypass = Harness::new(HarnessOptions {
        jobs: Some(2),
        cache_dir: Some(dir.clone()),
        no_cache: true,
        progress: ProgressMode::Silent,
        ..HarnessOptions::default()
    })
    .run(&specs);
    assert_eq!(bypass.cache_hits, 0);
    assert_eq!(bypass.executed, specs.len());

    let _ = std::fs::remove_dir_all(&dir);
}
