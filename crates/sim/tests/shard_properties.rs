//! Property tests for the deterministic shard merge.
//!
//! The invariant under test is the one the whole `--sim-threads` feature
//! rests on: for *any* batch of independent episodes and *any* worker
//! count, [`EpisodeShards::run`] returns exactly what a serial
//! `into_iter().map(..)` would. The nightly `deep.yml` lane reruns this
//! suite at `PROPTEST_CASES=4096`.

use horus_sim::EpisodeShards;
use proptest::prelude::*;

/// A tiny deterministic "episode": mixes its submission index with a seed
/// through a few rounds of integer hashing and returns a digest plus a
/// derived byte vector, so both scalar and heap results are compared.
fn episode_result(seed: u64, index: u64) -> (u64, Vec<u8>) {
    let mut x = seed ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    for _ in 0..4 {
        x ^= x >> 33;
        x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    }
    let bytes = (0..(index % 17) as usize)
        .map(|i| (x >> (i % 8)) as u8)
        .collect();
    (x, bytes)
}

proptest! {
    /// Shard merge == serial map, for thread counts around and beyond the
    /// episode count (including the `--sim-threads {1,2,8}` CI matrix).
    #[test]
    fn merge_equals_serial_map(
        seed in any::<u64>(),
        episodes in 0usize..40,
        threads in prop::sample::select(vec![1usize, 2, 3, 4, 8, 16]),
    ) {
        let serial: Vec<_> = (0..episodes as u64)
            .map(|i| episode_result(seed, i))
            .collect();
        let sharded = EpisodeShards::new(threads).run(
            (0..episodes as u64)
                .map(|i| move || episode_result(seed, i))
                .collect(),
        );
        prop_assert_eq!(sharded, serial);
    }

    /// Running the same batch twice on the same pool is bit-stable even
    /// though worker assignment differs run to run.
    #[test]
    fn repeated_runs_are_identical(
        seed in any::<u64>(),
        episodes in 1usize..24,
        threads in 1usize..9,
    ) {
        let shards = EpisodeShards::new(threads);
        let make = |s: u64| {
            (0..episodes as u64)
                .map(|i| move || episode_result(s, i))
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(shards.run(make(seed)), shards.run(make(seed)));
    }

    /// Thread count never leaks into the result: every pool size agrees
    /// with the single-thread reference configuration.
    #[test]
    fn all_pool_sizes_agree_with_reference(
        seed in any::<u64>(),
        episodes in 0usize..16,
    ) {
        let make = || {
            (0..episodes as u64)
                .map(|i| move || episode_result(seed, i))
                .collect::<Vec<_>>()
        };
        let reference = EpisodeShards::new(1).run(make());
        for threads in [2usize, 8] {
            prop_assert_eq!(
                EpisodeShards::new(threads).run(make()),
                reference.clone(),
                "threads = {}",
                threads
            );
        }
    }
}
