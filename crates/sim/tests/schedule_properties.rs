//! Property tests for the slot scheduler: whatever the arrival order,
//! the schedule must respect readiness, capacity, and work conservation.

use horus_sim::schedule::SlotResource;
use horus_sim::Cycles;
use proptest::prelude::*;

proptest! {
    /// A pipelined resource never starts an op before it is ready, never
    /// exceeds one initiation per interval, and never reorders two ops
    /// into the same slot.
    #[test]
    fn pipelined_schedule_is_feasible(
        readies in prop::collection::vec(0u64..10_000, 1..200),
        interval in 1u64..100,
    ) {
        let mut r = SlotResource::pipelined("p", Cycles(160), Cycles(interval));
        let mut starts = Vec::new();
        for ready in &readies {
            let c = r.issue(Cycles(*ready));
            prop_assert!(c.start.0 >= *ready, "started before ready");
            prop_assert_eq!(c.done.0, c.start.0 + 160);
            starts.push(c.start.0);
        }
        starts.sort_unstable();
        for w in starts.windows(2) {
            prop_assert!(w[1] - w[0] >= interval, "two initiations within one interval");
        }
    }

    /// An exclusive resource's total busy time equals the work demanded
    /// (work conservation): quantized occupancy is exactly
    /// sum(ceil(latency/quantum)) * quantum.
    #[test]
    fn exclusive_schedule_conserves_work(
        ops in prop::collection::vec((0u64..5_000, 1u64..3_000), 1..100),
        quantum in prop::sample::select(vec![100u64, 200, 500]),
    ) {
        let mut r = SlotResource::exclusive("b", Cycles(2000), quantum);
        let mut demand = 0u64;
        for (ready, latency) in &ops {
            let c = r.issue_for(Cycles(*ready), Cycles(*latency));
            prop_assert!(c.start.0 >= *ready);
            prop_assert!(c.done.0 >= c.start.0 + *latency);
            demand += latency.div_ceil(quantum) * quantum;
        }
        prop_assert_eq!(r.occupied_cycles(), demand);
        prop_assert_eq!(r.ops(), ops.len() as u64);
        // Slots are disjoint, so the makespan can never beat perfect
        // packing of the demand.
        prop_assert!(
            r.busy_until().0 >= demand,
            "makespan {} below total demand {}",
            r.busy_until(),
            demand
        );
    }

    /// Issue order must not change aggregate throughput: issuing the
    /// same ready times forward or reversed gives the same busy_until
    /// for a pipelined engine (backfill property).
    #[test]
    fn order_independence_of_makespan(
        mut readies in prop::collection::vec(0u64..2_000, 1..100),
    ) {
        let run = |rs: &[u64]| {
            let mut r = SlotResource::pipelined("p", Cycles(160), Cycles(40));
            for x in rs {
                r.issue(Cycles(*x));
            }
            r.busy_until()
        };
        let forward = run(&readies);
        readies.reverse();
        let backward = run(&readies);
        prop_assert_eq!(forward, backward);
    }
}
