//! Named counters and histograms.
//!
//! Every layer of the simulator records what it did into a [`Stats`]
//! registry — memory reads/writes by request type, MAC computations by
//! purpose, cache hits/misses — and the experiment harness reads these
//! back to print the breakdowns shown in the paper's Figures 6, 12 and 13.

use crate::fxhash::FxHashMap;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// A dense handle to one interned counter, issued by
/// [`Stats::counter_id`].
///
/// Hot call sites resolve a name once, cache the id, and then update
/// the counter with [`Stats::add_id`] / [`Stats::incr_id`] — a bounds
/// check and an array add, no hashing and no allocation. Ids are only
/// meaningful for the [`Stats`] instance that issued them (using one
/// against another registry hits whatever counter occupies that slot
/// there, or panics if the slot does not exist); they remain valid
/// across [`Stats::clear`], which resets values but keeps the name
/// table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CounterId(u32);

/// A registry of named monotonic counters.
///
/// Names are interned on first touch: the registry maps each distinct
/// name to a dense id and stores counter values in a flat array, so the
/// per-operation cost is one short-string hash (or none, with a cached
/// [`CounterId`]) instead of an ordered-map walk plus allocation. The
/// name table is only consulted for reporting and serialization, both
/// of which present counters in name order so reports stay
/// deterministic.
///
/// ```
/// use horus_sim::Stats;
/// let mut s = Stats::new();
/// s.add("mem.write.data", 3);
/// s.incr("mem.write.data");
/// assert_eq!(s.get("mem.write.data"), 4);
/// assert_eq!(s.get("never.touched"), 0);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
#[serde(into = "StatsRepr", from = "StatsRepr")]
pub struct Stats {
    /// id → name: the slow-path name table, used only when reporting
    /// or serializing.
    names: Vec<Arc<str>>,
    /// name → id.
    index: FxHashMap<Arc<str>, u32>,
    /// Counter values by id.
    counters: Vec<u64>,
    /// Whether the counter was ever added to (a counter touched with
    /// `add(key, 0)` reports and serializes as present-at-zero, an
    /// interned-but-never-added slot does not — matching the previous
    /// map-based behavior).
    touched: Vec<bool>,
    /// Histograms share the id space; `None` until a sample lands.
    histograms: Vec<Option<Histogram>>,
}

/// The serialized face of [`Stats`]: the ordered name→value maps the
/// registry always presented on the wire. Keeping serialization
/// identical to the pre-interning layout preserves golden traces and
/// the harness cache keys derived from canonical JSON.
#[derive(Clone, Serialize, Deserialize)]
struct StatsRepr {
    counters: BTreeMap<String, u64>,
    #[serde(default, skip_serializing_if = "BTreeMap::is_empty")]
    histograms: BTreeMap<String, Histogram>,
}

impl From<Stats> for StatsRepr {
    fn from(s: Stats) -> Self {
        Self {
            counters: s.iter().map(|(k, v)| (k.to_owned(), v)).collect(),
            histograms: s
                .histograms()
                .map(|(k, h)| (k.to_owned(), h.clone()))
                .collect(),
        }
    }
}

impl From<StatsRepr> for Stats {
    fn from(r: StatsRepr) -> Self {
        let mut s = Stats::new();
        for (k, v) in r.counters {
            s.add(&k, v);
        }
        for (k, h) in r.histograms {
            s.insert_histogram(&k, h);
        }
        s
    }
}

/// Counter equality is semantic — same named values, same named
/// histograms — regardless of interning order, so registries built by
/// different merge orders still compare equal.
impl PartialEq for Stats {
    fn eq(&self, other: &Self) -> bool {
        self.iter().eq(other.iter()) && self.histograms().eq(other.histograms())
    }
}

impl Eq for Stats {}

impl Stats {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `key`, growing the tables if it is new.
    fn intern(&mut self, key: &str) -> usize {
        if let Some(&id) = self.index.get(key) {
            return id as usize;
        }
        let id = u32::try_from(self.names.len()).expect("more than u32::MAX distinct counters");
        let name: Arc<str> = Arc::from(key);
        self.names.push(Arc::clone(&name));
        self.index.insert(name, id);
        self.counters.push(0);
        self.touched.push(false);
        self.histograms.push(None);
        id as usize
    }

    /// Resolves (interning if needed) the dense id for `key`, for call
    /// sites hot enough to cache it. The counter stays absent from
    /// reports until first added to.
    pub fn counter_id(&mut self, key: &str) -> CounterId {
        CounterId(self.intern(key) as u32)
    }

    /// Adds `n` to the counter behind a cached id.
    ///
    /// # Panics
    ///
    /// Panics if `id` was issued by a different registry with more
    /// counters than this one.
    pub fn add_id(&mut self, id: CounterId, n: u64) {
        let slot = id.0 as usize;
        self.counters[slot] += n;
        self.touched[slot] = true;
    }

    /// Increments the counter behind a cached id by one.
    ///
    /// # Panics
    ///
    /// Panics if `id` was issued by a different registry with more
    /// counters than this one.
    pub fn incr_id(&mut self, id: CounterId) {
        self.add_id(id, 1);
    }

    /// Reads the counter behind a cached id.
    ///
    /// # Panics
    ///
    /// Panics if `id` was issued by a different registry with more
    /// counters than this one.
    #[must_use]
    pub fn get_id(&self, id: CounterId) -> u64 {
        self.counters[id.0 as usize]
    }

    /// Adds `n` to the counter `key`, creating it at zero if absent.
    pub fn add(&mut self, key: &str, n: u64) {
        let id = self.intern(key);
        self.counters[id] += n;
        self.touched[id] = true;
    }

    /// Increments the counter `key` by one.
    pub fn incr(&mut self, key: &str) {
        self.add(key, 1);
    }

    /// Adds `n` to the counter named `{prefix}{suffix}` without
    /// allocating the concatenation (the per-operation shape of the
    /// memory system's `mem.read.{kind}` counters).
    pub fn add_pair(&mut self, prefix: &str, suffix: &str, n: u64) {
        let total = prefix.len() + suffix.len();
        let mut buf = [0u8; 96];
        if total <= buf.len() {
            buf[..prefix.len()].copy_from_slice(prefix.as_bytes());
            buf[prefix.len()..total].copy_from_slice(suffix.as_bytes());
            let key = std::str::from_utf8(&buf[..total]).expect("concatenation of two strs");
            self.add(key, n);
        } else {
            self.add(&format!("{prefix}{suffix}"), n);
        }
    }

    /// Increments the counter named `{prefix}{suffix}` by one, without
    /// allocating the concatenation.
    pub fn incr_pair(&mut self, prefix: &str, suffix: &str) {
        self.add_pair(prefix, suffix, 1);
    }

    /// Reads a counter; absent counters read as zero.
    #[must_use]
    pub fn get(&self, key: &str) -> u64 {
        self.index
            .get(key)
            .map_or(0, |&id| self.counters[id as usize])
    }

    /// Sums every counter whose name starts with `prefix`.
    ///
    /// ```
    /// use horus_sim::Stats;
    /// let mut s = Stats::new();
    /// s.add("mem.write.data", 2);
    /// s.add("mem.write.mac", 3);
    /// s.add("mem.read.counter", 5);
    /// assert_eq!(s.sum_prefix("mem.write."), 5);
    /// assert_eq!(s.sum_prefix("mem."), 10);
    /// ```
    #[must_use]
    pub fn sum_prefix(&self, prefix: &str) -> u64 {
        self.names
            .iter()
            .zip(self.counters.iter())
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(_, v)| *v)
            .sum()
    }

    /// Iterates `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        let mut pairs: Vec<(&str, u64)> = self
            .touched
            .iter()
            .enumerate()
            .filter(|&(_, &t)| t)
            .map(|(i, _)| (&*self.names[i], self.counters[i]))
            .collect();
        pairs.sort_unstable_by(|a, b| a.0.cmp(b.0));
        pairs.into_iter()
    }

    /// Merges another registry into this one, saturating-summing shared
    /// counters.
    ///
    /// This is the aggregation path the parallel experiment harness uses
    /// to fold per-worker registries into sweep totals. Saturating
    /// addition is associative and commutative, so the merged totals are
    /// identical no matter how jobs were partitioned across workers —
    /// and identical to what a serial run accumulates.
    ///
    /// ```
    /// use horus_sim::Stats;
    /// let mut a = Stats::new();
    /// a.add("mem.write.data", 2);
    /// let mut b = Stats::new();
    /// b.add("mem.write.data", 3);
    /// b.add("macop.verify_tree", 1);
    /// a.merge(&b);
    /// assert_eq!(a.get("mem.write.data"), 5);
    /// assert_eq!(a.get("macop.verify_tree"), 1);
    ///
    /// // Near-overflow counters clamp instead of panicking.
    /// let mut big = Stats::new();
    /// big.add("mem.write.data", u64::MAX - 1);
    /// big.merge(&b);
    /// assert_eq!(big.get("mem.write.data"), u64::MAX);
    /// ```
    pub fn merge(&mut self, other: &Stats) {
        // Remap by name: the two registries interned in different
        // orders, so ids do not line up.
        for (k, v) in other.iter() {
            let id = self.intern(k);
            self.counters[id] = self.counters[id].saturating_add(v);
            self.touched[id] = true;
        }
        for (k, h) in other.histograms() {
            let id = self.intern(k);
            self.histograms[id]
                .get_or_insert_with(Histogram::new)
                .merge(h);
        }
    }

    /// Records one sample into the named histogram, creating it if
    /// absent.
    ///
    /// ```
    /// use horus_sim::Stats;
    /// let mut s = Stats::new();
    /// s.record_sample("queue.pcm-bank", 400);
    /// s.record_sample("queue.pcm-bank", 0);
    /// assert_eq!(s.histogram("queue.pcm-bank").unwrap().count(), 2);
    /// assert!(s.histogram("queue.hash").is_none());
    /// ```
    pub fn record_sample(&mut self, key: &str, sample: u64) {
        let id = self.intern(key);
        self.histograms[id]
            .get_or_insert_with(Histogram::new)
            .record(sample);
    }

    /// Inserts (or replaces) a whole named histogram.
    pub fn insert_histogram(&mut self, key: &str, histogram: Histogram) {
        let id = self.intern(key);
        self.histograms[id] = Some(histogram);
    }

    /// Reads a named histogram, if any samples were recorded under it.
    #[must_use]
    pub fn histogram(&self, key: &str) -> Option<&Histogram> {
        self.index
            .get(key)
            .and_then(|&id| self.histograms[id as usize].as_ref())
    }

    /// Iterates `(name, histogram)` pairs in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        let mut pairs: Vec<(&str, &Histogram)> = self
            .histograms
            .iter()
            .enumerate()
            .filter_map(|(i, h)| h.as_ref().map(|h| (&*self.names[i], h)))
            .collect();
        pairs.sort_unstable_by(|a, b| a.0.cmp(b.0));
        pairs.into_iter()
    }

    /// Resets every counter and histogram.
    ///
    /// The name table is kept, so [`CounterId`]s issued before the
    /// clear stay valid — the simulator's `reset_timing` paths rely on
    /// this to reuse cached ids across episodes. Cleared counters
    /// become untouched again: they drop out of iteration and
    /// serialization until re-added, exactly as if the registry were
    /// fresh.
    pub fn clear(&mut self) {
        self.counters.iter_mut().for_each(|c| *c = 0);
        self.touched.iter_mut().for_each(|t| *t = false);
        self.histograms.iter_mut().for_each(|h| *h = None);
    }

    /// Number of distinct counters (histograms are not counted; see
    /// [`Stats::histograms`]).
    #[must_use]
    pub fn len(&self) -> usize {
        self.touched.iter().filter(|&&t| t).count()
    }

    /// Whether neither a counter nor a histogram has been touched.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        !self.touched.contains(&true) && self.histograms.iter().all(Option::is_none)
    }
}

impl fmt::Display for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, v) in self.iter() {
            writeln!(f, "{k:<40} {v:>14}")?;
        }
        Ok(())
    }
}

impl<'a> Extend<(&'a str, u64)> for Stats {
    fn extend<T: IntoIterator<Item = (&'a str, u64)>>(&mut self, iter: T) {
        for (k, v) in iter {
            self.add(k, v);
        }
    }
}

impl<'a> FromIterator<(&'a str, u64)> for Stats {
    fn from_iter<T: IntoIterator<Item = (&'a str, u64)>>(iter: T) -> Self {
        let mut s = Stats::new();
        s.extend(iter);
        s
    }
}

/// A power-of-two bucketed histogram of `u64` samples.
///
/// Bucket `i` counts samples in `[2^(i-1), 2^i)`, with bucket 0 counting
/// zero and one. Used to characterize e.g. metadata-cache reuse distances
/// and queueing delays.
///
/// ```
/// use horus_sim::Histogram;
/// let mut h = Histogram::new();
/// h.record(0);
/// h.record(1);
/// h.record(1000);
/// assert_eq!(h.count(), 3);
/// assert_eq!(h.max(), Some(1000));
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    min: Option<u64>,
    max: Option<u64>,
}

impl Histogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket_index(sample: u64) -> usize {
        if sample <= 1 {
            0
        } else {
            (64 - (sample - 1).leading_zeros()) as usize
        }
    }

    /// Records one sample.
    pub fn record(&mut self, sample: u64) {
        let idx = Self::bucket_index(sample);
        if self.buckets.len() <= idx {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += u128::from(sample);
        self.min = Some(self.min.map_or(sample, |m| m.min(sample)));
        self.max = Some(self.max.map_or(sample, |m| m.max(sample)));
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded samples.
    ///
    /// ```
    /// use horus_sim::Histogram;
    /// let mut h = Histogram::new();
    /// h.record(3);
    /// h.record(7);
    /// assert_eq!(h.sum(), 10);
    /// ```
    #[must_use]
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Mean of recorded samples, or `None` if empty.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }

    /// Smallest recorded sample.
    #[must_use]
    pub fn min(&self) -> Option<u64> {
        self.min
    }

    /// Largest recorded sample.
    #[must_use]
    pub fn max(&self) -> Option<u64> {
        self.max
    }

    /// The bucket counts, index `i` covering `[2^(i-1), 2^i)`.
    #[must_use]
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// An upper bound on the `q`-quantile (0.0..=1.0): the inclusive
    /// upper edge `2^i` of the power-of-two bucket containing that rank,
    /// or `None` if empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    ///
    /// ```
    /// use horus_sim::Histogram;
    /// let mut h = Histogram::new();
    /// for v in [1u64, 2, 3, 100] {
    ///     h.record(v);
    /// }
    /// assert_eq!(h.quantile_bound(0.5), Some(2)); // rank 2 is the sample 2
    /// assert_eq!(h.quantile_bound(1.0), Some(128)); // 100 in (64, 128]
    /// ```
    /// Merges another histogram's samples into this one.
    ///
    /// Bucket counts add (saturating), as do `count` and `sum`; min/max
    /// fold. Like [`Stats::merge`] this is associative and commutative,
    /// so harness workers can fold per-job histograms in any partition
    /// order and reach the same result as a serial run.
    ///
    /// ```
    /// use horus_sim::Histogram;
    /// let mut a = Histogram::new();
    /// a.record(3);
    /// let mut b = Histogram::new();
    /// b.record(100);
    /// a.merge(&b);
    /// assert_eq!(a.count(), 2);
    /// assert_eq!(a.min(), Some(3));
    /// assert_eq!(a.max(), Some(100));
    /// ```
    pub fn merge(&mut self, other: &Histogram) {
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (slot, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *slot = slot.saturating_add(*b);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.min = match (self.min, other.min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.max = match (self.max, other.max) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
    }

    /// An upper bound on the `q`-quantile sample: the inclusive upper
    /// edge of the power-of-two bucket the quantile's rank falls in
    /// (tightened to the observed maximum for the last bucket).
    /// `None` when nothing has been recorded.
    ///
    /// # Panics
    ///
    /// Panics when `q` is outside `[0, 1]`.
    #[must_use]
    pub fn quantile_bound(&self, q: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return Some(1u64 << i);
            }
        }
        Some(1u64 << self.buckets.len())
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "count={} mean={:.1} min={:?} max={:?}",
            self.count,
            self.mean().unwrap_or(0.0),
            self.min,
            self.max
        )?;
        for (i, b) in self.buckets.iter().enumerate() {
            if *b > 0 {
                // Bucket 0 holds {0, 1}; bucket i holds (2^(i-1), 2^i].
                let lo = if i == 0 { 0 } else { (1u64 << (i - 1)) + 1 };
                let hi = 1u64 << i;
                writeln!(f, "  [{lo:>12}, {hi:>12}] {b}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = Stats::new();
        s.incr("a");
        s.add("a", 4);
        s.incr("b");
        assert_eq!(s.get("a"), 5);
        assert_eq!(s.get("b"), 1);
        assert_eq!(s.get("missing"), 0);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn prefix_sums() {
        let mut s = Stats::new();
        s.add("x.1", 1);
        s.add("x.2", 2);
        s.add("y.1", 4);
        assert_eq!(s.sum_prefix("x."), 3);
        assert_eq!(s.sum_prefix(""), 7);
        assert_eq!(s.sum_prefix("z."), 0);
    }

    #[test]
    fn merge_sums_counters() {
        let mut a = Stats::new();
        a.add("k", 1);
        let mut b = Stats::new();
        b.add("k", 2);
        b.add("only-b", 3);
        a.merge(&b);
        assert_eq!(a.get("k"), 3);
        assert_eq!(a.get("only-b"), 3);
    }

    #[test]
    fn merge_saturates_instead_of_overflowing() {
        let mut a = Stats::new();
        a.add("k", u64::MAX - 1);
        let mut b = Stats::new();
        b.add("k", 5);
        a.merge(&b);
        assert_eq!(a.get("k"), u64::MAX);
        // Merging more keeps the clamp.
        a.merge(&b);
        assert_eq!(a.get("k"), u64::MAX);
    }

    #[test]
    fn merge_order_is_immaterial() {
        let parts: Vec<Stats> = (0..4u64)
            .map(|i| {
                let mut s = Stats::new();
                s.add("shared", i + 1);
                s.add(if i % 2 == 0 { "even" } else { "odd" }, i);
                s
            })
            .collect();
        let mut fwd = Stats::new();
        for p in &parts {
            fwd.merge(p);
        }
        let mut rev = Stats::new();
        for p in parts.iter().rev() {
            rev.merge(p);
        }
        assert_eq!(fwd, rev);
    }

    #[test]
    fn iteration_is_ordered() {
        let s: Stats = [("b", 2u64), ("a", 1), ("c", 3)].into_iter().collect();
        let keys: Vec<_> = s.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, ["a", "b", "c"]);
    }

    #[test]
    fn counter_ids_bypass_interning() {
        let mut s = Stats::new();
        let id = s.counter_id("mem.read.data");
        assert_eq!(s.get_id(id), 0);
        assert_eq!(s.len(), 0, "interned-but-unadded counters stay absent");
        s.incr_id(id);
        s.add_id(id, 4);
        assert_eq!(s.get_id(id), 5);
        assert_eq!(s.get("mem.read.data"), 5);
        assert_eq!(s.counter_id("mem.read.data"), id, "re-interning is stable");
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn counter_ids_survive_clear() {
        let mut s = Stats::new();
        let id = s.counter_id("ops");
        s.add_id(id, 9);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.get_id(id), 0);
        s.incr_id(id);
        assert_eq!(s.get("ops"), 1);
    }

    #[test]
    fn pair_counters_match_concatenation() {
        let mut s = Stats::new();
        s.incr_pair("mem.read.", "data");
        s.add_pair("mem.read.", "data", 2);
        s.add("mem.read.data", 1);
        assert_eq!(s.get("mem.read.data"), 4);
        assert_eq!(s.len(), 1, "pair and concatenated forms share a counter");
        // Oversized keys fall back to allocation but still count.
        let long = "k".repeat(200);
        s.add_pair("prefix.", &long, 7);
        assert_eq!(s.get(&format!("prefix.{long}")), 7);
    }

    #[test]
    fn equality_ignores_interning_order() {
        let mut a = Stats::new();
        a.add("x", 1);
        a.add("y", 2);
        let mut b = Stats::new();
        b.add("y", 2);
        b.add("x", 1);
        assert_eq!(a, b);
        b.incr("x");
        assert_ne!(a, b);
    }

    #[test]
    fn repr_roundtrip_preserves_contents() {
        let mut s = Stats::new();
        s.add("b", 2);
        s.add("a", 0); // touched at zero must survive the round trip
        s.record_sample("q", 77);
        let repr = StatsRepr::from(s.clone());
        assert_eq!(repr.counters.get("a"), Some(&0));
        assert_eq!(
            repr.counters.keys().collect::<Vec<_>>(),
            ["a", "b"],
            "serialized counters are name-ordered"
        );
        let back = Stats::from(repr);
        assert_eq!(back, s);
    }

    #[test]
    fn clear_empties() {
        let mut s = Stats::new();
        s.incr("a");
        assert!(!s.is_empty());
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn display_nonempty() {
        let mut s = Stats::new();
        s.add("k", 7);
        assert!(format!("{s}").contains('k'));
        let h = Histogram::new();
        assert!(format!("{h}").contains("count=0"));
    }

    #[test]
    fn histogram_buckets() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 0);
        assert_eq!(Histogram::bucket_index(2), 1);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 2);
        assert_eq!(Histogram::bucket_index(5), 3);
        assert_eq!(Histogram::bucket_index(1024), 10);
        assert_eq!(Histogram::bucket_index(1025), 11);
    }

    #[test]
    fn histogram_registry_merges_order_insensitively() {
        let parts: Vec<Stats> = (0..4u64)
            .map(|i| {
                let mut s = Stats::new();
                s.add("ops", i);
                s.record_sample("queue.pcm", i * 100);
                if i % 2 == 0 {
                    s.record_sample("queue.hash", i + 1);
                }
                s
            })
            .collect();
        let mut fwd = Stats::new();
        for p in &parts {
            fwd.merge(p);
        }
        let mut rev = Stats::new();
        for p in parts.iter().rev() {
            rev.merge(p);
        }
        assert_eq!(fwd, rev);
        let q = fwd.histogram("queue.pcm").unwrap();
        assert_eq!(q.count(), 4);
        assert_eq!(q.max(), Some(300));
        assert_eq!(fwd.histogram("queue.hash").unwrap().count(), 2);
        assert_eq!(fwd.histograms().count(), 2);
    }

    #[test]
    fn clear_and_empty_cover_histograms() {
        let mut s = Stats::new();
        s.record_sample("h", 1);
        assert!(!s.is_empty());
        assert_eq!(s.len(), 0, "len counts counters only");
        s.clear();
        assert!(s.is_empty());
        let mut h = Histogram::new();
        h.record(42);
        s.insert_histogram("direct", h);
        assert_eq!(s.histogram("direct").unwrap().max(), Some(42));
    }

    #[test]
    fn histogram_merge_matches_serial_recording() {
        let mut serial = Histogram::new();
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in 0..100u64 {
            serial.record(v * 13);
            if v % 2 == 0 {
                a.record(v * 13);
            } else {
                b.record(v * 13);
            }
        }
        let mut merged = Histogram::new();
        merged.merge(&a);
        merged.merge(&b);
        assert_eq!(merged, serial);
        let mut other_order = Histogram::new();
        other_order.merge(&b);
        other_order.merge(&a);
        assert_eq!(other_order, serial);
    }

    #[test]
    fn histogram_merge_with_empty_is_identity() {
        let mut h = Histogram::new();
        h.record(7);
        let before = h.clone();
        h.merge(&Histogram::new());
        assert_eq!(h, before);
        let mut empty = Histogram::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn histogram_stats() {
        let mut h = Histogram::new();
        assert_eq!(h.mean(), None);
        for v in [2u64, 4, 6] {
            h.record(v);
        }
        assert_eq!(h.count(), 3);
        assert_eq!(h.mean(), Some(4.0));
        assert_eq!(h.min(), Some(2));
        assert_eq!(h.max(), Some(6));
        assert!(h.buckets().iter().sum::<u64>() == 3);
    }
}

#[cfg(test)]
mod quantile_tests {
    use super::*;

    #[test]
    fn quantile_bounds_track_the_distribution() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        // The 50th percentile of 1..=1000 is ~500, bucketed into [512, 1024).
        assert_eq!(h.quantile_bound(0.5), Some(512));
        assert_eq!(h.quantile_bound(0.0), Some(1));
        assert_eq!(h.quantile_bound(1.0), Some(1024));
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        assert_eq!(Histogram::new().quantile_bound(0.5), None);
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn out_of_range_quantile_panics() {
        let mut h = Histogram::new();
        h.record(1);
        let _ = h.quantile_bound(1.5);
    }
}
