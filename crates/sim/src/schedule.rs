//! Out-of-order slot-scheduled resources.
//!
//! [`Resource`](crate::resource::Resource) serves requests in *call*
//! order, which models an in-order pipeline. That is wrong for a drain
//! engine: the simulator walks flushed blocks one at a time, so the last
//! (late) operation of block *i* is issued before the first (early)
//! operation of block *i+1* — an in-order resource would make the late
//! op's start time gate the early op and serialize entire dependency
//! chains end to end.
//!
//! [`SlotResource`] instead keeps an explicit schedule of occupancy
//! slots and lets a request claim the earliest free slot at or after its
//! ready time, regardless of call order — the backfilling behaviour of
//! a real banked device or pipelined engine with a request queue. Free
//! slots are found through an ordered map of coalesced occupied runs, so
//! allocation is logarithmic in the schedule's fragmentation (and a
//! dense sequential stream is a single run).

use crate::clock::Cycles;
use crate::resource::Completion;
use crate::trace::{Probe, TraceEvent};
use std::collections::BTreeMap;

/// A hardware resource scheduled on fixed-size occupancy slots, serving
/// requests in ready-time order rather than call order.
///
/// * A **pipelined** engine (AES, hash) occupies one slot of size equal
///   to its initiation interval per operation; results appear after the
///   full latency.
/// * An **exclusive** device (a PCM bank) occupies `ceil(latency /
///   quantum)` contiguous slots — it is busy for the whole operation.
///
/// ```
/// use horus_sim::{Cycles, schedule::SlotResource};
/// let mut hash = SlotResource::pipelined("hash", Cycles(160), Cycles(40));
/// // A late op…
/// let late = hash.issue(Cycles(10_000));
/// // …does not delay an earlier-ready op issued afterwards (backfill):
/// let early = hash.issue(Cycles(0));
/// assert_eq!(early.start, Cycles(0));
/// assert_eq!(late.start, Cycles(10_000));
/// ```
#[derive(Debug, Clone)]
pub struct SlotResource {
    name: &'static str,
    latency: Cycles,
    quantum: u64,
    /// Sparse occupancy as coalesced runs of occupied slots
    /// (`start -> end`, end exclusive). Sparse because slot indices scale
    /// with simulated *time* — a long serial recovery reaches billions of
    /// cycles — while entries scale with *fragmentation*: a dense
    /// sequential stream is a single run, so claiming the ~10 slots of a
    /// PCM write touches one map node instead of ten.
    runs: BTreeMap<u64, u64>,
    exclusive: bool,
    ops: u64,
    busy_until: Cycles,
    occupied_slots: u64,
    frontier: u64,
    probe: Probe,
}

impl SlotResource {
    /// A pipelined engine: one slot of `interval` per op, `latency` to
    /// the result.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    #[must_use]
    pub fn pipelined(name: &'static str, latency: Cycles, interval: Cycles) -> Self {
        assert!(
            interval.0 > 0,
            "initiation interval must be at least 1 cycle"
        );
        Self {
            name,
            latency,
            quantum: interval.0,
            runs: BTreeMap::new(),
            exclusive: false,
            ops: 0,
            busy_until: Cycles::ZERO,
            occupied_slots: 0,
            frontier: 0,
            probe: Probe::disabled(),
        }
    }

    /// An exclusive device: each op occupies `ceil(latency / quantum)`
    /// contiguous slots.
    ///
    /// # Panics
    ///
    /// Panics if `quantum` is zero.
    #[must_use]
    pub fn exclusive(name: &'static str, latency: Cycles, quantum: u64) -> Self {
        assert!(quantum > 0, "slot quantum must be at least 1 cycle");
        Self {
            name,
            latency,
            quantum,
            runs: BTreeMap::new(),
            exclusive: true,
            ops: 0,
            busy_until: Cycles::ZERO,
            occupied_slots: 0,
            frontier: 0,
            probe: Probe::disabled(),
        }
    }

    /// The resource's display name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The default per-operation latency.
    #[must_use]
    pub fn latency(&self) -> Cycles {
        self.latency
    }

    /// Operations issued so far.
    #[must_use]
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// When the busiest scheduled operation completes.
    #[must_use]
    pub fn busy_until(&self) -> Cycles {
        self.busy_until
    }

    /// Fraction-free diagnostic: total occupied slot time in cycles.
    #[must_use]
    pub fn occupied_cycles(&self) -> u64 {
        self.occupied_slots * self.quantum
    }

    /// The schedule frontier: the end (in cycles) of the furthest slot
    /// ever claimed. `busy_until` can exceed this by a latency tail.
    #[must_use]
    pub fn frontier_cycles(&self) -> u64 {
        self.frontier * self.quantum
    }

    /// The earliest free slot at or after `start`: `start` itself unless
    /// it falls inside an occupied run, in which case the run's end.
    fn find(&self, start: u64) -> u64 {
        match self.runs.range(..=start).next_back() {
            Some((_, &end)) if start < end => end,
            _ => start,
        }
    }

    /// Claims the free slot `slot`, coalescing it into adjacent runs.
    fn take(&mut self, slot: u64) {
        let succ_end = self.runs.remove(&(slot + 1));
        let end = succ_end.unwrap_or(slot + 1);
        match self.runs.range_mut(..=slot).next_back() {
            Some((_, pred_end)) if *pred_end == slot => *pred_end = end,
            _ => {
                self.runs.insert(slot, end);
            }
        }
        self.occupied_slots += 1;
        self.frontier = self.frontier.max(slot + 1);
    }

    /// Issues an operation with the default latency, ready at `ready`.
    pub fn issue(&mut self, ready: Cycles) -> Completion {
        self.issue_for(ready, self.latency)
    }

    /// Like [`SlotResource::issue`], labelling the operation `name` in
    /// the probe's trace.
    pub fn issue_named(&mut self, name: &str, ready: Cycles) -> Completion {
        self.issue_for_named(name, ready, self.latency)
    }

    /// Like [`SlotResource::issue_for`], labelling the operation `name`
    /// in the probe's trace.
    pub fn issue_for_named(&mut self, name: &str, ready: Cycles, latency: Cycles) -> Completion {
        let completion = self.schedule(ready, latency);
        self.probe.record(name, ready, completion);
        completion
    }

    /// Starts recording issued operations under the resource's own name.
    pub fn enable_probe(&mut self) {
        self.probe.enable(self.name);
    }

    /// Starts recording under an explicit track label (bank sets use
    /// bank-indexed labels, e.g. `"pcm-bank[3]"`).
    pub fn enable_probe_as(&mut self, track: String) {
        self.probe.enable(track);
    }

    /// Whether a probe is attached; callers can skip building operation
    /// labels when this is `false`.
    #[must_use]
    pub fn probe_enabled(&self) -> bool {
        self.probe.enabled()
    }

    /// Drains the probe's recorded events (empty when disabled).
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        self.probe.take()
    }

    /// Issues an operation with an explicit latency (banks serving mixed
    /// reads and writes).
    ///
    /// A pipelined resource claims one initiation slot; an exclusive one
    /// claims `ceil(latency / quantum)` slots. Exclusive slots need not
    /// be contiguous — the device is work-conserving, so contention with
    /// already-scheduled operations stretches this operation's completion
    /// instead of leaving the device idle (the behaviour of a device
    /// front-end that interleaves queued requests).
    pub fn issue_for(&mut self, ready: Cycles, latency: Cycles) -> Completion {
        let completion = self.schedule(ready, latency);
        self.probe.record("op", ready, completion);
        completion
    }

    fn schedule(&mut self, ready: Cycles, latency: Cycles) -> Completion {
        let k = if self.exclusive {
            (latency.0.div_ceil(self.quantum)).max(1)
        } else {
            1
        };
        let from = ready.0.div_ceil(self.quantum);
        let first = self.find(from);
        self.take(first);
        let mut last = first;
        for _ in 1..k {
            last = self.find(last + 1);
            self.take(last);
        }
        let start = Cycles(first * self.quantum);
        let done = Cycles(((last + 1) * self.quantum).max(start.0 + latency.0));
        self.busy_until = self.busy_until.max(done);
        self.ops += 1;
        Completion { start, done }
    }

    /// Resets the schedule and counters (a new measurement episode). An
    /// attached probe stays attached but its buffer is dropped.
    pub fn reset(&mut self) {
        self.runs.clear();
        self.ops = 0;
        self.busy_until = Cycles::ZERO;
        self.occupied_slots = 0;
        self.frontier = 0;
        self.probe.clear();
    }
}

/// A group of identical [`SlotResource`]s selected by XOR-folded address
/// interleaving — the banked-memory analogue of
/// [`BankSet`](crate::resource::BankSet) with backfilling banks.
#[derive(Debug, Clone)]
pub struct SlotBankSet {
    banks: Vec<SlotResource>,
}

impl SlotBankSet {
    /// Slot quantum used by banks: 200 cycles divides both the 600-cycle
    /// read and the 2000-cycle write exactly at the paper's 4 GHz.
    pub const BANK_QUANTUM: u64 = 200;

    /// Creates `n` exclusive banks with a default latency.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn new(name: &'static str, n: usize, latency: Cycles) -> Self {
        assert!(n > 0, "bank set must contain at least one bank");
        Self {
            banks: vec![SlotResource::exclusive(name, latency, Self::BANK_QUANTUM); n],
        }
    }

    /// Number of banks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.banks.len()
    }

    /// Whether the set is empty (never true).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.banks.is_empty()
    }

    /// The bank an address maps to (XOR-folded block index, the bank-
    /// address hashing real controllers use so strided streams spread).
    #[must_use]
    pub fn bank_of(&self, address: u64) -> usize {
        let idx = address >> 6;
        let folded = idx ^ (idx >> 4) ^ (idx >> 8) ^ (idx >> 12) ^ (idx >> 16) ^ (idx >> 24);
        (folded % self.banks.len() as u64) as usize
    }

    /// Issues an operation with an explicit latency on the bank owning
    /// `address`.
    pub fn issue_addr_for(&mut self, address: u64, ready: Cycles, latency: Cycles) -> Completion {
        let bank = self.bank_of(address);
        self.banks[bank].issue_for(ready, latency)
    }

    /// Like [`SlotBankSet::issue_addr_for`], labelling the operation
    /// `name` in the owning bank's trace.
    pub fn issue_addr_for_named(
        &mut self,
        name: &str,
        address: u64,
        ready: Cycles,
        latency: Cycles,
    ) -> Completion {
        let bank = self.bank_of(address);
        self.banks[bank].issue_for_named(name, ready, latency)
    }

    /// Starts recording per-bank traces under bank-indexed tracks
    /// (`"pcm-bank[0]"`, `"pcm-bank[1]"`, …).
    pub fn enable_probe(&mut self) {
        for (i, b) in self.banks.iter_mut().enumerate() {
            let track = format!("{}[{i}]", b.name());
            b.enable_probe_as(track);
        }
    }

    /// Whether the banks record traces.
    #[must_use]
    pub fn probe_enabled(&self) -> bool {
        self.banks.first().is_some_and(SlotResource::probe_enabled)
    }

    /// Drains every bank's recorded events, in bank-index order.
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        self.banks
            .iter_mut()
            .flat_map(SlotResource::take_trace)
            .collect()
    }

    /// Total operations across all banks.
    #[must_use]
    pub fn ops(&self) -> u64 {
        self.banks.iter().map(SlotResource::ops).sum()
    }

    /// Completion time of the last scheduled operation.
    #[must_use]
    pub fn busy_until(&self) -> Cycles {
        self.banks
            .iter()
            .map(SlotResource::busy_until)
            .max()
            .unwrap_or(Cycles::ZERO)
    }

    /// Resets all banks.
    pub fn reset(&mut self) {
        for b in &mut self.banks {
            b.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipelined_throughput_is_one_per_interval() {
        let mut r = SlotResource::pipelined("hash", Cycles(160), Cycles(40));
        let c0 = r.issue(Cycles(0));
        let c1 = r.issue(Cycles(0));
        let c2 = r.issue(Cycles(0));
        assert_eq!(
            c0,
            Completion {
                start: Cycles(0),
                done: Cycles(160)
            }
        );
        assert_eq!(
            c1,
            Completion {
                start: Cycles(40),
                done: Cycles(200)
            }
        );
        assert_eq!(
            c2,
            Completion {
                start: Cycles(80),
                done: Cycles(240)
            }
        );
        assert_eq!(r.ops(), 3);
    }

    #[test]
    fn backfill_lets_early_ops_pass_late_ones() {
        let mut r = SlotResource::pipelined("hash", Cycles(160), Cycles(40));
        let late = r.issue(Cycles(8_000));
        let early = r.issue(Cycles(0));
        assert_eq!(late.start, Cycles(8_000));
        assert_eq!(
            early.start,
            Cycles(0),
            "early op must not be gated by the late one"
        );
    }

    #[test]
    fn exclusive_occupies_whole_duration() {
        let mut bank = SlotResource::exclusive("pcm", Cycles(2000), 200);
        let a = bank.issue(Cycles(0));
        let b = bank.issue(Cycles(0));
        assert_eq!(
            a,
            Completion {
                start: Cycles(0),
                done: Cycles(2000)
            }
        );
        assert_eq!(
            b,
            Completion {
                start: Cycles(2000),
                done: Cycles(4000)
            }
        );
    }

    #[test]
    fn exclusive_mixed_latencies_backfill_gaps() {
        let mut bank = SlotResource::exclusive("pcm", Cycles(2000), 200);
        // A write far in the future leaves the early slots free.
        let w = bank.issue_for(Cycles(10_000), Cycles(2000));
        assert_eq!(w.start, Cycles(10_000));
        // A read ready now backfills the gap.
        let r = bank.issue_for(Cycles(0), Cycles(600));
        assert_eq!(r.start, Cycles(0));
        assert_eq!(r.done, Cycles(600));
        // Another write must fit before the scheduled one or after it;
        // the gap 600..10000 fits it.
        let w2 = bank.issue_for(Cycles(0), Cycles(2000));
        assert_eq!(w2.start, Cycles(600));
    }

    #[test]
    fn contention_stretches_completion() {
        let mut bank = SlotResource::exclusive("pcm", Cycles(2000), 200);
        // Occupy slots 3..4 (600..1000).
        let r = bank.issue_for(Cycles(600), Cycles(400));
        assert_eq!(r.start, Cycles(600));
        // A 2000-cycle op ready at 0 starts immediately but is
        // interleaved around the busy window, finishing 2 slots late.
        let w = bank.issue_for(Cycles(0), Cycles(2000));
        assert_eq!(w.start, Cycles(0));
        assert_eq!(w.done, Cycles(2400));
        // The device was never idle while work was pending.
        assert_eq!(bank.occupied_cycles(), 2400);
    }

    #[test]
    fn ready_rounds_up_to_slot_boundary() {
        let mut r = SlotResource::pipelined("aes", Cycles(40), Cycles(2));
        let c = r.issue(Cycles(3));
        assert_eq!(c.start, Cycles(4));
    }

    #[test]
    fn reset_clears_schedule() {
        let mut r = SlotResource::pipelined("hash", Cycles(160), Cycles(40));
        r.issue(Cycles(0));
        assert!(r.occupied_cycles() > 0);
        r.reset();
        assert_eq!(r.ops(), 0);
        assert_eq!(r.busy_until(), Cycles::ZERO);
        assert_eq!(r.issue(Cycles(0)).start, Cycles(0));
    }

    #[test]
    fn bank_set_spreads_and_serializes_per_bank() {
        let mut banks = SlotBankSet::new("pcm", 4, Cycles(2000));
        assert_eq!(banks.len(), 4);
        assert!(!banks.is_empty());
        let done: Vec<_> = (0..4)
            .map(|i| banks.issue_addr_for(i * 64, Cycles(0), Cycles(2000)).done)
            .collect();
        assert!(done.iter().all(|d| *d == Cycles(2000)), "{done:?}");
        assert_eq!(banks.ops(), 4);
        banks.reset();
        assert_eq!(banks.ops(), 0);
    }

    #[test]
    fn probe_captures_slot_issues_without_changing_timing() {
        let mut plain = SlotResource::exclusive("pcm-bank", Cycles(2000), 200);
        let mut probed = SlotResource::exclusive("pcm-bank", Cycles(2000), 200);
        probed.enable_probe();
        for i in 0..4u64 {
            let a = plain.issue_for(Cycles(i * 100), Cycles(600));
            let b = probed.issue_for_named("read.counter", Cycles(i * 100), Cycles(600));
            assert_eq!(a, b);
        }
        assert!(plain.take_trace().is_empty());
        let trace = probed.take_trace();
        assert_eq!(trace.len(), 4);
        assert_eq!(trace[0].track, "pcm-bank");
        assert_eq!(trace[0].name, "read.counter");
        // Unnamed issues on a probed resource still show up as "op".
        probed.issue(Cycles(0));
        assert_eq!(probed.take_trace()[0].name, "op");
        probed.reset();
        assert!(probed.probe_enabled());
        assert!(probed.take_trace().is_empty());
    }

    #[test]
    fn slot_bank_set_probe_uses_indexed_tracks() {
        let mut banks = SlotBankSet::new("pcm-bank", 4, Cycles(2000));
        banks.enable_probe();
        assert!(banks.probe_enabled());
        banks.issue_addr_for_named("write.data", 0, Cycles(0), Cycles(2000));
        banks.issue_addr_for_named("read.counter", 64, Cycles(0), Cycles(600));
        let trace = banks.take_trace();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace[0].track, "pcm-bank[0]");
        assert_eq!(trace[1].track, "pcm-bank[1]");
    }

    #[test]
    #[cfg_attr(miri, ignore = "10k issued ops are minutes under miri")]
    fn heavy_out_of_order_load_is_throughput_bound() {
        // 10k ops, issued in reverse-ready order, on a 40-cycle-interval
        // pipeline: total time must be ~10k * 40, not 10k * (chain gap).
        let mut r = SlotResource::pipelined("hash", Cycles(160), Cycles(40));
        for i in (0..10_000u64).rev() {
            r.issue(Cycles(i * 7));
        }
        let bound = Cycles(10_000 * 40 + 70_000 + 160);
        assert!(r.busy_until() <= bound, "{} > {}", r.busy_until(), bound);
    }
}

#[cfg(test)]
mod sparse_tests {
    use super::*;

    #[test]
    fn far_future_slots_cost_memory_proportional_to_ops() {
        // The regression this representation fixes: a serial chain
        // reaching billions of cycles must not allocate storage
        // proportional to time.
        let mut r = SlotResource::pipelined("hash", Cycles(160), Cycles(2));
        let mut t = Cycles::ZERO;
        for _ in 0..1_000 {
            // Chain ops two million cycles apart: the last op lands at
            // slot index ~10^9.
            let c = r.issue(t);
            t = c.done + Cycles(2_000_000);
        }
        assert_eq!(r.ops(), 1_000);
        assert!(r.frontier_cycles() > 1_000_000_000, "reached far slots");
        // Sparse map: exactly one entry per op.
        assert_eq!(r.occupied_cycles(), 1_000 * 2);
    }

    #[test]
    fn sparse_and_dense_behaviour_agree_on_bursts() {
        let mut r = SlotResource::pipelined("hash", Cycles(160), Cycles(40));
        // A burst of ready-at-zero ops serializes at the interval.
        let starts: Vec<u64> = (0..50).map(|_| r.issue(Cycles::ZERO).start.0).collect();
        for (i, s) in starts.iter().enumerate() {
            assert_eq!(*s, i as u64 * 40);
        }
    }
}
